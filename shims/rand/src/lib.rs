//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of the rand 0.8 API the workspace uses: a seedable
//! deterministic [`rngs::StdRng`] and the [`Rng`] trait with `gen` /
//! `gen_range` over the primitive types that appear in the codebase.
//!
//! The generator is SplitMix64 — statistically solid for synthetic-data and
//! weight-initialisation purposes, and fully deterministic from the seed,
//! which is all the reproduction requires. It intentionally does NOT match
//! the upstream StdRng stream (upstream makes no cross-version stream
//! guarantee either).

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler — a single blanket impl of
/// [`SampleRange`] over this trait keeps type inference flowing from the
/// use site to the range literal, as with upstream rand.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_in_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Uniform-in-`[0,1)` (floats) or full-width (integers) sampling, the shim's
/// analogue of sampling from rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }

            fn sample_in_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    };
}

impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far
                // below anything observable in this workspace.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }

            fn sample_in_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(isize);
impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);

/// The user-facing sampling trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            // One warm-up step decorrelates small consecutive seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: isize = rng.gen_range(-5isize..5);
            assert!((-5..5).contains(&i));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for _ in 0..2000 {
            let v: f32 = rng.gen_range(0.0f32..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }
}
