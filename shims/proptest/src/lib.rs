//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the proptest API this workspace's property tests use:
//! the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, range and [`sample::select`] strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Semantics: each test function runs `cases` times with values drawn from
//! its strategies by a deterministic per-test RNG. Failures report the drawn
//! values; there is no shrinking (a failing case is already fully printed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values for strategies.
pub type TestRng = StdRng;

/// Deterministic RNG for case `case` of test `name`.
pub fn rng_for_case(name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value: core::fmt::Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($t:ty) => {
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..*self.end() + 1 as $t)
            }
        }
    };
}

impl_range_strategy!(usize);
impl_range_strategy!(u8);
impl_range_strategy!(u16);
impl_range_strategy!(u32);
impl_range_strategy!(u64);
impl_range_strategy!(i32);
impl_range_strategy!(i64);
impl_range_strategy!(isize);

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `prop::sample` strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: core::fmt::Debug + Clone>(Vec<T>);

    impl<T: core::fmt::Debug + Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Strategy choosing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: core::fmt::Debug + Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// Outcome of one generated case.
#[doc(hidden)]
pub enum CaseResult {
    /// Case passed.
    Pass,
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Everything the generated tests need, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, CaseResult,
        ProptestConfig, Strategy,
    };

    /// Alias module so `prop::sample::select` works as in upstream.
    pub mod prop {
        pub use crate::sample;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Fail(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::CaseResult::Fail(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::Fail(format!(
                "prop_assert_eq failed: {:?} != {:?}", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::Fail(format!($($fmt)+));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::CaseResult::Fail(format!("prop_assert_ne failed: both were {:?}", l));
        }
    }};
}

/// Discards the current case (does not count toward the case budget's
/// failures) when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

/// Property-test entry macro, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr); ) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let mut __rng = $crate::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case + rejected,
                );
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                let __outcome = (|| -> $crate::CaseResult {
                    $body
                    $crate::CaseResult::Pass
                })();
                match __outcome {
                    $crate::CaseResult::Pass => case += 1,
                    $crate::CaseResult::Reject => {
                        rejected += 1;
                        assert!(
                            rejected < 16 * config.cases,
                            "proptest: too many prop_assume rejections in {}",
                            stringify!($name),
                        );
                    }
                    $crate::CaseResult::Fail(msg) => {
                        panic!(
                            "proptest case {} of {} failed: {}\n  inputs: {}",
                            case,
                            stringify!($name),
                            msg,
                            vec![$(format!("{} = {:?}", stringify!($arg), $arg)),*]
                                .join(", "),
                        );
                    }
                }
            }
        }
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(a in 1usize..10, b in 0.5f32..2.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn select_draws_from_options(v in prop::sample::select(vec![2usize, 4])) {
            prop_assert!(v == 2 || v == 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(a in 0usize..4) {
                prop_assert!(a > 100, "a was {}", a);
            }
        }
        inner();
    }
}
