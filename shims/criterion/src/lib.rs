//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion`], `benchmark_group` / `bench_function`, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short calibration pass sizes the
//! iteration count to a wall-clock budget, then the median per-iteration
//! time is reported on stdout. Good enough to compare kernels on one
//! machine; not a statistical engine.

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// Re-export matching `criterion::black_box` (same contract as std's).
pub use std::hint::black_box;

/// Runs closures and reports timings.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/10 of the budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = ((TARGET.as_nanos() / 10 / once.as_nanos()).max(1)) as u32;
        let deadline = Instant::now() + TARGET;
        while Instant::now() < deadline && self.samples.len() < 64 {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Ends the group (formatting parity with upstream; no-op here).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), &mut f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher { samples: Vec::new() };
    f(&mut b);
    let med = b.median();
    println!("bench {name:<40} median {:>12.3?}", med);
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
