//! Facade crate re-exporting the whole block-convolution reproduction.
//!
//! See [`bconv_core`] for the paper's primary contribution, and the
//! workspace `DESIGN.md` for the full system inventory.

pub use bconv_accel as accel;
pub use bconv_core as core;
pub use bconv_models as models;
pub use bconv_quant as quant;
pub use bconv_tensor as tensor;
pub use bconv_train as train;
