//! Facade crate re-exporting the whole block-convolution reproduction.
//!
//! The front door is the [`Session`] API: compile any [`models`] network
//! descriptor into an executable blocked/fused pipeline and run it.
//!
//! ```
//! use bconv::{Session, core::BlockingPattern, tensor::{PadMode, Tensor}};
//!
//! # fn main() -> Result<(), bconv::tensor::TensorError> {
//! let session = Session::builder()
//!     .network(bconv::models::small::vgg16_small(32))
//!     .pattern(BlockingPattern::hierarchical(2))
//!     .pad(PadMode::Zero)
//!     .build()?;
//! let report = session.run(&Tensor::filled([1, 3, 32, 32], 0.5))?;
//! assert_eq!(report.output.shape().dims(), [1, 10, 1, 1]);
//! # Ok(())
//! # }
//! ```
//!
//! See [`bconv_core`] for the paper's primary contribution (the block
//! convolution operator and fusion machinery) and [`bconv_graph`] for the
//! compiler stages behind [`Session`].

#![forbid(unsafe_code)]

pub use bconv_accel as accel;
pub use bconv_core as core;
pub use bconv_graph as graph;
pub use bconv_models as models;
pub use bconv_quant as quant;
pub use bconv_tensor as tensor;
pub use bconv_train as train;

pub use bconv_graph::{Backend, KernelPolicy, Session};
