//! Super-resolution scenario: train a small VDSR on the synthetic SR task,
//! convert it to end-to-end block convolution (Table IV's H2×2 / blocking-
//! depth variants), and compare PSNR and the fused-inference memory
//! behaviour — the workload of the paper's Ultra96 accelerator (§III-C).
//!
//! Run with: `cargo run --release --example super_resolution`

use bconv_core::plan::NetworkPlan;
use bconv_core::BlockingPattern;
use bconv_tensor::init::seeded_rng;
use bconv_tensor::pad::PadMode;
use bconv_train::datasets::{experiment_rng, super_resolution_batch};
use bconv_train::layers::SgdConfig;
use bconv_train::metrics::psnr;
use bconv_train::models::SmallVdsr;
use bconv_train::trainer::{eval_vdsr_psnr, train_vdsr, TrainConfig};

const PATCH: usize = 24;
const SCALE: usize = 3;
const DEPTH: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TrainConfig {
        steps: 250,
        batch: 8,
        sgd: SgdConfig { lr: 0.05, weight_decay: 1e-5, ..SgdConfig::default() },
        lr_halve_every: 100,
    };

    // Identity (bicubic-like) baseline PSNR of the degraded input.
    let mut rng = experiment_rng("example-sr", 1);
    let probe = super_resolution_batch(32, PATCH, SCALE, &mut rng)?;
    let identity = psnr(&probe.input, &probe.target, 1.0)?;
    println!("degraded-input PSNR (identity baseline): {identity:.2} dB");

    // Unblocked VDSR.
    let mut baseline = SmallVdsr::new(DEPTH, 12, &mut seeded_rng(99))?;
    train_vdsr(&mut baseline, "example-sr", SCALE, PATCH, &cfg)?;
    let base_psnr = eval_vdsr_psnr(&mut baseline, "example-sr", SCALE, PATCH, 32)?;
    println!("VDSR (small) baseline: {base_psnr:.2} dB");

    // End-to-end blocked VDSR (all layers H2x2) — the configuration that
    // lets the Ultra96 accelerator avoid all intermediate DRAM transfers.
    let mut blocked = SmallVdsr::new(DEPTH, 12, &mut seeded_rng(99))?;
    let plan = NetworkPlan::by_blocking_depth(DEPTH, BlockingPattern::hierarchical(2), usize::MAX);
    blocked.apply_plan(plan.per_layer(), PadMode::Zero);
    train_vdsr(&mut blocked, "example-sr", SCALE, PATCH, &cfg)?;
    let blocked_psnr = eval_vdsr_psnr(&mut blocked, "example-sr", SCALE, PATCH, 32)?;
    println!(
        "VDSR + BConv (H2x2, end-to-end): {blocked_psnr:.2} dB ({:+.2} dB vs baseline)",
        blocked_psnr - base_psnr
    );

    // Blocking depth 2: one information-fusion layer after every 2 blocked
    // layers (Table IV's trade-off).
    let mut depth2 = SmallVdsr::new(DEPTH, 12, &mut seeded_rng(99))?;
    let plan2 = NetworkPlan::by_blocking_depth(DEPTH, BlockingPattern::hierarchical(2), 2);
    depth2.apply_plan(plan2.per_layer(), PadMode::Zero);
    train_vdsr(&mut depth2, "example-sr", SCALE, PATCH, &cfg)?;
    let depth2_psnr = eval_vdsr_psnr(&mut depth2, "example-sr", SCALE, PATCH, 32)?;
    println!(
        "VDSR + BConv (blocking depth 2): {depth2_psnr:.2} dB \
         (fusion points at layers {:?})",
        plan2.fusion_points()
    );
    println!(
        "paper's trend: baseline >= depth-2 >= end-to-end blocking, all within ~0.5 dB"
    );
    Ok(())
}
