//! Super-resolution scenario, led by the `Session` API: compile VDSR into
//! blocked/fused pipelines at several blocking depths (Table IV) and
//! compare their off-chip traffic; then train a small VDSR on the
//! synthetic SR task and show the accuracy side of the same trade-off —
//! the workload of the paper's Ultra96 accelerator (§III-C).
//!
//! Run with: `cargo run --release --example super_resolution`

use bconv::core::plan::NetworkPlan;
use bconv::core::BlockingPattern;
use bconv::models::small::vdsr_small;
use bconv::tensor::init::{seeded_rng, uniform_tensor};
use bconv::tensor::pad::PadMode;
use bconv::{Backend, Session};
use bconv_train::datasets::{experiment_rng, super_resolution_batch};
use bconv_train::layers::SgdConfig;
use bconv_train::metrics::psnr;
use bconv_train::models::SmallVdsr;
use bconv_train::trainer::{eval_vdsr_psnr, train_vdsr, TrainConfig};

const PATCH: usize = 24;
const SCALE: usize = 3;
const DEPTH: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Deployment view: compile VDSR at each blocking depth. ---
    // More fusion points (smaller depth) = more information fusion but
    // more off-chip transfers; end-to-end blocking eliminates all
    // intermediate DRAM traffic (what the Ultra96 design exploits).
    let probe_input = uniform_tensor([1, 1, PATCH, PATCH], 0.0, 1.0, &mut seeded_rng(1));
    println!("VDSR-small (depth {DEPTH}) under H2x2, {PATCH}x{PATCH} input:");
    for (label, plan, backend) in [
        ("layer-wise baseline", NetworkPlan::unblocked(DEPTH), Backend::Reference),
        (
            "blocking depth 2",
            NetworkPlan::by_blocking_depth(DEPTH, BlockingPattern::hierarchical(2), 2),
            Backend::Blocked,
        ),
        (
            "end-to-end blocking",
            NetworkPlan::by_blocking_depth(DEPTH, BlockingPattern::hierarchical(2), usize::MAX),
            Backend::Blocked,
        ),
    ] {
        let session = Session::builder()
            .network(vdsr_small(PATCH, DEPTH, 12))
            .pattern(BlockingPattern::hierarchical(2))
            .plan(plan)
            .pad(PadMode::Zero)
            .backend(backend)
            .build()?;
        let report = session.run(&probe_input)?;
        println!(
            "  {label:<22} {} fusion groups, {:>6} off-chip elems, peak buffers {:>5}",
            session.plan().fusion_groups(),
            report.stats.offchip_elems,
            report.stats.peak_working_elems
        );
    }
    println!();

    // --- Accuracy view: train the same topology at each depth. ---
    let cfg = TrainConfig {
        steps: 250,
        batch: 8,
        sgd: SgdConfig { lr: 0.05, weight_decay: 1e-5, ..SgdConfig::default() },
        lr_halve_every: 100,
    };

    // Identity (bicubic-like) baseline PSNR of the degraded input.
    let mut rng = experiment_rng("example-sr", 1);
    let probe = super_resolution_batch(32, PATCH, SCALE, &mut rng)?;
    let identity = psnr(&probe.input, &probe.target, 1.0)?;
    println!("degraded-input PSNR (identity baseline): {identity:.2} dB");

    // Unblocked VDSR.
    let mut baseline = SmallVdsr::new(DEPTH, 12, &mut seeded_rng(99))?;
    train_vdsr(&mut baseline, "example-sr", SCALE, PATCH, &cfg)?;
    let base_psnr = eval_vdsr_psnr(&mut baseline, "example-sr", SCALE, PATCH, 32)?;
    println!("VDSR (small) baseline: {base_psnr:.2} dB");

    // End-to-end blocked VDSR (all layers H2x2).
    let mut blocked = SmallVdsr::new(DEPTH, 12, &mut seeded_rng(99))?;
    let plan = NetworkPlan::by_blocking_depth(DEPTH, BlockingPattern::hierarchical(2), usize::MAX);
    blocked.apply_plan(plan.per_layer(), PadMode::Zero);
    train_vdsr(&mut blocked, "example-sr", SCALE, PATCH, &cfg)?;
    let blocked_psnr = eval_vdsr_psnr(&mut blocked, "example-sr", SCALE, PATCH, 32)?;
    println!(
        "VDSR + BConv (H2x2, end-to-end): {blocked_psnr:.2} dB ({:+.2} dB vs baseline)",
        blocked_psnr - base_psnr
    );

    // Blocking depth 2: one information-fusion layer after every 2 blocked
    // layers (Table IV's trade-off).
    let mut depth2 = SmallVdsr::new(DEPTH, 12, &mut seeded_rng(99))?;
    let plan2 = NetworkPlan::by_blocking_depth(DEPTH, BlockingPattern::hierarchical(2), 2);
    depth2.apply_plan(plan2.per_layer(), PadMode::Zero);
    train_vdsr(&mut depth2, "example-sr", SCALE, PATCH, &cfg)?;
    let depth2_psnr = eval_vdsr_psnr(&mut depth2, "example-sr", SCALE, PATCH, 32)?;
    println!(
        "VDSR + BConv (blocking depth 2): {depth2_psnr:.2} dB \
         (fusion points at layers {:?})",
        plan2.fusion_points()
    );
    println!("paper's trend: baseline >= depth-2 >= end-to-end blocking, all within ~0.5 dB");
    Ok(())
}
