//! Classification scenario, led by the `Session` API: compile the VGG-16
//! topology into a blocked/fused pipeline and inspect what deployment
//! gains (off-chip traffic, on-chip buffers); then run the paper's
//! Table I accuracy workflow — train a baseline classifier, convert it to
//! block convolution and fine-tune, and quantize to 8 bits (Figure 7's
//! deployment path).
//!
//! Run with: `cargo run --release --example classification`

use bconv::core::BlockingPattern;
use bconv::models::small::vgg16_small;
use bconv::tensor::init::seeded_rng;
use bconv::tensor::init::uniform_tensor;
use bconv::{Backend, Session};
use bconv_train::layers::SgdConfig;
use bconv_train::models::{fixed_rule, NetStyle, SmallClassifier};
use bconv_train::trainer::{eval_classifier, train_classifier, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Deployment view: compile the topology into a fused pipeline. ---
    let session =
        Session::builder().network(vgg16_small(32)).pattern(BlockingPattern::fixed(16)).build()?;
    let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(7));
    let fused = session.run(&input)?;
    let reference = Session::builder()
        .network(vgg16_small(32))
        .backend(Backend::Reference)
        .build()?
        .run(&input)?;
    println!("{}", session.describe());
    println!(
        "off-chip traffic: fused {} vs layer-wise {} elements ({:.1}x less)\n",
        fused.stats.offchip_elems,
        reference.stats.offchip_elems,
        reference.stats.offchip_elems as f64 / fused.stats.offchip_elems as f64
    );

    // --- Accuracy view: the paper's fine-tuning workflow. ---
    let cfg = TrainConfig {
        steps: 300,
        batch: 16,
        sgd: SgdConfig { lr: 0.005, adam: true, ..SgdConfig::default() },
        lr_halve_every: 120,
    };

    // 1. Train the float baseline.
    let mut net = SmallClassifier::new(NetStyle::Vgg, 8, 4, &mut seeded_rng(7))?;
    train_classifier(&mut net, "example-cls", &cfg)?;
    let base = eval_classifier(&mut net, "example-cls", 256)?;
    println!("baseline accuracy: {:.1}%", base * 100.0);

    // 2. Convert to block convolution (F16 on the 32x32/16x16 layers) and
    //    fine-tune with unchanged hyperparameters.
    net.apply_blocking(&fixed_rule(16));
    let dropped = eval_classifier(&mut net, "example-cls", 256)?;
    println!("after blocking, before fine-tuning: {:.1}% (boundary perturbation)", dropped * 100.0);
    let ft_cfg = TrainConfig { steps: 150, ..cfg };
    train_classifier(&mut net, "example-cls", &ft_cfg)?;
    let tuned = eval_classifier(&mut net, "example-cls", 256)?;
    println!("after fine-tuning: {:.1}% (paper: within ~1% of baseline)", tuned * 100.0);

    // 3. Deploy-time quantization: fake-quantize weights to 8 bits.
    net.set_fake_quant(Some(8));
    let quantized = eval_classifier(&mut net, "example-cls", 256)?;
    println!("post-training 8-bit quantization: {:.1}%", quantized * 100.0);
    Ok(())
}
