//! Accelerator co-design scenario: size a block-convolution VGG-16
//! accelerator for the ZC706 — explore the fusion design space, pick the
//! best feasible configuration, and compare it against the off-chip
//! baseline and the paper's Table VI points (the §III-B flow).
//!
//! Run with: `cargo run --release --example accelerator_design`

use bconv_accel::baseline::{run_baseline, TileConfig};
use bconv_accel::dse::{explore_vgg16, feasible, pareto_front};
use bconv_accel::fusion::{table6_configs, vgg16_shapes};
use bconv_accel::platform::{zc706, EnergyModel};

fn main() {
    let shapes = vgg16_shapes();
    let platform = zc706();
    println!(
        "target: VGG-16 on {} ({} BRAM18, {} DSP, {} MHz)",
        platform.name, platform.bram18_blocks, platform.dsp, platform.freq_mhz
    );

    // Off-chip baseline.
    let tile = TileConfig { tr: 14, tc: 14, tm: 64, tn: 64, npe: 4 };
    let base = run_baseline(&shapes, &tile, &platform, 8);
    println!(
        "baseline (8-bit, 4 PE): {:.1} ms/image, {:.1} GOP/s, {:.0} Mbits feature traffic",
        base.latency_ms(&platform),
        base.gops(&platform),
        base.feature_traffic_bits as f64 / 1e6
    );

    // Explore the fused design space.
    let points = explore_vgg16(&shapes, &platform, 8, 4);
    let feas = feasible(&points, &platform);
    println!("design space: {} points, {} feasible on-chip", points.len(), feas.len());
    let best =
        feas.iter().min_by_key(|p| p.eval.real_cycles()).expect("at least one feasible design");
    println!(
        "best feasible design: {} — {:.1} ms/image, {:.1} GOP/s, {} BRAM18",
        best.design.name,
        best.eval.latency_ms(&platform),
        best.eval.gops(&platform),
        best.eval.bram18
    );
    println!(
        "speedup over baseline: {:.2}x; feature-map DRAM energy {:.1} mJ -> {:.3} mJ",
        base.latency_ms(&platform) / best.eval.latency_ms(&platform),
        EnergyModel::default().dram_mj(base.feature_traffic_bits),
        EnergyModel::default().dram_mj(best.eval.feature_traffic_bits)
    );

    println!("\nPareto front (BRAM18 / latency):");
    let mut front = pareto_front(&points);
    front.sort_by_key(|p| p.eval.bram18);
    for p in front.iter().take(8) {
        println!(
            "  {:>5} BRAM  {:>7.1} ms  {}",
            p.eval.bram18,
            p.eval.latency_ms(&platform),
            if p.eval.bram18 <= platform.bram18_blocks { "feasible" } else { "infeasible" }
        );
    }

    println!("\nTable VI reference points:");
    for d in table6_configs() {
        let e = d.evaluate(&shapes, &platform);
        println!(
            "  {}: {}b/{}PE  {:>5} BRAM  {:>7.1} ms  {:>6.1} GOP/s",
            d.name,
            d.bits,
            d.npe,
            e.bram18,
            e.latency_ms(&platform),
            e.gops(&platform)
        );
    }
}
