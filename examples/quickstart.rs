//! Quickstart: the paper's Figure 3 example, end to end.
//!
//! Builds a block convolution over an 8×8×3 input with 2×2 blocking,
//! verifies the operation-count parity and the interior-exactness property,
//! and shows the headline capability: fusing three convolution layers
//! block-by-block with zero off-chip transfer of intermediate feature maps.
//!
//! Run with: `cargo run --release --example quickstart`

use bconv_core::analysis::{block_spatial_kernel_ops, boundary_error, spatial_kernel_ops};
use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::fusion::{ChainOp, FusedChain};
use bconv_core::BlockConv2d;
use bconv_tensor::conv::ConvGeom;
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::pad::PadMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(2018);

    // --- Figure 3: an 8x8x3 input, a 3x3x3 filter, 2x2 blocks. ---
    let conv = he_conv2d(3, 1, ConvGeom::same(3), 1, &mut rng)?;
    let input = uniform_tensor([1, 3, 8, 8], -1.0, 1.0, &mut rng);
    let pattern = BlockingPattern::hierarchical(2);
    let bconv = BlockConv2d::from_pattern(conv.clone(), 8, 8, pattern, PadMode::Zero)?;

    let dense_out = conv.forward(&input)?;
    let block_out = bconv.forward(&input)?;
    println!("output shapes: dense {:?}, blocked {:?}", dense_out.shape(), block_out.shape());

    // Operation-count parity: 8*8*3 = 192 both ways.
    println!(
        "spatial kernel ops: conventional {}, blocked {} (paper: 192 = 192)",
        spatial_kernel_ops(8, 8, 3),
        block_spatial_kernel_ops(&bconv)?
    );

    // Only boundary pixels differ.
    let grid = BlockGrid::from_pattern(8, 8, pattern)?;
    let err = boundary_error(&conv, &grid, PadMode::Zero, &input)?;
    println!(
        "interior max |diff| = {:.2e}, overall max |diff| = {:.3}, perturbed pixels = {:.0}%",
        err.interior_max_abs,
        err.max_abs,
        err.frac_perturbed * 100.0
    );

    // --- Figure 2(b): fuse three conv layers block-by-block. ---
    let chain = FusedChain::plan(
        vec![
            ChainOp::Conv(he_conv2d(3, 8, ConvGeom::same(3), 1, &mut rng)?),
            ChainOp::Relu,
            ChainOp::Conv(he_conv2d(8, 8, ConvGeom::same(3), 1, &mut rng)?),
            ChainOp::Relu,
            ChainOp::Conv(he_conv2d(8, 3, ConvGeom::same(3), 1, &mut rng)?),
        ],
        grid,
        PadMode::Zero,
    )?;
    let (fused, fused_stats) = chain.run_fused(&input)?;
    let (layerwise, layer_stats) = chain.run_layerwise(&input)?;
    assert!(fused.approx_eq(&layerwise, 1e-5)?);
    println!(
        "fused 3-layer chain: identical output, off-chip traffic {} vs {} elements \
         ({}x less), peak working set {} vs {} elements",
        fused_stats.offchip_elems,
        layer_stats.offchip_elems,
        layer_stats.offchip_elems / fused_stats.offchip_elems,
        fused_stats.peak_working_elems,
        layer_stats.peak_working_elems
    );
    Ok(())
}
