//! Quickstart: compile a network into a blocked/fused pipeline with the
//! `Session` API, then drill down to the paper's Figure 3 operator-level
//! example.
//!
//! Run with: `cargo run --release --example quickstart`

use bconv::core::analysis::{block_spatial_kernel_ops, boundary_error, spatial_kernel_ops};
use bconv::core::blocking::{BlockGrid, BlockingPattern};
use bconv::core::BlockConv2d;
use bconv::models::small::vgg16_small;
use bconv::tensor::conv::ConvGeom;
use bconv::tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv::tensor::pad::PadMode;
use bconv::{Backend, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The five-line story: descriptor in, fused pipeline out. ---
    let session = Session::builder()
        .network(vgg16_small(32))
        .pattern(BlockingPattern::hierarchical(2))
        .pad(PadMode::Zero)
        .build()?;
    let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(2018));
    let report = session.run(&input)?;
    println!("{}", session.describe());
    println!(
        "blocked run: output {:?}, {} off-chip elements, peak block buffers {}",
        report.output.shape(),
        report.stats.offchip_elems,
        report.stats.peak_working_elems
    );

    // Same graph (same seed => same weights) on the dense baseline backend:
    // the fused schedule moves ~10x less data across the off-chip boundary.
    let reference =
        Session::builder().network(vgg16_small(32)).backend(Backend::Reference).build()?;
    let ref_report = reference.run(&input)?;
    println!(
        "reference run: {} off-chip elements ({:.1}x the fused traffic)\n",
        ref_report.stats.offchip_elems,
        ref_report.stats.offchip_elems as f64 / report.stats.offchip_elems as f64
    );

    // --- Under the hood: the paper's Figure 3 example. ---
    // An 8x8x3 input, a 3x3x3 filter, 2x2 blocks.
    let mut rng = seeded_rng(2018);
    let conv = he_conv2d(3, 1, ConvGeom::same(3), 1, &mut rng)?;
    let small = uniform_tensor([1, 3, 8, 8], -1.0, 1.0, &mut rng);
    let pattern = BlockingPattern::hierarchical(2);
    let bconv = BlockConv2d::from_pattern(conv.clone(), 8, 8, pattern, PadMode::Zero)?;

    let dense_out = conv.forward(&small)?;
    let block_out = bconv.forward(&small)?;
    println!(
        "figure 3: output shapes dense {:?}, blocked {:?}",
        dense_out.shape(),
        block_out.shape()
    );

    // Operation-count parity: 8*8*3 = 192 both ways.
    println!(
        "spatial kernel ops: conventional {}, blocked {} (paper: 192 = 192)",
        spatial_kernel_ops(8, 8, 3),
        block_spatial_kernel_ops(&bconv)?
    );

    // Only boundary pixels differ.
    let grid = BlockGrid::from_pattern(8, 8, pattern)?;
    let err = boundary_error(&conv, &grid, PadMode::Zero, &small)?;
    println!(
        "interior max |diff| = {:.2e}, overall max |diff| = {:.3}, perturbed pixels = {:.0}%",
        err.interior_max_abs,
        err.max_abs,
        err.frac_perturbed * 100.0
    );
    Ok(())
}
