//! Training and evaluation loops for the three synthetic tasks, plus the
//! detection loss/decoder.
//!
//! All loops are deterministic: data comes from
//! [`crate::datasets::experiment_rng`]-seeded generators, so every
//! experiment harness reproduces bit-identical numbers.

use bconv_tensor::{Tensor, TensorError};

use crate::datasets::{
    classification_batch, detection_batch, experiment_rng, super_resolution_batch, BBox, DetBatch,
    IMAGE_SIZE, NUM_DET_CLASSES,
};
use crate::layers::{SgdConfig, TrainLayer};
use crate::loss::{mse, softmax_cross_entropy};
use crate::metrics::{ap_summary, psnr, top1_accuracy, ApSummary, Detection};
use crate::models::{SmallClassifier, SmallDetector, SmallVdsr, DET_HEAD_CHANNELS};

/// Shared training-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of SGD steps.
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Optimiser settings.
    pub sgd: SgdConfig,
    /// Halve the learning rate every this many steps (0 = never).
    pub lr_halve_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { steps: 300, batch: 16, sgd: SgdConfig::default(), lr_halve_every: 120 }
    }
}

fn lr_at(cfg: &TrainConfig, step: usize) -> f32 {
    match step.checked_div(cfg.lr_halve_every) {
        // lr_halve_every == 0 disables the schedule.
        None => cfg.sgd.lr,
        Some(halvings) => cfg.sgd.lr * 0.5f32.powi(halvings as i32),
    }
}

/// Trains a classifier on the blob-offset task; returns the mean loss of
/// the final 10% of steps.
///
/// # Errors
///
/// Propagates forward/backward errors.
pub fn train_classifier(
    net: &mut SmallClassifier,
    experiment: &str,
    cfg: &TrainConfig,
) -> Result<f32, TensorError> {
    let mut rng = experiment_rng(experiment, 0);
    let mut tail_loss = 0.0f32;
    let mut tail_n = 0usize;
    for step in 0..cfg.steps {
        let batch = classification_batch(cfg.batch, &mut rng);
        let logits = net.forward(&batch.images, true)?;
        let (loss, d) = softmax_cross_entropy(&logits, &batch.labels)?;
        net.backward(&d)?;
        net.step(SgdConfig { lr: lr_at(cfg, step), ..cfg.sgd });
        if step >= cfg.steps - cfg.steps / 10 - 1 {
            tail_loss += loss;
            tail_n += 1;
        }
    }
    Ok(tail_loss / tail_n.max(1) as f32)
}

/// Evaluates top-1 accuracy on a held-out split.
///
/// # Errors
///
/// Propagates forward errors.
pub fn eval_classifier(
    net: &mut SmallClassifier,
    experiment: &str,
    samples: usize,
) -> Result<f64, TensorError> {
    let mut rng = experiment_rng(experiment, 1);
    let mut correct_weighted = 0.0;
    let mut seen = 0usize;
    let chunk = 32;
    while seen < samples {
        let n = chunk.min(samples - seen);
        let batch = classification_batch(n, &mut rng);
        let logits = net.forward(&batch.images, false)?;
        correct_weighted += top1_accuracy(&logits, &batch.labels)? * n as f64;
        seen += n;
    }
    Ok(correct_weighted / samples as f64)
}

/// Trains a small VDSR on the synthetic super-resolution task at `scale`.
///
/// # Errors
///
/// Propagates forward/backward errors.
pub fn train_vdsr(
    net: &mut SmallVdsr,
    experiment: &str,
    scale: usize,
    patch: usize,
    cfg: &TrainConfig,
) -> Result<f32, TensorError> {
    let mut rng = experiment_rng(experiment, 0);
    let mut last = 0.0;
    for step in 0..cfg.steps {
        let batch = super_resolution_batch(cfg.batch, patch, scale, &mut rng)?;
        let pred = net.forward(&batch.input, true)?;
        let (loss, d) = mse(&pred, &batch.target)?;
        net.backward(&d)?;
        net.step(SgdConfig { lr: lr_at(cfg, step), ..cfg.sgd });
        last = loss;
    }
    Ok(last)
}

/// Mean PSNR of a small VDSR on a held-out split.
///
/// # Errors
///
/// Propagates forward errors.
pub fn eval_vdsr_psnr(
    net: &mut SmallVdsr,
    experiment: &str,
    scale: usize,
    patch: usize,
    samples: usize,
) -> Result<f64, TensorError> {
    let mut rng = experiment_rng(experiment, 1);
    let mut total = 0.0;
    let mut seen = 0usize;
    while seen < samples {
        let n = 8.min(samples - seen);
        let batch = super_resolution_batch(n, patch, scale, &mut rng)?;
        let pred = net.forward(&batch.input, false)?;
        for i in 0..n {
            total += psnr(&pred.batch(i)?, &batch.target.batch(i)?, 1.0)?;
        }
        seen += n;
    }
    Ok(total / samples as f64)
}

// ---------------------------------------------------------------------------
// Detection loss / decode
// ---------------------------------------------------------------------------

/// Grid side of the detector head (32 input / two 2× pools).
pub const DET_GRID: usize = 8;

/// Detection loss: softmax over cells for object location, cross-entropy
/// over classes at the positive cell, and L2 on the box parameters
/// (centre offset within the cell + log size).
///
/// Returns `(loss, d_pred)` for predictions `[n, DET_HEAD_CHANNELS, 8, 8]`.
///
/// # Errors
///
/// Returns shape errors on malformed predictions.
pub fn detection_loss(pred: &Tensor, batch: &DetBatch) -> Result<(f32, Tensor), TensorError> {
    let [n, ch, gh, gw] = pred.shape().dims();
    if ch != DET_HEAD_CHANNELS || gh != DET_GRID || gw != DET_GRID {
        return Err(TensorError::shape_mismatch(
            "detection_loss pred",
            format!("[n,{DET_HEAD_CHANNELS},{DET_GRID},{DET_GRID}]"),
            pred.shape().to_string(),
        ));
    }
    let cell = (IMAGE_SIZE / DET_GRID) as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f64;
    for ni in 0..n {
        let bb = &batch.boxes[ni];
        let (cy, cx) = ((bb.y0 + bb.y1) / 2.0, (bb.x0 + bb.x1) / 2.0);
        let (gy, gx) =
            (((cy / cell) as usize).min(DET_GRID - 1), ((cx / cell) as usize).min(DET_GRID - 1));

        // 1. Cell softmax over the 64 objectness logits (channel 0).
        let mut max_l = f32::NEG_INFINITY;
        for y in 0..DET_GRID {
            for x in 0..DET_GRID {
                max_l = max_l.max(pred.at(ni, 0, y, x));
            }
        }
        let mut sum = 0.0f32;
        for y in 0..DET_GRID {
            for x in 0..DET_GRID {
                sum += (pred.at(ni, 0, y, x) - max_l).exp();
            }
        }
        for y in 0..DET_GRID {
            for x in 0..DET_GRID {
                let p = (pred.at(ni, 0, y, x) - max_l).exp() / sum;
                let target = if y == gy && x == gx { 1.0 } else { 0.0 };
                *grad.at_mut(ni, 0, y, x) = (p - target) / n as f32;
                if y == gy && x == gx {
                    loss += -(p.max(1e-9).ln()) as f64;
                }
            }
        }

        // 2. Class cross-entropy at the positive cell.
        let class = batch.classes[ni];
        let logits: Vec<f32> = (0..NUM_DET_CLASSES).map(|c| pred.at(ni, 1 + c, gy, gx)).collect();
        let cmax = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let csum: f32 = logits.iter().map(|v| (v - cmax).exp()).sum();
        for (c, &l) in logits.iter().enumerate() {
            let p = (l - cmax).exp() / csum;
            let target = if c == class { 1.0 } else { 0.0 };
            *grad.at_mut(ni, 1 + c, gy, gx) = (p - target) / n as f32;
            if c == class {
                loss += -(p.max(1e-9).ln()) as f64;
            }
        }

        // 3. Box regression at the positive cell: ty, tx, th, tw.
        let targets = [
            (cy / cell - gy as f32 - 0.5),
            (cx / cell - gx as f32 - 0.5),
            ((bb.y1 - bb.y0) / IMAGE_SIZE as f32).ln(),
            ((bb.x1 - bb.x0) / IMAGE_SIZE as f32).ln(),
        ];
        for (bi, &t) in targets.iter().enumerate() {
            let p = pred.at(ni, 1 + NUM_DET_CLASSES + bi, gy, gx);
            let d = p - t;
            loss += (0.5 * d * d) as f64;
            *grad.at_mut(ni, 1 + NUM_DET_CLASSES + bi, gy, gx) = d / n as f32;
        }
    }
    Ok(((loss / n as f64) as f32, grad))
}

/// Decodes predictions into one detection per image (the dataset has one
/// object per image).
pub fn decode_detections(pred: &Tensor) -> Vec<Detection> {
    let [n, _, gh, gw] = pred.shape().dims();
    let cell = (IMAGE_SIZE / DET_GRID) as f32;
    let mut out = Vec::with_capacity(n);
    for ni in 0..n {
        // Best cell by objectness.
        let (mut by, mut bx, mut best) = (0usize, 0usize, f32::NEG_INFINITY);
        for y in 0..gh {
            for x in 0..gw {
                let v = pred.at(ni, 0, y, x);
                if v > best {
                    best = v;
                    by = y;
                    bx = x;
                }
            }
        }
        // Softmax score of the winning cell.
        let mut sum = 0.0f32;
        for y in 0..gh {
            for x in 0..gw {
                sum += (pred.at(ni, 0, y, x) - best).exp();
            }
        }
        let score = 1.0 / sum;
        // Class.
        let (mut class, mut cbest) = (0usize, f32::NEG_INFINITY);
        for c in 0..NUM_DET_CLASSES {
            let v = pred.at(ni, 1 + c, by, bx);
            if v > cbest {
                cbest = v;
                class = c;
            }
        }
        // Box.
        let ty = pred.at(ni, 1 + NUM_DET_CLASSES, by, bx);
        let tx = pred.at(ni, 1 + NUM_DET_CLASSES + 1, by, bx);
        let th = pred.at(ni, 1 + NUM_DET_CLASSES + 2, by, bx);
        let tw = pred.at(ni, 1 + NUM_DET_CLASSES + 3, by, bx);
        let cy = (by as f32 + 0.5 + ty) * cell;
        let cx = (bx as f32 + 0.5 + tx) * cell;
        let h = th.exp() * IMAGE_SIZE as f32;
        let w = tw.exp() * IMAGE_SIZE as f32;
        out.push(Detection {
            bbox: BBox { y0: cy - h / 2.0, x0: cx - w / 2.0, y1: cy + h / 2.0, x1: cx + w / 2.0 },
            class,
            score,
        });
    }
    out
}

/// Trains a detector; returns the final loss.
///
/// # Errors
///
/// Propagates forward/backward errors.
pub fn train_detector(
    net: &mut SmallDetector,
    experiment: &str,
    cfg: &TrainConfig,
) -> Result<f32, TensorError> {
    let mut rng = experiment_rng(experiment, 0);
    let mut last = 0.0;
    for step in 0..cfg.steps {
        let batch = detection_batch(cfg.batch, &mut rng);
        let pred = net.forward(&batch.images, true)?;
        let (loss, d) = detection_loss(&pred, &batch)?;
        net.backward(&d)?;
        net.step(SgdConfig { lr: lr_at(cfg, step), ..cfg.sgd });
        last = loss;
    }
    Ok(last)
}

/// Evaluates the COCO-style AP summary of a detector on a held-out split.
///
/// # Errors
///
/// Propagates forward errors.
pub fn eval_detector(
    net: &mut SmallDetector,
    experiment: &str,
    samples: usize,
) -> Result<ApSummary, TensorError> {
    let mut rng = experiment_rng(experiment, 1);
    let mut detections = Vec::new();
    let mut ground_truth = Vec::new();
    let mut seen = 0usize;
    while seen < samples {
        let n = 16.min(samples - seen);
        let batch = detection_batch(n, &mut rng);
        let pred = net.forward(&batch.images, false)?;
        for (i, det) in decode_detections(&pred).into_iter().enumerate() {
            detections.push((seen + i, det));
        }
        for i in 0..n {
            ground_truth.push((batch.boxes[i], batch.classes[i]));
        }
        seen += n;
    }
    Ok(ap_summary(&detections, &ground_truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::NetStyle;
    use bconv_tensor::init::seeded_rng;

    fn quick_cfg(steps: usize) -> TrainConfig {
        TrainConfig {
            steps,
            batch: 16,
            sgd: SgdConfig { lr: 0.05, ..SgdConfig::default() },
            lr_halve_every: steps / 3,
        }
    }

    #[test]
    fn classifier_learns_above_chance() {
        let mut rng = seeded_rng(1);
        let mut net = SmallClassifier::new(NetStyle::Vgg, 8, 4, &mut rng).unwrap();
        train_classifier(&mut net, "trainer-test", &quick_cfg(300)).unwrap();
        let acc = eval_classifier(&mut net, "trainer-test", 64).unwrap();
        assert!(acc > 0.4, "accuracy {acc} not above chance (0.25)");
    }

    #[test]
    fn blocked_classifier_still_trains() {
        use crate::models::fixed_rule;
        let mut rng = seeded_rng(2);
        let mut net = SmallClassifier::new(NetStyle::Vgg, 8, 4, &mut rng).unwrap();
        net.apply_blocking(&fixed_rule(16));
        // Adam rather than plain SGD: the small classifiers escape the
        // uniform-prediction plateau reliably across seeds only with
        // per-parameter scaling (see bconv-bench's calibration note).
        let cfg = TrainConfig {
            steps: 150,
            batch: 16,
            sgd: SgdConfig { lr: 0.005, adam: true, ..SgdConfig::default() },
            lr_halve_every: 60,
        };
        train_classifier(&mut net, "trainer-test-blocked", &cfg).unwrap();
        let acc = eval_classifier(&mut net, "trainer-test-blocked", 64).unwrap();
        assert!(acc > 0.4, "blocked accuracy {acc}");
    }

    #[test]
    fn vdsr_training_improves_psnr_over_input() {
        let mut rng = seeded_rng(3);
        let mut net = SmallVdsr::new(4, 8, &mut rng).unwrap();
        // PSNR of the degraded input itself (identity baseline).
        let mut eval_rng = experiment_rng("sr-test", 1);
        let probe = super_resolution_batch(8, 24, 3, &mut eval_rng).unwrap();
        let input_psnr = psnr(&probe.input, &probe.target, 1.0).unwrap();
        train_vdsr(&mut net, "sr-test", 3, 24, &quick_cfg(100)).unwrap();
        let net_psnr = eval_vdsr_psnr(&mut net, "sr-test", 3, 24, 8).unwrap();
        assert!(
            net_psnr > input_psnr,
            "net {net_psnr:.2} dB should beat identity {input_psnr:.2} dB"
        );
    }

    #[test]
    fn detection_loss_decreases_with_training() {
        let mut rng = seeded_rng(4);
        let mut net = SmallDetector::new(4, &mut rng).unwrap();
        let first = train_detector(&mut net, "det-test-a", &quick_cfg(5)).unwrap();
        let mut net2 = SmallDetector::new(4, &mut seeded_rng(4)).unwrap();
        let last = train_detector(&mut net2, "det-test-a", &quick_cfg(80)).unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn trained_detector_has_nonzero_ap() {
        let mut rng = seeded_rng(5);
        let mut net = SmallDetector::new(4, &mut rng).unwrap();
        let cfg =
            TrainConfig { sgd: SgdConfig { lr: 0.02, ..SgdConfig::default() }, ..quick_cfg(200) };
        train_detector(&mut net, "det-test-b", &cfg).unwrap();
        let ap = eval_detector(&mut net, "det-test-b", 48).unwrap();
        assert!(ap.ap50 > 0.1, "AP@0.5 = {}", ap.ap50);
        assert!(ap.ap50 >= ap.ap75);
    }

    #[test]
    fn decode_produces_one_detection_per_image() {
        let mut rng = seeded_rng(6);
        let mut net = SmallDetector::new(4, &mut rng).unwrap();
        let batch = detection_batch(3, &mut experiment_rng("dec", 0));
        let pred = net.forward(&batch.images, false).unwrap();
        let dets = decode_detections(&pred);
        assert_eq!(dets.len(), 3);
        for d in dets {
            assert!(d.score > 0.0 && d.score <= 1.0);
        }
    }

    #[test]
    fn detection_loss_validates_shape() {
        let batch = detection_batch(1, &mut experiment_rng("val", 0));
        let bad = Tensor::zeros([1, 3, 8, 8]);
        assert!(detection_loss(&bad, &batch).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let build = || {
            let mut rng = seeded_rng(7);
            SmallClassifier::new(NetStyle::Vgg, 4, 4, &mut rng).unwrap()
        };
        let mut a = build();
        let mut b = build();
        train_classifier(&mut a, "determinism", &quick_cfg(20)).unwrap();
        train_classifier(&mut b, "determinism", &quick_cfg(20)).unwrap();
        let acc_a = eval_classifier(&mut a, "determinism", 32).unwrap();
        let acc_b = eval_classifier(&mut b, "determinism", 32).unwrap();
        assert_eq!(acc_a, acc_b);
    }
}
