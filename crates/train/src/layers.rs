//! Trainable layers with explicit forward/backward passes.
//!
//! The centrepiece is [`ConvLayer`], which trains either as a conventional
//! convolution or as a **block convolution** ([`bconv_core`]): because
//! blocks are independent, both the forward and the backward pass are
//! block-local, which is exactly why the paper can fine-tune blocked
//! networks with unmodified hyperparameters.
//!
//! All convolutions here are stride-1 (the paper's baselines rewrite
//! strided convolutions as stride-1 + pooling, §II-F); spatial reduction is
//! done by [`MaxPoolLayer`].

use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::padding_solver::plan_axis;
use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::init::{he_conv2d, he_linear};
use bconv_tensor::linear::Linear;
use bconv_tensor::pad::{pad2d_asym, pad2d_backward, PadMode};
use bconv_tensor::pool::max_pool2d_with_argmax;
use bconv_tensor::{Tensor, TensorError};
use rand::rngs::StdRng;

use bconv_quant::fake_quant_dynamic;

/// Hyper-parameters of one optimiser update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (SGD mode only).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Element-wise gradient clipping bound (VDSR-style training relies on
    /// clipping to tolerate high learning rates).
    pub grad_clip: f32,
    /// Use Adam instead of momentum SGD. Adam's per-parameter scaling is
    /// what lets the plain (non-residual) small networks escape the
    /// uniform-prediction plateau reliably across seeds.
    pub adam: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self { lr: 0.02, momentum: 0.9, weight_decay: 1e-4, grad_clip: 1.0, adam: false }
    }
}

/// Adam moment decay rates and epsilon (the standard values).
const ADAM_BETA1: f32 = 0.9;
/// Second-moment decay.
const ADAM_BETA2: f32 = 0.999;
/// Numerical floor.
const ADAM_EPS: f32 = 1e-8;

/// Shared parameter-update kernel for both optimisers. `m` is the
/// momentum / first-moment buffer, `v2` the Adam second-moment buffer and
/// `t` the Adam step count (starting at 1).
#[allow(clippy::too_many_arguments)]
fn update_params(
    params: &mut [f32],
    grads: &[f32],
    m: &mut [f32],
    v2: &mut [f32],
    t: u64,
    cfg: SgdConfig,
) {
    let clip = |g: f32| g.clamp(-cfg.grad_clip, cfg.grad_clip);
    if cfg.adam {
        let bc1 = 1.0 - ADAM_BETA1.powi(t as i32);
        let bc2 = 1.0 - ADAM_BETA2.powi(t as i32);
        for ((p, &g0), (mv, vv)) in
            params.iter_mut().zip(grads).zip(m.iter_mut().zip(v2.iter_mut()))
        {
            let g = clip(g0) + cfg.weight_decay * *p;
            *mv = ADAM_BETA1 * *mv + (1.0 - ADAM_BETA1) * g;
            *vv = ADAM_BETA2 * *vv + (1.0 - ADAM_BETA2) * g * g;
            let mhat = *mv / bc1;
            let vhat = *vv / bc2;
            *p -= cfg.lr * mhat / (vhat.sqrt() + ADAM_EPS);
        }
    } else {
        for ((p, &g0), mv) in params.iter_mut().zip(grads).zip(m.iter_mut()) {
            let g = clip(g0) + cfg.weight_decay * *p;
            *mv = cfg.momentum * *mv + g;
            *p -= cfg.lr * *mv;
        }
    }
}

/// Common interface of trainable layers.
pub trait TrainLayer {
    /// Forward pass; caches activations needed by backward when `train`.
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError>;
    /// Backward pass: consumes `d_out`, accumulates parameter gradients and
    /// returns the gradient w.r.t. the layer input.
    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError>;
    /// Applies one SGD step and clears gradients.
    fn step(&mut self, cfg: SgdConfig);
}

// ---------------------------------------------------------------------------
// Convolution (conventional or blocked)
// ---------------------------------------------------------------------------

/// How a [`ConvLayer`] handles blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// Conventional convolution (symmetric zero padding `p`).
    None,
    /// Block convolution under a pattern with the given block-padding mode.
    Pattern(BlockingPattern, PadMode),
}

struct ConvCache {
    /// Per-block padded inputs, row-major over the grid.
    padded_blocks: Vec<Tensor>,
    input_dims: [usize; 4],
}

/// A trainable stride-1 convolution, optionally blocked.
pub struct ConvLayer {
    conv: Conv2d,
    blocking: Blocking,
    /// Fake-quantize weights in forward (training-aware quantization).
    pub fake_quant_bits: Option<u8>,
    d_weight: Tensor,
    d_bias: Vec<f32>,
    v_weight: Tensor,
    v_bias: Vec<f32>,
    v2_weight: Tensor,
    v2_bias: Vec<f32>,
    steps: u64,
    cache: Option<ConvCache>,
}

impl ConvLayer {
    /// He-initialised conv layer: `c_in -> c_out`, `k × k`, "same" padding.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors from the tensor crate.
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        groups: usize,
        blocking: Blocking,
        rng: &mut StdRng,
    ) -> Result<Self, TensorError> {
        let conv = he_conv2d(c_in, c_out, ConvGeom::same(k), groups, rng)?;
        let wdims = conv.weight().shape();
        Ok(Self {
            d_weight: Tensor::zeros(wdims.dims()),
            d_bias: vec![0.0; c_out],
            v_weight: Tensor::zeros(wdims.dims()),
            v_bias: vec![0.0; c_out],
            v2_weight: Tensor::zeros(wdims.dims()),
            v2_bias: vec![0.0; c_out],
            steps: 0,
            conv,
            blocking,
            fake_quant_bits: None,
            cache: None,
        })
    }

    /// The wrapped convolution (weights/bias).
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// Mutable weight tensor (custom initialisation schemes).
    pub fn conv_weight_mut(&mut self) -> &mut Tensor {
        self.conv.weight_mut()
    }

    /// Sets the blocking mode (used when converting a pre-trained baseline
    /// to a blocked network for fine-tuning).
    pub fn set_blocking(&mut self, blocking: Blocking) {
        self.blocking = blocking;
    }

    /// The grid and per-axis padding plans for an `h × w` input.
    #[allow(clippy::type_complexity)]
    fn plan(
        &self,
        h: usize,
        w: usize,
    ) -> Result<(BlockGrid, Vec<(usize, usize, usize, usize)>), TensorError> {
        let geom = self.conv.geom();
        let grid = match self.blocking {
            Blocking::None => BlockGrid::single(h, w),
            Blocking::Pattern(pattern, _) => BlockGrid::from_pattern(h, w, pattern)?,
        };
        let rows = plan_axis(grid.row_segments(), geom.kernel, 1, geom.padding)?;
        let cols = plan_axis(grid.col_segments(), geom.kernel, 1, geom.padding)?;
        let mut pads = Vec::with_capacity(grid.num_blocks());
        for r in &rows.blocks {
            for c in &cols.blocks {
                pads.push((r.pad_lo, r.pad_hi, c.pad_lo, c.pad_hi));
            }
        }
        Ok((grid, pads))
    }

    fn pad_mode(&self) -> PadMode {
        match self.blocking {
            Blocking::None => PadMode::Zero,
            Blocking::Pattern(_, mode) => mode,
        }
    }
}

impl TrainLayer for ConvLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let [n, _c, h, w] = x.shape().dims();
        let (grid, pads) = self.plan(h, w)?;
        let mode = self.pad_mode();

        // Training-aware quantization: fake-quantize weights (straight-
        // through estimator in backward).
        let exec_conv = if let Some(bits) = self.fake_quant_bits {
            let qw = fake_quant_dynamic(self.conv.weight(), bits);
            Conv2d::new(qw, self.conv.bias().to_vec(), self.conv.geom(), self.conv.groups())?
        } else {
            self.conv.clone()
        };

        let mut out = Tensor::zeros([n, self.conv.c_out(), h, w]);
        let mut padded_blocks = Vec::with_capacity(grid.num_blocks());
        let mut bi = 0;
        for row in 0..grid.num_rows() {
            for col in 0..grid.num_cols() {
                let b = grid.block(row, col);
                let (pt, pb, pl, pr) = pads[bi];
                bi += 1;
                let cropped = x.crop(b.h0, b.w0, b.bh, b.bw)?;
                let padded = pad2d_asym(&cropped, pt, pb, pl, pr, mode)?;
                let block_out = exec_conv.forward_prepadded(&padded)?;
                out.paste(&block_out, b.h0, b.w0)?;
                if train {
                    padded_blocks.push(padded);
                }
            }
        }
        if train {
            self.cache = Some(ConvCache { padded_blocks, input_dims: x.shape().dims() });
        }
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| TensorError::invalid("ConvLayer::backward without forward"))?;
        let [n, _c, h, w] = cache.input_dims;
        let (grid, pads) = self.plan(h, w)?;
        let mode = self.pad_mode();
        let k = self.conv.geom().kernel;
        let groups = self.conv.groups();
        let c_out = self.conv.c_out();
        let c_in = self.conv.c_in();
        let cin_per_group = c_in / groups;
        let cout_per_group = c_out / groups;
        let wshape = self.conv.weight().shape();
        let wdata = self.conv.weight().data();

        let mut d_input = Tensor::zeros(cache.input_dims);
        let mut bi = 0;
        for row in 0..grid.num_rows() {
            for col in 0..grid.num_cols() {
                let b = grid.block(row, col);
                let (pt, pb, pl, pr) = pads[bi];
                let padded = &cache.padded_blocks[bi];
                bi += 1;
                let d_block = d_out.crop(b.h0, b.w0, b.bh, b.bw)?;
                let [_, _, ph, pw] = padded.shape().dims();
                let mut d_padded = Tensor::zeros([n, c_in, ph, pw]);

                for ni in 0..n {
                    for g in 0..groups {
                        for mo in 0..cout_per_group {
                            let m = g * cout_per_group + mo;
                            for oh in 0..b.bh {
                                for ow in 0..b.bw {
                                    let dy = d_block.at(ni, m, oh, ow);
                                    if dy == 0.0 {
                                        continue;
                                    }
                                    self.d_bias[m] += dy;
                                    for ci in 0..cin_per_group {
                                        let c = g * cin_per_group + ci;
                                        for kh in 0..k {
                                            let w_row = wshape.index(m, ci, kh, 0);
                                            for kw in 0..k {
                                                let xv = padded.at(ni, c, oh + kh, ow + kw);
                                                // dW accumulation.
                                                let dwi = w_row + kw;
                                                self.d_weight.data_mut()[dwi] += dy * xv;
                                                // dX (padded) accumulation.
                                                *d_padded.at_mut(ni, c, oh + kh, ow + kw) +=
                                                    dy * wdata[dwi];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let d_cropped =
                    pad2d_backward(&d_padded, [n, c_in, b.bh, b.bw], pt, pb, pl, pr, mode)?;
                // Scatter the block gradient back into the input gradient.
                for ni in 0..n {
                    for c in 0..c_in {
                        for hh in 0..b.bh {
                            for ww in 0..b.bw {
                                *d_input.at_mut(ni, c, b.h0 + hh, b.w0 + ww) +=
                                    d_cropped.at(ni, c, hh, ww);
                            }
                        }
                    }
                }
            }
        }
        Ok(d_input)
    }

    fn step(&mut self, cfg: SgdConfig) {
        self.steps += 1;
        update_params(
            self.conv.weight_mut().data_mut(),
            self.d_weight.data(),
            self.v_weight.data_mut(),
            self.v2_weight.data_mut(),
            self.steps,
            cfg,
        );
        // Biases skip weight decay.
        let bias_cfg = SgdConfig { weight_decay: 0.0, ..cfg };
        update_params(
            self.conv.bias_mut(),
            &self.d_bias,
            &mut self.v_bias,
            &mut self.v2_bias,
            self.steps,
            bias_cfg,
        );
        for d in self.d_weight.data_mut() {
            *d = 0.0;
        }
        for d in &mut self.d_bias {
            *d = 0.0;
        }
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Trainable leaky ReLU (slope [`LEAKY_SLOPE`] on the negative side).
///
/// The training framework uses a leaky rather than hard ReLU: with the
/// sparse synthetic tasks a hard ReLU frequently kills the gradient of
/// plain (non-residual) networks at initialisation.
#[derive(Default)]
pub struct ReluLayer {
    mask: Option<Vec<bool>>,
}

/// Negative-side slope of [`ReluLayer`].
pub const LEAKY_SLOPE: f32 = 0.1;

impl ReluLayer {
    /// New leaky-ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrainLayer for ReluLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(x.map(|v| if v > 0.0 { v } else { LEAKY_SLOPE * v }))
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| TensorError::invalid("ReluLayer::backward without forward"))?;
        let mut d = d_out.clone();
        for (v, m) in d.data_mut().iter_mut().zip(mask) {
            if !m {
                *v *= LEAKY_SLOPE;
            }
        }
        Ok(d)
    }

    fn step(&mut self, _cfg: SgdConfig) {}
}

// ---------------------------------------------------------------------------
// Max pooling
// ---------------------------------------------------------------------------

/// Trainable `k × k` stride-`k` max pooling.
pub struct MaxPoolLayer {
    k: usize,
    cache: Option<(Vec<usize>, [usize; 4])>,
}

impl MaxPoolLayer {
    /// New pooling layer with window and stride `k`.
    pub fn new(k: usize) -> Self {
        Self { k, cache: None }
    }
}

impl TrainLayer for MaxPoolLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let (out, argmax) = max_pool2d_with_argmax(x, self.k, self.k)?;
        if train {
            self.cache = Some((argmax, x.shape().dims()));
        }
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let (argmax, dims) = self
            .cache
            .take()
            .ok_or_else(|| TensorError::invalid("MaxPoolLayer::backward without forward"))?;
        let mut d = Tensor::zeros(dims);
        for (flat, &src) in argmax.iter().enumerate() {
            d.data_mut()[src] += d_out.data()[flat];
        }
        Ok(d)
    }

    fn step(&mut self, _cfg: SgdConfig) {}
}

// ---------------------------------------------------------------------------
// Global average pooling
// ---------------------------------------------------------------------------

/// Trainable global average pooling to `1 × 1`.
#[derive(Default)]
pub struct GlobalAvgPoolLayer {
    dims: Option<[usize; 4]>,
}

impl GlobalAvgPoolLayer {
    /// New global-average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrainLayer for GlobalAvgPoolLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        if train {
            self.dims = Some(x.shape().dims());
        }
        Ok(bconv_tensor::pool::global_avg_pool(x))
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let dims = self
            .dims
            .take()
            .ok_or_else(|| TensorError::invalid("GlobalAvgPool::backward without forward"))?;
        let [n, c, h, w] = dims;
        let inv = 1.0 / (h * w) as f32;
        let mut d = Tensor::zeros(dims);
        for ni in 0..n {
            for ci in 0..c {
                let g = d_out.at(ni, ci, 0, 0) * inv;
                for hh in 0..h {
                    for ww in 0..w {
                        *d.at_mut(ni, ci, hh, ww) = g;
                    }
                }
            }
        }
        Ok(d)
    }

    fn step(&mut self, _cfg: SgdConfig) {}
}

// ---------------------------------------------------------------------------
// Fully connected
// ---------------------------------------------------------------------------

/// Trainable fully-connected layer (flattens its input).
pub struct LinearLayer {
    lin: Linear,
    d_weight: Vec<f32>,
    d_bias: Vec<f32>,
    v_weight: Vec<f32>,
    v_bias: Vec<f32>,
    v2_weight: Vec<f32>,
    v2_bias: Vec<f32>,
    steps: u64,
    cache: Option<(Tensor, [usize; 4])>,
}

impl LinearLayer {
    /// He-initialised linear layer.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors from the tensor crate.
    pub fn new(in_f: usize, out_f: usize, rng: &mut StdRng) -> Result<Self, TensorError> {
        let lin = he_linear(in_f, out_f, rng)?;
        Ok(Self {
            d_weight: vec![0.0; in_f * out_f],
            d_bias: vec![0.0; out_f],
            v_weight: vec![0.0; in_f * out_f],
            v_bias: vec![0.0; out_f],
            v2_weight: vec![0.0; in_f * out_f],
            v2_bias: vec![0.0; out_f],
            steps: 0,
            lin,
            cache: None,
        })
    }
}

impl TrainLayer for LinearLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        if train {
            self.cache = Some((x.clone(), x.shape().dims()));
        }
        self.lin.forward(x)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let (x, dims) = self
            .cache
            .take()
            .ok_or_else(|| TensorError::invalid("LinearLayer::backward without forward"))?;
        let [n, c, h, w] = dims;
        let in_f = c * h * w;
        let out_f = self.lin.out_features();
        let mut d_input = Tensor::zeros(dims);
        for ni in 0..n {
            let xr = &x.data()[ni * in_f..(ni + 1) * in_f];
            let dr = &d_out.data()[ni * out_f..(ni + 1) * out_f];
            for (o, &dy) in dr.iter().enumerate() {
                if dy == 0.0 {
                    continue;
                }
                self.d_bias[o] += dy;
                let wrow = &self.lin.weight()[o * in_f..(o + 1) * in_f];
                let dwrow = &mut self.d_weight[o * in_f..(o + 1) * in_f];
                let dxr = &mut d_input.data_mut()[ni * in_f..(ni + 1) * in_f];
                for i in 0..in_f {
                    dwrow[i] += dy * xr[i];
                    dxr[i] += dy * wrow[i];
                }
            }
        }
        Ok(d_input)
    }

    fn step(&mut self, cfg: SgdConfig) {
        self.steps += 1;
        update_params(
            self.lin.weight_mut(),
            &self.d_weight,
            &mut self.v_weight,
            &mut self.v2_weight,
            self.steps,
            cfg,
        );
        let bias_cfg = SgdConfig { weight_decay: 0.0, ..cfg };
        update_params(
            self.lin.bias_mut(),
            &self.d_bias,
            &mut self.v_bias,
            &mut self.v2_bias,
            self.steps,
            bias_cfg,
        );
        self.d_weight.iter_mut().for_each(|d| *d = 0.0);
        self.d_bias.iter_mut().for_each(|d| *d = 0.0);
    }
}

// ---------------------------------------------------------------------------
// Sequential container
// ---------------------------------------------------------------------------

/// A sequential stack of trainable layers.
pub struct Sequential {
    layers: Vec<Box<dyn TrainLayer>>,
}

impl Sequential {
    /// New container.
    pub fn new(layers: Vec<Box<dyn TrainLayer>>) -> Self {
        Self { layers }
    }

    /// The layers (for post-training surgery such as enabling blocking).
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn TrainLayer>> {
        &mut self.layers
    }
}

impl TrainLayer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let mut d = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d)?;
        }
        Ok(d)
    }

    fn step(&mut self, cfg: SgdConfig) {
        for layer in &mut self.layers {
            layer.step(cfg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::init::{seeded_rng, uniform_tensor};

    /// Finite-difference gradient check for a scalar loss = sum(output).
    fn grad_check_conv(blocking: Blocking) {
        let mut rng = seeded_rng(11);
        let mut layer = ConvLayer::new(2, 2, 3, 1, blocking, &mut rng).unwrap();
        let x = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut rng);
        let out = layer.forward(&x, true).unwrap();
        let ones = Tensor::filled(out.shape(), 1.0);
        let d_input = layer.backward(&ones).unwrap();

        // Check input gradient at a few positions via finite differences.
        let eps = 1e-2;
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (1, 3, 4), (0, 4, 4), (1, 7, 7)] {
            let mut xp = x.clone();
            *xp.at_mut(0, c, h, w) += eps;
            let mut xm = x.clone();
            *xm.at_mut(0, c, h, w) -= eps;
            let mut probe = ConvLayer::new(2, 2, 3, 1, blocking, &mut seeded_rng(11)).unwrap();
            let fp: f32 = probe.forward(&xp, false).unwrap().data().iter().sum();
            let fm: f32 = probe.forward(&xm, false).unwrap().data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = d_input.at(0, c, h, w);
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
                "blocking {blocking:?} pixel ({c},{h},{w}): numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_gradcheck_dense() {
        grad_check_conv(Blocking::None);
    }

    #[test]
    fn conv_gradcheck_blocked_zero() {
        grad_check_conv(Blocking::Pattern(BlockingPattern::hierarchical(2), PadMode::Zero));
    }

    #[test]
    fn conv_gradcheck_blocked_replicate() {
        grad_check_conv(Blocking::Pattern(BlockingPattern::hierarchical(2), PadMode::Replicate));
    }

    #[test]
    fn conv_weight_gradcheck() {
        let mut rng = seeded_rng(13);
        let mut layer = ConvLayer::new(1, 1, 3, 1, Blocking::None, &mut rng).unwrap();
        let x = uniform_tensor([1, 1, 6, 6], -1.0, 1.0, &mut rng);
        let out = layer.forward(&x, true).unwrap();
        let ones = Tensor::filled(out.shape(), 1.0);
        layer.backward(&ones).unwrap();
        let analytic = layer.d_weight.at(0, 0, 1, 1);
        // Finite difference on the same weight.
        let eps = 1e-2;
        let eval = |delta: f32| -> f32 {
            let mut probe =
                ConvLayer::new(1, 1, 3, 1, Blocking::None, &mut seeded_rng(13)).unwrap();
            *probe.conv.weight_mut().at_mut(0, 0, 1, 1) += delta;
            probe.forward(&x, false).unwrap().data().iter().sum()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
            "numeric {numeric}, analytic {analytic}"
        );
    }

    #[test]
    fn blocked_gradients_are_block_local() {
        // With hierarchical blocking, a gradient confined to one output
        // block must produce an input gradient confined to the same block.
        let mut rng = seeded_rng(17);
        let mut layer = ConvLayer::new(
            1,
            1,
            3,
            1,
            Blocking::Pattern(BlockingPattern::hierarchical(2), PadMode::Zero),
            &mut rng,
        )
        .unwrap();
        let x = uniform_tensor([1, 1, 8, 8], -1.0, 1.0, &mut rng);
        layer.forward(&x, true).unwrap();
        let mut d_out = Tensor::zeros([1, 1, 8, 8]);
        *d_out.at_mut(0, 0, 1, 1) = 1.0; // inside block (0,0)
        let d_in = layer.backward(&d_out).unwrap();
        for h in 0..8 {
            for w in 0..8 {
                if h >= 4 || w >= 4 {
                    assert_eq!(d_in.at(0, 0, h, w), 0.0, "leak at ({h},{w})");
                }
            }
        }
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = ReluLayer::new();
        let x = Tensor::from_fn(1, 1, 2, |_, _, w| if w == 0 { -1.0 } else { 1.0 });
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[-LEAKY_SLOPE, 1.0]);
        let d = relu.backward(&Tensor::filled([1, 1, 1, 2], 1.0)).unwrap();
        assert_eq!(d.data(), &[LEAKY_SLOPE, 1.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPoolLayer::new(2);
        let x = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32);
        pool.forward(&x, true).unwrap();
        let d = pool.backward(&Tensor::filled([1, 1, 1, 1], 5.0)).unwrap();
        assert_eq!(d.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn gap_backward_spreads_evenly() {
        let mut gap = GlobalAvgPoolLayer::new();
        let x = Tensor::filled([1, 1, 2, 2], 3.0);
        gap.forward(&x, true).unwrap();
        let d = gap.backward(&Tensor::filled([1, 1, 1, 1], 4.0)).unwrap();
        assert_eq!(d.data(), &[1.0; 4]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = seeded_rng(19);
        let mut lin = LinearLayer::new(4, 2, &mut rng).unwrap();
        let x = uniform_tensor([1, 4, 1, 1], -1.0, 1.0, &mut rng);
        lin.forward(&x, true).unwrap();
        let d = lin.backward(&Tensor::filled([1, 2, 1, 1], 1.0)).unwrap();
        // dx = W^T * 1 = column sums of W.
        for i in 0..4 {
            let expect: f32 = (0..2).map(|o| lin.lin.weight()[o * 4 + i]).sum();
            assert!((d.data()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // One conv + GAP trained to emit zero: loss must decrease.
        let mut rng = seeded_rng(23);
        let mut net = Sequential::new(vec![
            Box::new(ConvLayer::new(1, 1, 3, 1, Blocking::None, &mut rng).unwrap()),
            Box::new(GlobalAvgPoolLayer::new()),
        ]);
        let x = uniform_tensor([2, 1, 6, 6], 0.0, 1.0, &mut rng);
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            grad_clip: 10.0,
            ..SgdConfig::default()
        };
        let loss_of = |out: &Tensor| -> f32 {
            out.data().iter().map(|v| v * v).sum::<f32>() / out.data().len() as f32
        };
        let first = {
            let out = net.forward(&x, true).unwrap();
            let l = loss_of(&out);
            let d = out.map(|v| 2.0 * v / out.data().len() as f32);
            net.backward(&d).unwrap();
            net.step(cfg);
            l
        };
        let mut last = first;
        for _ in 0..20 {
            let out = net.forward(&x, true).unwrap();
            last = loss_of(&out);
            let d = out.map(|v| 2.0 * v / out.data().len() as f32);
            net.backward(&d).unwrap();
            net.step(cfg);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn adam_reduces_simple_loss() {
        let mut rng = seeded_rng(24);
        let mut net = Sequential::new(vec![
            Box::new(ConvLayer::new(1, 1, 3, 1, Blocking::None, &mut rng).unwrap()),
            Box::new(GlobalAvgPoolLayer::new()),
        ]);
        let x = uniform_tensor([2, 1, 6, 6], 0.0, 1.0, &mut rng);
        let cfg = SgdConfig { lr: 0.01, adam: true, weight_decay: 0.0, ..SgdConfig::default() };
        let loss_of = |out: &Tensor| -> f32 {
            out.data().iter().map(|v| v * v).sum::<f32>() / out.data().len() as f32
        };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let out = net.forward(&x, true).unwrap();
            last = loss_of(&out);
            first.get_or_insert(last);
            let d = out.map(|v| 2.0 * v / out.data().len() as f32);
            net.backward(&d).unwrap();
            net.step(cfg);
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} -> {last}");
    }

    #[test]
    fn adam_step_is_scale_invariant_at_start() {
        // Adam's first update is ~lr * sign(gradient) regardless of
        // gradient magnitude — the property that rescues tiny-gradient
        // starts.
        let mut rng = seeded_rng(25);
        let mut layer = ConvLayer::new(1, 1, 1, 1, Blocking::None, &mut rng).unwrap();
        let w0 = layer.conv.weight().at(0, 0, 0, 0);
        layer.d_weight.data_mut()[0] = 1e-6; // minuscule gradient
        let cfg = SgdConfig { lr: 0.01, adam: true, weight_decay: 0.0, ..SgdConfig::default() };
        layer.step(cfg);
        let delta = (layer.conv.weight().at(0, 0, 0, 0) - w0).abs();
        assert!((delta - 0.01).abs() < 1e-3, "first Adam step {delta}");
    }

    #[test]
    fn backward_without_forward_is_an_error() {
        let mut rng = seeded_rng(29);
        let mut layer = ConvLayer::new(1, 1, 3, 1, Blocking::None, &mut rng).unwrap();
        assert!(layer.backward(&Tensor::zeros([1, 1, 4, 4])).is_err());
    }

    #[test]
    fn fake_quant_changes_forward_but_not_gradients_path() {
        let mut rng = seeded_rng(31);
        let mut layer = ConvLayer::new(1, 2, 3, 1, Blocking::None, &mut rng).unwrap();
        let x = uniform_tensor([1, 1, 6, 6], -1.0, 1.0, &mut rng);
        let full = layer.forward(&x, false).unwrap();
        layer.fake_quant_bits = Some(4);
        let quant = layer.forward(&x, false).unwrap();
        assert!(full.max_abs_diff(&quant).unwrap() > 0.0);
        // Backward still works (straight-through).
        layer.forward(&x, true).unwrap();
        assert!(layer.backward(&Tensor::filled([1, 2, 6, 6], 1.0)).is_ok());
    }
}
