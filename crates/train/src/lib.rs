//! From-scratch training framework for the block-convolution accuracy
//! experiments.
//!
//! The paper's algorithm-side evaluation (Tables I/II/IV/V, Figures 5–8)
//! trains ImageNet/COCO/Set5 models in PyTorch. Training those models is
//! out of scope for a CPU-only Rust reproduction, so this crate provides
//! the scaled-down substitutes described in DESIGN.md §2:
//!
//! * [`layers`] — conv (conventional **or blocked**), pooling, ReLU,
//!   linear and global-average-pool layers with hand-written backward
//!   passes; SGD with momentum and weight decay;
//! * [`models`] — small VGG/ResNet/MobileNet-style classifiers, a reduced
//!   VDSR and an SSD-style detector, each supporting post-hoc conversion
//!   to block convolution (the paper's fine-tuning path);
//! * [`datasets`] — deterministic synthetic classification,
//!   super-resolution and detection data;
//! * [`loss`], [`metrics`], [`trainer`] — losses, top-1/PSNR/AP metrics
//!   and the training/evaluation loops.
//!
//! # Example: train a blocked classifier
//!
//! ```
//! use bconv_train::models::{SmallClassifier, NetStyle, hierarchical_rule};
//! use bconv_train::trainer::{train_classifier, eval_classifier, TrainConfig};
//! use bconv_tensor::init::seeded_rng;
//!
//! # fn main() -> Result<(), bconv_tensor::TensorError> {
//! let mut rng = seeded_rng(0);
//! let mut net = SmallClassifier::new(NetStyle::Vgg, 4, 4, &mut rng)?;
//! net.apply_blocking(&hierarchical_rule(2));
//! let cfg = TrainConfig { steps: 10, ..TrainConfig::default() };
//! train_classifier(&mut net, "doc", &cfg)?;
//! let accuracy = eval_classifier(&mut net, "doc", 32)?;
//! assert!(accuracy >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod datasets;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod trainer;

pub use layers::{Blocking, SgdConfig, TrainLayer};
pub use trainer::TrainConfig;
