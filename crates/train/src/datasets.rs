//! Synthetic datasets standing in for ImageNet, Set5 and COCO.
//!
//! See DESIGN.md §2 for the substitution rationale. Each task is designed
//! so that the paper's *relative* claims are exercised:
//!
//! * **classification** — the class is the relative offset between two
//!   blobs; recognising it needs a receptive field spanning both blobs, so
//!   blocking (which severs cross-block information flow) degrades accuracy
//!   gracefully, hierarchical blocking more than fixed blocking;
//! * **super-resolution** — procedural images are blurred (VDSR-style: the
//!   network input is the bicubic-upsampled LR image, i.e. same size but
//!   low-pass) with scale-dependent strength;
//! * **detection** — one textured object per image; the net regresses the
//!   box and classifies the texture.

use bconv_tensor::init::seeded_rng;
use bconv_tensor::{Tensor, TensorError};
use rand::rngs::StdRng;
use rand::Rng;

/// Image side used by the synthetic classification and detection tasks.
pub const IMAGE_SIZE: usize = 32;

/// Number of classes in the classification task (relative blob offsets).
pub const NUM_CLASSES: usize = 4;

/// A labelled classification batch.
#[derive(Debug, Clone)]
pub struct ClassBatch {
    /// Images `[n, 1, 32, 32]`.
    pub images: Tensor,
    /// Class labels.
    pub labels: Vec<usize>,
}

fn put_blob(img: &mut Tensor, n: usize, ch: usize, cy: isize, cx: isize, amp: f32) {
    let [_, _, h, w] = img.shape().dims();
    for dy in -2isize..=2 {
        for dx in -2isize..=2 {
            let y = cy + dy;
            let x = cx + dx;
            if y >= 0 && (y as usize) < h && x >= 0 && (x as usize) < w {
                let g = (-((dy * dy + dx * dx) as f32) / 2.0).exp();
                *img.at_mut(n, ch, y as usize, x as usize) += amp * g;
            }
        }
    }
}

/// Generates a classification batch: each image holds an anchor blob and a
/// partner blob displaced by a class-specific offset (right / down /
/// diagonal / far-right); Gaussian pixel noise is added.
pub fn classification_batch(n: usize, rng: &mut StdRng) -> ClassBatch {
    // Class-defining offsets (dy, dx): four distinct directions requiring a
    // ~10-pixel receptive field to resolve.
    const OFFSETS: [(isize, isize); NUM_CLASSES] = [(0, 10), (10, 0), (7, 7), (-7, 7)];
    let mut images = Tensor::zeros([n, 1, IMAGE_SIZE, IMAGE_SIZE]);
    let mut labels = Vec::with_capacity(n);
    for ni in 0..n {
        let class = rng.gen_range(0..NUM_CLASSES);
        let (dy, dx) = OFFSETS[class];
        let margin = 3isize;
        // Two blob pairs per image: denser gradient signal, which keeps
        // plain (non-residual) networks off the uniform-prediction plateau.
        for _ in 0..2 {
            let cy = rng.gen_range(margin + (-dy).max(0)..IMAGE_SIZE as isize - margin - dy.max(0));
            let cx = rng.gen_range(margin + (-dx).max(0)..IMAGE_SIZE as isize - margin - dx.max(0));
            put_blob(&mut images, ni, 0, cy, cx, 1.5);
            put_blob(&mut images, ni, 0, cy + dy, cx + dx, 1.5);
        }
        // Pixel noise.
        for h in 0..IMAGE_SIZE {
            for w in 0..IMAGE_SIZE {
                *images.at_mut(ni, 0, h, w) += (rng.gen::<f32>() - 0.5) * 0.1;
            }
        }
        labels.push(class);
    }
    ClassBatch { images, labels }
}

/// A super-resolution batch: `input` is the degraded (blurred) image, the
/// network learns the residual to `target`.
#[derive(Debug, Clone)]
pub struct SrBatch {
    /// Degraded inputs `[n, 1, size, size]`.
    pub input: Tensor,
    /// Ground-truth high-resolution images, same shape.
    pub target: Tensor,
}

/// Procedural "natural image" patch: a sum of random oriented sinusoids
/// plus a random step edge, normalised to roughly `[0, 1]`.
fn procedural_patch(size: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut img = vec![0.0f32; size * size];
    for _ in 0..4 {
        let fx = rng.gen_range(0.3..2.0) * std::f32::consts::TAU / size as f32;
        let fy = rng.gen_range(0.3..2.0) * std::f32::consts::TAU / size as f32;
        let phase = rng.gen_range(0.0..std::f32::consts::TAU);
        let amp = rng.gen_range(0.1..0.4);
        for y in 0..size {
            for x in 0..size {
                img[y * size + x] += amp * (fx * x as f32 + fy * y as f32 + phase).sin();
            }
        }
    }
    // Random straight edges for high-frequency content (what
    // super-resolution must restore).
    for _ in 0..3 {
        let a = rng.gen_range(-1.0f32..1.0);
        let b = rng.gen_range(-1.0f32..1.0);
        let c = rng.gen_range(0.0..size as f32);
        let contrast = rng.gen_range(0.2..0.5);
        for y in 0..size {
            for x in 0..size {
                if a * x as f32 + b * y as f32 - c * (a + b) > 0.0 {
                    img[y * size + x] += contrast;
                }
            }
        }
    }
    // Normalise to [0,1]-ish.
    let (mut lo, mut hi) = (f32::MAX, f32::MIN);
    for &v in &img {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-6);
    for v in &mut img {
        *v = (*v - lo) / span;
    }
    img
}

/// Separable Gaussian blur with std `sigma` (replicate boundary).
fn gaussian_blur(img: &[f32], size: usize, sigma: f32) -> Vec<f32> {
    let radius = (3.0 * sigma).ceil() as isize;
    let kernel: Vec<f32> =
        (-radius..=radius).map(|i| (-(i * i) as f32 / (2.0 * sigma * sigma)).exp()).collect();
    let norm: f32 = kernel.iter().sum();
    let clamp = |v: isize| v.clamp(0, size as isize - 1) as usize;
    let mut tmp = vec![0.0f32; size * size];
    for y in 0..size {
        for x in 0..size {
            let mut acc = 0.0;
            for (ki, kv) in kernel.iter().enumerate() {
                let sx = clamp(x as isize + ki as isize - radius);
                acc += kv * img[y * size + sx];
            }
            tmp[y * size + x] = acc / norm;
        }
    }
    let mut out = vec![0.0f32; size * size];
    for y in 0..size {
        for x in 0..size {
            let mut acc = 0.0;
            for (ki, kv) in kernel.iter().enumerate() {
                let sy = clamp(y as isize + ki as isize - radius);
                acc += kv * tmp[sy * size + x];
            }
            out[y * size + x] = acc / norm;
        }
    }
    out
}

/// Generates a super-resolution batch at `size × size` for an upscaling
/// factor `scale` (2, 3 or 4). As in VDSR, the network input is the
/// upsampled low-resolution image (same spatial size as the target): the
/// HR patch is anti-alias blurred, decimated by `scale` and bilinearly
/// upsampled back.
///
/// The paper trains on 41×41 Set5 patches; we default to 48×48 in the
/// harnesses so every scale factor divides the patch exactly (DESIGN.md §2).
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `scale` is not 2, 3 or 4,
/// or does not divide `size`.
pub fn super_resolution_batch(
    n: usize,
    size: usize,
    scale: usize,
    rng: &mut StdRng,
) -> Result<SrBatch, TensorError> {
    if !(2..=4).contains(&scale) {
        return Err(TensorError::invalid("scale must be 2, 3 or 4"));
    }
    if !size.is_multiple_of(scale) {
        return Err(TensorError::invalid(format!("scale {scale} must divide patch size {size}")));
    }
    let sigma = 0.4 * scale as f32;
    let mut input = Tensor::zeros([n, 1, size, size]);
    let mut target = Tensor::zeros([n, 1, size, size]);
    for ni in 0..n {
        let hr = procedural_patch(size, rng);
        let blurred = gaussian_blur(&hr, size, sigma);
        for y in 0..size {
            for x in 0..size {
                *target.at_mut(ni, 0, y, x) = hr[y * size + x];
                *input.at_mut(ni, 0, y, x) = blurred[y * size + x];
            }
        }
    }
    // Decimate and bilinearly restore the input (per-batch, whole tensor).
    let small = decimate(&input, scale)?;
    let restored = bconv_tensor::upsample::upsample_bilinear(&small, scale)?;
    Ok(SrBatch { input: restored, target })
}

/// Box-filter decimation helper (wraps the tensor crate's downsampler).
fn decimate(t: &Tensor, scale: usize) -> Result<Tensor, TensorError> {
    bconv_tensor::upsample::downsample_box(t, scale)
}

/// Axis-aligned bounding box in pixels, `(y0, x0, y1, x1)` exclusive end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Top edge.
    pub y0: f32,
    /// Left edge.
    pub x0: f32,
    /// Bottom edge (exclusive).
    pub y1: f32,
    /// Right edge (exclusive).
    pub x1: f32,
}

impl BBox {
    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let iy0 = self.y0.max(other.y0);
        let ix0 = self.x0.max(other.x0);
        let iy1 = self.y1.min(other.y1);
        let ix1 = self.x1.min(other.x1);
        let inter = (iy1 - iy0).max(0.0) * (ix1 - ix0).max(0.0);
        let a = (self.y1 - self.y0).max(0.0) * (self.x1 - self.x0).max(0.0);
        let b = (other.y1 - other.y0).max(0.0) * (other.x1 - other.x0).max(0.0);
        if a + b - inter <= 0.0 {
            0.0
        } else {
            inter / (a + b - inter)
        }
    }
}

/// Number of object texture classes in the detection task.
pub const NUM_DET_CLASSES: usize = 2;

/// A detection batch: one object per image.
#[derive(Debug, Clone)]
pub struct DetBatch {
    /// Images `[n, 1, 32, 32]`.
    pub images: Tensor,
    /// Ground-truth boxes, one per image.
    pub boxes: Vec<BBox>,
    /// Texture class per image.
    pub classes: Vec<usize>,
}

/// Generates a detection batch: each image contains one textured rectangle
/// (class 0 = horizontal stripes, class 1 = checkerboard) on a noisy
/// background.
pub fn detection_batch(n: usize, rng: &mut StdRng) -> DetBatch {
    let s = IMAGE_SIZE;
    let mut images = Tensor::zeros([n, 1, s, s]);
    let mut boxes = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    for ni in 0..n {
        for h in 0..s {
            for w in 0..s {
                *images.at_mut(ni, 0, h, w) = (rng.gen::<f32>() - 0.5) * 0.15;
            }
        }
        let bh = rng.gen_range(8..16usize);
        let bw = rng.gen_range(8..16usize);
        let y0 = rng.gen_range(0..s - bh);
        let x0 = rng.gen_range(0..s - bw);
        let class = rng.gen_range(0..NUM_DET_CLASSES);
        for y in y0..y0 + bh {
            for x in x0..x0 + bw {
                let v = match class {
                    0 => {
                        if y % 2 == 0 {
                            1.0
                        } else {
                            0.2
                        }
                    }
                    _ => {
                        if (y + x) % 2 == 0 {
                            1.0
                        } else {
                            0.2
                        }
                    }
                };
                *images.at_mut(ni, 0, y, x) += v;
            }
        }
        boxes.push(BBox {
            y0: y0 as f32,
            x0: x0 as f32,
            y1: (y0 + bh) as f32,
            x1: (x0 + bw) as f32,
        });
        classes.push(class);
    }
    DetBatch { images, boxes, classes }
}

/// Deterministic RNG for a named experiment and split.
pub fn experiment_rng(experiment: &str, split: u64) -> StdRng {
    // Cheap stable hash of the experiment name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    seeded_rng(h ^ (split.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_batch_shapes_and_labels() {
        let mut rng = experiment_rng("test", 0);
        let b = classification_batch(8, &mut rng);
        assert_eq!(b.images.shape().dims(), [8, 1, IMAGE_SIZE, IMAGE_SIZE]);
        assert_eq!(b.labels.len(), 8);
        assert!(b.labels.iter().all(|&l| l < NUM_CLASSES));
    }

    #[test]
    fn classification_is_deterministic_per_seed() {
        let a = classification_batch(4, &mut experiment_rng("x", 1));
        let b = classification_batch(4, &mut experiment_rng("x", 1));
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.labels, b.labels);
        let c = classification_batch(4, &mut experiment_rng("x", 2));
        assert_ne!(a.images.data(), c.images.data());
    }

    #[test]
    fn sr_input_is_smoother_than_target() {
        let mut rng = experiment_rng("sr", 0);
        let b = super_resolution_batch(2, 48, 3, &mut rng).unwrap();
        // Total variation of the blurred input must be lower.
        let tv = |t: &Tensor, n: usize| -> f32 {
            let mut acc = 0.0;
            for y in 0..39 {
                for x in 0..39 {
                    acc += (t.at(n, 0, y, x) - t.at(n, 0, y, x + 1)).abs()
                        + (t.at(n, 0, y, x) - t.at(n, 0, y + 1, x)).abs();
                }
            }
            acc
        };
        assert!(tv(&b.input, 0) < tv(&b.target, 0));
    }

    #[test]
    fn sr_degradation_grows_with_scale() {
        let mut r2 = experiment_rng("srs", 7);
        let mut r4 = experiment_rng("srs", 7);
        let b2 = super_resolution_batch(2, 48, 2, &mut r2).unwrap();
        let b4 = super_resolution_batch(2, 48, 4, &mut r4).unwrap();
        let e2 = b2.input.max_abs_diff(&b2.target).unwrap();
        let e4 = b4.input.max_abs_diff(&b4.target).unwrap();
        assert!(e4 > e2, "x4 ({e4}) should degrade more than x2 ({e2})");
    }

    #[test]
    fn sr_rejects_bad_scale() {
        let mut rng = experiment_rng("sr", 0);
        assert!(super_resolution_batch(1, 48, 5, &mut rng).is_err());
    }

    #[test]
    fn detection_boxes_are_inside_the_image() {
        let mut rng = experiment_rng("det", 0);
        let b = detection_batch(16, &mut rng);
        for bb in &b.boxes {
            assert!(bb.y0 >= 0.0 && bb.y1 <= IMAGE_SIZE as f32 && bb.y0 < bb.y1);
            assert!(bb.x0 >= 0.0 && bb.x1 <= IMAGE_SIZE as f32 && bb.x0 < bb.x1);
        }
    }

    #[test]
    fn iou_identities() {
        let a = BBox { y0: 0.0, x0: 0.0, y1: 10.0, x1: 10.0 };
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = BBox { y0: 20.0, x0: 20.0, y1: 30.0, x1: 30.0 };
        assert_eq!(a.iou(&b), 0.0);
        let c = BBox { y0: 0.0, x0: 5.0, y1: 10.0, x1: 15.0 };
        assert!((a.iou(&c) - 50.0 / 150.0).abs() < 1e-6);
    }
}
