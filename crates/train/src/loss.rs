//! Loss functions: softmax cross-entropy (classification), MSE
//! (super-resolution) and smooth-L1 (detection box regression).

use bconv_tensor::{Tensor, TensorError};

/// Softmax cross-entropy over logits `[n, classes, 1, 1]`.
///
/// Returns `(mean_loss, d_logits)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `labels.len() != n` or a label
/// is out of range.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    let [n, classes, h, w] = logits.shape().dims();
    if h != 1 || w != 1 {
        return Err(TensorError::shape_mismatch(
            "softmax_cross_entropy logits",
            "[n,c,1,1]".to_string(),
            logits.shape().to_string(),
        ));
    }
    if labels.len() != n {
        return Err(TensorError::shape_mismatch(
            "softmax_cross_entropy labels",
            format!("{n}"),
            format!("{}", labels.len()),
        ));
    }
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(logits.shape());
    for (ni, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(TensorError::invalid(format!(
                "label {label} out of range for {classes} classes"
            )));
        }
        let row: Vec<f32> = (0..classes).map(|c| logits.at(ni, c, 0, 0)).collect();
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        loss += -((exps[label] / sum).ln() as f64);
        for (c, &e) in exps.iter().enumerate() {
            let p = e / sum;
            *grad.at_mut(ni, c, 0, 0) = (p - if c == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok(((loss / n as f64) as f32, grad))
}

/// Mean squared error between `pred` and `target`.
///
/// Returns `(mean_loss, d_pred)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), TensorError> {
    if pred.shape() != target.shape() {
        return Err(TensorError::shape_mismatch(
            "mse",
            target.shape().to_string(),
            pred.shape().to_string(),
        ));
    }
    let count = pred.data().len() as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f64;
    for ((g, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        let d = p - t;
        loss += (d * d) as f64;
        *g = 2.0 * d / count;
    }
    Ok(((loss / count as f64) as f32, grad))
}

/// Smooth-L1 (Huber, delta = 1) loss used for detection box regression.
///
/// Returns `(mean_loss, d_pred)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn smooth_l1(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), TensorError> {
    if pred.shape() != target.shape() {
        return Err(TensorError::shape_mismatch(
            "smooth_l1",
            target.shape().to_string(),
            pred.shape().to_string(),
        ));
    }
    let count = pred.data().len() as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f64;
    for ((g, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        let d = p - t;
        if d.abs() < 1.0 {
            loss += (0.5 * d * d) as f64;
            *g = d / count;
        } else {
            loss += (d.abs() - 0.5) as f64;
            *g = d.signum() / count;
        }
    }
    Ok(((loss / count as f64) as f32, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Tensor::from_vec([1, 3, 1, 1], vec![10.0, 0.0, 0.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
        // Gradient pushes the correct logit up (negative gradient).
        assert!(grad.at(0, 0, 0, 0) < 0.0);
        assert!(grad.at(0, 1, 0, 0) > 0.0);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_ln_classes() {
        let logits = Tensor::zeros([1, 4, 1, 1]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_sample() {
        let logits = Tensor::from_vec([2, 3, 1, 1], vec![1.0, -2.0, 0.3, 0.0, 0.5, 2.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]).unwrap();
        for n in 0..2 {
            let sum: f32 = (0..3).map(|c| grad.at(n, c, 0, 0)).sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        let logits = Tensor::zeros([1, 3, 1, 1]);
        assert!(softmax_cross_entropy(&logits, &[3]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros([1, 3, 2, 1]), &[0]).is_err());
    }

    #[test]
    fn mse_matches_hand_computation() {
        let pred = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]).unwrap();
        let target = Tensor::from_vec([1, 1, 1, 2], vec![0.0, 0.0]).unwrap();
        let (loss, grad) = mse(&pred, &target).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn smooth_l1_is_quadratic_inside_linear_outside() {
        let pred = Tensor::from_vec([1, 1, 1, 2], vec![0.5, 3.0]).unwrap();
        let target = Tensor::zeros([1, 1, 1, 2]);
        let (loss, grad) = smooth_l1(&pred, &target).unwrap();
        assert!((loss - (0.125 + 2.5) / 2.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[0.25, 0.5]);
    }
}
