//! Small trainable counterparts of the paper's networks (see DESIGN.md §2
//! for the scaling rationale): a VGG-style plain classifier, a ResNet-style
//! residual classifier, a MobileNet-style depthwise classifier, a reduced
//! VDSR, and an SSD-style single-object detector.
//!
//! Every network exposes [`apply_blocking`](SmallClassifier::apply_blocking)
//! so the experiment harnesses can convert a trained baseline into its
//! block-convolution variant (the paper's fine-tuning path) or train the
//! blocked network from scratch.

use bconv_core::blocking::BlockingPattern;
use bconv_core::plan::LayerBlocking;
use bconv_tensor::pad::PadMode;
use bconv_tensor::{Tensor, TensorError};
use rand::rngs::StdRng;

use crate::layers::{
    Blocking, ConvLayer, LinearLayer, MaxPoolLayer, ReluLayer, SgdConfig, TrainLayer,
};

/// Decides the blocking of a conv layer given its compute resolution.
pub type BlockingRule = dyn Fn(usize) -> Option<(BlockingPattern, PadMode)>;

/// The paper's Table I rule: fixed blocking of size `t` with zero block
/// padding on every layer whose resolution is at least `t`.
pub fn fixed_rule(t: usize) -> impl Fn(usize) -> Option<(BlockingPattern, PadMode)> {
    move |res| (res >= t).then_some((BlockingPattern::fixed(t), PadMode::Zero))
}

/// Hierarchical blocking of `g × g` blocks on every splittable layer.
pub fn hierarchical_rule(g: usize) -> impl Fn(usize) -> Option<(BlockingPattern, PadMode)> {
    move |res| (res >= g).then_some((BlockingPattern::hierarchical(g), PadMode::Zero))
}

// ---------------------------------------------------------------------------
// Residual block
// ---------------------------------------------------------------------------

/// A basic residual block: `y = relu(conv2(relu(conv1(x))) + x)`.
pub struct ResidualBlock {
    conv1: ConvLayer,
    relu1: ReluLayer,
    conv2: ConvLayer,
    relu_out: ReluLayer,
}

impl ResidualBlock {
    /// He-initialised residual block with `c` channels.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors.
    pub fn new(c: usize, rng: &mut StdRng) -> Result<Self, TensorError> {
        Ok(Self {
            conv1: ConvLayer::new(c, c, 3, 1, Blocking::None, rng)?,
            relu1: ReluLayer::new(),
            conv2: ConvLayer::new(c, c, 3, 1, Blocking::None, rng)?,
            relu_out: ReluLayer::new(),
        })
    }

    /// Sets blocking on both convolutions (the element-wise sum is
    /// naturally splittable, §II-E).
    pub fn set_blocking(&mut self, blocking: Blocking) {
        self.conv1.set_blocking(blocking);
        self.conv2.set_blocking(blocking);
    }

    /// Enables fake-quantized weights on both convolutions.
    pub fn set_fake_quant(&mut self, bits: Option<u8>) {
        self.conv1.fake_quant_bits = bits;
        self.conv2.fake_quant_bits = bits;
    }
}

impl TrainLayer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let t = self.conv1.forward(x, train)?;
        let t = self.relu1.forward(&t, train)?;
        let t = self.conv2.forward(&t, train)?;
        let sum = bconv_tensor::elementwise::add(&t, x)?;
        self.relu_out.forward(&sum, train)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let d_sum = self.relu_out.backward(d_out)?;
        let d_main = self.relu1.backward(&self.conv2.backward(&d_sum)?)?;
        let d_main = self.conv1.backward(&d_main)?;
        bconv_tensor::elementwise::add(&d_main, &d_sum)
    }

    fn step(&mut self, cfg: SgdConfig) {
        self.conv1.step(cfg);
        self.conv2.step(cfg);
    }
}

// ---------------------------------------------------------------------------
// Small classifier (VGG / ResNet / MobileNet styles)
// ---------------------------------------------------------------------------

/// One stage of a [`SmallClassifier`].
#[allow(clippy::large_enum_variant)] // conv stages dominate by design
pub enum Stage {
    /// Convolution (+ReLU), annotated with its compute resolution.
    Conv {
        /// The convolution.
        layer: ConvLayer,
        /// ReLU after the conv.
        relu: ReluLayer,
        /// Spatial resolution the conv computes at.
        res: usize,
    },
    /// Residual block, annotated with its compute resolution.
    Residual {
        /// The block.
        block: ResidualBlock,
        /// Spatial resolution.
        res: usize,
    },
    /// 2×2 max pooling.
    Pool(MaxPoolLayer),
}

/// Style of a small classifier — scaled-down versions of the paper's
/// Table I networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetStyle {
    /// Plain stacked convolutions (VGG-16 analogue).
    Vgg,
    /// Residual blocks (ResNet analogue).
    ResNet,
    /// Depthwise-separable convolutions (MobileNet-V1 analogue).
    MobileNet,
}

impl NetStyle {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            NetStyle::Vgg => "VGG-16 (small)",
            NetStyle::ResNet => "ResNet-18 (small)",
            NetStyle::MobileNet => "MobileNet-V1 (small)",
        }
    }
}

/// A small image classifier over the synthetic blob-offset task.
///
/// Ends with flatten + fully-connected rather than global average pooling:
/// the blob-offset task carries its class information in spatially sparse
/// activations, which GAP dilutes so heavily that plain (non-residual)
/// nets cannot escape the uniform-prediction plateau.
pub struct SmallClassifier {
    stages: Vec<Stage>,
    fc: LinearLayer,
}

impl SmallClassifier {
    /// Builds a classifier of the given style with base width `c`,
    /// consuming `classes`-way 1-channel 32×32 inputs.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors.
    pub fn new(
        style: NetStyle,
        c: usize,
        classes: usize,
        rng: &mut StdRng,
    ) -> Result<Self, TensorError> {
        let mut stages = Vec::new();
        match style {
            NetStyle::Vgg => {
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(1, c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 32,
                });
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(c, c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 32,
                });
                stages.push(Stage::Pool(MaxPoolLayer::new(2)));
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(c, 2 * c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 16,
                });
                stages.push(Stage::Pool(MaxPoolLayer::new(2)));
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(2 * c, 2 * c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 8,
                });
            }
            NetStyle::ResNet => {
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(1, c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 32,
                });
                stages.push(Stage::Residual { block: ResidualBlock::new(c, rng)?, res: 32 });
                stages.push(Stage::Pool(MaxPoolLayer::new(2)));
                stages.push(Stage::Residual { block: ResidualBlock::new(c, rng)?, res: 16 });
                stages.push(Stage::Pool(MaxPoolLayer::new(2)));
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(c, 2 * c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 8,
                });
            }
            NetStyle::MobileNet => {
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(1, c, 3, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 32,
                });
                // Depthwise + pointwise pairs.
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(c, c, 3, c, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 32,
                });
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(c, 2 * c, 1, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 32,
                });
                stages.push(Stage::Pool(MaxPoolLayer::new(2)));
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(2 * c, 2 * c, 3, 2 * c, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 16,
                });
                stages.push(Stage::Conv {
                    layer: ConvLayer::new(2 * c, 2 * c, 1, 1, Blocking::None, rng)?,
                    relu: ReluLayer::new(),
                    res: 16,
                });
                stages.push(Stage::Pool(MaxPoolLayer::new(2)));
            }
        }
        // Every style ends at an 8x8 grid of 2c channels.
        let feat = 2 * c * 8 * 8;
        Ok(Self { stages, fc: LinearLayer::new(feat, classes, rng)? })
    }

    /// Applies a blocking rule to every conv stage (by resolution). The
    /// rule receives the stage's compute resolution and returns `None` to
    /// leave it conventional.
    pub fn apply_blocking(&mut self, rule: &BlockingRule) {
        for stage in &mut self.stages {
            match stage {
                Stage::Conv { layer, res, .. } => {
                    let blocking = match rule(*res) {
                        Some((p, m)) => Blocking::Pattern(p, m),
                        None => Blocking::None,
                    };
                    layer.set_blocking(blocking);
                }
                Stage::Residual { block, res } => {
                    let blocking = match rule(*res) {
                        Some((p, m)) => Blocking::Pattern(p, m),
                        None => Blocking::None,
                    };
                    block.set_blocking(blocking);
                }
                Stage::Pool(_) => {}
            }
        }
    }

    /// Fraction of conv layers currently blocked under `rule` (Table I's
    /// blocking-ratio column for the small nets).
    pub fn blocking_ratio(&self, rule: &BlockingRule) -> f64 {
        let mut total = 0usize;
        let mut blocked = 0usize;
        for stage in &self.stages {
            let res = match stage {
                Stage::Conv { res, .. } => *res,
                Stage::Residual { res, .. } => *res,
                Stage::Pool(_) => continue,
            };
            let n = if matches!(stage, Stage::Residual { .. }) { 2 } else { 1 };
            total += n;
            if rule(res).is_some() {
                blocked += n;
            }
        }
        if total == 0 {
            0.0
        } else {
            blocked as f64 / total as f64
        }
    }

    /// Enables (or disables) training-aware fake quantization on every
    /// convolution (Figure 7's QAT path).
    pub fn set_fake_quant(&mut self, bits: Option<u8>) {
        for stage in &mut self.stages {
            match stage {
                Stage::Conv { layer, .. } => layer.fake_quant_bits = bits,
                Stage::Residual { block, .. } => block.set_fake_quant(bits),
                Stage::Pool(_) => {}
            }
        }
    }
}

impl TrainLayer for SmallClassifier {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let mut cur = x.clone();
        for stage in &mut self.stages {
            cur = match stage {
                Stage::Conv { layer, relu, .. } => {
                    let t = layer.forward(&cur, train)?;
                    relu.forward(&t, train)?
                }
                Stage::Residual { block, .. } => block.forward(&cur, train)?,
                Stage::Pool(pool) => pool.forward(&cur, train)?,
            };
        }
        self.fc.forward(&cur, train)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let mut d = self.fc.backward(d_out)?;
        for stage in self.stages.iter_mut().rev() {
            d = match stage {
                Stage::Conv { layer, relu, .. } => layer.backward(&relu.backward(&d)?)?,
                Stage::Residual { block, .. } => block.backward(&d)?,
                Stage::Pool(pool) => pool.backward(&d)?,
            };
        }
        Ok(d)
    }

    fn step(&mut self, cfg: SgdConfig) {
        for stage in &mut self.stages {
            match stage {
                Stage::Conv { layer, .. } => layer.step(cfg),
                Stage::Residual { block, .. } => block.step(cfg),
                Stage::Pool(_) => {}
            }
        }
        self.fc.step(cfg);
    }
}

// ---------------------------------------------------------------------------
// Small VDSR
// ---------------------------------------------------------------------------

/// Reduced-depth VDSR: `depth` 3×3 convolutions of `width` channels with a
/// global residual connection (`y = x + net(x)`).
pub struct SmallVdsr {
    convs: Vec<ConvLayer>,
    relus: Vec<ReluLayer>,
}

impl SmallVdsr {
    /// He-initialised small VDSR.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2`.
    pub fn new(depth: usize, width: usize, rng: &mut StdRng) -> Result<Self, TensorError> {
        assert!(depth >= 2, "VDSR needs at least 2 layers");
        let mut convs = Vec::with_capacity(depth);
        convs.push(ConvLayer::new(1, width, 3, 1, Blocking::None, rng)?);
        for _ in 1..depth - 1 {
            convs.push(ConvLayer::new(width, width, 3, 1, Blocking::None, rng)?);
        }
        let mut last = ConvLayer::new(width, 1, 3, 1, Blocking::None, rng)?;
        // Zero-init the residual head so training starts exactly at the
        // identity mapping (PSNR can only improve from the input's).
        for v in last.conv_weight_mut().data_mut() {
            *v = 0.0;
        }
        convs.push(last);
        let relus = (0..depth - 1).map(|_| ReluLayer::new()).collect();
        Ok(Self { convs, relus })
    }

    /// Number of conv layers.
    pub fn depth(&self) -> usize {
        self.convs.len()
    }

    /// Applies a per-layer blocking plan (e.g. from
    /// [`bconv_core::plan::NetworkPlan::by_blocking_depth`], Table IV).
    ///
    /// # Panics
    ///
    /// Panics if `plan.len() != self.depth()`.
    pub fn apply_plan(&mut self, plan: &[LayerBlocking], pad_mode: PadMode) {
        assert_eq!(plan.len(), self.depth(), "plan length mismatch");
        for (conv, decision) in self.convs.iter_mut().zip(plan) {
            conv.set_blocking(match decision {
                LayerBlocking::Normal => Blocking::None,
                LayerBlocking::Blocked(p) => Blocking::Pattern(*p, pad_mode),
            });
        }
    }

    /// Applies explicit per-layer blocking (used for the irregular fixed
    /// split of Table IV's third column).
    ///
    /// # Panics
    ///
    /// Panics if `blockings.len() != self.depth()`.
    pub fn apply_blocking(&mut self, blockings: &[Blocking]) {
        assert_eq!(blockings.len(), self.depth(), "blocking length mismatch");
        for (conv, blocking) in self.convs.iter_mut().zip(blockings) {
            conv.set_blocking(*blocking);
        }
    }
}

impl TrainLayer for SmallVdsr {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let mut cur = x.clone();
        let depth = self.convs.len();
        for i in 0..depth {
            cur = self.convs[i].forward(&cur, train)?;
            if i < depth - 1 {
                cur = self.relus[i].forward(&cur, train)?;
            }
        }
        bconv_tensor::elementwise::add(&cur, x)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let depth = self.convs.len();
        let mut d = d_out.clone();
        for i in (0..depth).rev() {
            if i < depth - 1 {
                d = self.relus[i].backward(&d)?;
            }
            d = self.convs[i].backward(&d)?;
        }
        bconv_tensor::elementwise::add(&d, d_out)
    }

    fn step(&mut self, cfg: SgdConfig) {
        for conv in &mut self.convs {
            conv.step(cfg);
        }
    }
}

// ---------------------------------------------------------------------------
// Small detector
// ---------------------------------------------------------------------------

/// Per-cell output channels of the detector head: 1 objectness logit,
/// `NUM_DET_CLASSES` class logits, 4 box parameters.
pub const DET_HEAD_CHANNELS: usize = 1 + crate::datasets::NUM_DET_CLASSES + 4;

/// SSD-style single-object detector: a conv backbone downsampling 32×32 to
/// an 8×8 grid, and a 3×3 conv head predicting per-cell objectness, class
/// and box. The backbone and head can be blocked independently — Figure 8's
/// backbone-only vs backbone+heads comparison.
pub struct SmallDetector {
    backbone: Vec<Stage>,
    head: ConvLayer,
}

impl SmallDetector {
    /// He-initialised detector with base width `c`.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors.
    pub fn new(c: usize, rng: &mut StdRng) -> Result<Self, TensorError> {
        let backbone = vec![
            Stage::Conv {
                layer: ConvLayer::new(1, c, 3, 1, Blocking::None, rng)?,
                relu: ReluLayer::new(),
                res: 32,
            },
            Stage::Conv {
                layer: ConvLayer::new(c, c, 3, 1, Blocking::None, rng)?,
                relu: ReluLayer::new(),
                res: 32,
            },
            Stage::Pool(MaxPoolLayer::new(2)),
            Stage::Conv {
                layer: ConvLayer::new(c, 2 * c, 3, 1, Blocking::None, rng)?,
                relu: ReluLayer::new(),
                res: 16,
            },
            Stage::Pool(MaxPoolLayer::new(2)),
            Stage::Conv {
                layer: ConvLayer::new(2 * c, 2 * c, 3, 1, Blocking::None, rng)?,
                relu: ReluLayer::new(),
                res: 8,
            },
        ];
        Ok(Self {
            backbone,
            head: ConvLayer::new(2 * c, DET_HEAD_CHANNELS, 3, 1, Blocking::None, rng)?,
        })
    }

    /// Blocks backbone conv layers by resolution rule.
    pub fn apply_backbone_blocking(&mut self, rule: &BlockingRule) {
        for stage in &mut self.backbone {
            if let Stage::Conv { layer, res, .. } = stage {
                layer.set_blocking(match rule(*res) {
                    Some((p, m)) => Blocking::Pattern(p, m),
                    None => Blocking::None,
                });
            }
        }
    }

    /// Blocks the detection head (computes at the 8×8 grid).
    pub fn apply_head_blocking(&mut self, rule: &BlockingRule) {
        self.head.set_blocking(match rule(8) {
            Some((p, m)) => Blocking::Pattern(p, m),
            None => Blocking::None,
        });
    }
}

impl TrainLayer for SmallDetector {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let mut cur = x.clone();
        for stage in &mut self.backbone {
            cur = match stage {
                Stage::Conv { layer, relu, .. } => {
                    let t = layer.forward(&cur, train)?;
                    relu.forward(&t, train)?
                }
                Stage::Residual { block, .. } => block.forward(&cur, train)?,
                Stage::Pool(pool) => pool.forward(&cur, train)?,
            };
        }
        self.head.forward(&cur, train)
    }

    fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let mut d = self.head.backward(d_out)?;
        for stage in self.backbone.iter_mut().rev() {
            d = match stage {
                Stage::Conv { layer, relu, .. } => layer.backward(&relu.backward(&d)?)?,
                Stage::Residual { block, .. } => block.backward(&d)?,
                Stage::Pool(pool) => pool.backward(&d)?,
            };
        }
        Ok(d)
    }

    fn step(&mut self, cfg: SgdConfig) {
        for stage in &mut self.backbone {
            match stage {
                Stage::Conv { layer, .. } => layer.step(cfg),
                Stage::Residual { block, .. } => block.step(cfg),
                Stage::Pool(_) => {}
            }
        }
        self.head.step(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::init::{seeded_rng, uniform_tensor};

    #[test]
    fn all_styles_forward_and_backward() {
        for style in [NetStyle::Vgg, NetStyle::ResNet, NetStyle::MobileNet] {
            let mut rng = seeded_rng(1);
            let mut net = SmallClassifier::new(style, 4, 4, &mut rng).unwrap();
            let x = uniform_tensor([2, 1, 32, 32], -1.0, 1.0, &mut rng);
            let out = net.forward(&x, true).unwrap();
            assert_eq!(out.shape().dims(), [2, 4, 1, 1], "{style:?}");
            let d = net.backward(&Tensor::filled(out.shape(), 1.0)).unwrap();
            assert_eq!(d.shape().dims(), [2, 1, 32, 32]);
            net.step(SgdConfig::default());
        }
    }

    #[test]
    fn blocking_changes_forward_output() {
        let mut rng = seeded_rng(2);
        let mut net = SmallClassifier::new(NetStyle::Vgg, 4, 4, &mut rng).unwrap();
        let x = uniform_tensor([1, 1, 32, 32], -1.0, 1.0, &mut rng);
        let base = net.forward(&x, false).unwrap();
        net.apply_blocking(&hierarchical_rule(4));
        let blocked = net.forward(&x, false).unwrap();
        assert!(base.max_abs_diff(&blocked).unwrap() > 0.0);
        // Reverting restores the original output.
        net.apply_blocking(&|_| None);
        let restored = net.forward(&x, false).unwrap();
        assert!(base.approx_eq(&restored, 1e-6).unwrap());
    }

    #[test]
    fn blocking_ratio_counts_conv_layers() {
        let mut rng = seeded_rng(3);
        let net = SmallClassifier::new(NetStyle::Vgg, 4, 4, &mut rng).unwrap();
        // VGG-small resolutions: 32, 32, 16, 8 -> F16 blocks 3 of 4.
        assert!((net.blocking_ratio(&fixed_rule(16)) - 0.75).abs() < 1e-9);
        assert_eq!(net.blocking_ratio(&fixed_rule(64)), 0.0);
        assert_eq!(net.blocking_ratio(&hierarchical_rule(2)), 1.0);
    }

    #[test]
    fn vdsr_residual_identity_at_init_bias_zero() {
        // With zero-initialised final conv bias the residual path dominates:
        // output stays close to input early in training.
        let mut rng = seeded_rng(4);
        let mut net = SmallVdsr::new(4, 8, &mut rng).unwrap();
        let x = uniform_tensor([1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape().dims(), x.shape().dims());
    }

    #[test]
    fn vdsr_apply_plan_matches_depth() {
        let mut rng = seeded_rng(5);
        let mut net = SmallVdsr::new(6, 8, &mut rng).unwrap();
        let plan = bconv_core::plan::NetworkPlan::by_blocking_depth(
            6,
            BlockingPattern::hierarchical(2),
            2,
        );
        net.apply_plan(plan.per_layer(), PadMode::Zero);
        let x = uniform_tensor([1, 1, 16, 16], 0.0, 1.0, &mut rng);
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    #[should_panic(expected = "plan length mismatch")]
    fn vdsr_plan_length_mismatch_panics() {
        let mut rng = seeded_rng(6);
        let mut net = SmallVdsr::new(4, 8, &mut rng).unwrap();
        let plan = bconv_core::plan::NetworkPlan::unblocked(3);
        net.apply_plan(plan.per_layer(), PadMode::Zero);
    }

    #[test]
    fn detector_output_grid_is_8x8() {
        let mut rng = seeded_rng(7);
        let mut det = SmallDetector::new(4, &mut rng).unwrap();
        let x = uniform_tensor([2, 1, 32, 32], -1.0, 1.0, &mut rng);
        let out = det.forward(&x, false).unwrap();
        assert_eq!(out.shape().dims(), [2, DET_HEAD_CHANNELS, 8, 8]);
    }

    #[test]
    fn detector_head_and_backbone_block_independently() {
        let mut rng = seeded_rng(8);
        let mut det = SmallDetector::new(4, &mut rng).unwrap();
        let x = uniform_tensor([1, 1, 32, 32], -1.0, 1.0, &mut rng);
        let base = det.forward(&x, false).unwrap();
        det.apply_backbone_blocking(&hierarchical_rule(2));
        let bb = det.forward(&x, false).unwrap();
        assert!(base.max_abs_diff(&bb).unwrap() > 0.0);
        det.apply_head_blocking(&hierarchical_rule(2));
        let both = det.forward(&x, false).unwrap();
        assert!(bb.max_abs_diff(&both).unwrap() > 0.0);
    }

    #[test]
    fn residual_block_gradcheck() {
        let mut rng = seeded_rng(9);
        let mut block = ResidualBlock::new(2, &mut rng).unwrap();
        let x = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut rng);
        let out = block.forward(&x, true).unwrap();
        let d = block.backward(&Tensor::filled(out.shape(), 1.0)).unwrap();
        // Finite-difference check at one pixel.
        let eps = 1e-2;
        let eval = |delta: f32| -> f32 {
            let mut probe = ResidualBlock::new(2, &mut seeded_rng(9)).unwrap();
            let mut xp = x.clone();
            *xp.at_mut(0, 1, 3, 3) += delta;
            probe.forward(&xp, false).unwrap().data().iter().sum()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        let analytic = d.at(0, 1, 3, 3);
        assert!(
            (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
            "numeric {numeric} analytic {analytic}"
        );
    }
}
