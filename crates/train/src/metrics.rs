//! Evaluation metrics: top-1 accuracy, PSNR, and the IoU-threshold average
//! precision used by the synthetic detection task.

use bconv_tensor::{Tensor, TensorError};

use crate::datasets::BBox;

/// Top-1 accuracy of logits `[n, classes, 1, 1]` against labels.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `labels.len()` differs from
/// the batch size.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64, TensorError> {
    let [n, classes, _, _] = logits.shape().dims();
    if labels.len() != n {
        return Err(TensorError::shape_mismatch(
            "top1_accuracy labels",
            format!("{n}"),
            format!("{}", labels.len()),
        ));
    }
    let mut correct = 0usize;
    for (ni, &label) in labels.iter().enumerate() {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for c in 0..classes {
            let v = logits.at(ni, c, 0, 0);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / n as f64)
}

/// Peak signal-to-noise ratio in dB, with peak value `peak` (1.0 for
/// normalised images, as in the VDSR evaluation).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn psnr(pred: &Tensor, target: &Tensor, peak: f32) -> Result<f64, TensorError> {
    if pred.shape() != target.shape() {
        return Err(TensorError::shape_mismatch(
            "psnr",
            target.shape().to_string(),
            pred.shape().to_string(),
        ));
    }
    let mse: f64 =
        pred.data().iter().zip(target.data()).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>()
            / pred.data().len() as f64;
    if mse == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * ((peak as f64).powi(2) / mse).log10())
}

/// One detection produced by a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted box.
    pub bbox: BBox,
    /// Predicted class.
    pub class: usize,
    /// Confidence score.
    pub score: f32,
}

/// Average precision at a given IoU threshold for a single-object-per-image
/// dataset: detections are sorted by score; a detection is a true positive
/// if its IoU with its image's ground truth exceeds `iou_thresh`, the class
/// matches, and the ground truth is not already matched. AP is the area
/// under the precision–recall curve (all-point interpolation).
pub fn average_precision(
    detections: &[(usize, Detection)],
    ground_truth: &[(BBox, usize)],
    iou_thresh: f32,
) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let mut dets: Vec<&(usize, Detection)> = detections.iter().collect();
    dets.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));
    let mut matched = vec![false; ground_truth.len()];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f64, f64)> = Vec::with_capacity(dets.len());
    for (img, det) in dets {
        let (gt_box, gt_class) = &ground_truth[*img];
        let hit = !matched[*img] && det.class == *gt_class && det.bbox.iou(gt_box) >= iou_thresh;
        if hit {
            matched[*img] = true;
            tp += 1;
        } else {
            fp += 1;
        }
        curve.push((tp as f64 / ground_truth.len() as f64, tp as f64 / (tp + fp) as f64));
    }
    // All-point interpolation: precision envelope from the right.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    let mut envelope = vec![0.0f64; curve.len()];
    let mut run_max = 0.0f64;
    for (i, &(_, precision)) in curve.iter().enumerate().rev() {
        run_max = run_max.max(precision);
        envelope[i] = run_max;
    }
    for (i, &(recall, _)) in curve.iter().enumerate() {
        ap += (recall - prev_recall) * envelope[i];
        prev_recall = recall;
    }
    ap
}

/// COCO-style summary: mean AP over IoU 0.50:0.05:0.95, plus AP@0.5 and
/// AP@0.75 (the columns of Table V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApSummary {
    /// Mean AP over IoU thresholds 0.50..=0.95.
    pub ap: f64,
    /// AP at IoU 0.5.
    pub ap50: f64,
    /// AP at IoU 0.75.
    pub ap75: f64,
}

/// Computes the COCO-style AP summary.
pub fn ap_summary(detections: &[(usize, Detection)], ground_truth: &[(BBox, usize)]) -> ApSummary {
    let mut total = 0.0;
    let mut ap50 = 0.0;
    let mut ap75 = 0.0;
    for i in 0..10 {
        let t = 0.50 + 0.05 * i as f32;
        let ap = average_precision(detections, ground_truth, t);
        total += ap;
        if i == 0 {
            ap50 = ap;
        }
        if i == 5 {
            ap75 = ap;
        }
    }
    ApSummary { ap: total / 10.0, ap50, ap75 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_counts_argmax_matches() {
        let logits = Tensor::from_vec([2, 3, 1, 1], vec![1.0, 5.0, 0.0, 2.0, 0.0, 1.0]).unwrap();
        assert_eq!(top1_accuracy(&logits, &[1, 0]).unwrap(), 1.0);
        assert_eq!(top1_accuracy(&logits, &[0, 0]).unwrap(), 0.5);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let t = Tensor::filled([1, 1, 4, 4], 0.5);
        assert!(psnr(&t, &t, 1.0).unwrap().is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01 -> PSNR = 20 dB at peak 1.
        let a = Tensor::filled([1, 1, 2, 2], 0.1);
        let b = Tensor::zeros([1, 1, 2, 2]);
        assert!((psnr(&a, &b, 1.0).unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn perfect_detections_give_ap_one() {
        let gt = vec![
            (BBox { y0: 0.0, x0: 0.0, y1: 10.0, x1: 10.0 }, 0),
            (BBox { y0: 5.0, x0: 5.0, y1: 15.0, x1: 15.0 }, 1),
        ];
        let dets = vec![
            (0usize, Detection { bbox: gt[0].0, class: 0, score: 0.9 }),
            (1usize, Detection { bbox: gt[1].0, class: 1, score: 0.8 }),
        ];
        assert!((average_precision(&dets, &gt, 0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_class_detections_give_ap_zero() {
        let gt = vec![(BBox { y0: 0.0, x0: 0.0, y1: 10.0, x1: 10.0 }, 0)];
        let dets = vec![(0usize, Detection { bbox: gt[0].0, class: 1, score: 0.9 })];
        assert_eq!(average_precision(&dets, &gt, 0.5), 0.0);
    }

    #[test]
    fn looser_iou_threshold_never_decreases_ap() {
        let gt = vec![(BBox { y0: 0.0, x0: 0.0, y1: 10.0, x1: 10.0 }, 0)];
        // A box with IoU ~0.6 against the ground truth.
        let dets = vec![(
            0usize,
            Detection { bbox: BBox { y0: 0.0, x0: 2.0, y1: 10.0, x1: 12.0 }, class: 0, score: 0.9 },
        )];
        let ap50 = average_precision(&dets, &gt, 0.5);
        let ap75 = average_precision(&dets, &gt, 0.75);
        assert!(ap50 >= ap75);
        assert!(ap50 > 0.0 && ap75 == 0.0);
    }

    #[test]
    fn ap_summary_orders_thresholds() {
        let gt = vec![(BBox { y0: 0.0, x0: 0.0, y1: 10.0, x1: 10.0 }, 0)];
        let dets = vec![(
            0usize,
            Detection { bbox: BBox { y0: 0.0, x0: 1.0, y1: 10.0, x1: 11.0 }, class: 0, score: 0.9 },
        )];
        let s = ap_summary(&dets, &gt);
        // AP@0.5 is the loosest criterion; the 0.50:0.95 mean can fall on
        // either side of AP@0.75 depending on where the IoU lands.
        assert!(s.ap50 >= s.ap);
        assert!(s.ap50 >= s.ap75);
    }

    #[test]
    fn empty_ground_truth_gives_zero_ap() {
        assert_eq!(average_precision(&[], &[], 0.5), 0.0);
    }
}
