//! Quantized fully-connected layer: the classifier-head counterpart of
//! [`crate::qconv::QConv2d`], so FC layers stop running in float inside an
//! otherwise-integer session.
//!
//! Weights are quantized **per output row** (each row is one output
//! feature's dot product — the FC analogue of per-channel conv scales),
//! narrowed to `i16` at construction, and multiplied through the same
//! widening `i16×i16→i32/i64` dot products as [`crate::qgemm`], with the
//! identical per-layer accumulator-width bound.

use bconv_tensor::linear::Linear;
use bconv_tensor::{Tensor, TensorError};

use crate::qgemm::{dot_i16_i32, dot_i16_i64};
use crate::QParams;

/// Reusable temporaries for quantized FC execution: the `i16` quantized
/// input-activation buffer. One per worker thread.
#[derive(Debug, Default)]
pub struct QLinearScratch {
    act_q: Vec<i16>,
}

impl QLinearScratch {
    /// A fresh, empty scratch (the buffer grows on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A fully-connected layer with quantized weights, executing in integer
/// arithmetic: `y[o] = dot(w_q[o], x_q) * (w_scale[o] * act_scale) + b[o]`.
#[derive(Debug, Clone)]
pub struct QLinear {
    weight_q: Vec<i16>,
    wscales: Vec<f32>,
    bias: Vec<f32>,
    weight_params: QParams,
    max_abs: i32,
    in_features: usize,
    out_features: usize,
}

impl QLinear {
    /// Quantizes a float linear layer's weights at `weight_bits` with
    /// per-output-row scales.
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_linear(lin: &Linear, weight_bits: u8) -> Option<Self> {
        let wdata = lin.weight();
        let abs_max = wdata.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if abs_max == 0.0 {
            return None;
        }
        let weight_params = QParams::from_abs_max(abs_max, weight_bits);
        let (flat, rows) = (lin.in_features(), lin.out_features());
        let mut wscales = Vec::with_capacity(rows);
        let mut weight_q = Vec::with_capacity(wdata.len());
        let mut max_abs = 0i32;
        for o in 0..rows {
            let row = &wdata[o * flat..(o + 1) * flat];
            let rmax = row.iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
            // All-zero rows quantize to zeros under any finite scale; fall
            // back to the per-tensor envelope for them.
            let params =
                if rmax > 0.0 { QParams::from_abs_max(rmax, weight_bits) } else { weight_params };
            wscales.push(params.scale());
            for &v in row {
                let q = params.quantize_value(v);
                max_abs = max_abs.max(q.abs());
                weight_q.push(q as i16);
            }
        }
        Some(Self {
            weight_q,
            wscales,
            bias: lin.bias().to_vec(),
            weight_params,
            max_abs,
            in_features: flat,
            out_features: rows,
        })
    }

    /// Weight quantization parameters of the per-tensor envelope.
    pub fn weight_params(&self) -> QParams {
        self.weight_params
    }

    /// Per-output-row weight scales.
    pub fn weight_scales(&self) -> &[f32] {
        &self.wscales
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Builds the feature-mismatch error (kept out of the hot path).
    fn feature_mismatch(&self, flat: usize) -> TensorError {
        TensorError::shape_mismatch(
            "QLinear input",
            format!("{} features", self.in_features),
            format!("{flat} features"),
        )
    }

    /// Applies the layer to a flattened input (the `(c, h, w)` dims of
    /// each batch element flatten to `in_features`), quantizing the
    /// activations at `act_params` and accumulating in integer lanes;
    /// output is `[n, out_features, 1, 1]`. Steady-state execution
    /// performs no allocation once `scratch` has grown.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `c*h*w != in_features`.
    pub fn forward_into(
        &self,
        input: &Tensor,
        act_params: QParams,
        out: &mut Tensor,
        scratch: &mut QLinearScratch,
    ) -> Result<(), TensorError> {
        let [n, c, h, w] = input.shape().dims();
        let flat = c * h * w;
        if flat != self.in_features {
            return Err(self.feature_mismatch(flat));
        }
        out.reset([n, self.out_features, 1, 1]);
        scratch.act_q.clear();
        scratch.act_q.extend(input.data().iter().map(|&v| act_params.quantize_value(v) as i16));
        // Same exactness bound as the integer GEMM: i32 lanes whenever the
        // whole reduction (hence any partial sum) fits.
        let wide = flat as i64 * self.max_abs as i64 * act_params.qmax() as i64 > i32::MAX as i64;
        let act_scale = act_params.scale();
        for ni in 0..n {
            let x = &scratch.act_q[ni * flat..(ni + 1) * flat];
            for o in 0..self.out_features {
                let row = &self.weight_q[o * flat..(o + 1) * flat];
                let acc =
                    if wide { dot_i16_i64(row, x) as f32 } else { dot_i16_i32(row, x) as f32 };
                *out.at_mut(ni, o, 0, 0) = acc * (self.wscales[o] * act_scale) + self.bias[o];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::init::{seeded_rng, uniform_tensor};

    fn random_linear(inf: usize, outf: usize, seed: u64) -> Linear {
        let mut rng = seeded_rng(seed);
        let w = uniform_tensor([1, 1, outf, inf], -1.0, 1.0, &mut rng).data().to_vec();
        let b = uniform_tensor([1, 1, 1, outf], -0.5, 0.5, &mut rng).data().to_vec();
        Linear::new(inf, outf, w, b).unwrap()
    }

    #[test]
    fn quantized_fc_tracks_float_fc() {
        let lin = random_linear(48, 10, 1);
        let input = uniform_tensor([2, 3, 4, 4], -1.0, 1.0, &mut seeded_rng(2));
        let float_out = lin.forward(&input).unwrap();
        let q = QLinear::from_linear(&lin, 8).unwrap();
        let mut out = Tensor::default();
        let mut scratch = QLinearScratch::new();
        q.forward_into(&input, QParams::from_abs_max(1.0, 8), &mut out, &mut scratch).unwrap();
        let mag = float_out.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        let err = float_out.max_abs_diff(&out).unwrap() / mag;
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn per_row_scales_no_worse_than_per_tensor_envelope() {
        // Scale one row way down: per-row scales keep quantizing it
        // finely, while the per-tensor envelope would flatten it.
        let mut lin = random_linear(32, 4, 3);
        for v in lin.weight_mut()[0..32].iter_mut() {
            *v *= 0.01;
        }
        let q = QLinear::from_linear(&lin, 8).unwrap();
        let envelope = q.weight_params().scale();
        for (o, &s) in q.weight_scales().iter().enumerate() {
            assert!(s <= envelope + f32::EPSILON, "row {o} scale {s} above envelope {envelope}");
        }
        assert!(q.weight_scales()[0] < 0.05 * envelope, "shrunk row should get a tighter scale");
    }

    #[test]
    fn wide_reduction_uses_exact_i64_lanes() {
        // in_features large enough that flat*qmax_w*qmax_a overflows i32
        // at 16-bit activations: output must stay finite and track float.
        let inf = 4096;
        let lin = random_linear(inf, 2, 4);
        let input = uniform_tensor([1, 1, 64, 64], -1.0, 1.0, &mut seeded_rng(5));
        let q = QLinear::from_linear(&lin, 8).unwrap();
        let mut out = Tensor::default();
        let mut scratch = QLinearScratch::new();
        q.forward_into(&input, QParams::from_abs_max(1.0, 16), &mut out, &mut scratch).unwrap();
        let float_out = lin.forward(&input).unwrap();
        let mag = float_out.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        assert!(float_out.max_abs_diff(&out).unwrap() / mag < 0.05);
    }

    #[test]
    fn zero_weights_yield_none() {
        assert!(QLinear::from_linear(&Linear::zeros(4, 2).unwrap(), 8).is_none());
    }

    #[test]
    fn feature_mismatch_is_an_error() {
        let lin = random_linear(8, 2, 6);
        let q = QLinear::from_linear(&lin, 8).unwrap();
        let input = Tensor::zeros([1, 1, 3, 3]);
        let mut out = Tensor::default();
        let mut scratch = QLinearScratch::new();
        assert!(q
            .forward_into(&input, QParams::from_abs_max(1.0, 8), &mut out, &mut scratch)
            .is_err());
    }

    #[test]
    fn accessors_report_the_source_layer() {
        let lin = random_linear(12, 5, 7);
        let q = QLinear::from_linear(&lin, 8).unwrap();
        assert_eq!(q.in_features(), 12);
        assert_eq!(q.out_features(), 5);
        assert_eq!(q.weight_params().bits(), 8);
        assert_eq!(q.weight_scales().len(), 5);
    }
}
