//! Range calibration for post-training quantization: observe activations on
//! calibration data, then freeze [`QParams`].

use bconv_tensor::Tensor;

use crate::QParams;

/// Accumulates activation ranges over calibration batches.
///
/// Two policies are provided: absolute maximum (robust default) and an
/// exponential moving average of per-batch maxima (smoother, the policy
/// used by training-aware quantization frameworks such as Distiller).
#[derive(Debug, Clone)]
pub struct Calibrator {
    abs_max: f32,
    ema: Option<f32>,
    ema_decay: f32,
    observations: usize,
}

impl Calibrator {
    /// New calibrator with EMA decay 0.9.
    pub fn new() -> Self {
        Self { abs_max: 0.0, ema: None, ema_decay: 0.9, observations: 0 }
    }

    /// New calibrator with a custom EMA decay in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not in `(0, 1)`.
    pub fn with_ema_decay(decay: f32) -> Self {
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0,1)");
        Self { ema_decay: decay, ..Self::new() }
    }

    /// Observes one batch of activations.
    pub fn observe(&mut self, t: &Tensor) {
        let batch_max = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        self.abs_max = self.abs_max.max(batch_max);
        self.ema = Some(match self.ema {
            None => batch_max,
            Some(e) => e * self.ema_decay + batch_max * (1.0 - self.ema_decay),
        });
        self.observations += 1;
    }

    /// Number of observed batches.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Freezes parameters using the absolute maximum seen.
    ///
    /// Returns `None` if nothing was observed or all data was zero.
    pub fn finalize_abs_max(&self, bits: u8) -> Option<QParams> {
        (self.abs_max > 0.0).then(|| QParams::from_abs_max(self.abs_max, bits))
    }

    /// Freezes parameters using the EMA of per-batch maxima.
    ///
    /// Returns `None` if nothing was observed or the EMA is zero.
    pub fn finalize_ema(&self, bits: u8) -> Option<QParams> {
        match self.ema {
            Some(e) if e > 0.0 => Some(QParams::from_abs_max(e, bits)),
            _ => None,
        }
    }
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_max_tracks_the_global_maximum() {
        let mut c = Calibrator::new();
        c.observe(&Tensor::filled([1, 1, 2, 2], 0.5));
        c.observe(&Tensor::filled([1, 1, 2, 2], -2.0));
        c.observe(&Tensor::filled([1, 1, 2, 2], 1.0));
        let q = c.finalize_abs_max(8).unwrap();
        assert!((q.scale() - 2.0 / 127.0).abs() < 1e-7);
        assert_eq!(c.observations(), 3);
    }

    #[test]
    fn ema_is_smoother_than_abs_max() {
        let mut c = Calibrator::with_ema_decay(0.5);
        c.observe(&Tensor::filled([1, 1, 2, 2], 1.0));
        c.observe(&Tensor::filled([1, 1, 2, 2], 100.0)); // outlier
        c.observe(&Tensor::filled([1, 1, 2, 2], 1.0));
        let abs = c.finalize_abs_max(8).unwrap();
        let ema = c.finalize_ema(8).unwrap();
        assert!(ema.scale() < abs.scale(), "EMA should discount the outlier");
    }

    #[test]
    fn empty_calibrator_finalizes_to_none() {
        let c = Calibrator::new();
        assert!(c.finalize_abs_max(8).is_none());
        assert!(c.finalize_ema(8).is_none());
    }

    #[test]
    fn all_zero_data_finalizes_to_none() {
        let mut c = Calibrator::new();
        c.observe(&Tensor::zeros([1, 1, 2, 2]));
        assert!(c.finalize_abs_max(8).is_none());
    }

    #[test]
    #[should_panic(expected = "decay must be in (0,1)")]
    fn bad_decay_panics() {
        let _ = Calibrator::with_ema_decay(1.0);
    }
}
