//! Symmetric fixed-point quantization for the block-convolution
//! reproduction.
//!
//! The paper uses fixed-point arithmetic throughout its hardware designs
//! (16/8-bit activations for the VGG-16 accelerator, 8-bit activations and
//! 4-bit weights for the VDSR accelerator) and evaluates 8-bit quantization
//! of blocked networks in Figure 7, both post-training (PTQ) and
//! training-aware (QAT). This crate provides:
//!
//! * [`QParams`] — per-tensor symmetric scale for a given bitwidth;
//! * [`QTensor`] / [`quantize`] / [`dequantize`] — integer tensors;
//! * [`fake_quant`] — the QAT forward hook (quantize–dequantize round trip);
//! * [`calibrate::Calibrator`] — absolute-max range calibration for PTQ;
//! * [`qconv`] — integer convolution with exact integer accumulators:
//!   [`qconv::QConv2d`] pads in any block-padding mode (or runs prepadded
//!   inside fusion groups) and [`qconv::QuantChainOp`] packages one
//!   quantized fused-chain stage with its calibrated activation range;
//! * [`qgemm`] — the integer fast path: `i16` im2col plus a widening
//!   `i16×i16→i32` GEMM over build-time packed weights, bitwise identical
//!   to the direct loop;
//! * [`qlinear`] — quantized fully-connected layers with per-output-row
//!   weight scales.
//!
//! # Example
//!
//! ```
//! use bconv_quant::{QParams, fake_quant};
//! use bconv_tensor::Tensor;
//!
//! let t = Tensor::from_fn(1, 1, 4, |_, _, w| w as f32 - 1.5);
//! let q = QParams::from_abs_max(1.5, 8);
//! let fq = fake_quant(&t, q);
//! // Round-trip error is bounded by half a quantization step.
//! assert!(t.max_abs_diff(&fq).unwrap() <= q.step() / 2.0 + 1e-6);
//! ```

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod qconv;
pub mod qgemm;
pub mod qlinear;

use bconv_tensor::{Tensor, TensorError};

/// Per-tensor symmetric quantization parameters: values in
/// `[-abs_max, abs_max]` map linearly to `[-qmax, qmax]` integers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QParams {
    scale: f32,
    /// `1 / scale`, precomputed so the hot quantize loop multiplies
    /// instead of dividing (a vector divide costs ~10x a multiply).
    inv_scale: f32,
    bits: u8,
}

/// Bias that lands an integer-valued `f32` in the mantissa window where
/// its bits read off directly: `1.5 * 2^23`. Adding it also performs the
/// round-to-nearest (ties-to-even) in the same instruction, which keeps
/// [`QParams::quantize_value`] a pure mul/clamp/add pipeline the
/// auto-vectorizer handles — the saturating `as i32` conversion it
/// replaces defeats vectorization entirely.
const ROUND_BIAS: f32 = 12_582_912.0;
const ROUND_BIAS_BITS: i32 = 0x4B40_0000;

impl QParams {
    /// Parameters covering `[-abs_max, abs_max]` at `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=16` or `abs_max` is not positive
    /// and finite.
    pub fn from_abs_max(abs_max: f32, bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(abs_max.is_finite() && abs_max > 0.0, "abs_max must be positive and finite");
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let scale = abs_max / qmax;
        Self { scale, inv_scale: 1.0 / scale, bits }
    }

    /// Scale (the value of one integer step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Bitwidth.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Largest representable integer magnitude.
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// The quantization step size (== scale).
    pub fn step(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value (round-to-nearest ties-to-even, saturating).
    ///
    /// Clamping before rounding is equivalent to rounding first (both maps
    /// are monotone and `±qmax` are exact), and the post-clamp magnitude
    /// is far below the `2^22` limit of the `ROUND_BIAS` trick, so the
    /// bit extraction is exact.
    pub fn quantize_value(&self, v: f32) -> i32 {
        let qm = self.qmax() as f32;
        let x = (v * self.inv_scale).clamp(-qm, qm);
        ((x + ROUND_BIAS).to_bits() as i32).wrapping_sub(ROUND_BIAS_BITS)
    }

    /// [`quantize_value`](Self::quantize_value) returning the quantized
    /// integer **as an `f32`** (e.g. `-3.0` for quantized level `-3`) —
    /// the activation format of the exact-f32 plane kernel in [`qgemm`].
    /// Same mul/clamp/bias pipeline, minus the bit extraction: subtracting
    /// `ROUND_BIAS` back out is exact, so this equals
    /// `self.quantize_value(v) as f32` bit for bit.
    pub fn quantize_value_f32(&self, v: f32) -> f32 {
        let qm = self.qmax() as f32;
        let x = (v * self.inv_scale).clamp(-qm, qm);
        (x + ROUND_BIAS) - ROUND_BIAS
    }

    /// Dequantizes one integer.
    pub fn dequantize_value(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }
}

/// An integer tensor with its quantization parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    /// Quantized values, row-major NCHW, same layout as the source tensor.
    pub data: Vec<i32>,
    /// Shape dims `[n, c, h, w]` of the source tensor.
    pub dims: [usize; 4],
    /// Quantization parameters.
    pub params: QParams,
}

/// Quantizes a tensor with the given parameters.
pub fn quantize(t: &Tensor, params: QParams) -> QTensor {
    QTensor {
        data: t.data().iter().map(|&v| params.quantize_value(v)).collect(),
        dims: t.shape().dims(),
        params,
    }
}

/// Dequantizes back to floating point.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the stored dims are
/// inconsistent with the data length (cannot happen for values produced by
/// [`quantize`]).
pub fn dequantize(q: &QTensor) -> Result<Tensor, TensorError> {
    Tensor::from_vec(q.dims, q.data.iter().map(|&v| q.params.dequantize_value(v)).collect())
}

/// Quantize–dequantize round trip: the "fake quantization" used in
/// training-aware quantization's forward pass.
pub fn fake_quant(t: &Tensor, params: QParams) -> Tensor {
    t.map(|v| params.dequantize_value(params.quantize_value(v)))
}

/// Convenience: fake-quantize with the tensor's own absolute maximum as the
/// range (per-tensor dynamic quantization).
pub fn fake_quant_dynamic(t: &Tensor, bits: u8) -> Tensor {
    let abs_max = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if abs_max == 0.0 {
        return t.clone();
    }
    fake_quant(t, QParams::from_abs_max(abs_max, bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_error_is_half_step() {
        let q = QParams::from_abs_max(1.0, 8);
        for v in [-1.0f32, -0.5, 0.0, 0.123, 0.999] {
            let rt = q.dequantize_value(q.quantize_value(v));
            assert!((rt - v).abs() <= q.step() / 2.0 + 1e-7, "v={v}, rt={rt}");
        }
    }

    #[test]
    fn saturation_clamps_out_of_range() {
        let q = QParams::from_abs_max(1.0, 8);
        assert_eq!(q.quantize_value(10.0), 127);
        assert_eq!(q.quantize_value(-10.0), -127);
    }

    #[test]
    fn bitwidths_give_expected_qmax() {
        assert_eq!(QParams::from_abs_max(1.0, 8).qmax(), 127);
        assert_eq!(QParams::from_abs_max(1.0, 16).qmax(), 32767);
        assert_eq!(QParams::from_abs_max(1.0, 4).qmax(), 7);
    }

    #[test]
    fn lower_bitwidth_means_larger_error() {
        let t = Tensor::from_fn(1, 4, 4, |c, h, w| ((c * 16 + h * 4 + w) as f32).sin());
        let e8 = t.max_abs_diff(&fake_quant_dynamic(&t, 8)).unwrap();
        let e4 = t.max_abs_diff(&fake_quant_dynamic(&t, 4)).unwrap();
        assert!(e4 > e8);
    }

    #[test]
    fn fake_quant_of_zero_tensor_is_identity() {
        let t = Tensor::zeros([1, 1, 2, 2]);
        assert_eq!(fake_quant_dynamic(&t, 8), t);
    }

    #[test]
    fn quantize_dequantize_tensor_roundtrip() {
        let t = Tensor::from_fn(2, 3, 3, |c, h, w| (c + h + w) as f32 / 10.0 - 0.3);
        let q = quantize(&t, QParams::from_abs_max(1.0, 8));
        let back = dequantize(&q).unwrap();
        assert!(t.max_abs_diff(&back).unwrap() <= 1.0 / 127.0 / 2.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn bits_out_of_range_panics() {
        let _ = QParams::from_abs_max(1.0, 1);
    }

    #[test]
    #[should_panic(expected = "abs_max must be positive")]
    fn non_positive_abs_max_panics() {
        let _ = QParams::from_abs_max(0.0, 8);
    }
}
