//! Integer convolution simulation: quantized weights and activations with
//! wide (i64) accumulators, mirroring the MAC datapath of the paper's
//! accelerators (16/8-bit for VGG-16, 8-bit activations × 4-bit weights for
//! VDSR).
//!
//! Two entry points matter to executors:
//!
//! * [`QConv2d::forward`] — whole-map execution that pads the input itself,
//!   in an arbitrary [`PadMode`]. When the input is one *block* of a blocked
//!   feature map, the pad mode must match the session's block-padding mode
//!   (the paper's §II-F variable); hardcoding zero here silently diverges
//!   from the float path under replicate/reflect block padding.
//! * [`QConv2d::forward_prepadded_into`] — the fused-chain primitive: the
//!   caller has already applied the block padding from the Equation 2
//!   schedule, so no further padding is added (no double padding inside
//!   fusion groups). [`QuantChainOp`] bundles this with frozen activation
//!   [`QParams`] as one quantized chain stage.

use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::kernel::KernelKind;
use bconv_tensor::pad::{pad2d_asym_into, PadMode};
use bconv_tensor::shape::conv_out_dim;
use bconv_tensor::{Tensor, TensorError};

use crate::qgemm::{qim2col_gemm, QPackedWeights};
use crate::QParams;

/// Reusable temporaries for quantized convolution: the padded block, the
/// quantized-activation buffers (i32 for the direct loop, i16 for the
/// integer GEMM) and the GEMM's im2col patch matrix. One per worker
/// thread; buffers grow to the largest input seen and are reused across
/// calls.
#[derive(Debug, Default)]
pub struct QConvScratch {
    padded: Tensor,
    act_q: Vec<i32>,
    /// i16 quantized activations for the integer GEMM path.
    pub(crate) act16: Vec<i16>,
    /// Position-major `N×K` i16 im2col patch matrix.
    pub(crate) cols: Vec<i16>,
    /// Integer-valued f32 activations for the exact-f32 plane kernel.
    pub(crate) actf: Vec<f32>,
    /// The plane kernel's padded-width accumulator plane.
    pub(crate) accf: Vec<f32>,
}

impl QConvScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A convolution with quantized weights, executing in integer arithmetic.
///
/// Weights are quantized **per output channel** by default (each channel
/// gets the tightest symmetric scale its own range allows, so narrow
/// channels stop paying for the widest one) and pre-packed at construction
/// into the integer GEMM's `i16` matrix ([`QPackedWeights`]) — built once,
/// never repacked per run. Which kernel executes the layer (direct loop
/// vs integer im2col+GEMM) is resolved at construction time via
/// [`KernelKind`], mirroring the float path's plan-time resolution.
#[derive(Debug, Clone)]
pub struct QConv2d {
    weight_q: Vec<i32>,
    pub(crate) weight_dims: [usize; 4],
    pub(crate) bias: Vec<f32>,
    weight_params: QParams,
    /// Per-output-channel weight scales (all equal to the per-tensor scale
    /// when built via [`from_conv_per_tensor`](Self::from_conv_per_tensor)).
    pub(crate) wscales: Vec<f32>,
    /// The integer GEMM's packed weight matrix.
    pub(crate) packed: QPackedWeights,
    kernel: KernelKind,
    pub(crate) geom: ConvGeom,
    pub(crate) groups: usize,
}

impl QConv2d {
    /// Quantizes a float convolution's weights at `weight_bits` with
    /// per-channel scales, executing through the direct integer loop.
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_conv(conv: &Conv2d, weight_bits: u8) -> Option<Self> {
        Self::build(conv, weight_bits, KernelKind::Direct, true)
    }

    /// [`from_conv`](Self::from_conv) with an explicit resolved kernel:
    /// `KernelKind::Im2colGemm` runs the layer through the integer
    /// im2col+GEMM fast path (bitwise identical to the direct loop).
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_conv_with_kernel(
        conv: &Conv2d,
        weight_bits: u8,
        kernel: KernelKind,
    ) -> Option<Self> {
        Self::build(conv, weight_bits, kernel, true)
    }

    /// [`from_conv_with_kernel`](Self::from_conv_with_kernel) with one
    /// per-tensor weight scale instead of per-channel scales — the
    /// pre-per-channel behaviour, kept for error-envelope comparisons.
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_conv_per_tensor(
        conv: &Conv2d,
        weight_bits: u8,
        kernel: KernelKind,
    ) -> Option<Self> {
        Self::build(conv, weight_bits, kernel, false)
    }

    fn build(
        conv: &Conv2d,
        weight_bits: u8,
        kernel: KernelKind,
        per_channel: bool,
    ) -> Option<Self> {
        let wdata = conv.weight().data();
        let abs_max = wdata.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if abs_max == 0.0 {
            return None;
        }
        // The per-tensor envelope: scale of the widest channel; also the
        // fallback for all-zero channels (their quantized weights are all
        // zero, so any finite scale is exact for them).
        let weight_params = QParams::from_abs_max(abs_max, weight_bits);
        let dims = conv.weight().shape().dims();
        let (c_out, per_ch) = (dims[0], dims[1] * dims[2] * dims[3]);
        let mut wscales = Vec::with_capacity(c_out);
        let mut weight_q = Vec::with_capacity(wdata.len());
        for m in 0..c_out {
            let row = &wdata[m * per_ch..(m + 1) * per_ch];
            let cmax = row.iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
            let params = if per_channel && cmax > 0.0 {
                QParams::from_abs_max(cmax, weight_bits)
            } else {
                weight_params
            };
            wscales.push(params.scale());
            weight_q.extend(row.iter().map(|&v| params.quantize_value(v)));
        }
        let packed = QPackedWeights::pack(&weight_q);
        Some(Self {
            weight_q,
            weight_dims: dims,
            bias: conv.bias().to_vec(),
            weight_params,
            wscales,
            packed,
            kernel,
            geom: conv.geom(),
            groups: conv.groups(),
        })
    }

    /// Weight quantization parameters of the per-tensor envelope (the
    /// widest channel's scale; per-channel scales are at most this).
    pub fn weight_params(&self) -> QParams {
        self.weight_params
    }

    /// Per-output-channel weight scales.
    pub fn weight_scales(&self) -> &[f32] {
        &self.wscales
    }

    /// The packed integer-GEMM weight matrix.
    pub fn packed_weights(&self) -> &QPackedWeights {
        &self.packed
    }

    /// The kernel this layer executes through.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The convolution geometry (shared with the source float convolution).
    pub fn geom(&self) -> ConvGeom {
        self.geom
    }

    /// Group count (`1` = dense, `c_in` = depthwise).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.weight_dims[0]
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.weight_dims[1] * self.groups
    }

    /// Validates the input channel count (before any padding work).
    pub(crate) fn check_channels(&self, context: &str, c_in: usize) -> Result<(), TensorError> {
        if c_in != self.c_in() {
            return Err(TensorError::shape_mismatch(
                context,
                format!("{}", self.c_in()),
                format!("{c_in}"),
            ));
        }
        Ok(())
    }

    /// Runs the convolution on a float input, applying the layer's own
    /// symmetric padding in `pad_mode`, quantizing activations at
    /// `act_params` and accumulating in i64, then rescaling to float.
    ///
    /// `pad_mode` must match how the float path would pad this input: zero
    /// for whole feature maps (outer padding is always zero), the session's
    /// block-padding mode when `input` is one block of a blocked map.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the input channel count does not match
    /// (validated before padding, so a channel mismatch is never masked by
    /// a padding failure).
    pub fn forward(
        &self,
        input: &Tensor,
        act_params: QParams,
        pad_mode: PadMode,
    ) -> Result<Tensor, TensorError> {
        let mut out = Tensor::zeros([0, 0, 0, 0]);
        let mut scratch = QConvScratch::default();
        self.forward_into(input, act_params, pad_mode, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// [`forward`](Self::forward) into a caller-provided output, drawing
    /// the padded-input and quantized-activation temporaries from
    /// `scratch` — steady-state execution performs no allocation.
    ///
    /// # Errors
    ///
    /// See [`forward`](Self::forward).
    pub fn forward_into(
        &self,
        input: &Tensor,
        act_params: QParams,
        pad_mode: PadMode,
        out: &mut Tensor,
        scratch: &mut QConvScratch,
    ) -> Result<(), TensorError> {
        self.check_channels("QConv2d input channels", input.shape().dims()[1])?;
        let p = self.geom.padding;
        // Take the padded buffer out of the scratch for the duration of the
        // kernel call: the kernel borrows it shared while drawing its other
        // temporaries from the scratch mutably.
        let mut padded = std::mem::take(&mut scratch.padded);
        let result = pad2d_asym_into(input, p, p, p, p, pad_mode, &mut padded).and_then(|()| {
            match self.kernel {
                KernelKind::Direct => {
                    self.conv_prepadded(&padded, act_params, out, &mut scratch.act_q)
                }
                KernelKind::Im2colGemm => qim2col_gemm(self, &padded, act_params, out, scratch),
            }
        });
        scratch.padded = padded;
        result
    }

    /// Convolves an input that has **already been padded** by the caller
    /// (no internal padding is added) — the fused-chain primitive: block
    /// executors apply their Equation 2 block padding once and hand the
    /// padded block straight to the integer kernel.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the channel count does not match or the
    /// padded input is smaller than the kernel.
    pub fn forward_prepadded_into(
        &self,
        padded: &Tensor,
        act_params: QParams,
        out: &mut Tensor,
        scratch: &mut QConvScratch,
    ) -> Result<(), TensorError> {
        match self.kernel {
            KernelKind::Direct => self.conv_prepadded(padded, act_params, out, &mut scratch.act_q),
            KernelKind::Im2colGemm => qim2col_gemm(self, padded, act_params, out, scratch),
        }
    }

    /// [`forward_prepadded_into`](Self::forward_prepadded_into) forced
    /// through the direct loop regardless of the resolved kernel — the
    /// reference implementation parity tests compare against.
    ///
    /// # Errors
    ///
    /// See [`forward_prepadded_into`](Self::forward_prepadded_into).
    pub fn forward_prepadded_direct_into(
        &self,
        padded: &Tensor,
        act_params: QParams,
        out: &mut Tensor,
        scratch: &mut QConvScratch,
    ) -> Result<(), TensorError> {
        self.conv_prepadded(padded, act_params, out, &mut scratch.act_q)
    }

    /// The direct integer kernel: quantize activations, MAC in i64,
    /// rescale at the per-channel scale.
    fn conv_prepadded(
        &self,
        padded: &Tensor,
        act_params: QParams,
        out: &mut Tensor,
        act_q: &mut Vec<i32>,
    ) -> Result<(), TensorError> {
        let [n, c_in, ph, pw] = padded.shape().dims();
        self.check_channels("QConv2d prepadded input channels", c_in)?;
        let [c_out, cin_per_group, k, _] = self.weight_dims;
        let s = self.geom.stride;
        let oh = conv_out_dim(ph, k, s, 0)?;
        let ow = conv_out_dim(pw, k, s, 0)?;
        let cout_per_group = c_out / self.groups;

        // Quantize activations once, into the reusable buffer.
        act_q.clear();
        act_q.extend(padded.data().iter().map(|&v| act_params.quantize_value(v)));
        let act_scale = act_params.scale();

        out.reset([n, c_out, oh, ow]);
        let idx_in = |ni: usize, c: usize, h: usize, w: usize| ((ni * c_in + c) * ph + h) * pw + w;
        let idx_w =
            |m: usize, c: usize, kh: usize, kw: usize| ((m * cin_per_group + c) * k + kh) * k + kw;

        for ni in 0..n {
            for g in 0..self.groups {
                for mo in 0..cout_per_group {
                    let m = g * cout_per_group + mo;
                    let out_scale = self.wscales[m] * act_scale;
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let mut acc: i64 = 0;
                            for ci in 0..cin_per_group {
                                let c = g * cin_per_group + ci;
                                for khi in 0..k {
                                    for kwi in 0..k {
                                        let a = act_q[idx_in(ni, c, ohi * s + khi, owi * s + kwi)];
                                        let w = self.weight_q[idx_w(m, ci, khi, kwi)];
                                        acc += a as i64 * w as i64;
                                    }
                                }
                            }
                            *out.at_mut(ni, m, ohi, owi) = acc as f32 * out_scale + self.bias[m];
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// One quantized convolution stage of a fused chain: a [`QConv2d`] plus the
/// frozen (calibrated) quantization parameters of its input activations.
///
/// The stage runs on **already locally-padded** block tensors — the block
/// executor applies the Equation 2 block padding in the session's pad mode,
/// and the stage quantizes and convolves without padding again.
#[derive(Debug, Clone)]
pub struct QuantChainOp {
    qconv: QConv2d,
    act_params: QParams,
}

impl QuantChainOp {
    /// Builds a stage from an explicit quantized convolution.
    pub fn new(qconv: QConv2d, act_params: QParams) -> Self {
        Self { qconv, act_params }
    }

    /// Quantizes a float convolution's weights at `weight_bits` and pairs
    /// them with calibrated input-activation parameters.
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_conv(conv: &Conv2d, weight_bits: u8, act_params: QParams) -> Option<Self> {
        QConv2d::from_conv(conv, weight_bits).map(|qconv| Self { qconv, act_params })
    }

    /// [`from_conv`](Self::from_conv) with an explicit resolved kernel
    /// (direct loop vs integer im2col+GEMM) for the stage.
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_conv_with_kernel(
        conv: &Conv2d,
        weight_bits: u8,
        act_params: QParams,
        kernel: KernelKind,
    ) -> Option<Self> {
        QConv2d::from_conv_with_kernel(conv, weight_bits, kernel)
            .map(|qconv| Self { qconv, act_params })
    }

    /// The quantized convolution.
    pub fn qconv(&self) -> &QConv2d {
        &self.qconv
    }

    /// Frozen input-activation quantization parameters.
    pub fn act_params(&self) -> QParams {
        self.act_params
    }

    /// Runs the stage on an already locally-padded block (no further
    /// padding), writing the dequantized float result into `out`.
    ///
    /// # Errors
    ///
    /// See [`QConv2d::forward_prepadded_into`].
    pub fn forward_prepadded_into(
        &self,
        padded: &Tensor,
        out: &mut Tensor,
        scratch: &mut QConvScratch,
    ) -> Result<(), TensorError> {
        self.qconv.forward_prepadded_into(padded, self.act_params, out, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
    use bconv_tensor::pad::pad2d;

    #[test]
    fn int8_conv_tracks_float_conv() {
        let mut rng = seeded_rng(1);
        let conv = he_conv2d(3, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 3, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let q_out = qconv.forward(&input, QParams::from_abs_max(1.0, 8), PadMode::Zero).unwrap();
        let err = float_out.max_abs_diff(&q_out).unwrap();
        let ref_mag = float_out.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(err / ref_mag < 0.05, "relative error {}", err / ref_mag);
    }

    #[test]
    fn wider_bitwidth_reduces_error() {
        let mut rng = seeded_rng(2);
        let conv = he_conv2d(2, 2, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let act = QParams::from_abs_max(1.0, 8);
        let err_at = |bits: u8| {
            let q = QConv2d::from_conv(&conv, bits).unwrap();
            float_out.max_abs_diff(&q.forward(&input, act, PadMode::Zero).unwrap()).unwrap()
        };
        let (e4, e8, e16) = (err_at(4), err_at(8), err_at(16));
        assert!(e4 > e8, "4-bit {e4} should exceed 8-bit {e8}");
        assert!(e8 > e16, "8-bit {e8} should exceed 16-bit {e16}");
    }

    #[test]
    fn vdsr_style_4bit_weights_8bit_acts() {
        // The VDSR accelerator quantizes weights to 4 bits and activations
        // to 8 bits (§III-C1); the integer path must stay usable.
        let mut rng = seeded_rng(3);
        let conv = he_conv2d(4, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 8, 8], 0.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let q_out = QConv2d::from_conv(&conv, 4)
            .unwrap()
            .forward(&input, QParams::from_abs_max(1.0, 8), PadMode::Zero)
            .unwrap();
        let err = float_out.max_abs_diff(&q_out).unwrap();
        let ref_mag = float_out.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(err / ref_mag < 0.25, "relative error {}", err / ref_mag);
    }

    #[test]
    fn zero_weights_yield_none() {
        let conv = Conv2d::zeros(1, 1, ConvGeom::same(3)).unwrap();
        assert!(QConv2d::from_conv(&conv, 8).is_none());
        assert!(QuantChainOp::from_conv(&conv, 8, QParams::from_abs_max(1.0, 8)).is_none());
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let mut rng = seeded_rng(4);
        let conv = he_conv2d(3, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let input = Tensor::zeros([1, 2, 8, 8]);
        let act = QParams::from_abs_max(1.0, 8);
        assert!(qconv.forward(&input, act, PadMode::Zero).is_err());
    }

    #[test]
    fn channel_mismatch_is_validated_before_padding() {
        // Regression: the old forward padded first and validated after, so
        // a wrong-channel 1x1 input under reflect padding surfaced as a
        // reflect-padding error instead of the real channel mismatch.
        let mut rng = seeded_rng(5);
        let conv = he_conv2d(3, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let input = Tensor::zeros([1, 2, 1, 1]);
        let act = QParams::from_abs_max(1.0, 8);
        let err = qconv.forward(&input, act, PadMode::Reflect).unwrap_err();
        assert!(
            matches!(err, TensorError::ShapeMismatch { ref context, .. }
                if context.contains("channels")),
            "expected a channel mismatch, got {err:?}"
        );
    }

    #[test]
    fn replicate_block_padding_is_honored() {
        // Regression for the hardcoded PadMode::Zero: under replicate
        // padding the quantized output must track the replicate-padded
        // float convolution; zero padding gives a visibly different answer.
        let mut rng = seeded_rng(6);
        let conv = he_conv2d(2, 2, ConvGeom::same(3), 1, &mut rng).unwrap();
        // Inputs bounded away from zero so replicate and zero padding
        // genuinely disagree on every border pixel.
        let input = uniform_tensor([1, 2, 6, 6], 0.5, 1.0, &mut rng);
        let float_rep =
            conv.forward_prepadded(&pad2d(&input, 1, 1, PadMode::Replicate).unwrap()).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let act = QParams::from_abs_max(1.0, 8);
        let q_rep = qconv.forward(&input, act, PadMode::Replicate).unwrap();
        let q_zero = qconv.forward(&input, act, PadMode::Zero).unwrap();
        let mag = float_rep.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        let err_rep = float_rep.max_abs_diff(&q_rep).unwrap() / mag;
        let err_zero = float_rep.max_abs_diff(&q_zero).unwrap() / mag;
        assert!(err_rep < 0.05, "replicate-padded quant diverges: {err_rep}");
        assert!(
            err_zero > 4.0 * err_rep,
            "zero padding should visibly differ (rep {err_rep}, zero {err_zero})"
        );
    }

    #[test]
    fn prepadded_matches_forward() {
        // forward == pad + forward_prepadded_into: no double padding.
        let mut rng = seeded_rng(7);
        let conv = he_conv2d(2, 3, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let act = QParams::from_abs_max(1.0, 8);
        let whole = qconv.forward(&input, act, PadMode::Replicate).unwrap();
        let padded = pad2d(&input, 1, 1, PadMode::Replicate).unwrap();
        let mut out = Tensor::zeros([0, 0, 0, 0]);
        let mut scratch = QConvScratch::new();
        qconv.forward_prepadded_into(&padded, act, &mut out, &mut scratch).unwrap();
        assert_eq!(whole.data(), out.data(), "prepadded path must be bitwise identical");
    }

    #[test]
    fn chain_op_runs_prepadded_blocks() {
        let mut rng = seeded_rng(8);
        let conv = he_conv2d(2, 2, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let act = QParams::from_abs_max(1.0, 8);
        let op = QuantChainOp::from_conv(&conv, 8, act).unwrap();
        assert_eq!(op.act_params(), act);
        assert_eq!(op.qconv().c_out(), 2);
        let padded = pad2d(&input, 1, 1, PadMode::Zero).unwrap();
        let mut out = Tensor::zeros([0, 0, 0, 0]);
        let mut scratch = QConvScratch::new();
        op.forward_prepadded_into(&padded, &mut out, &mut scratch).unwrap();
        let direct = op.qconv().forward(&input, act, PadMode::Zero).unwrap();
        assert_eq!(out.data(), direct.data());
    }

    #[test]
    fn accessors_report_the_source_convolution() {
        let mut rng = seeded_rng(9);
        let conv = he_conv2d(4, 6, ConvGeom::new(3, 2, 1), 2, &mut rng).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        assert_eq!(qconv.geom(), conv.geom());
        assert_eq!(qconv.groups(), 2);
        assert_eq!(qconv.c_in(), 4);
        assert_eq!(qconv.c_out(), 6);
        assert_eq!(qconv.weight_params().bits(), 8);
    }
}
