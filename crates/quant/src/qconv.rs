//! Integer convolution simulation: quantized weights and activations with
//! wide (i64) accumulators, mirroring the MAC datapath of the paper's
//! accelerators (16/8-bit for VGG-16, 8-bit activations × 4-bit weights for
//! VDSR).

use bconv_tensor::conv::Conv2d;
use bconv_tensor::pad::{pad2d, PadMode};
use bconv_tensor::shape::conv_out_dim;
use bconv_tensor::{Tensor, TensorError};

use crate::{quantize, QParams};

/// A convolution with quantized weights, executing in integer arithmetic.
#[derive(Debug, Clone)]
pub struct QConv2d {
    weight_q: Vec<i32>,
    weight_dims: [usize; 4],
    bias: Vec<f32>,
    weight_params: QParams,
    geom: bconv_tensor::conv::ConvGeom,
    groups: usize,
}

impl QConv2d {
    /// Quantizes a float convolution's weights at `weight_bits`.
    ///
    /// Returns `None` if the weights are all zero (no meaningful scale).
    pub fn from_conv(conv: &Conv2d, weight_bits: u8) -> Option<Self> {
        let abs_max = conv.weight().data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if abs_max == 0.0 {
            return None;
        }
        let weight_params = QParams::from_abs_max(abs_max, weight_bits);
        let weight_q = quantize(conv.weight(), weight_params);
        Some(Self {
            weight_q: weight_q.data,
            weight_dims: conv.weight().shape().dims(),
            bias: conv.bias().to_vec(),
            weight_params,
            geom: conv.geom(),
            groups: conv.groups(),
        })
    }

    /// Weight quantization parameters.
    pub fn weight_params(&self) -> QParams {
        self.weight_params
    }

    /// Runs the convolution on a float input, quantizing activations at
    /// `act_params` and accumulating in i64, then rescaling to float.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the input channel count does not match.
    pub fn forward(&self, input: &Tensor, act_params: QParams) -> Result<Tensor, TensorError> {
        let padded = pad2d(input, self.geom.padding, self.geom.padding, PadMode::Zero)?;
        let [n, c_in, ph, pw] = padded.shape().dims();
        let [c_out, cin_per_group, k, _] = self.weight_dims;
        if c_in != cin_per_group * self.groups {
            return Err(TensorError::shape_mismatch(
                "QConv2d input channels",
                format!("{}", cin_per_group * self.groups),
                format!("{c_in}"),
            ));
        }
        let s = self.geom.stride;
        let oh = conv_out_dim(ph, k, s, 0)?;
        let ow = conv_out_dim(pw, k, s, 0)?;
        let cout_per_group = c_out / self.groups;

        // Quantize activations once.
        let act_q = quantize(&padded, act_params);
        let out_scale = self.weight_params.scale() * act_params.scale();

        let mut out = Tensor::zeros([n, c_out, oh, ow]);
        let idx_in = |ni: usize, c: usize, h: usize, w: usize| ((ni * c_in + c) * ph + h) * pw + w;
        let idx_w =
            |m: usize, c: usize, kh: usize, kw: usize| ((m * cin_per_group + c) * k + kh) * k + kw;

        for ni in 0..n {
            for g in 0..self.groups {
                for mo in 0..cout_per_group {
                    let m = g * cout_per_group + mo;
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let mut acc: i64 = 0;
                            for ci in 0..cin_per_group {
                                let c = g * cin_per_group + ci;
                                for khi in 0..k {
                                    for kwi in 0..k {
                                        let a =
                                            act_q.data[idx_in(ni, c, ohi * s + khi, owi * s + kwi)];
                                        let w = self.weight_q[idx_w(m, ci, khi, kwi)];
                                        acc += a as i64 * w as i64;
                                    }
                                }
                            }
                            *out.at_mut(ni, m, ohi, owi) = acc as f32 * out_scale + self.bias[m];
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::conv::ConvGeom;
    use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};

    #[test]
    fn int8_conv_tracks_float_conv() {
        let mut rng = seeded_rng(1);
        let conv = he_conv2d(3, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 3, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let q_out = qconv.forward(&input, QParams::from_abs_max(1.0, 8)).unwrap();
        let err = float_out.max_abs_diff(&q_out).unwrap();
        let ref_mag = float_out.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(err / ref_mag < 0.05, "relative error {}", err / ref_mag);
    }

    #[test]
    fn wider_bitwidth_reduces_error() {
        let mut rng = seeded_rng(2);
        let conv = he_conv2d(2, 2, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let act = QParams::from_abs_max(1.0, 8);
        let e4 = float_out
            .max_abs_diff(&QConv2d::from_conv(&conv, 4).unwrap().forward(&input, act).unwrap())
            .unwrap();
        let e8 = float_out
            .max_abs_diff(&QConv2d::from_conv(&conv, 8).unwrap().forward(&input, act).unwrap())
            .unwrap();
        let e16 = float_out
            .max_abs_diff(&QConv2d::from_conv(&conv, 16).unwrap().forward(&input, act).unwrap())
            .unwrap();
        assert!(e4 > e8, "4-bit {e4} should exceed 8-bit {e8}");
        assert!(e8 > e16, "8-bit {e8} should exceed 16-bit {e16}");
    }

    #[test]
    fn vdsr_style_4bit_weights_8bit_acts() {
        // The VDSR accelerator quantizes weights to 4 bits and activations
        // to 8 bits (§III-C1); the integer path must stay usable.
        let mut rng = seeded_rng(3);
        let conv = he_conv2d(4, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 8, 8], 0.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let q_out = QConv2d::from_conv(&conv, 4)
            .unwrap()
            .forward(&input, QParams::from_abs_max(1.0, 8))
            .unwrap();
        let err = float_out.max_abs_diff(&q_out).unwrap();
        let ref_mag = float_out.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(err / ref_mag < 0.25, "relative error {}", err / ref_mag);
    }

    #[test]
    fn zero_weights_yield_none() {
        let conv = Conv2d::zeros(1, 1, ConvGeom::same(3)).unwrap();
        assert!(QConv2d::from_conv(&conv, 8).is_none());
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let mut rng = seeded_rng(4);
        let conv = he_conv2d(3, 4, ConvGeom::same(3), 1, &mut rng).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let input = Tensor::zeros([1, 2, 8, 8]);
        assert!(qconv.forward(&input, QParams::from_abs_max(1.0, 8)).is_err());
    }
}
