//! The integer fast path: the quantized counterpart of
//! [`bconv_tensor::kernel::Im2colGemmKernel`].
//!
//! The direct loop in [`crate::qconv`] pays seven nested loops of strided
//! reads per output element. This module replaces it with two kernels,
//! dispatched per layer shape in `qim2col_gemm`: the exact-f32 **plane
//! shift-and-add kernel** (`qplane_conv`) for 3×3 stride-1 layers whose
//! reduction bound stays inside f32's exact-integer range, and otherwise
//! an im2col + widening GEMM built from
//!
//! 1. a **packed weight matrix** ([`QPackedWeights`]) — the per-channel
//!    quantized weights narrowed to `i16` rows, built once when the
//!    [`QConv2d`] is constructed and never repacked
//!    per run;
//! 2. an **`i16` im2col patch matrix** (position-major `N×K`: each output
//!    position's `K` taps are contiguous, in the direct loop's
//!    `(c_in, kh, kw)` tap order), built per block in reusable scratch;
//! 3. a **widening dot-product microkernel**: `i16×i16→i32` multiplies
//!    accumulated in `i32` lanes — the idiom LLVM lowers to `pmaddwd`-style
//!    instructions — with an `i64` fallback for layers whose reduction
//!    could overflow 32 bits.
//!
//! # Bitwise parity with the direct loop
//!
//! Integer accumulation is exact, so *any* summation order yields the same
//! total as the direct loop's `i64` accumulator provided no intermediate
//! overflows. Every partial sum here is bounded by
//! `K · max|w_q| · qmax_act`; when that bound fits `i32` the vectorizable
//! `i32` kernel is exact, otherwise the `i64` kernel is used. The final
//! rescale `acc as f32 * (w_scale[m] * act_scale) + bias[m]` is the direct
//! loop's expression verbatim, so the two paths are bitwise identical —
//! unlike the float GEMM, which must preserve accumulation order.

use bconv_tensor::shape::conv_out_dim;
use bconv_tensor::{Tensor, TensorError};

use crate::qconv::{QConv2d, QConvScratch};
use crate::QParams;

/// Quantized weights packed for the integer GEMM: row-major `M×K` `i16`
/// rows per group (quantized at the layer's per-channel scales, narrowed
/// from the direct loop's `i32` storage — every representable weight fits
/// `i16` at bitwidths up to 16), plus the same rows as integer-valued
/// `f32` for the exact-f32 plane kernel. Built once at
/// [`QConv2d`] construction.
#[derive(Debug, Clone)]
pub struct QPackedWeights {
    data: Vec<i16>,
    data_f32: Vec<f32>,
    max_abs: i32,
}

impl QPackedWeights {
    /// Packs already-quantized weights (any layout whose rows the caller
    /// will index consistently; [`QConv2d`] passes
    /// its `[c_out, c_in/g, k, k]` row-major buffer).
    pub(crate) fn pack(weight_q: &[i32]) -> Self {
        let mut max_abs = 0i32;
        let mut data = Vec::with_capacity(weight_q.len());
        let mut data_f32 = Vec::with_capacity(weight_q.len());
        for &w in weight_q {
            max_abs = max_abs.max(w.abs());
            data.push(w as i16);
            // Exact: |w| <= 32767 is far inside f32's integer range.
            data_f32.push(w as f32);
        }
        Self { data, data_f32, max_abs }
    }

    /// Largest absolute quantized weight — the tight per-layer factor in
    /// the accumulator-width bound.
    pub fn max_abs(&self) -> i32 {
        self.max_abs
    }

    /// Packed element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no weights are packed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `m × kk` weight rows of one group.
    pub(crate) fn group_rows(&self, grp: usize, m: usize, kk: usize) -> &[i16] {
        &self.data[grp * m * kk..(grp + 1) * m * kk]
    }

    /// The `m × kk` weight rows of one group as integer-valued `f32`.
    pub(crate) fn group_rows_f32(&self, grp: usize, m: usize, kk: usize) -> &[f32] {
        &self.data_f32[grp * m * kk..(grp + 1) * m * kk]
    }
}

/// The integer im2col+GEMM kernel, mirroring the float
/// [`Im2colGemmKernel`](bconv_tensor::kernel::Im2colGemmKernel) behind the
/// same resolved-[`KernelKind`](bconv_tensor::kernel::KernelKind) seam.
#[derive(Debug, Clone, Copy, Default)]
pub struct QIm2colGemmKernel;

impl QIm2colGemmKernel {
    /// Kernel name for reports and plan dumps.
    pub fn name(&self) -> &'static str {
        "im2col-gemm"
    }

    /// Evaluates `qconv` on a pre-padded input through the integer GEMM,
    /// bitwise identical to the direct loop.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on channel/shape mismatch.
    pub fn forward_prepadded_into(
        &self,
        qconv: &QConv2d,
        padded: &Tensor,
        act_params: QParams,
        out: &mut Tensor,
        scratch: &mut QConvScratch,
    ) -> Result<(), TensorError> {
        qim2col_gemm(qconv, padded, act_params, out, scratch)
    }
}

/// How many partial-sum magnitudes f32 holds exactly: every integer below
/// `2^24` is representable, so integer accumulation carried in f32 lanes is
/// bit-exact as long as `K * max|w_q| * qmax_act` stays under this.
const F32_EXACT_LIMIT: i64 = 1 << 24;

/// Plane-kernel cutover: above this reduction length the dot-product GEMM's
/// `pmaddwd` density wins over the plane kernel's build-free streaming (the
/// plane path re-reads all input planes once per output channel).
const PLANE_MAX_KK: usize = 192;

/// The integer fast path. Dispatches per layer shape:
///
/// * 3×3 stride-1 layers whose reduction bound fits f32's exact-integer
///   range take the **plane shift-and-add kernel** (`qplane_conv`) — no
///   patch matrix at all;
/// * everything else quantizes to `i16`, im2cols per (batch, group), and
///   runs the widening dot-product GEMM.
///
/// Hot path — performs no allocation once `scratch` has grown to the
/// layer's working size.
pub(crate) fn qim2col_gemm(
    q: &QConv2d,
    padded: &Tensor,
    act_params: QParams,
    out: &mut Tensor,
    scratch: &mut QConvScratch,
) -> Result<(), TensorError> {
    let [n, c_in, ph, pw] = padded.shape().dims();
    q.check_channels("QConv2d prepadded input channels", c_in)?;
    let [c_out, cin_per_group, k, _] = q.weight_dims;
    let s = q.geom.stride;
    let oh = conv_out_dim(ph, k, s, 0)?;
    let ow = conv_out_dim(pw, k, s, 0)?;
    let groups = q.groups;
    let cout_per_group = c_out / groups;
    let kk = cin_per_group * k * k;
    let nn = oh * ow;

    // Accumulation bound over any association of the reduction (each
    // partial sum is at most K * max|w_q| * qmax_act in magnitude).
    let bound = kk as i64 * q.packed.max_abs() as i64 * act_params.qmax() as i64;
    if k == 3 && s == 1 && bound < F32_EXACT_LIMIT && kk <= PLANE_MAX_KK {
        return qplane_conv(q, padded, act_params, out, scratch);
    }
    let QConvScratch { act16, cols, .. } = scratch;

    // Activations are quantized through the same QParams rounding as the
    // direct loop; every value fits i16 (|q| <= qmax <= 32767).
    act16.resize(padded.data().len(), 0);
    for (dst, &v) in act16.iter_mut().zip(padded.data()) {
        *dst = act_params.quantize_value(v) as i16;
    }
    cols.resize(nn * kk, 0);

    // Accumulator width: i32 lanes are exact whenever the bound fits;
    // otherwise the i64 kernel computes the same value wider.
    let wide = bound > i32::MAX as i64;
    let act_scale = act_params.scale();

    out.reset([n, c_out, oh, ow]);
    let oshape = out.shape();
    let odata = out.data_mut();

    for ni in 0..n {
        for grp in 0..groups {
            if k == 1 && s == 1 {
                // Pointwise: the patch matrix is the channel-plane
                // transpose; fill it column-by-column with contiguous
                // plane reads.
                for ci in 0..cin_per_group {
                    let c = grp * cin_per_group + ci;
                    let base = (ni * c_in + c) * ph * pw;
                    let plane = &act16[base..base + nn];
                    for (j, &v) in plane.iter().enumerate() {
                        cols[j * kk + ci] = v;
                    }
                }
            } else {
                // im2col, position-major: output position j's K taps are
                // contiguous, in the direct loop's (ci, kh, kw) tap order.
                // Positions iterate innermost over a hoisted source row so
                // the per-tap-row work is a handful of stores — a
                // `copy_from_slice` per k-tap row costs more in memcpy
                // dispatch than it moves at k == 3.
                for ohi in 0..oh {
                    let prow = &mut cols[ohi * ow * kk..(ohi + 1) * ow * kk];
                    let mut l = 0;
                    for ci in 0..cin_per_group {
                        let c = grp * cin_per_group + ci;
                        for khi in 0..k {
                            let base = ((ni * c_in + c) * ph + (ohi * s + khi)) * pw;
                            let src = &act16[base..base + pw];
                            if k == 3 {
                                for (owi, patch) in prow.chunks_exact_mut(kk).enumerate() {
                                    let b = owi * s;
                                    patch[l] = src[b];
                                    patch[l + 1] = src[b + 1];
                                    patch[l + 2] = src[b + 2];
                                }
                            } else {
                                for (owi, patch) in prow.chunks_exact_mut(kk).enumerate() {
                                    let b = owi * s;
                                    patch[l..l + k].copy_from_slice(&src[b..b + k]);
                                }
                            }
                            l += k;
                        }
                    }
                }
            }
            let mbase = grp * cout_per_group;
            let wgrp = q.packed.group_rows(grp, cout_per_group, kk);
            let c0 = oshape.index(ni, mbase, 0, 0);
            let cdst = &mut odata[c0..c0 + cout_per_group * nn];
            qgemm(
                wgrp,
                cols,
                &q.bias[mbase..mbase + cout_per_group],
                &q.wscales[mbase..mbase + cout_per_group],
                act_scale,
                cdst,
                kk,
                nn,
                wide,
            );
        }
    }
    Ok(())
}

/// The exact-f32 plane kernel for 3×3 stride-1 layers: activations are
/// quantized to **integer-valued f32** and the convolution runs as nine
/// fused shift-and-add sweeps per input channel over accumulators kept in
/// the padded-width plane layout. One contiguous multiply-add spans the
/// whole plane per channel (the `pw - ow` junk columns where windows wrap
/// rows are computed but never extracted), so there is no patch matrix and
/// no horizontal reduction — the two costs that dominate the dot-product
/// GEMM at thin reduction lengths.
///
/// # Bitwise parity with the direct loop
///
/// Caller guarantees `K * max|w_q| * qmax_act < 2^24`: every product and
/// every partial sum (in any association, junk columns included) is then
/// an integer in f32's exact range, each f32 multiply and add is exact,
/// and the accumulated value equals the direct loop's i64 accumulator
/// cast to f32. The rescale `acc * (wscale[m]*act_scale) + bias[m]` is
/// the direct loop's expression verbatim.
fn qplane_conv(
    q: &QConv2d,
    padded: &Tensor,
    act_params: QParams,
    out: &mut Tensor,
    scratch: &mut QConvScratch,
) -> Result<(), TensorError> {
    let QConvScratch { actf, accf, .. } = scratch;
    let [n, c_in, ph, pw] = padded.shape().dims();
    let [c_out, cin_per_group, k, _] = q.weight_dims;
    debug_assert_eq!(k, 3);
    let oh = conv_out_dim(ph, k, 1, 0)?;
    let ow = conv_out_dim(pw, k, 1, 0)?;
    let groups = q.groups;
    let cout_per_group = c_out / groups;
    let kk = cin_per_group * 9;
    let plane = ph * pw;
    // Rows `0..oh` of the accumulator plane hold output rows at padded
    // width; the last row needs only `ow` columns.
    let span = (oh - 1) * pw + ow;

    actf.resize(padded.data().len(), 0.0);
    for (dst, &v) in actf.iter_mut().zip(padded.data()) {
        *dst = act_params.quantize_value_f32(v);
    }
    accf.resize(span, 0.0);
    let act_scale = act_params.scale();

    out.reset([n, c_out, oh, ow]);
    let oshape = out.shape();
    let odata = out.data_mut();

    for ni in 0..n {
        for grp in 0..groups {
            let wgrp = q.packed.group_rows_f32(grp, cout_per_group, kk);
            for mo in 0..cout_per_group {
                let m = grp * cout_per_group + mo;
                let wrow = &wgrp[mo * kk..(mo + 1) * kk];
                // The direct loop's rescale expression verbatim.
                let os = q.wscales[m] * act_scale;
                let bi = q.bias[m];
                let acc = &mut accf[..span];
                acc.fill(0.0);
                for ci in 0..cin_per_group {
                    let c = grp * cin_per_group + ci;
                    let base = (ni * c_in + c) * plane;
                    let src = &actf[base..base + plane];
                    let wt = &wrow[ci * 9..ci * 9 + 9];
                    let (w0, w1, w2) = (wt[0], wt[1], wt[2]);
                    let (w3, w4, w5) = (wt[3], wt[4], wt[5]);
                    let (w6, w7, w8) = (wt[6], wt[7], wt[8]);
                    // Three source rows per accumulator element; the
                    // `span + 2` windows end exactly at the plane's edge.
                    let r0 = &src[0..span + 2];
                    let r1 = &src[pw..pw + span + 2];
                    let r2 = &src[2 * pw..2 * pw + span + 2];
                    for (i, a) in acc.iter_mut().enumerate() {
                        *a += w0 * r0[i]
                            + w1 * r0[i + 1]
                            + w2 * r0[i + 2]
                            + w3 * r1[i]
                            + w4 * r1[i + 1]
                            + w5 * r1[i + 2]
                            + w6 * r2[i]
                            + w7 * r2[i + 1]
                            + w8 * r2[i + 2];
                    }
                }
                let o0 = oshape.index(ni, m, 0, 0);
                for ohi in 0..oh {
                    let arow = &acc[ohi * pw..ohi * pw + ow];
                    let dst = &mut odata[o0 + ohi * ow..o0 + (ohi + 1) * ow];
                    for (o, &a) in dst.iter_mut().zip(arow) {
                        *o = a * os + bi;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Patch-tile width: how many output positions stay L1-resident while the
/// weight rows stream past them.
const JT: usize = 8;

/// `out[m][j] = dot(w[m], patch[j]) * (wscale[m]*act_scale) + bias[m]`.
///
/// Tiled so `JT` patch rows stay hot in L1 across the whole weight-row
/// sweep; each dot product is a straight widening reduction the
/// auto-vectorizer turns into `pmaddwd`-style lanes.
#[allow(clippy::too_many_arguments)] // flat hot-path signature, no temp structs
fn qgemm(
    w: &[i16],
    cols: &[i16],
    bias: &[f32],
    wscales: &[f32],
    act_scale: f32,
    out: &mut [f32],
    kk: usize,
    nn: usize,
    wide: bool,
) {
    // Monomorphize on the accumulator width: a per-dot branch in the inner
    // loop costs ~15% at thin reduction lengths.
    if wide {
        qgemm_body::<true>(w, cols, bias, wscales, act_scale, out, kk, nn);
    } else {
        qgemm_body::<false>(w, cols, bias, wscales, act_scale, out, kk, nn);
    }
}

#[allow(clippy::too_many_arguments)] // flat hot-path signature, no temp structs
fn qgemm_body<const WIDE: bool>(
    w: &[i16],
    cols: &[i16],
    bias: &[f32],
    wscales: &[f32],
    act_scale: f32,
    out: &mut [f32],
    kk: usize,
    nn: usize,
) {
    let mut jt = 0;
    while jt < nn {
        let jn = JT.min(nn - jt);
        for (mi, orow) in out.chunks_exact_mut(nn).enumerate() {
            let wrow = &w[mi * kk..(mi + 1) * kk];
            // The direct loop's rescale expression verbatim (same operand
            // order), so both kernels produce identical f32 bits.
            let os = wscales[mi] * act_scale;
            let bi = bias[mi];
            for j in jt..jt + jn {
                let patch = &cols[j * kk..(j + 1) * kk];
                let acc = if WIDE {
                    dot_i16_i64(wrow, patch) as f32
                } else {
                    dot_i16_i32(wrow, patch) as f32
                };
                orow[j] = acc * os + bi;
            }
        }
        jt += JT;
    }
}

/// Widening `i16` dot product with `i32` accumulation — exact when the
/// caller has bounded `K * max|w| * max|x|` to `i32` range (any partial
/// sum is then also in range, so vectorized reassociation is safe).
#[inline]
pub(crate) fn dot_i16_i32(a: &[i16], b: &[i16]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// Widening `i16` dot product with `i64` accumulation, for layers whose
/// reduction bound exceeds `i32` (e.g. wide-activation w8a16 layers).
#[inline]
pub(crate) fn dot_i16_i64(a: &[i16], b: &[i16]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i64 * y as i64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_narrows_and_tracks_max() {
        let p = QPackedWeights::pack(&[3, -7, 0, 32767, -32767]);
        assert_eq!(p.max_abs(), 32767);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.group_rows(0, 1, 5), &[3, -7, 0, 32767, -32767]);
    }

    #[test]
    fn dot_products_agree_across_widths() {
        let a: Vec<i16> = (0..100).map(|i| (i * 37 % 255) as i16 - 127).collect();
        let b: Vec<i16> = (0..100).map(|i| (i * 91 % 255) as i16 - 127).collect();
        assert_eq!(dot_i16_i32(&a, &b) as i64, dot_i16_i64(&a, &b));
    }

    #[test]
    fn i32_bound_is_conservative() {
        // 127*127*k at k = 133,000 stays within i32: the w8a8 path never
        // needs the wide kernel at any realistic reduction length.
        let bound = 133_000i64 * 127 * 127;
        assert!(bound <= i32::MAX as i64);
    }
}
