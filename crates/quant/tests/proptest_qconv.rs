//! Property tests: [`QConv2d`] vs [`Conv2d`] parity across convolution
//! geometry (kernel, stride, padding, groups) and bitwidths.
//!
//! Two invariants:
//!
//! * the integer simulation's error against the float convolution stays
//!   inside the analytic quantization bound (taps × per-tap rounding);
//! * the error shrinks monotonically as either bitwidth widens (paper
//!   Figure 7's premise for choosing deployment precisions).

use bconv_quant::qconv::QConv2d;
use bconv_quant::QParams;
use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::kernel::KernelKind;
use bconv_tensor::pad::PadMode;
use proptest::prelude::*;

/// Analytic per-output bound on the integer-simulation error: each of the
/// `k²·c_in/groups` taps contributes at most `|a|·s_w/2` (weight rounding)
/// plus `(|w| + s_w/2)·s_a/2` (activation rounding of the already-rounded
/// weight), with `|a| ≤ a_max` and `|w| ≤ w_max`. Bias is exact.
fn error_bound(conv: &Conv2d, q: &QConv2d, act: QParams, a_max: f32) -> f32 {
    let k = conv.geom().kernel;
    let taps = (k * k * conv.c_in() / conv.groups()) as f32;
    let w_max = conv.weight().data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let sw = q.weight_params().step();
    let sa = act.step();
    taps * (a_max * sw / 2.0 + (w_max + sw / 2.0) * sa / 2.0) + 1e-4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantized error is inside the analytic bound for every geometry the
    /// dense convolution supports, at every weight bitwidth.
    #[test]
    fn qconv_error_is_bounded_across_geometries(
        k_idx in 0usize..2,       // kernel in {1, 3}
        stride in 1usize..3,
        pad in 0usize..2,
        g_idx in 0usize..2,       // groups in {1, 2}
        wb_idx in 0usize..3,      // weight bits in {4, 8, 16}
        ab_idx in 0usize..2,      // act bits in {8, 16}
        seed in 0u64..500,
    ) {
        let k = [1usize, 3][k_idx];
        let groups = [1usize, 2][g_idx];
        let weight_bits = [4u8, 8, 16][wb_idx];
        let act_bits = [8u8, 16][ab_idx];
        let mut rng = seeded_rng(seed);
        let conv = he_conv2d(4, 4, ConvGeom::new(k, stride, pad), groups, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let qconv = QConv2d::from_conv(&conv, weight_bits).unwrap();
        let act = QParams::from_abs_max(1.0, act_bits);
        let q_out = qconv.forward(&input, act, PadMode::Zero).unwrap();
        prop_assert_eq!(q_out.shape(), float_out.shape());
        let err = float_out.max_abs_diff(&q_out).unwrap();
        let bound = error_bound(&conv, &qconv, act, 1.0);
        prop_assert!(err <= bound, "err {err} exceeds analytic bound {bound}");
    }

    /// Widening either bitwidth shrinks the error, up to the finer width's
    /// own quantization noise: individual roundings can cancel, so the
    /// wide-bit error may only exceed the narrow-bit error when both sit
    /// inside the wide configuration's analytic bound. The bound ladder
    /// itself is strictly monotone.
    #[test]
    fn qconv_error_shrinks_with_bits(
        stride in 1usize..3,
        g_idx in 0usize..2,
        seed in 0u64..500,
    ) {
        let groups = [1usize, 2][g_idx];
        let mut rng = seeded_rng(seed ^ 0xB175);
        let conv = he_conv2d(2, 2, ConvGeom::new(3, stride, 1), groups, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        // (error, analytic bound) at a precision.
        let run = |weight_bits: u8, act_bits: u8| {
            let q = QConv2d::from_conv(&conv, weight_bits).unwrap();
            let act = QParams::from_abs_max(1.0, act_bits);
            let err = float_out
                .max_abs_diff(&q.forward(&input, act, PadMode::Zero).unwrap())
                .unwrap();
            (err, error_bound(&conv, &q, act, 1.0))
        };
        // Weight-bit ladder at fixed 8-bit activations, then the
        // activation-bit ladder at fixed 8-bit weights.
        let ladders = [
            (run(4, 8), run(8, 8)),
            (run(8, 8), run(16, 8)),
            (run(8, 4), run(8, 8)),
            (run(8, 8), run(8, 16)),
        ];
        for ((narrow_err, narrow_bound), (wide_err, wide_bound)) in ladders {
            prop_assert!(
                wide_bound < narrow_bound,
                "bound must shrink: {narrow_bound} -> {wide_bound}"
            );
            prop_assert!(
                wide_err <= narrow_err.max(wide_bound),
                "wide-bit err {wide_err} exceeds narrow-bit err {narrow_err} beyond wide bound \
                 {wide_bound}"
            );
        }
    }

    /// Depthwise convolution (groups == channels) stays exact-per-channel:
    /// parity holds in the grouped indexing, not just dense layouts.
    #[test]
    fn depthwise_qconv_stays_bounded(
        seed in 0u64..500,
        pad in 0usize..2,
    ) {
        let mut rng = seeded_rng(seed ^ 0xD311);
        let conv = he_conv2d(4, 4, ConvGeom::new(3, 1, pad), 4, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 6, 6], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let qconv = QConv2d::from_conv(&conv, 8).unwrap();
        let act = QParams::from_abs_max(1.0, 8);
        let q_out = qconv.forward(&input, act, PadMode::Zero).unwrap();
        let err = float_out.max_abs_diff(&q_out).unwrap();
        let bound = error_bound(&conv, &qconv, act, 1.0);
        prop_assert!(err <= bound, "depthwise err {err} exceeds bound {bound}");
    }

    /// The integer im2col+GEMM kernel is BITWISE identical to the direct
    /// loop across geometry (1x1/3x3, strides, padding, grouped and
    /// depthwise layouts) and bitwidths, including the w16a16 corner that
    /// trips the conservative i32-overflow guard into the exact i64 dot
    /// lanes. Integer accumulation is order-exact, so any divergence here
    /// is a real indexing or rescale bug, not rounding.
    #[test]
    fn gemm_kernel_is_bitwise_identical_to_direct_loop(
        k_idx in 0usize..2,       // kernel in {1, 3}
        stride in 1usize..3,
        pad in 0usize..2,
        g_idx in 0usize..3,       // groups in {1, 2, 4 (depthwise)}
        wb_idx in 0usize..3,      // weight bits in {4, 8, 16}
        ab_idx in 0usize..2,      // act bits in {8, 16}
        seed in 0u64..500,
    ) {
        let k = [1usize, 3][k_idx];
        let groups = [1usize, 2, 4][g_idx];
        let weight_bits = [4u8, 8, 16][wb_idx];
        let act_bits = [8u8, 16][ab_idx];
        let mut rng = seeded_rng(seed ^ 0x6E44);
        let conv = he_conv2d(4, 4, ConvGeom::new(k, stride, pad), groups, &mut rng).unwrap();
        let input = uniform_tensor([2, 4, 7, 7], -1.0, 1.0, &mut rng);
        let act = QParams::from_abs_max(1.0, act_bits);
        let direct = QConv2d::from_conv_with_kernel(&conv, weight_bits, KernelKind::Direct)
            .unwrap()
            .forward(&input, act, PadMode::Zero)
            .unwrap();
        let gemm = QConv2d::from_conv_with_kernel(&conv, weight_bits, KernelKind::Im2colGemm)
            .unwrap()
            .forward(&input, act, PadMode::Zero)
            .unwrap();
        prop_assert_eq!(direct.shape(), gemm.shape());
        prop_assert_eq!(direct.data(), gemm.data(), "k{k} s{stride} p{pad} g{groups} w{weight_bits}a{act_bits}");
    }

    /// Per-channel weight scales never quantize a weight worse than the
    /// per-tensor envelope: every channel's step divides the envelope's
    /// range finer (or equally, for the max-magnitude channel), so each
    /// round-tripped weight lands within the envelope's half-step.
    #[test]
    fn per_channel_weight_error_is_within_per_tensor_half_step(
        g_idx in 0usize..2,
        wb_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let groups = [1usize, 2][g_idx];
        let weight_bits = [4u8, 8, 16][wb_idx];
        let mut rng = seeded_rng(seed ^ 0x9C41);
        let conv = he_conv2d(4, 6, ConvGeom::new(3, 1, 1), groups, &mut rng).unwrap();
        let q = QConv2d::from_conv(&conv, weight_bits).unwrap();
        let envelope = QConv2d::from_conv_per_tensor(&conv, weight_bits, KernelKind::Direct)
            .unwrap();
        let half_step = envelope.weight_params().step() / 2.0;
        let kk = conv.weight().data().len() / conv.c_out();
        for (m, &scale) in q.weight_scales().iter().enumerate() {
            prop_assert!(scale <= envelope.weight_params().scale() + 1e-12,
                "channel {m} scale {scale} exceeds envelope");
            for l in 0..kk {
                let w = conv.weight().data()[m * kk + l];
                let wq = (w / scale).round() * scale;
                prop_assert!((w - wq).abs() <= half_step + 1e-6,
                    "channel {m} tap {l}: per-channel error {} beyond envelope half-step {half_step}",
                    (w - wq).abs());
            }
        }
    }

    /// End-to-end, per-channel scales keep the output error inside the
    /// envelope-based analytic bound — the per-tensor guarantee carries
    /// over unchanged (and usually improves) under finer channel scales.
    #[test]
    fn per_channel_output_error_stays_in_envelope_bound(
        stride in 1usize..3,
        ab_idx in 0usize..2,
        seed in 0u64..500,
    ) {
        let act_bits = [8u8, 16][ab_idx];
        let mut rng = seeded_rng(seed ^ 0x5CA1);
        let conv = he_conv2d(4, 4, ConvGeom::new(3, stride, 1), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 4, 8, 8], -1.0, 1.0, &mut rng);
        let float_out = conv.forward(&input).unwrap();
        let act = QParams::from_abs_max(1.0, act_bits);
        let per_channel = QConv2d::from_conv(&conv, 8).unwrap();
        let pc_err = float_out
            .max_abs_diff(&per_channel.forward(&input, act, PadMode::Zero).unwrap())
            .unwrap();
        // weight_params() is the per-tensor envelope, so this is exactly
        // the bound the per-tensor configuration must honour.
        let bound = error_bound(&conv, &per_channel, act, 1.0);
        prop_assert!(pc_err <= bound, "per-channel err {pc_err} exceeds envelope bound {bound}");
    }
}
