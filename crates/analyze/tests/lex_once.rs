//! Asserts the single-lex-per-file invariant: the workspace driver lexes
//! each source exactly once and shares the token stream between the
//! per-file lints and the symbol resolver. Lives in its own integration
//! binary so no other test in the process touches the global counter.

use bconv_analyze::lexer::LEX_CALLS;
use bconv_analyze::lints::Config;
use std::sync::atomic::Ordering;

#[test]
fn analyze_sources_lexes_each_file_exactly_once() {
    let sources: Vec<(String, String)> = vec![
        (
            "crates/core/src/a.rs".to_string(),
            "fn worker_loop() { helper(); }\nfn helper() { let v = vec![1]; }".to_string(),
        ),
        ("crates/core/src/b.rs".to_string(), "fn cold() { let a = x.unwrap(); }".to_string()),
        ("crates/core/src/c.rs".to_string(), "struct S;".to_string()),
    ];
    let before = LEX_CALLS.load(Ordering::Relaxed);
    let report = bconv_analyze::analyze_sources(&sources, &Config::workspace());
    let after = LEX_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        sources.len(),
        "every lint and the resolver must share one lex per file"
    );
    // Sanity: the single pass still fed all lints — L1 through the graph
    // (helper is reachable from worker_loop) and L4 per file.
    assert!(report.findings.iter().any(|f| f.construct == "vec!" && f.func == "helper"));
    assert_eq!(report.panic_counts().get("crates/core/src/b.rs"), Some(&1));
}
