//! Fixture tests for the analyzer: every lint gets at least one positive
//! fixture (the lint must fire) and one negative fixture (it must stay
//! quiet), plus lexer edge cases that historically produce false
//! positives in grep-based checkers (comments, strings, test scopes).

use bconv_analyze::lints::{scan_source, Config, Lint};
use bconv_analyze::{
    analyze_sources, apply_allowlist, check_ratchet, parse_allowlist, parse_ratchet,
    render_ratchet, WorkspaceReport,
};
use std::collections::BTreeMap;

fn cfg() -> Config {
    Config::workspace()
}

/// Scan under a hot-path-relevant filename with the workspace config.
fn scan(file: &str, src: &str) -> bconv_analyze::lints::FileReport {
    scan_source(file, src, &cfg())
}

/// Run the whole pipeline (per-file lints + call graph) over in-memory
/// sources with the workspace config — same code path CI takes.
fn ws(files: &[(&str, &str)]) -> WorkspaceReport {
    let sources: Vec<(String, String)> =
        files.iter().map(|(f, s)| ((*f).to_string(), (*s).to_string())).collect();
    analyze_sources(&sources, &cfg())
}

// --- lexer robustness -------------------------------------------------------

#[test]
fn comments_and_strings_never_fire() {
    let src = r##"
        // this comment says x.unwrap() and vec![] and HashMap
        /* block comment: panic!("no") /* nested */ still comment */
        /// doc: prefer `foo.expect("msg")` over unwrap()
        fn worker_loop() {
            let s = "vec![1] Vec::new() .collect() unwrap() HashMap";
            let r = r#"format!("{}", x) panic!"#;
            let c = 'u'; // not a lifetime, not an ident
            let _ = (s, r, c);
        }
    "##;
    let rep = scan("crates/graph/src/serve.rs", src);
    assert!(rep.findings.is_empty(), "phantom findings: {:?}", rep.findings);
    assert_eq!(rep.panic_count(), 0);
}

#[test]
fn lifetimes_do_not_confuse_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { let _c = 'x'; x }";
    let rep = scan("crates/graph/src/serve.rs", src);
    assert!(rep.findings.is_empty());
}

// --- L1 allocation reachability ---------------------------------------------

#[test]
fn l1_fires_on_every_banned_construct_in_reachable_fn() {
    let src = r#"
        fn worker_loop(&self) {
            let a = Vec::new();
            let b = vec![0u8; 4];
            let c = Vec::with_capacity(4);
            let d = x.to_vec();
            let e = it.collect();
            let f = Tensor::zeros([1, 1, 2, 2]);
            let g = Box::new(3);
            let h = format!("{}", 1);
        }
    "#;
    let rep = ws(&[("crates/core/src/whatever.rs", src)]);
    let constructs: Vec<&str> = rep.findings.iter().map(|f| f.construct.as_str()).collect();
    for want in [
        "Vec::new",
        "vec!",
        "with_capacity",
        "to_vec",
        "collect",
        "Tensor::zeros",
        "Box::new",
        "format!",
    ] {
        assert!(constructs.contains(&want), "missing {want}: {constructs:?}");
    }
    assert!(rep.findings.iter().all(|f| f.lint == Lint::HotPathAlloc));
    assert!(rep.findings.iter().all(|f| f.func == "worker_loop"));
}

/// The acceptance criterion for the reachability rework: a brand-new
/// helper called (transitively) from `run_fused_into` is flagged with no
/// analyzer change and no config edit — hotness comes from the graph.
#[test]
fn l1_flags_new_helper_reachable_from_run_fused_into() {
    let spine = r#"
        struct Session;
        impl Session {
            fn run_with(&self, x: u32) -> u32 { self.executor.run_scratch(x) }
        }
        struct BlockedExecutor;
        impl BlockedExecutor {
            fn run_scratch(&self, x: u32) -> u32 { run_fused_into(x) }
        }
        fn run_fused_into(x: u32) -> u32 { freshly_added_helper(x) }
    "#;
    let helper = r#"
        fn freshly_added_helper(x: u32) -> u32 {
            let staging = vec![x];
            staging[0]
        }
        fn cold_path() { let v = Vec::new(); }
    "#;
    let rep = ws(&[("crates/core/src/spine.rs", spine), ("crates/core/src/helper.rs", helper)]);
    let l1: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::HotPathAlloc).collect();
    assert_eq!(l1.len(), 1, "{l1:?}");
    assert_eq!(l1[0].func, "freshly_added_helper");
    assert_eq!(l1[0].construct, "vec!");
    assert!(rep.hot_fns.iter().any(|f| f == "freshly_added_helper"), "{:?}", rep.hot_fns);
    assert!(!rep.hot_fns.iter().any(|f| f == "cold_path"));
}

#[test]
fn l1_silent_in_unreachable_fns_and_in_tests() {
    let cold = "fn plan() { let v = vec![1]; let s = x.collect(); }";
    assert!(ws(&[("crates/core/src/x.rs", cold)]).findings.is_empty());

    // A test-scoped fn named like an entry point neither seeds the walk
    // nor contributes edges to the graph.
    let test_mod = r#"
        #[cfg(test)]
        mod tests {
            fn worker_loop() { let v = vec![1]; run_fused_into(); }
        }
        fn run_fused_into() { let w = Vec::new(); }
    "#;
    assert!(ws(&[("crates/core/src/x.rs", test_mod)]).findings.is_empty());

    let test_fn = "#[test]\nfn worker_loop() { let v = Vec::new(); }";
    assert!(ws(&[("crates/core/src/x.rs", test_fn)]).findings.is_empty());
}

#[test]
fn l1_covers_closures_inside_reachable_fn() {
    let src = "fn worker_loop() { let f = || inner.iter().collect(); }";
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    assert_eq!(rep.findings.iter().filter(|f| f.construct == "collect").count(), 1);
    assert_eq!(rep.findings[0].func, "worker_loop");
}

// --- call-graph resolution ---------------------------------------------------

#[test]
fn graph_resolves_direct_method_and_trait_calls() {
    let src = r#"
        struct Session;
        impl Session {
            fn run_with(&self) {
                direct_helper();
                self.chain.splice_stage();
            }
        }
        struct FusedChain;
        impl FusedChain {
            fn splice_stage(&self) { Self::stage_cost(); }
            fn stage_cost() {}
        }
        trait Executor {
            fn run_scratch(&self) { self.default_body_helper(); }
            fn default_body_helper(&self);
        }
        struct RefExec;
        impl Executor for RefExec {
            fn default_body_helper(&self) { trait_leaf(); }
        }
        fn direct_helper() {}
        fn trait_leaf() {}
    "#;
    let rep = ws(&[("crates/core/src/g.rs", src)]);
    for want in [
        "direct_helper",                // free fn, direct call
        "FusedChain::splice_stage",     // method call narrowed by receiver hint
        "FusedChain::stage_cost",       // Self:: path call
        "Executor::run_scratch",        // entry point (trait default method)
        "RefExec::default_body_helper", // trait-impl dispatch (conservative)
        "trait_leaf",
    ] {
        assert!(rep.hot_fns.iter().any(|f| f == want), "missing {want}: {:?}", rep.hot_fns);
    }
}

#[test]
fn graph_attributes_closure_bodies_to_enclosing_fn() {
    // The closure's call is an edge out of `worker_loop`, not out of some
    // anonymous scope: `spawned_helper` must be reachable.
    let src = r#"
        fn worker_loop() {
            let work = || spawned_helper();
            work();
        }
        fn spawned_helper() { let v = vec![1]; }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    assert!(rep.hot_fns.iter().any(|f| f == "spawned_helper"), "{:?}", rep.hot_fns);
    assert_eq!(rep.findings.iter().filter(|f| f.construct == "vec!").count(), 1);
}

#[test]
fn graph_reports_unknown_callees_as_frontier() {
    let src = r#"
        fn worker_loop(f: impl Fn()) {
            mystery_dispatch();
            f();
        }
        fn unreferenced() { also_unknown(); }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    let callees: Vec<&str> = rep.frontier.iter().map(|e| e.callee.as_str()).collect();
    assert!(callees.contains(&"mystery_dispatch"), "{callees:?}");
    assert!(callees.contains(&"f"), "{callees:?}");
    // Frontier reporting is scoped to hot paths: unresolved callees in
    // unreachable code stay out of the report.
    assert!(!callees.contains(&"also_unknown"), "{callees:?}");
    assert!(rep.frontier.iter().all(|e| e.func == "worker_loop"));
}

// --- L5 lock-order -----------------------------------------------------------

#[test]
fn l5_fires_on_lock_held_across_blocking_call() {
    let src = r#"
        fn worker_loop(&self) {
            let guard = self.receiver.lock();
            let job = guard.recv();
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    let l5: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::LockOrder).collect();
    assert_eq!(l5.len(), 1, "{l5:?}");
    assert_eq!(l5[0].construct, "receiver->recv");
    assert_eq!(l5[0].func, "worker_loop");
}

#[test]
fn l5_respects_guard_scope_and_drop() {
    // Guard released by block scope or explicit drop() before the
    // blocking call: no overlap, no finding.
    let src = r#"
        fn worker_loop(&self) {
            {
                let guard = self.receiver.lock();
                guard.len();
            }
            let job = self.chan.recv();
            let g2 = self.receiver.lock();
            drop(g2);
            self.chan.recv();
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::LockOrder), "{:?}", rep.findings);
}

#[test]
fn l5_exempts_condvar_wait_on_the_held_guard() {
    // Condvar::wait(guard) atomically releases the guard it is handed —
    // exempt for that region. A *different* lock held across the same
    // wait still fires.
    let clean = r#"
        fn wait(&self) {
            let mut results = self.lock_results();
            while !done {
                results = self.shared.done.wait(results);
            }
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", clean)]);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::LockOrder), "{:?}", rep.findings);

    let dirty = r#"
        fn wait(&self) {
            let other = self.registry.lock();
            let mut results = self.lock_results();
            loop {
                results = self.shared.done.wait(results);
            }
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", dirty)]);
    let l5: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::LockOrder).collect();
    assert_eq!(l5.len(), 1, "{l5:?}");
    assert_eq!(l5[0].construct, "registry->wait");
}

#[test]
fn l5_fires_on_blocking_call_reached_through_the_graph() {
    // The lock holder never blocks directly; the callee does. The
    // may-block closure has to carry that fact across the edge.
    let src = r#"
        struct ServeEngine;
        impl ServeEngine {
            fn submit(&self) {
                let guard = self.state.lock();
                self.drain_jobs();
            }
            fn drain_jobs(&self) {
                let x = self.chan.recv();
            }
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    let l5: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::LockOrder).collect();
    // drain_jobs blocks but holds no lock itself — the one finding is the
    // transitive overlap at submit's call site.
    assert_eq!(l5.len(), 1, "{l5:?}");
    assert_eq!(l5[0].construct, "state->call:drain_jobs");
    assert_eq!(l5[0].func, "submit");
}

#[test]
fn l5_fires_on_inconsistent_pairwise_lock_order() {
    let src = r#"
        fn forward_path(&self) {
            let a = self.alpha.lock();
            let b = self.beta.lock();
        }
        fn reverse_path(&self) {
            let b = self.beta.lock();
            let a = self.alpha.lock();
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    let l5: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::LockOrder).collect();
    assert!(l5.iter().any(|f| f.construct == "order:alpha->beta" && f.func == "forward_path"));
    assert!(l5.iter().any(|f| f.construct == "order:beta->alpha" && f.func == "reverse_path"));

    // Consistent order everywhere: pairs recorded, nothing fires.
    let consistent = r#"
        fn one(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
        fn two(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", consistent)]);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::LockOrder), "{:?}", rep.findings);
    assert!(rep.lock_orders.contains(&("alpha".to_string(), "beta".to_string())));
}

#[test]
fn l5_fires_on_relock_of_the_same_lock() {
    let src = r#"
        fn worker_loop(&self) {
            let a = self.results.lock();
            let b = self.results.lock();
        }
    "#;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    assert!(
        rep.findings.iter().any(|f| f.lint == Lint::LockOrder && f.construct == "relock:results"),
        "{:?}",
        rep.findings
    );
}

#[test]
fn l5_ignores_comments_strings_and_tests() {
    let src = r##"
        fn worker_loop(&self) {
            // let g = self.receiver.lock(); g.recv();
            let s = "receiver.lock() then recv()";
            let r = r#"x.lock(); y.recv()"#;
            let _ = (s, r);
        }
        #[cfg(test)]
        mod tests {
            fn t(&self) { let g = self.receiver.lock(); g.recv(); }
        }
    "##;
    let rep = ws(&[("crates/graph/src/serve.rs", src)]);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::LockOrder), "{:?}", rep.findings);
}

// --- L6 float-determinism ----------------------------------------------------

#[test]
fn l6_fires_on_order_sensitive_float_constructs_in_kernel_files() {
    let src = r#"
        fn micro_kernel(acc: f32, x: f32, y: f32) -> f32 {
            let fused = acc.mul_add(x, y);
            let powed = x.powf(2.5);
            let s = values.iter().sum::<f32>();
            let p = values.iter().product::<f64>();
            let a = AtomicF32::new(0.0);
            fused + powed + s
        }
    "#;
    let rep = scan("crates/tensor/src/kernel.rs", src);
    let l6: Vec<&str> = rep
        .findings
        .iter()
        .filter(|f| f.lint == Lint::FloatDeterminism)
        .map(|f| f.construct.as_str())
        .collect();
    assert_eq!(l6, ["mul_add", "powf", "sum::<f32>", "product::<f64>", "AtomicF32"]);
}

#[test]
fn l6_silent_on_integer_reductions_and_outside_kernel_files() {
    // usize sums are exact; only float turbofish reductions are banned.
    let ints = "fn tally(xs: &[usize]) -> usize { xs.iter().sum::<usize>() }";
    assert!(scan("crates/graph/src/serve.rs", ints).findings.is_empty());

    // The same constructs in a non-kernel module (e.g. training) are fine.
    let train = "fn step(x: f32) -> f32 { x.mul_add(2.0, 1.0).powf(0.5) }";
    assert!(scan("crates/train/src/trainer.rs", train)
        .findings
        .iter()
        .all(|f| f.lint != Lint::FloatDeterminism));
}

#[test]
fn l6_ignores_comments_strings_and_tests() {
    let src = r#"
        fn kernel_body(x: f32) -> f32 {
            // could use x.mul_add(a, b) and powf here, but determinism
            let doc = "sum::<f32>() and AtomicF32 in a string";
            let _ = doc;
            x
        }
        #[cfg(test)]
        mod tests {
            fn t(x: f32) -> f32 { x.mul_add(1.0, 0.0).powf(2.0) }
        }
    "#;
    let rep = scan("crates/tensor/src/kernel.rs", src);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::FloatDeterminism), "{:?}", rep.findings);
}

// --- L2 no-weight-deep-clone ------------------------------------------------

#[test]
fn l2_fires_on_weight_like_receivers() {
    let src = r#"
        fn lower(&self) {
            let a = self.conv.clone();
            let b = weights.clone();
            let c = block_kernel.clone();
        }
    "#;
    let rep = scan("crates/models/src/x.rs", src);
    let l2: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::WeightDeepClone).collect();
    assert_eq!(l2.len(), 3, "{l2:?}");
    assert!(l2.iter().any(|f| f.construct == "clone:conv"));
    assert!(l2.iter().any(|f| f.construct == "clone:weights"));
    assert!(l2.iter().any(|f| f.construct == "clone:block_kernel"));
}

#[test]
fn l2_allows_arc_clone_and_unrelated_receivers() {
    let src = r#"
        fn lower(&self) {
            let a = Arc::clone(&self.weights);
            let b = grid.clone();
            let c = pads.clone();
        }
        #[cfg(test)]
        mod tests {
            fn t() { let w = conv.clone(); }
        }
    "#;
    let rep = scan("crates/models/src/x.rs", src);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::WeightDeepClone), "{:?}", rep.findings);
}

// --- L3 no-unordered-iteration ----------------------------------------------

#[test]
fn l3_fires_in_restricted_modules_only() {
    let src = "use std::collections::HashMap;\nfn plan() { let m: HashMap<u32, u32>; }";
    let restricted = scan("crates/graph/src/plan.rs", src);
    let hits = restricted.findings.iter().filter(|f| f.lint == Lint::UnorderedIteration).count();
    assert_eq!(hits, 2, "use + type mention: {:?}", restricted.findings);

    let free = scan("crates/train/src/optim.rs", src);
    assert!(free.findings.iter().all(|f| f.lint != Lint::UnorderedIteration));
}

#[test]
fn l3_fires_even_inside_test_code_of_restricted_files() {
    // A `use` at the top of a restricted file serves test and non-test
    // code alike, so L3 deliberately ignores test scope.
    let src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
    let rep = scan("crates/graph/src/serve.rs", src);
    assert_eq!(rep.findings.iter().filter(|f| f.lint == Lint::UnorderedIteration).count(), 1);
}

// --- L4 panic-ratchet -------------------------------------------------------

#[test]
fn l4_counts_only_real_panic_sites() {
    let src = r#"
        fn a() {
            x.unwrap();
            y.expect("boom");
            panic!("no");
            z.unwrap_or_else(PoisonError::into_inner);
            w.unwrap_or_default();
            let unwrap = 3; // bare ident, not a call
        }
        #[cfg(test)]
        mod tests {
            fn t() { q.unwrap(); r.expect("fine in tests"); }
        }
    "#;
    let rep = scan("crates/core/src/x.rs", src);
    assert_eq!(rep.panic_count(), 3, "{:?}", rep.panic_sites);
    let constructs: Vec<&str> = rep.panic_sites.iter().map(|f| f.construct.as_str()).collect();
    assert_eq!(constructs, ["unwrap()", "expect()", "panic!"]);
}

#[test]
fn l4_attributes_sites_to_enclosing_fn() {
    let src = "fn outer() { let c = || inner.unwrap(); }";
    let rep = scan("crates/core/src/x.rs", src);
    assert_eq!(rep.panic_sites.len(), 1);
    assert_eq!(rep.panic_sites[0].func, "outer");
}

#[test]
fn cfg_not_test_is_live_code() {
    let src = "#[cfg(not(test))]\nfn a() { x.unwrap(); }";
    let rep = scan("crates/core/src/x.rs", src);
    assert_eq!(rep.panic_count(), 1);
}

// --- allowlist gating -------------------------------------------------------

#[test]
fn allowlist_absorbs_exact_counts_and_flags_drift() {
    let src = "fn worker_loop() { let a = vec![1]; let b = vec![2]; }";
    let rep = ws(&[("crates/core/src/f.rs", src)]);

    let exact =
        parse_allowlist("L1 crates/core/src/f.rs worker_loop vec! 2 -- bounded bookkeeping")
            .unwrap();
    let gate = apply_allowlist(&rep.findings, &exact);
    assert!(gate.is_clean(), "{gate:?}");

    // Wrong count -> stale entry AND the findings stay violations.
    let drifted =
        parse_allowlist("L1 crates/core/src/f.rs worker_loop vec! 1 -- bounded bookkeeping")
            .unwrap();
    let gate = apply_allowlist(&rep.findings, &drifted);
    assert_eq!(gate.stale.len(), 1);
    assert_eq!(gate.violations.len(), 2);

    // Entry with no surviving site -> stale.
    let gate = apply_allowlist(&[], &exact);
    assert_eq!(gate.stale.len(), 1);
}

#[test]
fn allowlist_requires_justification() {
    assert!(parse_allowlist("L1 f.rs f vec! 1").is_err());
    assert!(parse_allowlist("L1 f.rs f vec! 1 -- ").is_err());
    assert!(parse_allowlist("L9 f.rs f vec! 1 -- why").is_err());
    assert!(parse_allowlist("L4 f.rs f unwrap() 1 -- L4 uses the ratchet").is_err());
    assert!(parse_allowlist("# comment\n\nL2 f.rs f clone:w 1 -- ok").is_ok());
    assert!(parse_allowlist("L5 f.rs f receiver->recv 1 -- intentional park").is_ok());
    assert!(parse_allowlist("L6 f.rs f mul_add 1 -- bit-audited kernel").is_ok());
}

// --- ratchet ----------------------------------------------------------------

#[test]
fn ratchet_flags_increases_and_reports_improvements() {
    let mut baseline = BTreeMap::new();
    baseline.insert("a.rs".to_string(), 3usize);
    baseline.insert("gone.rs".to_string(), 2usize);
    let mut current = BTreeMap::new();
    current.insert("a.rs".to_string(), 4usize); // regression
    current.insert("new.rs".to_string(), 1usize); // new file = regression
    let r = check_ratchet(&baseline, &current);
    assert_eq!(r.regressions, [("a.rs".to_string(), 3, 4), ("new.rs".to_string(), 0, 1)]);
    assert_eq!(r.improvements, [("gone.rs".to_string(), 2, 0)]);
}

#[test]
fn ratchet_roundtrips_through_render_and_parse() {
    let mut counts = BTreeMap::new();
    counts.insert("crates/a/src/lib.rs".to_string(), 5usize);
    counts.insert("crates/b/src/lib.rs".to_string(), 0usize); // omitted
    let text = render_ratchet(&counts);
    let parsed = parse_ratchet(&text).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed["crates/a/src/lib.rs"], 5);
}

// --- end-to-end against the real workspace ----------------------------------

#[test]
fn workspace_is_clean_under_committed_policy() {
    // Mirrors exactly what CI runs: scan the real tree, apply the real
    // allowlist and ratchet. If this fails, `cargo run -p bconv-analyze`
    // explains which site moved.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = bconv_analyze::scan_workspace(&root, &cfg()).unwrap();
    let allow =
        parse_allowlist(&std::fs::read_to_string(root.join("analyze/allowlist.txt")).unwrap())
            .unwrap();
    let gate = apply_allowlist(&report.findings, &allow);
    assert!(gate.violations.is_empty(), "{:?}", gate.violations);
    assert!(gate.stale.is_empty(), "{:?}", gate.stale);
    let baseline =
        parse_ratchet(&std::fs::read_to_string(root.join("analyze/panic_ratchet.txt")).unwrap())
            .unwrap();
    let ratchet = check_ratchet(&baseline, &report.panic_counts());
    assert!(ratchet.regressions.is_empty(), "{:?}", ratchet.regressions);
}
