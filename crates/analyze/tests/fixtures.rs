//! Fixture tests for the analyzer: every lint gets at least one positive
//! fixture (the lint must fire) and one negative fixture (it must stay
//! quiet), plus lexer edge cases that historically produce false
//! positives in grep-based checkers (comments, strings, test scopes).

use bconv_analyze::lints::{scan_source, Config, Lint};
use bconv_analyze::{
    apply_allowlist, check_ratchet, parse_allowlist, parse_ratchet, render_ratchet,
};
use std::collections::BTreeMap;

fn cfg() -> Config {
    Config::workspace()
}

/// Scan under a hot-path-relevant filename with the workspace config.
fn scan(file: &str, src: &str) -> bconv_analyze::lints::FileReport {
    scan_source(file, src, &cfg())
}

// --- lexer robustness -------------------------------------------------------

#[test]
fn comments_and_strings_never_fire() {
    let src = r##"
        // this comment says x.unwrap() and vec![] and HashMap
        /* block comment: panic!("no") /* nested */ still comment */
        /// doc: prefer `foo.expect("msg")` over unwrap()
        fn worker_loop() {
            let s = "vec![1] Vec::new() .collect() unwrap() HashMap";
            let r = r#"format!("{}", x) panic!"#;
            let c = 'u'; // not a lifetime, not an ident
            let _ = (s, r, c);
        }
    "##;
    let rep = scan("crates/graph/src/serve.rs", src);
    assert!(rep.findings.is_empty(), "phantom findings: {:?}", rep.findings);
    assert_eq!(rep.panic_count(), 0);
}

#[test]
fn lifetimes_do_not_confuse_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { let _c = 'x'; x }";
    let rep = scan("crates/graph/src/serve.rs", src);
    assert!(rep.findings.is_empty());
}

// --- L1 no-hot-path-alloc ---------------------------------------------------

#[test]
fn l1_fires_on_every_banned_construct_in_hot_fn() {
    let src = r#"
        fn run_fused_into(&self) {
            let a = Vec::new();
            let b = vec![0u8; 4];
            let c = Vec::with_capacity(4);
            let d = x.to_vec();
            let e = it.collect();
            let f = Tensor::zeros([1, 1, 2, 2]);
            let g = Box::new(3);
            let h = format!("{}", 1);
        }
    "#;
    let rep = scan("crates/core/src/whatever.rs", src);
    let constructs: Vec<&str> = rep.findings.iter().map(|f| f.construct.as_str()).collect();
    for want in [
        "Vec::new",
        "vec!",
        "with_capacity",
        "to_vec",
        "collect",
        "Tensor::zeros",
        "Box::new",
        "format!",
    ] {
        assert!(constructs.contains(&want), "missing {want}: {constructs:?}");
    }
    assert!(rep.findings.iter().all(|f| f.lint == Lint::HotPathAlloc));
    assert!(rep.findings.iter().all(|f| f.func == "run_fused_into"));
}

#[test]
fn l1_silent_outside_hot_fns_and_in_tests() {
    let cold = "fn plan() { let v = vec![1]; let s = x.collect(); }";
    assert!(scan("crates/core/src/x.rs", cold).findings.is_empty());

    let test_mod = r#"
        #[cfg(test)]
        mod tests {
            fn run_fused_into() { let v = vec![1]; }
        }
    "#;
    assert!(scan("crates/core/src/x.rs", test_mod).findings.is_empty());

    let test_fn = "#[test]\nfn run_fused_into() { let v = Vec::new(); }";
    assert!(scan("crates/core/src/x.rs", test_fn).findings.is_empty());
}

#[test]
fn l1_covers_closures_inside_hot_fn() {
    let src = "fn worker_loop() { let f = || inner.iter().collect(); }";
    let rep = scan("crates/graph/src/serve.rs", src);
    assert_eq!(rep.findings.iter().filter(|f| f.construct == "collect").count(), 1);
}

// --- L2 no-weight-deep-clone ------------------------------------------------

#[test]
fn l2_fires_on_weight_like_receivers() {
    let src = r#"
        fn lower(&self) {
            let a = self.conv.clone();
            let b = weights.clone();
            let c = block_kernel.clone();
        }
    "#;
    let rep = scan("crates/models/src/x.rs", src);
    let l2: Vec<_> = rep.findings.iter().filter(|f| f.lint == Lint::WeightDeepClone).collect();
    assert_eq!(l2.len(), 3, "{l2:?}");
    assert!(l2.iter().any(|f| f.construct == "clone:conv"));
    assert!(l2.iter().any(|f| f.construct == "clone:weights"));
    assert!(l2.iter().any(|f| f.construct == "clone:block_kernel"));
}

#[test]
fn l2_allows_arc_clone_and_unrelated_receivers() {
    let src = r#"
        fn lower(&self) {
            let a = Arc::clone(&self.weights);
            let b = grid.clone();
            let c = pads.clone();
        }
        #[cfg(test)]
        mod tests {
            fn t() { let w = conv.clone(); }
        }
    "#;
    let rep = scan("crates/models/src/x.rs", src);
    assert!(rep.findings.iter().all(|f| f.lint != Lint::WeightDeepClone), "{:?}", rep.findings);
}

// --- L3 no-unordered-iteration ----------------------------------------------

#[test]
fn l3_fires_in_restricted_modules_only() {
    let src = "use std::collections::HashMap;\nfn plan() { let m: HashMap<u32, u32>; }";
    let restricted = scan("crates/graph/src/plan.rs", src);
    let hits = restricted.findings.iter().filter(|f| f.lint == Lint::UnorderedIteration).count();
    assert_eq!(hits, 2, "use + type mention: {:?}", restricted.findings);

    let free = scan("crates/train/src/optim.rs", src);
    assert!(free.findings.iter().all(|f| f.lint != Lint::UnorderedIteration));
}

#[test]
fn l3_fires_even_inside_test_code_of_restricted_files() {
    // A `use` at the top of a restricted file serves test and non-test
    // code alike, so L3 deliberately ignores test scope.
    let src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
    let rep = scan("crates/graph/src/serve.rs", src);
    assert_eq!(rep.findings.iter().filter(|f| f.lint == Lint::UnorderedIteration).count(), 1);
}

// --- L4 panic-ratchet -------------------------------------------------------

#[test]
fn l4_counts_only_real_panic_sites() {
    let src = r#"
        fn a() {
            x.unwrap();
            y.expect("boom");
            panic!("no");
            z.unwrap_or_else(PoisonError::into_inner);
            w.unwrap_or_default();
            let unwrap = 3; // bare ident, not a call
        }
        #[cfg(test)]
        mod tests {
            fn t() { q.unwrap(); r.expect("fine in tests"); }
        }
    "#;
    let rep = scan("crates/core/src/x.rs", src);
    assert_eq!(rep.panic_count(), 3, "{:?}", rep.panic_sites);
    let constructs: Vec<&str> = rep.panic_sites.iter().map(|f| f.construct.as_str()).collect();
    assert_eq!(constructs, ["unwrap()", "expect()", "panic!"]);
}

#[test]
fn l4_attributes_sites_to_enclosing_fn() {
    let src = "fn outer() { let c = || inner.unwrap(); }";
    let rep = scan("crates/core/src/x.rs", src);
    assert_eq!(rep.panic_sites.len(), 1);
    assert_eq!(rep.panic_sites[0].func, "outer");
}

#[test]
fn cfg_not_test_is_live_code() {
    let src = "#[cfg(not(test))]\nfn a() { x.unwrap(); }";
    let rep = scan("crates/core/src/x.rs", src);
    assert_eq!(rep.panic_count(), 1);
}

// --- allowlist gating -------------------------------------------------------

#[test]
fn allowlist_absorbs_exact_counts_and_flags_drift() {
    let src = "fn run_fused_into() { let a = vec![1]; let b = vec![2]; }";
    let rep = scan("crates/core/src/f.rs", src);

    let exact =
        parse_allowlist("L1 crates/core/src/f.rs run_fused_into vec! 2 -- bounded bookkeeping")
            .unwrap();
    let gate = apply_allowlist(&rep.findings, &exact);
    assert!(gate.is_clean(), "{gate:?}");

    // Wrong count -> stale entry AND the findings stay violations.
    let drifted =
        parse_allowlist("L1 crates/core/src/f.rs run_fused_into vec! 1 -- bounded bookkeeping")
            .unwrap();
    let gate = apply_allowlist(&rep.findings, &drifted);
    assert_eq!(gate.stale.len(), 1);
    assert_eq!(gate.violations.len(), 2);

    // Entry with no surviving site -> stale.
    let gate = apply_allowlist(&[], &exact);
    assert_eq!(gate.stale.len(), 1);
}

#[test]
fn allowlist_requires_justification() {
    assert!(parse_allowlist("L1 f.rs f vec! 1").is_err());
    assert!(parse_allowlist("L1 f.rs f vec! 1 -- ").is_err());
    assert!(parse_allowlist("L9 f.rs f vec! 1 -- why").is_err());
    assert!(parse_allowlist("L4 f.rs f unwrap() 1 -- L4 uses the ratchet").is_err());
    assert!(parse_allowlist("# comment\n\nL2 f.rs f clone:w 1 -- ok").is_ok());
}

// --- ratchet ----------------------------------------------------------------

#[test]
fn ratchet_flags_increases_and_reports_improvements() {
    let mut baseline = BTreeMap::new();
    baseline.insert("a.rs".to_string(), 3usize);
    baseline.insert("gone.rs".to_string(), 2usize);
    let mut current = BTreeMap::new();
    current.insert("a.rs".to_string(), 4usize); // regression
    current.insert("new.rs".to_string(), 1usize); // new file = regression
    let r = check_ratchet(&baseline, &current);
    assert_eq!(r.regressions, [("a.rs".to_string(), 3, 4), ("new.rs".to_string(), 0, 1)]);
    assert_eq!(r.improvements, [("gone.rs".to_string(), 2, 0)]);
}

#[test]
fn ratchet_roundtrips_through_render_and_parse() {
    let mut counts = BTreeMap::new();
    counts.insert("crates/a/src/lib.rs".to_string(), 5usize);
    counts.insert("crates/b/src/lib.rs".to_string(), 0usize); // omitted
    let text = render_ratchet(&counts);
    let parsed = parse_ratchet(&text).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed["crates/a/src/lib.rs"], 5);
}

// --- end-to-end against the real workspace ----------------------------------

#[test]
fn workspace_is_clean_under_committed_policy() {
    // Mirrors exactly what CI runs: scan the real tree, apply the real
    // allowlist and ratchet. If this fails, `cargo run -p bconv-analyze`
    // explains which site moved.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = bconv_analyze::scan_workspace(&root, &cfg()).unwrap();
    let allow =
        parse_allowlist(&std::fs::read_to_string(root.join("analyze/allowlist.txt")).unwrap())
            .unwrap();
    let gate = apply_allowlist(&report.findings, &allow);
    assert!(gate.violations.is_empty(), "{:?}", gate.violations);
    assert!(gate.stale.is_empty(), "{:?}", gate.stale);
    let baseline =
        parse_ratchet(&std::fs::read_to_string(root.join("analyze/panic_ratchet.txt")).unwrap())
            .unwrap();
    let ratchet = check_ratchet(&baseline, &report.panic_counts());
    assert!(ratchet.regressions.is_empty(), "{:?}", ratchet.regressions);
}
