//! The workspace lints, run over the token stream from [`crate::lexer`]
//! with a lightweight structural scan (brace depth, enclosing-function
//! name, `#[cfg(test)]` scope).
//!
//! | id | name                   | scope                                  |
//! |----|------------------------|----------------------------------------|
//! | L1 | no-hot-path-alloc      | every fn reachable from an entry point |
//! | L2 | no-weight-deep-clone   | all non-test code                      |
//! | L3 | no-unordered-iteration | restricted (plan/exec/serve) files     |
//! | L4 | panic-ratchet          | all non-test code, counted per file    |
//! | L5 | lock-order             | whole-workspace call graph             |
//! | L6 | float-determinism      | kernel/exec/serve modules              |
//!
//! L2/L3/L4/L6 are per-file token walks living here. L1 and L5 are
//! *interprocedural*: they run over the call graph in [`crate::graph`],
//! fed by the symbols from [`crate::resolve`] — the hot set is derived
//! from entry-point reachability, never hand-listed. All of L1–L3, L5,
//! and L6 produce [`Finding`]s that must be covered by the committed
//! allowlist (`analyze/allowlist.txt`); L4 produces a per-file count
//! compared against the committed baseline (`analyze/panic_ratchet.txt`)
//! that may only go down.

use crate::graph::EntryPoint;
use crate::lexer::{lex, Tok, Token};
use crate::resolve::FnDef;

/// Lint identifiers, in severity-agnostic declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// L1: banned allocating constructs in any entry-point-reachable fn.
    HotPathAlloc,
    /// L2: `.clone()` on a conv-weight-like receiver outside `Arc::clone`.
    WeightDeepClone,
    /// L3: `HashMap`/`HashSet` in planning/execution/serve modules.
    UnorderedIteration,
    /// L4: `unwrap()`/`expect()`/`panic!` in non-test code (ratcheted).
    PanicRatchet,
    /// L5: lock held across a blocking call, relocked, or acquired in an
    /// order that conflicts with another site in the workspace.
    LockOrder,
    /// L6: order/contraction-sensitive float constructs in kernel code.
    FloatDeterminism,
}

impl Lint {
    /// Stable short id used in reports and the allowlist file.
    pub fn id(self) -> &'static str {
        match self {
            Lint::HotPathAlloc => "L1",
            Lint::WeightDeepClone => "L2",
            Lint::UnorderedIteration => "L3",
            Lint::PanicRatchet => "L4",
            Lint::LockOrder => "L5",
            Lint::FloatDeterminism => "L6",
        }
    }

    /// Parse an allowlist lint id (L4 uses the ratchet file instead).
    pub fn from_id(s: &str) -> Option<Lint> {
        match s {
            "L1" => Some(Lint::HotPathAlloc),
            "L2" => Some(Lint::WeightDeepClone),
            "L3" => Some(Lint::UnorderedIteration),
            "L4" => Some(Lint::PanicRatchet),
            "L5" => Some(Lint::LockOrder),
            "L6" => Some(Lint::FloatDeterminism),
            _ => None,
        }
    }
}

/// One lint hit at a specific site.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    /// Enclosing named function, or `-` at item scope.
    pub func: String,
    /// The banned construct, e.g. `vec!`, `Tensor::zeros`, `clone:weights`,
    /// `results->recv`, `order:a->b`, `mul_add`.
    pub construct: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{} in `{}`: `{}`",
            self.lint.id(),
            self.file,
            self.line,
            self.func,
            self.construct
        )
    }
}

/// What the lints need to know about the workspace. The defaults in
/// [`Config::workspace`] are the committed policy; tests construct custom
/// configs to exercise each lint in isolation.
pub struct Config {
    /// Hot-path entry points (L1). Reachability from these — through the
    /// call graph — defines the hot set; there is no function-name list
    /// to keep in sync with the code.
    pub entry_points: Vec<EntryPoint>,
    /// Path suffixes of modules where unordered containers are banned (L3).
    pub restricted_files: Vec<String>,
    /// Substrings that mark a `.clone()` receiver as weight-like (L2).
    pub weight_receivers: Vec<String>,
    /// Path suffixes of kernel/exec/serve modules where float results must
    /// be bitwise deterministic (L6).
    pub float_files: Vec<String>,
}

impl Config {
    /// The policy enforced in CI for this workspace.
    pub fn workspace() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect();
        Config {
            entry_points: vec![
                // The public inference spine…
                EntryPoint::new("run_with", Some("Session")),
                // …the serving front door (blocking, polling, and the
                // router's sharded equivalents)…
                EntryPoint::new("submit", Some("ServeEngine")),
                EntryPoint::new("wait", Some("ServeEngine")),
                EntryPoint::new("poll", Some("ServeEngine")),
                EntryPoint::new("submit", Some("Router")),
                EntryPoint::new("wait", Some("Router")),
                EntryPoint::new("poll", Some("Router")),
                EntryPoint::new("worker_loop", None),
                // …the deadline shed path (runs per dequeue wave)…
                EntryPoint::new("shed_expired", None),
                // …and every executor's scratch-path impl.
                EntryPoint::new("run_scratch", None),
            ],
            restricted_files: s(&[
                "crates/graph/src/plan.rs",
                "crates/graph/src/exec.rs",
                "crates/graph/src/serve.rs",
                "crates/graph/src/serve/router.rs",
                "crates/graph/src/serve/metrics.rs",
                "crates/graph/src/session.rs",
                "crates/graph/src/cost.rs",
                "crates/graph/src/quantize.rs",
                "crates/graph/src/cache.rs",
                "crates/graph/src/tune.rs",
                "crates/core/src/fusion.rs",
                "crates/core/src/plan.rs",
            ]),
            weight_receivers: s(&["weight", "conv", "kernel"]),
            float_files: s(&[
                "crates/tensor/src/kernel.rs",
                "crates/tensor/src/conv.rs",
                "crates/tensor/src/linear.rs",
                "crates/tensor/src/activation.rs",
                "crates/tensor/src/elementwise.rs",
                "crates/tensor/src/pool.rs",
                "crates/tensor/src/upsample.rs",
                "crates/tensor/src/pad.rs",
                "crates/quant/src/qgemm.rs",
                "crates/quant/src/qconv.rs",
                "crates/quant/src/qlinear.rs",
                "crates/core/src/fusion.rs",
                "crates/graph/src/exec.rs",
                "crates/graph/src/serve.rs",
                "crates/graph/src/serve/router.rs",
                "crates/graph/src/serve/metrics.rs",
                "crates/graph/src/quantize.rs",
                "crates/graph/src/cache.rs",
                "crates/graph/src/tune.rs",
            ]),
        }
    }

    fn is_restricted(&self, file: &str) -> bool {
        self.restricted_files.iter().any(|r| file.ends_with(r.as_str()))
    }

    fn is_float_file(&self, file: &str) -> bool {
        self.float_files.iter().any(|r| file.ends_with(r.as_str()))
    }
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// L2/L3/L6 findings (allowlist-gated). L1 and L5 are produced by the
    /// workspace pass, not per file.
    pub findings: Vec<Finding>,
    /// L4 sites in non-test code (ratchet-gated; `findings` excludes them).
    pub panic_sites: Vec<Finding>,
}

impl FileReport {
    /// Number of L4 sites — the per-file ratchet metric.
    pub fn panic_count(&self) -> usize {
        self.panic_sites.len()
    }
}

/// Structural scanner state threaded through the token walk.
struct Scan {
    depth: u32,
    /// Brace depths at which `#[cfg(test)]`/`#[test]` regions opened.
    test_open: Vec<u32>,
    /// `(name, body depth)` for every enclosing named `fn`.
    fn_stack: Vec<(String, u32)>,
    /// Attribute with `test` seen; applies to the next `{` body.
    pending_test: bool,
    /// `fn name` seen; the next `{` is its body.
    pending_fn: Option<String>,
    /// The token after `fn` names the function.
    expect_fn_name: bool,
}

impl Scan {
    fn in_test(&self) -> bool {
        !self.test_open.is_empty()
    }

    fn current_fn(&self) -> &str {
        self.fn_stack.last().map_or("-", |(name, _)| name.as_str())
    }
}

/// Scan an attribute starting at `toks[i]` (which is `#`). Returns the
/// index just past the closing `]` and whether the attribute marks test
/// code (`test` present, `not` absent — so `#[cfg(not(test))]` is live).
fn scan_attr(toks: &[Token], i: usize) -> (usize, bool) {
    crate::resolve::scan_attr(toks, i)
}

/// Match an L1 banned construct ending/starting at index `i`.
/// Returns the construct's canonical allowlist name.
fn hot_alloc_at(toks: &[Token], i: usize) -> Option<&'static str> {
    let id = toks[i].ident()?;
    let prev = |k: usize| i.checked_sub(k).map(|j| &toks[j]);
    let next = |k: usize| toks.get(i + k);
    let after_path_sep =
        prev(1).is_some_and(|t| t.is_punct(':')) && prev(2).is_some_and(|t| t.is_punct(':'));
    let after_dot = prev(1).is_some_and(|t| t.is_punct('.'));
    let before_bang = next(1).is_some_and(|t| t.is_punct('!'));
    match id {
        "vec" if before_bang => Some("vec!"),
        "format" if before_bang => Some("format!"),
        "new" if after_path_sep && prev(3).and_then(Token::ident) == Some("Vec") => {
            Some("Vec::new")
        }
        "new" if after_path_sep && prev(3).and_then(Token::ident) == Some("Box") => {
            Some("Box::new")
        }
        "zeros" if after_path_sep && prev(3).and_then(Token::ident) == Some("Tensor") => {
            Some("Tensor::zeros")
        }
        "with_capacity" if after_path_sep || after_dot => Some("with_capacity"),
        "to_vec" if after_dot => Some("to_vec"),
        "collect" if after_dot => Some("collect"),
        _ => None,
    }
}

/// The L1 pass for one *reachable* definition: banned allocating
/// constructs anywhere in its body, skipping nested named definitions
/// (they have their own reachability) but keeping closures (they run on
/// the enclosing function's path).
pub fn alloc_sites(toks: &[Token], defs: &[FnDef], def: &FnDef) -> Vec<Finding> {
    if def.is_test {
        return Vec::new();
    }
    let skip = crate::resolve::child_spans(defs, def);
    let mut out = Vec::new();
    for i in def.body.0..def.body.1.min(toks.len()) {
        if crate::resolve::in_spans(&skip, i) {
            continue;
        }
        if let Some(construct) = hot_alloc_at(toks, i) {
            out.push(Finding {
                lint: Lint::HotPathAlloc,
                file: def.file.clone(),
                line: toks[i].line,
                func: def.name.clone(),
                construct: construct.to_string(),
            });
        }
    }
    out
}

/// Match an L4 panic construct at index `i`; returns its display name.
fn panic_site_at(toks: &[Token], i: usize) -> Option<&'static str> {
    let id = toks[i].ident()?;
    let after_dot = i > 0 && toks[i - 1].is_punct('.');
    let before_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    let before_bang = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
    match id {
        "unwrap" if after_dot && before_call => Some("unwrap()"),
        "expect" if after_dot && before_call => Some("expect()"),
        "panic" if before_bang => Some("panic!"),
        _ => None,
    }
}

/// Match an L6 float-determinism construct at index `i`. Bans, inside
/// kernel modules: fused `mul_add` (contraction differs per target),
/// `powf` (libm varies), float `sum::<f32/f64>()`/`product` turbofish
/// reductions (order-sensitive), and float atomics.
fn float_det_at(toks: &[Token], i: usize) -> Option<String> {
    let id = toks[i].ident()?;
    let prev = |k: usize| i.checked_sub(k).map(|j| &toks[j]);
    let next = |k: usize| toks.get(i + k);
    let after_dot = prev(1).is_some_and(|t| t.is_punct('.'));
    let before_call = next(1).is_some_and(|t| t.is_punct('('));
    match id {
        "mul_add" | "powf" if after_dot && before_call => Some(id.to_string()),
        "sum" | "product" if after_dot => {
            // `.sum::<f32>()` turbofish: `sum :: < f32 > (`
            let turbofish_float = next(1).is_some_and(|t| t.is_punct(':'))
                && next(2).is_some_and(|t| t.is_punct(':'))
                && next(3).is_some_and(|t| t.is_punct('<'))
                && matches!(next(4).and_then(Token::ident), Some("f32" | "f64"));
            if turbofish_float {
                let ty = next(4).and_then(Token::ident).unwrap_or("f32");
                Some(format!("{id}::<{ty}>"))
            } else {
                None
            }
        }
        "AtomicF32" | "AtomicF64" => Some(id.to_string()),
        _ => None,
    }
}

/// Scan one source file's tokens and apply the per-file lints (L2, L3,
/// L4, L6). `file` is the workspace-relative path used in findings and
/// for the L3/L6 module matching. The interprocedural lints (L1, L5) run
/// in [`crate::analyze_sources`] over the same token streams.
pub fn scan_tokens(file: &str, toks: &[Token], cfg: &Config) -> FileReport {
    let restricted = cfg.is_restricted(file);
    let float_file = cfg.is_float_file(file);
    let mut scan = Scan {
        depth: 0,
        test_open: Vec::new(),
        fn_stack: Vec::new(),
        pending_test: false,
        pending_fn: None,
        expect_fn_name: false,
    };
    let mut report = FileReport::default();
    // `[`-nesting: a `;` inside an array type (`[usize; 4]`) is not a
    // statement terminator and must not cancel a pending fn name.
    let mut brackets = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];

        // --- structure: attributes, braces, fn names -------------------
        if t.is_punct('#') {
            let (next_i, is_test) = scan_attr(toks, i);
            if next_i > i + 1 {
                scan.pending_test |= is_test;
                i = next_i;
                continue;
            }
        }
        match &t.tok {
            Tok::Punct('{') => {
                scan.depth += 1;
                if scan.pending_test {
                    scan.test_open.push(scan.depth);
                    scan.pending_test = false;
                }
                if let Some(name) = scan.pending_fn.take() {
                    scan.fn_stack.push((name, scan.depth));
                }
            }
            Tok::Punct('}') => {
                if scan.test_open.last() == Some(&scan.depth) {
                    scan.test_open.pop();
                }
                if scan.fn_stack.last().map(|(_, d)| *d) == Some(scan.depth) {
                    scan.fn_stack.pop();
                }
                scan.depth = scan.depth.saturating_sub(1);
            }
            Tok::Punct('[') => brackets += 1,
            Tok::Punct(']') => brackets -= 1,
            Tok::Punct(';') if brackets == 0 => {
                // `#[cfg(test)] use x;` or a trait method declaration:
                // the pending marker never found a body.
                scan.pending_test = false;
                scan.pending_fn = None;
            }
            Tok::Ident(s) if s == "fn" => {
                scan.expect_fn_name = true;
                i += 1;
                continue;
            }
            Tok::Ident(name) if scan.expect_fn_name => {
                scan.pending_fn = Some(name.clone());
                scan.expect_fn_name = false;
            }
            _ => {}
        }
        if scan.expect_fn_name && t.ident().is_none() {
            scan.expect_fn_name = false; // `fn(` pointer type, not an item
        }

        // --- lints ------------------------------------------------------
        let in_test = scan.in_test();
        let func = scan.current_fn();

        // L3 applies to the whole restricted file, tests included: a
        // `use std::collections::HashMap` at the top serves both.
        if restricted {
            if let Some(id @ ("HashMap" | "HashSet")) = t.ident() {
                report.findings.push(Finding {
                    lint: Lint::UnorderedIteration,
                    file: file.to_string(),
                    line: t.line,
                    func: func.to_string(),
                    construct: id.to_string(),
                });
            }
        }

        if !in_test {
            // L2: `.clone()` whose receiver ident looks weight-like.
            // `Arc::clone(&x)` has no `.` so it never matches.
            if t.ident() == Some("clone")
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                if let Some(recv) = toks[i - 2].ident() {
                    let lower = recv.to_lowercase();
                    if cfg.weight_receivers.iter().any(|w| lower.contains(w.as_str())) {
                        report.findings.push(Finding {
                            lint: Lint::WeightDeepClone,
                            file: file.to_string(),
                            line: t.line,
                            func: func.to_string(),
                            construct: format!("clone:{recv}"),
                        });
                    }
                }
            }

            // L4: panic-ratchet sites.
            if let Some(construct) = panic_site_at(toks, i) {
                report.panic_sites.push(Finding {
                    lint: Lint::PanicRatchet,
                    file: file.to_string(),
                    line: t.line,
                    func: func.to_string(),
                    construct: construct.to_string(),
                });
            }

            // L6: order/contraction-sensitive float constructs.
            if float_file {
                if let Some(construct) = float_det_at(toks, i) {
                    report.findings.push(Finding {
                        lint: Lint::FloatDeterminism,
                        file: file.to_string(),
                        line: t.line,
                        func: func.to_string(),
                        construct,
                    });
                }
            }
        }
        i += 1;
    }
    report
}

/// Lex one file and apply the per-file lints. Convenience wrapper over
/// [`scan_tokens`] for single-file callers (tests); the workspace driver
/// lexes each file exactly once and shares the stream between this walk
/// and symbol resolution.
pub fn scan_source(file: &str, src: &str, cfg: &Config) -> FileReport {
    scan_tokens(file, &lex(src), cfg)
}
