//! The workspace call graph: conservative edge resolution over the
//! symbols from [`crate::resolve`], entry-point reachability (the L1
//! hot set is *derived*, not hand-maintained), and the interprocedural
//! closures behind the L5 lock-order lint.
//!
//! Resolution policy, in order:
//!
//! 1. `Ty::name` path calls match definitions on exactly that type
//!    (`Self` resolves against the caller's `impl`).
//! 2. `recv.name(..)` method calls match **every** workspace method of
//!    that name; when the receiver-chain hint (`self.chain.run(..)` →
//!    `chain`) is type-name-similar to a subset of candidates, only that
//!    subset is linked — otherwise all of them are (conservative).
//! 3. Bare `name(..)` calls match free functions of that name.
//! 4. A callee with no workspace match and no standard-library name is a
//!    **frontier** edge: reported (per hot caller) so the analysis's
//!    blind spots are visible instead of silent.

use crate::lints::Finding;
use crate::lints::Lint;
use crate::resolve::{Callee, FileSyms, FnDef, FnFacts};
use std::collections::{BTreeMap, BTreeSet};

/// A seed of the hot-path reachability walk. `owner: None` matches every
/// definition of the name (free functions and all impls — the `run_scratch`
/// case, where each executor's impl is an entry).
#[derive(Debug, Clone)]
pub struct EntryPoint {
    pub func: String,
    pub owner: Option<String>,
}

impl EntryPoint {
    pub fn new(func: &str, owner: Option<&str>) -> Self {
        Self { func: func.to_string(), owner: owner.map(str::to_string) }
    }

    fn matches(&self, def: &FnDef) -> bool {
        def.name == self.func
            && match &self.owner {
                Some(o) => def.owner.as_deref() == Some(o.as_str()),
                None => true,
            }
    }
}

/// An unresolved callee reachable from an entry point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FrontierEdge {
    pub file: String,
    /// Qualified caller (`Owner::fn` or bare `fn`).
    pub func: String,
    /// Callee as written: `name`, `.name`, or `Ty::name`.
    pub callee: String,
    pub line: u32,
}

/// Names the standard library (std/core/alloc) owns; calls to them never
/// resolve to workspace code and are not frontier noise. The list is a
/// fixed property of Rust, not of this workspace — unlike the old
/// hand-maintained hot-function list it cannot drift with the codebase.
fn is_std_name(name: &str) -> bool {
    matches!(
        name,
        // construction / conversion
        "new" | "default" | "from" | "into" | "try_from" | "try_into" | "from_vec"
            | "to_string" | "to_owned" | "to_vec" | "into_inner" | "into_iter" | "from_bits"
            | "to_bits" | "from_fn" | "with_capacity" | "clone" | "as_ref" | "as_mut"
            | "as_str" | "as_slice" | "as_deref" | "as_bytes" | "leak" | "boxed"
            // Option / Result
            | "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default"
            | "ok" | "err" | "ok_or" | "ok_or_else" | "is_some" | "is_none" | "is_ok"
            | "is_err" | "map_or" | "map_or_else" | "map_err" | "and_then" | "or_else"
            | "get_or_insert" | "get_or_insert_with" | "take" | "replace" | "filter"
            | "flatten" | "zip" | "is_some_and" | "is_none_or" | "then" | "then_some"
            | "copied" | "cloned" | "as_deref_mut" | "insert"
            // collections / slices / iterators
            | "len" | "is_empty" | "push" | "pop" | "get" | "get_mut" | "remove" | "clear"
            | "contains" | "contains_key" | "entry" | "or_default" | "or_insert" | "keys"
            | "values" | "iter" | "iter_mut" | "chunks" | "chunks_mut" | "chunks_exact"
            | "chunks_exact_mut" | "windows" | "split_at" | "split_at_mut" | "first"
            | "first_mut" | "last" | "last_mut" | "sort" | "sort_by" | "sort_by_key"
            | "sort_unstable" | "sort_unstable_by" | "binary_search" | "binary_search_by"
            | "resize" | "truncate" | "extend" | "extend_from_slice" | "copy_from_slice"
            | "clone_from_slice" | "fill" | "drain" | "retain" | "swap" | "reserve"
            | "append" | "concat" | "join" | "split_off" | "dedup" | "as_mut_slice"
            | "map" | "filter_map" | "flat_map" | "fold" | "try_fold" | "for_each"
            | "enumerate" | "rev" | "skip" | "skip_while" | "take_while" | "step_by"
            | "chain" | "peekable" | "peek" | "next" | "nth" | "count" | "sum" | "product"
            | "min" | "max" | "min_by" | "max_by" | "min_by_key" | "max_by_key"
            | "position" | "find" | "find_map" | "any" | "all" | "collect" | "by_ref"
            | "cycle" | "unzip" | "partition" | "rotate_left" | "rotate_right"
            // numbers
            | "abs" | "floor" | "ceil" | "round" | "trunc" | "sqrt" | "powi" | "powf"
            | "exp" | "ln" | "log2" | "log10" | "mul_add" | "clamp" | "signum" | "recip"
            | "min_val" | "to_le_bytes" | "to_be_bytes" | "from_le_bytes" | "from_be_bytes"
            | "saturating_add" | "saturating_sub" | "saturating_mul" | "wrapping_add"
            | "wrapping_sub" | "wrapping_mul" | "checked_add" | "checked_sub"
            | "checked_mul" | "checked_div" | "checked_rem" | "pow" | "rem_euclid"
            | "div_euclid" | "div_ceil" | "next_power_of_two" | "leading_zeros"
            | "trailing_zeros" | "is_finite" | "is_nan" | "is_infinite" | "max_value"
            | "min_value" | "midpoint" | "isqrt" | "cast" | "hypot"
            // strings / fmt / io
            | "push_str" | "chars" | "bytes" | "trim" | "trim_start" | "trim_end"
            | "split" | "split_once" | "rsplit_once" | "split_whitespace" | "splitn"
            | "lines" | "starts_with" | "ends_with" | "strip_prefix" | "strip_suffix"
            | "parse" | "repeat" | "to_lowercase" | "to_uppercase" | "to_ascii_lowercase"
            | "to_ascii_uppercase" | "char_indices" | "fmt" | "write_str" | "write_fmt"
            | "write_all" | "flush" | "read_to_string" | "debug_struct" | "debug_tuple"
            | "debug_list" | "field" | "finish" | "finish_non_exhaustive" | "pad"
            | "display" | "to_string_lossy" | "escape_debug"
            // sync / thread / time
            | "lock" | "try_lock" | "read" | "write" | "notify_all" | "notify_one"
            | "send" | "try_send" | "recv" | "try_recv" | "recv_timeout" | "wait"
            | "wait_timeout" | "wait_while" | "spawn" | "scope" | "sleep" | "park"
            | "unpark" | "name" | "available_parallelism" | "current" | "elapsed"
            | "duration_since" | "as_secs_f64" | "as_micros" | "as_millis" | "as_nanos"
            | "load" | "store" | "fetch_add" | "fetch_sub" | "compare_exchange"
            | "compare_exchange_weak" | "fetch_or" | "fetch_and" | "now" | "is_poisoned"
            // misc std free functions
            | "drop" | "swap_nonoverlapping" | "min_of" | "max_of" | "size_of"
            | "size_of_val" | "align_of" | "replace_with" | "identity" | "black_box"
            | "args" | "var" | "var_os" | "exit" | "read_dir" | "read_to_end"
            | "canonicalize" | "metadata" | "exists" | "is_dir" | "is_file" | "hash"
            | "build_hasher" | "eq" | "ne" | "cmp" | "partial_cmp" | "deref" | "deref_mut"
            | "index" | "index_mut" | "add" | "sub" | "mul" | "div" | "rem" | "neg"
            | "not" | "bitand" | "bitor" | "bitxor" | "shl" | "shr" | "borrow"
            | "borrow_mut" | "eprintln" | "to_str" | "strip_prefix_of"
            // portable-simd style vector ops
            | "from_slice" | "splat" | "copy_to_slice" | "resize_with"
    )
}

/// Standard-library types whose associated functions never resolve to
/// workspace code (`PoisonError::into_inner`, `Vec::new`, …).
fn is_std_type(ty: &str) -> bool {
    matches!(
        ty,
        "Vec"
            | "VecDeque"
            | "String"
            | "Box"
            | "Arc"
            | "Rc"
            | "Cell"
            | "RefCell"
            | "Option"
            | "Result"
            | "Some"
            | "Ok"
            | "Err"
            | "BTreeMap"
            | "BTreeSet"
            | "HashMap"
            | "HashSet"
            | "Mutex"
            | "RwLock"
            | "Condvar"
            | "PoisonError"
            | "Ordering"
            | "AtomicU64"
            | "AtomicUsize"
            | "AtomicBool"
            | "Instant"
            | "Duration"
            | "Builder"
            | "Thread"
            | "JoinHandle"
            | "Default"
            | "Iterator"
            | "Cow"
            | "Path"
            | "PathBuf"
            | "OsStr"
            | "OsString"
            | "Range"
            | "Simd"
            | "Wrapping"
            | "NonZeroUsize"
            | "TryFrom"
            | "TryInto"
            | "From"
            | "Into"
            | "Clone"
            | "Drop"
            | "Display"
            | "Debug"
            | "Write"
            | "Read"
            | "Token"
            | "str"
            | "char"
            | "f32"
            | "f64"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "u8"
            | "u16"
            | "u32"
            | "u64"
            | "usize"
            | "isize"
    )
}

/// The workspace call graph over every file's resolved symbols.
pub struct CallGraph<'a> {
    syms: &'a [FileSyms],
    /// Flattened `(file, def)` index of every non-test definition.
    flat: Vec<(usize, usize)>,
    /// Name → flat indices (all definitions sharing the name).
    by_name: BTreeMap<&'a str, Vec<usize>>,
}

/// Result of resolving one call site.
struct Resolved {
    targets: Vec<usize>,
    /// No workspace match and not a standard-library name.
    frontier: bool,
}

impl<'a> CallGraph<'a> {
    /// Index every non-test definition. Test-scoped functions are left
    /// out entirely: they cannot be entry points, and a test fixture
    /// sharing a hot function's name must not add edges to the graph.
    pub fn build(syms: &'a [FileSyms]) -> Self {
        let mut flat = Vec::new();
        let mut by_name: BTreeMap<&'a str, Vec<usize>> = BTreeMap::new();
        for (fi, fs) in syms.iter().enumerate() {
            for (di, def) in fs.defs.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                by_name.entry(def.name.as_str()).or_default().push(flat.len());
                flat.push((fi, di));
            }
        }
        Self { syms, flat, by_name }
    }

    /// Number of indexed definitions.
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// True when no definitions were indexed.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Index (into the `FileSyms` slice) of the file defining `i`.
    pub fn file_index(&self, i: usize) -> usize {
        self.flat[i].0
    }

    /// The definition behind a flat index.
    pub fn def(&self, i: usize) -> &'a FnDef {
        let (fi, di) = self.flat[i];
        &self.syms[fi].defs[di]
    }

    /// The extracted facts behind a flat index.
    pub fn facts(&self, i: usize) -> &'a FnFacts {
        let (fi, di) = self.flat[i];
        &self.syms[fi].facts[di]
    }

    /// True when `hint` and the candidate's type/trait name look like the
    /// same thing (`chain` ~ `FusedChain`, `executor` ~ `Executor`).
    /// Hints shorter than three characters are ignored — `t`/`rx`-style
    /// locals match everything and would defeat conservatism.
    fn hint_matches(hint: &str, def: &FnDef) -> bool {
        if hint.len() < 3 {
            return false;
        }
        let h = hint.trim_start_matches('_').to_lowercase();
        let against = |name: &Option<String>| {
            name.as_deref().is_some_and(|n| {
                let n = n.to_lowercase();
                n.contains(&h) || h.contains(&n)
            })
        };
        against(&def.owner) || against(&def.trait_name)
    }

    /// Resolve one call site from definition `from`.
    fn resolve(&self, from: usize, callee: &Callee) -> Resolved {
        let empty: Vec<usize> = Vec::new();
        match callee {
            Callee::Free { name } => {
                let targets: Vec<usize> = self
                    .by_name
                    .get(name.as_str())
                    .unwrap_or(&empty)
                    .iter()
                    .copied()
                    .filter(|&t| self.def(t).owner.is_none())
                    .collect();
                let frontier = targets.is_empty() && !is_std_name(name);
                Resolved { targets, frontier }
            }
            Callee::Path { ty, name } => {
                let ty: &str = if ty == "Self" || ty == "self" {
                    self.def(from).owner.as_deref().unwrap_or("Self")
                } else {
                    ty.as_str()
                };
                let targets: Vec<usize> = self
                    .by_name
                    .get(name.as_str())
                    .unwrap_or(&empty)
                    .iter()
                    .copied()
                    .filter(|&t| self.def(t).owner.as_deref() == Some(ty))
                    .collect();
                let frontier = targets.is_empty() && !is_std_type(ty) && !is_std_name(name);
                Resolved { targets, frontier }
            }
            Callee::Method { name, hint } => {
                let candidates: Vec<usize> = self
                    .by_name
                    .get(name.as_str())
                    .unwrap_or(&empty)
                    .iter()
                    .copied()
                    .filter(|&t| self.def(t).owner.is_some())
                    .collect();
                if candidates.is_empty() {
                    return Resolved { targets: Vec::new(), frontier: !is_std_name(name) };
                }
                // `self.name(..)`: prefer the caller's own impl.
                if hint.as_deref() == Some("self") {
                    let own: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&t| self.def(t).owner == self.def(from).owner)
                        .collect();
                    if !own.is_empty() {
                        return Resolved { targets: own, frontier: false };
                    }
                }
                if let Some(h) = hint.as_deref() {
                    let narrowed: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&t| Self::hint_matches(h, self.def(t)))
                        .collect();
                    if !narrowed.is_empty() {
                        return Resolved { targets: narrowed, frontier: false };
                    }
                }
                // A std-named method (`map`, `get`, `clear`, …) without
                // positive hint evidence is almost certainly the std one;
                // linking every same-named workspace method would drag
                // e.g. `Tensor::map` into the hot set via each
                // `iter().map(..)`. Workspace-specific names stay fully
                // conservative: all candidates are linked.
                if is_std_name(name) {
                    return Resolved { targets: Vec::new(), frontier: false };
                }
                Resolved { targets: candidates, frontier: false }
            }
        }
    }

    /// Flat indices matching the given entry points.
    pub fn entry_defs(&self, entries: &[EntryPoint]) -> Vec<usize> {
        (0..self.flat.len()).filter(|&i| entries.iter().any(|e| e.matches(self.def(i)))).collect()
    }

    /// Reachability from `entries`: the derived hot set plus every
    /// frontier edge out of it.
    pub fn reach(&self, entries: &[EntryPoint]) -> Reach {
        let seeds = self.entry_defs(entries);
        let mut hot = vec![false; self.flat.len()];
        let mut queue: Vec<usize> = Vec::new();
        for s in &seeds {
            if !hot[*s] {
                hot[*s] = true;
                queue.push(*s);
            }
        }
        let mut frontier: BTreeSet<FrontierEdge> = BTreeSet::new();
        while let Some(i) = queue.pop() {
            for call in &self.facts(i).calls {
                let r = self.resolve(i, &call.callee);
                if r.frontier {
                    let d = self.def(i);
                    let callee = match &call.callee {
                        Callee::Free { name } => name.clone(),
                        Callee::Method { name, .. } => format!(".{name}"),
                        Callee::Path { ty, name } => format!("{ty}::{name}"),
                    };
                    frontier.insert(FrontierEdge {
                        file: d.file.clone(),
                        func: d.qualified(),
                        callee,
                        line: call.line,
                    });
                }
                for t in r.targets {
                    if !hot[t] {
                        hot[t] = true;
                        queue.push(t);
                    }
                }
            }
        }
        Reach { hot, seeds: seeds.len(), frontier: frontier.into_iter().collect() }
    }

    /// Fixpoint closures for the lock lint: per definition, whether
    /// calling it may block (a blocking primitive anywhere inside, or a
    /// callee that may block) and the set of locks it (transitively)
    /// acquires.
    fn lock_closures(&self) -> (Vec<bool>, Vec<BTreeSet<String>>) {
        let n = self.flat.len();
        let mut may_block: Vec<bool> = (0..n).map(|i| !self.facts(i).blocking.is_empty()).collect();
        let mut acquires: Vec<BTreeSet<String>> =
            (0..n).map(|i| self.facts(i).locks.iter().map(|l| l.lock.clone()).collect()).collect();
        // Pre-resolve edges once; iterate to fixpoint (the graph is small
        // and the lattice is finite, so this terminates quickly).
        let edges: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut out: Vec<usize> = self
                    .facts(i)
                    .calls
                    .iter()
                    .flat_map(|c| self.resolve(i, &c.callee).targets)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                for &t in &edges[i] {
                    if may_block[t] && !may_block[i] {
                        may_block[i] = true;
                        changed = true;
                    }
                    if !acquires[t].is_empty() {
                        let missing: Vec<String> =
                            acquires[t].difference(&acquires[i]).cloned().collect();
                        if !missing.is_empty() {
                            acquires[i].extend(missing);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return (may_block, acquires);
            }
        }
    }

    /// The L5 lock-order lint over the whole graph. Returns the findings
    /// plus every observed pairwise lock order (for the report).
    pub fn lock_lint(&self) -> (Vec<Finding>, Vec<(String, String)>) {
        let (may_block, acquires) = self.lock_closures();
        let mut findings: Vec<Finding> = Vec::new();
        // (outer, inner) → acquisition sites, for the global order check.
        type OrderSites = Vec<(String, String, u32)>;
        let mut orders: BTreeMap<(String, String), OrderSites> = BTreeMap::new();
        for i in 0..self.len() {
            let def = self.def(i);
            let facts = self.facts(i);
            let mut emit = |construct: String, line: u32| {
                findings.push(Finding {
                    lint: Lint::LockOrder,
                    file: def.file.clone(),
                    line,
                    func: def.name.clone(),
                    construct,
                });
            };
            for region in &facts.locks {
                let in_span = |tok: usize| tok > region.span.0 && tok < region.span.1;
                // Blocking primitive while the guard is held. A
                // `Condvar::wait(guard)` that is passed the guard itself
                // releases it atomically — exempt for that region only.
                for op in &facts.blocking {
                    if !in_span(op.tok) {
                        continue;
                    }
                    let condvar_release = op.op.starts_with("wait")
                        && region
                            .binding
                            .as_deref()
                            .is_some_and(|b| op.args.iter().any(|a| a == b));
                    if !condvar_release {
                        emit(format!("{}->{}", region.lock, op.op), op.line);
                    }
                }
                for call in &facts.calls {
                    if !in_span(call.tok) {
                        continue;
                    }
                    let name = call.callee.name();
                    // Direct blocking names are handled above; lock
                    // helpers are handled as nested acquisitions below.
                    if crate::resolve::is_blocking_name(name)
                        || name == "lock"
                        || name.starts_with("lock_")
                    {
                        continue;
                    }
                    let r = self.resolve(i, &call.callee);
                    let blocking_target = r.targets.iter().copied().find(|&t| may_block[t]);
                    if let Some(t) = blocking_target {
                        emit(format!("{}->call:{}", region.lock, self.def(t).name), call.line);
                    }
                    // Transitive acquisitions establish lock order.
                    let mut seen: BTreeSet<&String> = BTreeSet::new();
                    for &t in &r.targets {
                        for inner in &acquires[t] {
                            if !seen.insert(inner) {
                                continue;
                            }
                            if *inner == region.lock {
                                emit(format!("relock:{}", region.lock), call.line);
                            } else {
                                orders
                                    .entry((region.lock.clone(), inner.clone()))
                                    .or_default()
                                    .push((def.file.clone(), def.name.clone(), call.line));
                            }
                        }
                    }
                }
                // Direct nested acquisitions.
                for nested in &facts.locks {
                    if nested.span.0 == region.span.0 || !in_span(nested.span.0) {
                        continue;
                    }
                    if nested.lock == region.lock {
                        emit(format!("relock:{}", region.lock), nested.line);
                    } else {
                        orders
                            .entry((region.lock.clone(), nested.lock.clone()))
                            .or_default()
                            .push((def.file.clone(), def.name.clone(), nested.line));
                    }
                }
            }
        }
        // Pairwise consistency: lock A taken before B somewhere and B
        // before A elsewhere is a deadlock waiting for its interleaving.
        let keys: Vec<(String, String)> = orders.keys().cloned().collect();
        for (a, b) in &keys {
            if a < b && orders.contains_key(&(b.clone(), a.clone())) {
                for (outer, inner) in [(a, b), (b, a)] {
                    if let Some(sites) = orders.get(&(outer.clone(), inner.clone())) {
                        for (file, func, line) in sites {
                            findings.push(Finding {
                                lint: Lint::LockOrder,
                                file: file.clone(),
                                line: *line,
                                func: func.clone(),
                                construct: format!("order:{outer}->{inner}"),
                            });
                        }
                    }
                }
            }
        }
        (findings, keys)
    }
}

/// Reachability result: `hot[i]` indexes the graph's flat definitions.
pub struct Reach {
    pub hot: Vec<bool>,
    /// Number of definitions matched by the entry points.
    pub seeds: usize,
    pub frontier: Vec<FrontierEdge>,
}
