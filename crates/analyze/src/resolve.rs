//! Symbol resolution over the token stream from [`crate::lexer`]: finds
//! every function definition (free functions, inherent and trait-impl
//! methods, trait default methods), the call sites inside each body, and
//! the lock-acquisition regions the L5 lint reasons about.
//!
//! Resolution is deliberately *conservative and syntactic* — there is no
//! type information (no `syn`, no compiler). A method call matches every
//! workspace method of that name unless a receiver hint narrows the
//! candidate set; an unresolvable callee is surfaced as a **frontier**
//! edge by [`crate::graph`] rather than silently dropped, so the
//! analysis over-approximates reachability instead of missing it.

use crate::lexer::{Tok, Token};

/// A function definition discovered in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The type this function is defined on: `impl Ty` / `impl Tr for Ty`
    /// both record `Ty`; a trait declaration's default method records the
    /// trait name. `None` for free functions.
    pub owner: Option<String>,
    /// The trait being implemented (`impl Tr for Ty` → `Tr`), or the
    /// declaring trait for a default method.
    pub trait_name: Option<String>,
    pub file: String,
    pub line: u32,
    /// Token range of the body: `[open brace, one past close brace)`.
    pub body: (usize, usize),
    /// Defined under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

impl FnDef {
    /// `Owner::name` or bare `name`, for reports.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(..)` — a free function (or a local closure, which resolution
    /// cannot distinguish; unresolved names become frontier edges).
    Free { name: String },
    /// `recv.foo(..)` — a method call; `hint` is the receiver-chain ident
    /// closest to the call (`self.shared.lock()` → `shared`), used to
    /// narrow same-named candidates by type-name similarity.
    Method { name: String, hint: Option<String> },
    /// `Ty::foo(..)` or a bare `Ty::foo` function reference.
    Path { ty: String, name: String },
}

impl Callee {
    /// The bare callee name.
    pub fn name(&self) -> &str {
        match self {
            Callee::Free { name } | Callee::Method { name, .. } | Callee::Path { name, .. } => name,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
    pub line: u32,
    /// Token index of the callee name (used to place the call inside or
    /// outside lock regions).
    pub tok: usize,
}

/// One blocking-primitive invocation (`recv`/`send`/`wait`/`join`…).
#[derive(Debug, Clone)]
pub struct BlockingOp {
    pub op: String,
    pub line: u32,
    pub tok: usize,
    /// Idents appearing in the call's argument list — a `Condvar::wait`
    /// that is *passed* the held guard releases it atomically, so such a
    /// wait is exempt for that guard's region.
    pub args: Vec<String>,
}

/// A lock acquisition and the token span its guard stays live for.
#[derive(Debug, Clone)]
pub struct LockRegion {
    /// Lock identity: the receiver ident of `.lock()` (`results.lock()`
    /// → `results`) or the suffix of a `lock_*` guard-returning helper
    /// (`lock_results()` → `results`).
    pub lock: String,
    pub line: u32,
    /// The guard's `let` binding, when the acquisition is bound.
    pub binding: Option<String>,
    /// Token span `[acquisition, release)` the guard is held for.
    pub span: (usize, usize),
}

/// Everything extracted from one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub calls: Vec<CallSite>,
    pub blocking: Vec<BlockingOp>,
    pub locks: Vec<LockRegion>,
}

/// All symbols of one file: definitions plus per-definition facts
/// (`facts[i]` belongs to `defs[i]`).
#[derive(Debug, Default)]
pub struct FileSyms {
    pub file: String,
    pub defs: Vec<FnDef>,
    pub facts: Vec<FnFacts>,
}

/// Keywords that can be followed by `(` without being calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "in"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "move"
            | "as"
            | "where"
            | "unsafe"
            | "await"
            | "fn"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "mod"
            | "ref"
            | "mut"
            | "const"
            | "static"
    )
}

/// `impl`/`trait` context captured while walking a file.
#[derive(Debug, Clone)]
struct OwnerCtx {
    owner: Option<String>,
    trait_name: Option<String>,
    /// Brace depth of the context's block body.
    depth: u32,
}

/// Parse the header of an `impl` item starting at `toks[i]` (the `impl`
/// ident). Returns `(index of the opening brace, owner type, trait)`;
/// `impl Tr for Ty` yields owner `Ty` and trait `Tr`, `impl Ty` yields
/// owner `Ty` and no trait. Generic parameters and paths collapse to
/// their final segment.
fn parse_impl_header(toks: &[Token], i: usize) -> (usize, Option<String>, Option<String>) {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut first: Option<String> = None;
    let mut second: Option<String> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') => {
                let (owner, trait_name) = if saw_for { (second, first) } else { (first, None) };
                return (j, owner, trait_name);
            }
            Tok::Punct(';') => return (j, None, None), // `impl Trait for Ty;`-like degenerate
            Tok::Ident(s) if angle == 0 && !saw_where => {
                if s == "for" {
                    saw_for = true;
                } else if s == "where" {
                    saw_where = true; // bounds follow; types already captured
                } else if saw_for {
                    second = Some(s.clone()); // last path segment wins
                } else {
                    first = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (toks.len(), None, None)
}

/// Scan an attribute starting at `toks[i]` (`#`). Returns the index past
/// the closing `]` and whether it marks test code (`test` present and
/// `not` absent, so `#[cfg(not(test))]` stays live).
pub(crate) fn scan_attr(toks: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return (i + 1, false);
    }
    let mut brackets = 0i32;
    let (mut has_test, mut has_not) = (false, false);
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('[') => brackets += 1,
            Tok::Punct(']') => {
                brackets -= 1;
                if brackets == 0 {
                    return (j + 1, has_test && !has_not);
                }
            }
            Tok::Ident(s) if s == "test" => has_test = true,
            Tok::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (toks.len(), false)
}

/// A function definition in mid-flight during the walk.
struct OpenDef {
    def: FnDef,
    /// Brace depth of the body block.
    depth: u32,
}

/// Walk a file's tokens and return every function definition with its
/// body span, owner context, and test-scope flag. Also returns, per def,
/// the index ranges of *nested* named functions, so fact extraction can
/// attribute constructs to the innermost definition (closures stay with
/// their enclosing function on purpose — they run on its path).
pub fn find_defs(file: &str, toks: &[Token]) -> Vec<FnDef> {
    let mut defs: Vec<FnDef> = Vec::new();
    let mut open: Vec<OpenDef> = Vec::new();
    let mut owners: Vec<OwnerCtx> = Vec::new();
    let mut depth: u32 = 0;
    let mut test_open: Vec<u32> = Vec::new();
    let mut pending_test = false;
    let mut pending_fn: Option<(String, u32)> = None; // (name, line)
    let mut expect_fn_name = false;
    // `[`-nesting: a `;` inside an array type (`[usize; 4]`) or array
    // expression is not a statement terminator and must not cancel a
    // pending fn between its signature and its body.
    let mut brackets = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') {
            let (next_i, is_test) = scan_attr(toks, i);
            if next_i > i + 1 {
                pending_test |= is_test;
                i = next_i;
                continue;
            }
        }
        match &t.tok {
            Tok::Ident(s) if (s == "impl" || s == "trait") && pending_fn.is_none() => {
                // Guarded on `pending_fn`: `impl` between a function's
                // name and its body (`-> impl Iterator`, `x: impl Fn()`)
                // is a type position, not an item header.
                let is_trait = s == "trait";
                let (brace, owner, trait_name) = if is_trait {
                    // `trait Name { … }`: the name is the next ident; the
                    // block may declare default methods (owner = trait).
                    let name = toks.get(i + 1).and_then(Token::ident).map(str::to_string);
                    let mut j = i + 1;
                    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    (j, name.clone(), name)
                } else {
                    parse_impl_header(toks, i)
                };
                if toks.get(brace).is_some_and(|t| t.is_punct('{')) {
                    depth += 1;
                    if pending_test {
                        test_open.push(depth);
                        pending_test = false;
                    }
                    owners.push(OwnerCtx { owner, trait_name, depth });
                }
                i = brace + 1;
                continue;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_test {
                    test_open.push(depth);
                    pending_test = false;
                }
                if let Some((name, line)) = pending_fn.take() {
                    let ctx = owners.last();
                    open.push(OpenDef {
                        def: FnDef {
                            name,
                            owner: ctx.and_then(|c| c.owner.clone()),
                            trait_name: ctx.and_then(|c| c.trait_name.clone()),
                            file: file.to_string(),
                            line,
                            body: (i, i + 1), // end patched at close
                            is_test: !test_open.is_empty(),
                        },
                        depth,
                    });
                }
            }
            Tok::Punct('}') => {
                if test_open.last() == Some(&depth) {
                    test_open.pop();
                }
                if open.last().map(|o| o.depth) == Some(depth) {
                    if let Some(mut done) = open.pop() {
                        done.def.body.1 = i + 1;
                        defs.push(done.def);
                    }
                }
                if owners.last().map(|o| o.depth) == Some(depth) {
                    owners.pop();
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct('[') => brackets += 1,
            Tok::Punct(']') => brackets -= 1,
            Tok::Punct(';') if brackets == 0 => {
                pending_test = false;
                pending_fn = None;
            }
            Tok::Ident(s) if s == "fn" => {
                expect_fn_name = true;
                i += 1;
                continue;
            }
            Tok::Ident(name) if expect_fn_name => {
                pending_fn = Some((name.clone(), t.line));
                expect_fn_name = false;
            }
            _ => {}
        }
        if expect_fn_name && t.ident().is_none() {
            expect_fn_name = false; // `fn(` pointer type
        }
        i += 1;
    }
    // Close unterminated defs at EOF (tolerated, like the lexer).
    while let Some(mut o) = open.pop() {
        o.def.body.1 = toks.len();
        defs.push(o.def);
    }
    defs.sort_by_key(|d| d.body.0);
    defs
}

/// True when token index `k` falls inside any of `spans`.
pub(crate) fn in_spans(spans: &[(usize, usize)], k: usize) -> bool {
    spans.iter().any(|&(a, b)| k >= a && k < b)
}

/// The token spans of definitions nested strictly inside `outer`.
pub(crate) fn child_spans(defs: &[FnDef], outer: &FnDef) -> Vec<(usize, usize)> {
    defs.iter()
        .filter(|d| d.body.0 > outer.body.0 && d.body.1 <= outer.body.1)
        .map(|d| d.body)
        .collect()
}

/// Blocking primitives for the L5 lock lint: calls that can park the
/// thread indefinitely while a held lock starves every peer.
pub fn is_blocking_name(name: &str) -> bool {
    matches!(name, "recv" | "send" | "wait" | "join" | "recv_timeout" | "wait_timeout")
}

/// Collect idents inside the parenthesized argument list that starts at
/// `toks[open]` (which must be `(`).
fn paren_idents(toks: &[Token], open: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut bal = 0i32;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('(') => bal += 1,
            Tok::Punct(')') => {
                bal -= 1;
                if bal == 0 {
                    break;
                }
            }
            Tok::Ident(s) => out.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    out
}

/// Extract calls, blocking ops, and lock regions from `def`'s body,
/// skipping nested named definitions.
pub fn extract_facts(toks: &[Token], defs: &[FnDef], def: &FnDef) -> FnFacts {
    let skip = child_spans(defs, def);
    let (start, end) = def.body;
    let mut facts = FnFacts::default();
    // Open lock regions: indices into facts.locks awaiting release.
    let mut open_locks: Vec<(usize, u32)> = Vec::new(); // (lock idx, depth)
    let mut depth: u32 = 0;
    let mut stmt_start = start;
    let mut i = start;
    while i < end {
        if in_spans(&skip, i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt_start = i + 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                // Guards die with their enclosing block.
                for &(li, ld) in &open_locks {
                    if ld > depth {
                        facts.locks[li].span.1 = i;
                    }
                }
                open_locks.retain(|&(_, ld)| ld <= depth);
                stmt_start = i + 1;
            }
            Tok::Punct(';') => {
                // Unbound guard temporaries die at end of statement.
                for &(li, ld) in &open_locks {
                    if ld == depth && facts.locks[li].binding.is_none() {
                        facts.locks[li].span.1 = i;
                    }
                }
                let locks = &mut facts.locks;
                open_locks.retain(|&(li, ld)| !(ld == depth && locks[li].binding.is_none()));
                stmt_start = i + 1;
            }
            Tok::Ident(name) => {
                let prev_dot = i > start && toks[i - 1].is_punct('.');
                let next_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                // `drop(guard)` releases a bound guard early.
                if name == "drop" && !prev_dot && next_paren {
                    let args = paren_idents(toks, i + 1);
                    for &(li, _) in &open_locks {
                        if facts.locks[li]
                            .binding
                            .as_deref()
                            .is_some_and(|b| args.iter().any(|a| a == b))
                        {
                            facts.locks[li].span.1 = i;
                        }
                    }
                    let locks = &facts.locks;
                    open_locks.retain(|&(li, _)| locks[li].span.1 > i);
                }
                // Lock acquisition: `recv.lock()` or a `lock_*` helper.
                let lock_id = if name == "lock" && prev_dot && next_paren {
                    i.checked_sub(2)
                        .and_then(|j| toks[j].ident())
                        .map(str::to_string)
                        .or_else(|| Some("lock".to_string()))
                } else if let Some(suffix) = name.strip_prefix("lock_") {
                    if next_paren && !suffix.is_empty() {
                        Some(suffix.to_string())
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(lock) = lock_id {
                    // The guard's binding: `let [mut] NAME = …` at the
                    // head of the current statement.
                    let binding = match toks.get(stmt_start).and_then(Token::ident) {
                        Some("let") => {
                            let mut j = stmt_start + 1;
                            if toks.get(j).and_then(Token::ident) == Some("mut") {
                                j += 1;
                            }
                            toks.get(j).and_then(Token::ident).map(str::to_string)
                        }
                        _ => None,
                    };
                    facts.locks.push(LockRegion { lock, line: t.line, binding, span: (i, end) });
                    open_locks.push((facts.locks.len() - 1, depth));
                }
                // Blocking primitives (method position only).
                if prev_dot && next_paren && is_blocking_name(name) {
                    facts.blocking.push(BlockingOp {
                        op: name.clone(),
                        line: t.line,
                        tok: i,
                        args: paren_idents(toks, i + 1),
                    });
                }
                // Call sites.
                if let Some(site) = call_site_at(toks, i, start) {
                    facts.calls.push(site);
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// Classify the token at `i` as a call site, if it is one.
fn call_site_at(toks: &[Token], i: usize, lo: usize) -> Option<CallSite> {
    let name = toks[i].ident()?;
    if is_keyword(name) {
        return None;
    }
    let next = toks.get(i + 1);
    let next_paren = next.is_some_and(|t| t.is_punct('('));
    let next_bang = next.is_some_and(|t| t.is_punct('!'));
    if next_bang {
        return None; // macros are matched by the construct lints, not the graph
    }
    let prev = |k: usize| i.checked_sub(k).filter(|j| *j >= lo).map(|j| &toks[j]);
    let after_dot = prev(1).is_some_and(|t| t.is_punct('.'));
    let after_path =
        prev(1).is_some_and(|t| t.is_punct(':')) && prev(2).is_some_and(|t| t.is_punct(':'));
    let uppercase = name.chars().next().is_some_and(char::is_uppercase);
    let line = toks[i].line;
    if after_dot && next_paren {
        // `recv.name(..)`: hint is the ident before the dot; a `self`
        // receiver is resolved by the caller against its own impl type.
        let hint = prev(2).and_then(Token::ident).map(str::to_string);
        return Some(CallSite {
            callee: Callee::Method { name: name.to_string(), hint },
            line,
            tok: i,
        });
    }
    if after_path {
        // `Ty::name(..)` call or bare `Ty::name` function reference
        // (e.g. `.map(Job::samples)`). Uppercase names are enum variants
        // or tuple-struct constructors (`Slot::Done(..)`), never fns.
        let ty = prev(3).and_then(Token::ident)?;
        if uppercase {
            return None;
        }
        // Skip deeper paths' middle segments (`a::b::c` matches only `c`).
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            return None;
        }
        if ty.chars().next().is_some_and(char::is_uppercase) || ty == "self" {
            return Some(CallSite {
                callee: Callee::Path { ty: ty.to_string(), name: name.to_string() },
                line,
                tok: i,
            });
        }
        // `module::func(..)`: treat as a free-function call by name.
        if next_paren {
            return Some(CallSite {
                callee: Callee::Free { name: name.to_string() },
                line,
                tok: i,
            });
        }
        return None;
    }
    if next_paren && !uppercase {
        // Plain `name(..)` — free function (or a local closure; unresolved
        // names surface as frontier edges).
        return Some(CallSite { callee: Callee::Free { name: name.to_string() }, line, tok: i });
    }
    None
}

/// Resolve a whole file: definitions plus per-definition facts.
pub fn resolve_file(file: &str, toks: &[Token]) -> FileSyms {
    let defs = find_defs(file, toks);
    let facts = defs.iter().map(|d| extract_facts(toks, &defs, d)).collect();
    FileSyms { file: file.to_string(), defs, facts }
}
