//! `bconv-analyze`: workspace invariant analyzer for the block-convolution
//! workspace. Enforces, in CI (`cargo run -p bconv-analyze`):
//!
//! - **L1 no-hot-path-alloc** — *allocation reachability*: a call graph
//!   built from every file's symbols is seeded with the true hot entry
//!   points (`Session::run_with`, `ServeEngine::submit`/`wait`,
//!   `worker_loop`, executor `run_scratch` impls) and hotness propagates
//!   to every reachable function, where `Vec::new`, `vec![]`,
//!   `with_capacity`, `to_vec`, `collect()`, `Tensor::zeros`, `Box::new`,
//!   and `format!` are banned except at allowlisted sites. Callees the
//!   resolver cannot match are reported as **frontier** nodes so the
//!   analysis's blind spots stay visible.
//! - **L2 no-weight-deep-clone** — `.clone()` on conv-weight-like
//!   receivers outside `Arc::clone`, so weights stay shared, not copied.
//! - **L3 no-unordered-iteration** — `HashMap`/`HashSet` in planning,
//!   execution, and serve modules, where iteration order would make plans
//!   or results nondeterministic.
//! - **L4 panic-ratchet** — `unwrap()`/`expect()`/`panic!` in non-test
//!   code, counted per file against a committed baseline that may only
//!   decrease.
//! - **L5 lock-order** — locks held across blocking calls (`recv`/`send`/
//!   `wait`/`join`, directly or through the call graph), relocks, and
//!   pairwise lock-order conflicts across the workspace.
//! - **L6 float-determinism** — order/contraction-sensitive float
//!   constructs (`mul_add`, `powf`, float `sum()`/`product()` turbofish
//!   reductions, float atomics) in kernel/exec/serve modules, so
//!   `target-cpu=native` can never silently change bits.
//!
//! The analyzer is self-contained (hand-written lexer, no `syn`) and
//! analyzes its own source too. Each file is lexed exactly once; the
//! token stream feeds both the per-file lints and the symbol resolver.
//! Policy data lives in `analyze/`: `allowlist.txt` (justified L1–L3/
//! L5/L6 sites, exact-count matched) and `panic_ratchet.txt` (L4
//! baseline, regenerated with `--write-ratchet`). `--json <path>` writes
//! a machine-readable report that CI uploads as an artifact.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod lints;
pub mod resolve;

use graph::{CallGraph, FrontierEdge};
use lints::{Config, FileReport, Finding, Lint};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// An entry in `analyze/allowlist.txt`:
/// `LINT file fn construct count -- justification`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    pub lint: Lint,
    pub file: String,
    pub func: String,
    pub construct: String,
    pub count: usize,
    pub justification: String,
}

/// Parse the allowlist file. Lines starting with `#` and blank lines are
/// comments. Every entry must carry a non-empty justification after `--`.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = line
            .split_once(" -- ")
            .ok_or_else(|| format!("allowlist line {}: missing ` -- justification`", lineno + 1))?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!("allowlist line {}: empty justification", lineno + 1));
        }
        let fields: Vec<&str> = head.split_whitespace().collect();
        let [lint, file, func, construct, count] = fields.as_slice() else {
            return Err(format!(
                "allowlist line {}: want `LINT file fn construct count -- why`, got {} fields",
                lineno + 1,
                fields.len()
            ));
        };
        let lint = Lint::from_id(lint)
            .filter(|l| *l != Lint::PanicRatchet)
            .ok_or_else(|| format!("allowlist line {}: bad lint id {lint:?}", lineno + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {count:?}", lineno + 1))?;
        entries.push(AllowEntry {
            lint,
            file: (*file).to_string(),
            func: (*func).to_string(),
            construct: (*construct).to_string(),
            count,
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

/// Outcome of matching findings against the allowlist: leftover violations
/// plus stale entries (allowlisted sites that no longer exist or whose
/// count drifted — both fail, so the allowlist can never rot).
#[derive(Debug, Default)]
pub struct GateResult {
    pub violations: Vec<Finding>,
    pub stale: Vec<String>,
}

impl GateResult {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Apply the allowlist to L1–L3 findings. An entry absorbs *exactly*
/// `count` findings with the same (lint, file, fn, construct); fewer or
/// more is a mismatch reported as stale.
pub fn apply_allowlist(findings: &[Finding], allow: &[AllowEntry]) -> GateResult {
    let mut grouped: BTreeMap<(String, String, String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        grouped
            .entry((f.lint.id().to_string(), f.file.clone(), f.func.clone(), f.construct.clone()))
            .or_default()
            .push(f.clone());
    }
    let mut result = GateResult::default();
    let mut matched: Vec<(String, String, String, String)> = Vec::new();
    for e in allow {
        let key = (e.lint.id().to_string(), e.file.clone(), e.func.clone(), e.construct.clone());
        match grouped.get(&key) {
            Some(hits) if hits.len() == e.count => matched.push(key),
            Some(hits) => result.stale.push(format!(
                "{} {} `{}` `{}`: allowlist says {} site(s), found {} — update the entry",
                e.lint.id(),
                e.file,
                e.func,
                e.construct,
                e.count,
                hits.len()
            )),
            None => result.stale.push(format!(
                "{} {} `{}` `{}`: allowlisted but no such site remains — delete the entry",
                e.lint.id(),
                e.file,
                e.func,
                e.construct
            )),
        }
    }
    for (key, hits) in grouped {
        if !matched.contains(&key) {
            result.violations.extend(hits);
        }
    }
    result
}

/// Parse `analyze/panic_ratchet.txt`: `count path` per line.
pub fn parse_ratchet(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line
            .split_once(' ')
            .ok_or_else(|| format!("ratchet line {}: want `count path`", lineno + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("ratchet line {}: bad count {count:?}", lineno + 1))?;
        map.insert(file.trim().to_string(), count);
    }
    Ok(map)
}

/// Render the ratchet file from per-file counts (zero-count files omitted).
pub fn render_ratchet(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# bconv-analyze L4 panic ratchet: `unwrap()`/`expect()`/`panic!` sites in\n\
         # non-test code, per file. CI fails if any file's count rises above its\n\
         # baseline here. After burning sites down, regenerate with:\n\
         #   cargo run -p bconv-analyze -- --write-ratchet\n",
    );
    for (file, count) in counts {
        if *count > 0 {
            let _ = writeln!(out, "{count} {file}");
        }
    }
    out
}

/// Per-file ratchet verdicts.
#[derive(Debug, Default)]
pub struct RatchetResult {
    /// Files whose L4 count rose above baseline: (file, baseline, now).
    pub regressions: Vec<(String, usize, usize)>,
    /// Files now below baseline: (file, baseline, now) — regenerate.
    pub improvements: Vec<(String, usize, usize)>,
}

/// Compare current counts against the committed baseline. A file absent
/// from the baseline has baseline 0, so brand-new panics always regress.
pub fn check_ratchet(
    baseline: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> RatchetResult {
    let mut result = RatchetResult::default();
    for (file, &now) in current {
        let base = baseline.get(file).copied().unwrap_or(0);
        if now > base {
            result.regressions.push((file.clone(), base, now));
        } else if now < base {
            result.improvements.push((file.clone(), base, now));
        }
    }
    for (file, &base) in baseline {
        if base > 0 && !current.contains_key(file) {
            result.improvements.push((file.clone(), base, 0));
        }
    }
    result
}

/// Everything the workspace scan produced, pre-gating.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// L1–L3/L5/L6 findings across all files.
    pub findings: Vec<Finding>,
    /// L4 sites per file (only files with at least one site).
    pub panic_sites: BTreeMap<String, Vec<Finding>>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of definitions matched by the configured entry points.
    pub entry_matches: usize,
    /// Qualified names of every function the reachability walk marked hot
    /// (sorted, deduplicated) — the derived replacement for the old
    /// hand-maintained hot-fn list.
    pub hot_fns: Vec<String>,
    /// Unresolved callees reachable from the entry points. Not gated —
    /// surfaced so the analysis's conservatism gaps are visible.
    pub frontier: Vec<FrontierEdge>,
    /// Observed pairwise lock orders `(outer, inner)` across the
    /// workspace (for the report; conflicts are already L5 findings).
    pub lock_orders: Vec<(String, String)>,
}

impl WorkspaceReport {
    /// Per-file L4 counts in ratchet-file form.
    pub fn panic_counts(&self) -> BTreeMap<String, usize> {
        self.panic_sites.iter().map(|(f, sites)| (f.clone(), sites.len())).collect()
    }
}

/// Analyze a set of in-memory sources (`(workspace-relative path, text)`
/// pairs). This is the whole pipeline: each file is lexed **once**, the
/// stream feeds the per-file lints (L2/L3/L4/L6) and the symbol resolver,
/// then the call graph runs allocation reachability (L1) and the lock
/// lint (L5) over everything together.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> WorkspaceReport {
    let mut report = WorkspaceReport::default();
    let mut streams: Vec<Vec<lexer::Token>> = Vec::with_capacity(sources.len());
    let mut syms: Vec<resolve::FileSyms> = Vec::with_capacity(sources.len());
    for (file, src) in sources {
        let toks = lexer::lex(src);
        let FileReport { findings, panic_sites } = lints::scan_tokens(file, &toks, cfg);
        report.findings.extend(findings);
        if !panic_sites.is_empty() {
            report.panic_sites.insert(file.clone(), panic_sites);
        }
        syms.push(resolve::resolve_file(file, &toks));
        streams.push(toks);
        report.files += 1;
    }

    let cg = CallGraph::build(&syms);
    let reach = cg.reach(&cfg.entry_points);
    report.entry_matches = reach.seeds;
    report.frontier = reach.frontier;
    for i in 0..cg.len() {
        if !reach.hot[i] {
            continue;
        }
        let fi = cg.file_index(i);
        let def = cg.def(i);
        report.hot_fns.push(def.qualified());
        report.findings.extend(lints::alloc_sites(&streams[fi], &syms[fi].defs, def));
    }
    report.hot_fns.sort();
    report.hot_fns.dedup();

    let (lock_findings, lock_orders) = cg.lock_lint();
    report.findings.extend(lock_findings);
    report.lock_orders = lock_orders;
    report
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable report CI uploads as an artifact. Plain
/// hand-rolled JSON — the analyzer stays dependency-free on purpose.
pub fn render_json(report: &WorkspaceReport, gate: &GateResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files\": {},", report.files);
    let _ = writeln!(out, "  \"entry_matches\": {},", report.entry_matches);

    let items: Vec<String> =
        report.hot_fns.iter().map(|f| format!("\"{}\"", json_escape(f))).collect();
    let _ = writeln!(out, "  \"hot_fns\": [{}],", items.join(", "));

    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"func\": \"{}\", \"construct\": \"{}\"}}",
                f.lint.id(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.func),
                json_escape(&f.construct)
            )
        })
        .collect();
    let _ = writeln!(out, "  \"findings\": [\n{}\n  ],", findings.join(",\n"));

    let counts: Vec<String> = report
        .panic_counts()
        .iter()
        .map(|(f, n)| format!("    {{\"file\": \"{}\", \"count\": {n}}}", json_escape(f)))
        .collect();
    let _ = writeln!(out, "  \"panic_counts\": [\n{}\n  ],", counts.join(",\n"));

    let frontier: Vec<String> = report
        .frontier
        .iter()
        .map(|e| {
            format!(
                "    {{\"file\": \"{}\", \"func\": \"{}\", \"callee\": \"{}\", \"line\": {}}}",
                json_escape(&e.file),
                json_escape(&e.func),
                json_escape(&e.callee),
                e.line
            )
        })
        .collect();
    let _ = writeln!(out, "  \"frontier\": [\n{}\n  ],", frontier.join(",\n"));

    let orders: Vec<String> = report
        .lock_orders
        .iter()
        .map(|(a, b)| format!("[\"{}\", \"{}\"]", json_escape(a), json_escape(b)))
        .collect();
    let _ = writeln!(out, "  \"lock_orders\": [{}],", orders.join(", "));

    let violations: Vec<String> =
        gate.violations.iter().map(|f| format!("\"{}\"", json_escape(&f.to_string()))).collect();
    let stale: Vec<String> = gate.stale.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    let _ = writeln!(
        out,
        "  \"gate\": {{\"clean\": {}, \"violations\": [{}], \"stale\": [{}]}}",
        gate.is_clean(),
        violations.join(", "),
        stale.join(", ")
    );
    out.push('}');
    out.push('\n');
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every `crates/*/src` tree plus the facade `src/` under `root`.
/// Paths in the report are root-relative with `/` separators.
pub fn scan_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceReport, String> {
    let mut roots: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        roots.push(facade);
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for r in &roots {
        collect_rs_files(r, &mut files).map_err(|e| format!("walking {}: {e}", r.display()))?;
    }

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push((rel, src));
    }
    Ok(analyze_sources(&sources, cfg))
}
