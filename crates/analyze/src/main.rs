//! CLI entry point:
//! `cargo run -p bconv-analyze [-- --write-ratchet] [--json <path>]`.
//!
//! Exit codes: 0 clean, 1 lint violations / ratchet regressions / stale
//! policy entries, 2 usage or I/O errors.

use bconv_analyze::lints::Config;
use bconv_analyze::{
    apply_allowlist, check_ratchet, parse_allowlist, parse_ratchet, render_json, render_ratchet,
    scan_workspace,
};
use std::path::PathBuf;

fn default_root() -> PathBuf {
    // Compiled-in manifest dir is crates/analyze; the workspace root is
    // two levels up. Works no matter where `cargo run` is invoked from.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write_ratchet = false;
    let mut root = default_root();
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write-ratchet" => write_ratchet = true,
            "--root" => {
                root = PathBuf::from(it.next().ok_or_else(|| "--root takes a path".to_string())?);
            }
            "--json" => {
                json_path = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json takes a path".to_string())?,
                ));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let root = root.canonicalize().map_err(|e| format!("bad root {}: {e}", root.display()))?;

    let cfg = Config::workspace();
    let report = scan_workspace(&root, &cfg)?;
    let counts = report.panic_counts();
    let ratchet_path = root.join("analyze").join("panic_ratchet.txt");

    if write_ratchet {
        std::fs::write(&ratchet_path, render_ratchet(&counts))
            .map_err(|e| format!("cannot write {}: {e}", ratchet_path.display()))?;
        let total: usize = counts.values().sum();
        println!(
            "bconv-analyze: wrote ratchet baseline ({} L4 site(s) across {} file(s)) to {}",
            total,
            counts.len(),
            ratchet_path.display()
        );
        return Ok(true);
    }

    let allow_path = root.join("analyze").join("allowlist.txt");
    let allow_text = std::fs::read_to_string(&allow_path)
        .map_err(|e| format!("cannot read {}: {e}", allow_path.display()))?;
    let allow = parse_allowlist(&allow_text)?;
    let gate = apply_allowlist(&report.findings, &allow);

    let baseline_text = std::fs::read_to_string(&ratchet_path)
        .map_err(|e| format!("cannot read {}: {e}", ratchet_path.display()))?;
    let baseline = parse_ratchet(&baseline_text)?;
    let ratchet = check_ratchet(&baseline, &counts);

    let mut clean = true;
    if !gate.violations.is_empty() {
        clean = false;
        println!("lint violations ({}):", gate.violations.len());
        for v in &gate.violations {
            println!("  {v}");
        }
        println!("  (legitimate sites go in analyze/allowlist.txt with a justification)");
    }
    if !gate.stale.is_empty() {
        clean = false;
        println!("stale allowlist entries ({}):", gate.stale.len());
        for s in &gate.stale {
            println!("  {s}");
        }
    }
    if !ratchet.regressions.is_empty() {
        clean = false;
        println!("panic-ratchet regressions ({}):", ratchet.regressions.len());
        for (file, base, now) in &ratchet.regressions {
            println!("  L4 {file}: {base} -> {now} non-test panic site(s)");
            if let Some(sites) = report.panic_sites.get(file) {
                for s in sites {
                    println!("      {}:{} in `{}`: `{}`", s.file, s.line, s.func, s.construct);
                }
            }
        }
        println!("  (convert to typed errors, or lower other files and rerun --write-ratchet)");
    }
    if !ratchet.improvements.is_empty() {
        println!(
            "panic-ratchet improvements ({}): run `cargo run -p bconv-analyze -- \
             --write-ratchet` to lock them in:",
            ratchet.improvements.len()
        );
        for (file, base, now) in &ratchet.improvements {
            println!("  L4 {file}: {base} -> {now}");
        }
    }

    // Frontier summary: callees the resolver could not match, reachable
    // from the entry points. Informational (never gates) — printed so
    // conservatism gaps show up in CI logs instead of staying silent.
    if report.frontier.is_empty() {
        println!("frontier: none — every reachable callee resolved");
    } else {
        println!("frontier ({} unresolved callee(s) on hot paths):", report.frontier.len());
        for e in &report.frontier {
            println!("  {}:{} in `{}`: `{}`", e.file, e.line, e.func, e.callee);
        }
    }

    if let Some(path) = &json_path {
        std::fs::write(path, render_json(&report, &gate))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("bconv-analyze: wrote JSON report to {}", path.display());
    }

    let total_l4: usize = counts.values().sum();
    println!(
        "bconv-analyze: {} file(s), {} hot fn(s) from {} entry match(es), {} finding(s) \
         ({} allowlisted), {} L4 site(s) across {} file(s) — {}",
        report.files,
        report.hot_fns.len(),
        report.entry_matches,
        report.findings.len(),
        report.findings.len() - gate.violations.len(),
        total_l4,
        counts.len(),
        if clean { "clean" } else { "FAILED" }
    );
    Ok(clean)
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("bconv-analyze: {e}");
            std::process::exit(2);
        }
    }
}
