//! A minimal Rust lexer: just enough token structure for the lints in
//! [`crate::lints`], with no dependency on `syn` or the compiler.
//!
//! The lexer's one hard job is *not* reporting phantom findings from
//! comments, doc comments, and string literals — `// don't unwrap() here`
//! must produce zero tokens. Everything that is not a comment, string,
//! char, lifetime, number, or identifier comes out as a single-character
//! [`Tok::Punct`]; the lints match multi-character operators (`::`, `#[`)
//! as punct sequences.

/// One lexed token. Literal *content* is deliberately dropped: the lints
/// only care that a literal occupies the slot (so `"Vec::new"` in a string
/// can never match the `Vec :: new` ident pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `Vec`, `unwrap`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `!`, `{`, ...).
    Punct(char),
    /// String, raw-string, byte-string, char, or numeric literal.
    Lit,
    /// Lifetime such as `'a` or `'static` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, or `None` for non-ident tokens.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.clone().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    /// Skip a `//` line comment (doc comments included); the cursor is
    /// positioned after the second `/`.
    fn skip_line_comment(&mut self) {
        self.eat_while(|c| c != '\n');
    }

    /// Skip a `/* ... */` block comment with nesting; the cursor is
    /// positioned after the `*`.
    fn skip_block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => return, // unterminated; tolerate at EOF
            }
        }
    }

    /// Skip a normal `"..."` string body (opening quote already consumed),
    /// honoring `\"` and `\\` escapes.
    fn skip_string(&mut self) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') | None => return,
                Some(_) => {}
            }
        }
    }

    /// Skip a raw string `r##"..."##` given the number of `#` marks; the
    /// cursor is positioned after the opening `"`.
    fn skip_raw_string(&mut self, hashes: usize) {
        loop {
            match self.bump() {
                Some('"') => {
                    let mut it = self.chars.clone();
                    if (0..hashes).all(|_| it.next() == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return;
                    }
                }
                None => return,
                Some(_) => {}
            }
        }
    }

    /// Skip a char literal body (opening `'` already consumed).
    fn skip_char_literal(&mut self) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('\'') | None => return,
                Some(_) => {}
            }
        }
    }

    /// Consume a numeric literal whose first digit was already bumped.
    /// Loose on purpose: suffixes, hex digits, and bare exponents are all
    /// eaten as part of the literal, but `..` range punctuation is left
    /// alone and a signed exponent (`1e-3`) splits into literal/punct/
    /// literal — harmless for the lints, which never inspect literals.
    fn skip_number(&mut self) {
        self.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
    }
}

/// Process-wide count of [`lex`] invocations. The workspace driver lexes
/// each file exactly once and shares the stream between every lint and
/// the symbol resolver; a unit test asserts that invariant through this
/// counter so a re-lex regression cannot land silently.
pub static LEX_CALLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Lex `src` into a token stream. Comments and whitespace vanish; string,
/// char, and numeric literals collapse to [`Tok::Lit`].
pub fn lex(src: &str) -> Vec<Token> {
    LEX_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut cur = Cursor { chars: src.chars(), line: 1 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            match cur.peek2() {
                Some('/') => {
                    cur.bump();
                    cur.bump();
                    cur.skip_line_comment();
                    continue;
                }
                Some('*') => {
                    cur.bump();
                    cur.bump();
                    cur.skip_block_comment();
                    continue;
                }
                _ => {}
            }
        }
        if c == '"' {
            cur.bump();
            cur.skip_string();
            out.push(Token { tok: Tok::Lit, line });
            continue;
        }
        if c == '\'' {
            cur.bump();
            // `'a'` is a char literal; `'a` / `'static` is a lifetime. The
            // discriminator is whether a closing quote follows one ident
            // char (escapes always mean char literal).
            match cur.peek() {
                Some(n) if is_ident_start(n) && cur.peek2() != Some('\'') => {
                    cur.eat_while(is_ident_continue);
                    out.push(Token { tok: Tok::Lifetime, line });
                }
                _ => {
                    cur.skip_char_literal();
                    out.push(Token { tok: Tok::Lit, line });
                }
            }
            continue;
        }
        if c.is_ascii_digit() {
            cur.bump();
            cur.skip_number();
            out.push(Token { tok: Tok::Lit, line });
            continue;
        }
        if is_ident_start(c) {
            let mut ident = String::new();
            while cur.peek().is_some_and(is_ident_continue) {
                if let Some(ch) = cur.bump() {
                    ident.push(ch);
                }
            }
            // String-literal prefixes: r"..", r#".."#, b"..", br"..".
            match (ident.as_str(), cur.peek()) {
                ("r" | "b" | "br" | "rb", Some('"')) => {
                    cur.bump();
                    if ident.starts_with('r') || ident.ends_with('r') {
                        cur.skip_raw_string(0);
                    } else {
                        cur.skip_string();
                    }
                    out.push(Token { tok: Tok::Lit, line });
                    continue;
                }
                ("r" | "br" | "rb", Some('#')) => {
                    let mut it = cur.chars.clone();
                    let mut hashes = 0usize;
                    while it.clone().next() == Some('#') {
                        it.next();
                        hashes += 1;
                    }
                    if it.next() == Some('"') {
                        for _ in 0..=hashes {
                            cur.bump(); // the hashes and the opening quote
                        }
                        cur.skip_raw_string(hashes);
                        out.push(Token { tok: Tok::Lit, line });
                        continue;
                    }
                    // `r#ident` raw identifier: drop the `r`, lex the ident.
                    cur.bump(); // '#'
                    let mut raw = String::new();
                    while cur.peek().is_some_and(is_ident_continue) {
                        if let Some(ch) = cur.bump() {
                            raw.push(ch);
                        }
                    }
                    out.push(Token { tok: Tok::Ident(raw), line });
                    continue;
                }
                _ => {}
            }
            out.push(Token { tok: Tok::Ident(ident), line });
            continue;
        }
        cur.bump();
        out.push(Token { tok: Tok::Punct(c), line });
    }
    out
}
