//! Executors: pluggable backends that run a compiled [`Graph`].
//!
//! Three backends ship with the crate:
//!
//! * [`ReferenceExecutor`] — dense layer-wise execution on whole feature
//!   maps; every intermediate makes a DRAM round trip. The numerical and
//!   memory-accounting baseline.
//! * [`BlockedExecutor`] — executes an [`ExecPlan`]: fusion groups run
//!   block-by-block through [`bconv_core::fusion::FusedChain`], whole-map
//!   segments run densely, and [`MemStats`] records the off-chip traffic
//!   the fused schedule avoids.
//! * [`crate::quantize::QuantizedExecutor`] — the blocked schedule with
//!   every convolution in calibrated integer arithmetic (the paper's
//!   deployment path; see [`crate::quantize`]).
//!
//! The float backends share one node evaluator, so a graph with an
//! unblocked plan produces bit-identical outputs on `Reference` and
//! `Blocked`; blocking itself only perturbs block-boundary pixels (paper
//! §II-C). The quantized backend reuses the same segment loop and
//! evaluator but substitutes integer convolutions, so it tracks — rather
//! than matches — the float results.

use std::sync::Arc;

use bconv_core::fusion::MemStats;
use bconv_tensor::activation::relu;
use bconv_tensor::elementwise::add;
use bconv_tensor::pool::{global_avg_pool, max_pool2d};
use bconv_tensor::upsample::upsample_nearest;
use bconv_tensor::{Tensor, TensorError};

use crate::ir::{Graph, NodeOp, NodeRef};
use crate::plan::{ExecPlan, Segment};

/// Result of one execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The network output.
    pub output: Tensor,
    /// Memory/traffic statistics in elements (multiply by the bitwidth for
    /// bits, as the paper's figures do).
    pub stats: MemStats,
    /// Number of executed segments (nodes for the reference backend).
    pub segments: usize,
}

/// A compiled execution backend.
pub trait Executor {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Runs the network on `input` (NCHW, any batch size).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when `input` does not match the graph's
    /// input shape or an operator fails.
    fn run(&self, input: &Tensor) -> Result<RunReport, TensorError>;
}

/// Validates the per-element input shape against the graph.
pub(crate) fn check_input(graph: &Graph, input: &Tensor) -> Result<(), TensorError> {
    let [_, c, h, w] = input.shape().dims();
    let want = graph.input_shape();
    if (c, h, w) != (want.c, want.h, want.w) {
        return Err(TensorError::shape_mismatch(
            format!("{} input", graph.name()),
            want.to_string(),
            format!("{c}x{h}x{w}"),
        ));
    }
    Ok(())
}

/// Max pooling with symmetric padding, padding with `-inf` so border
/// windows ignore the synthetic pixels (descriptor pools may carry `p>0`,
/// e.g. the ResNet stem's 3/2/1).
fn max_pool_padded(input: &Tensor, k: usize, s: usize, p: usize) -> Result<Tensor, TensorError> {
    if p == 0 {
        return max_pool2d(input, k, s);
    }
    let [n, c, h, w] = input.shape().dims();
    let mut padded = Tensor::filled([n, c, h + 2 * p, w + 2 * p], f32::NEG_INFINITY);
    padded.paste(input, p, p)?;
    max_pool2d(&padded, k, s)
}

/// Shared node evaluator: the single source of truth for what each op
/// computes, used by every backend.
pub(crate) fn eval_node(
    op: &NodeOp,
    input: &Tensor,
    aux: Option<&Tensor>,
) -> Result<Tensor, TensorError> {
    match op {
        NodeOp::Conv { conv, .. } => conv.forward(input),
        NodeOp::Relu => Ok(relu(input)),
        NodeOp::MaxPool { k, s, p } => max_pool_padded(input, *k, *s, *p),
        NodeOp::GlobalAvgPool => Ok(global_avg_pool(input)),
        NodeOp::Fc(linear) => linear.forward(input),
        NodeOp::Add { .. } => {
            let other = aux.ok_or_else(|| TensorError::invalid("Add without second input"))?;
            add(input, other)
        }
        NodeOp::Upsample { factor } => upsample_nearest(input, *factor),
    }
}

/// Resolves a [`NodeRef`] against stored values.
pub(crate) fn resolve<'a>(
    values: &'a [Option<Tensor>],
    input: &'a Tensor,
    r: NodeRef,
) -> Result<&'a Tensor, TensorError> {
    match r {
        NodeRef::Input => Ok(input),
        NodeRef::Node(i) => values[i]
            .as_ref()
            .ok_or_else(|| TensorError::invalid(format!("node {i} value not materialised"))),
    }
}

/// Dense layer-wise backend: the conventional accelerator dataflow where
/// every intermediate feature map is written to and read back from DRAM.
#[derive(Debug, Clone)]
pub struct ReferenceExecutor {
    graph: Arc<Graph>,
}

impl ReferenceExecutor {
    /// Compiles the backend (trivially) from a graph.
    pub fn new(graph: Arc<Graph>) -> Self {
        Self { graph }
    }
}

impl Executor for ReferenceExecutor {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn run(&self, input: &Tensor) -> Result<RunReport, TensorError> {
        let last = self.graph.output_id();
        let mut stats = MemStats {
            peak_working_elems: 0,
            offchip_elems: input.shape().numel(),
            ..MemStats::default()
        };
        let output = run_dense(&self.graph, input, |id, node, in_t, aux, out| {
            let live =
                in_t.shape().numel() + out.shape().numel() + aux.map_or(0, |t| t.shape().numel());
            stats.peak_working_elems = stats.peak_working_elems.max(live);
            // ReLU runs in place on hardware: no extra DRAM round trip
            // (matching FusedChain::run_layerwise's accounting).
            if !matches!(node.op, NodeOp::Relu) {
                stats.offchip_elems +=
                    if id == last { out.shape().numel() } else { 2 * out.shape().numel() };
            }
        })?;
        Ok(RunReport { output, stats, segments: self.graph.nodes().len() })
    }
}

/// The dense layer-wise graph walk shared by the reference backend and the
/// calibration pass: resolve inputs (including `Add` second operands),
/// evaluate through [`eval_node`], free intermediates after their last
/// consumer, return the graph output. `observe` sees every node's inputs
/// and output as it executes — the reference backend accumulates
/// [`MemStats`] there, calibration feeds conv inputs to its range
/// trackers. Keeping the walk here once guarantees calibration runs
/// exactly the numerics the reference backend reports.
pub(crate) fn run_dense(
    graph: &Graph,
    input: &Tensor,
    mut observe: impl FnMut(crate::ir::NodeId, &crate::ir::Node, &Tensor, Option<&Tensor>, &Tensor),
) -> Result<Tensor, TensorError> {
    check_input(graph, input)?;
    let nodes = graph.nodes();
    let mut values: Vec<Option<Tensor>> = vec![None; nodes.len()];
    // Remaining-use counters so intermediates are freed after their
    // last consumer instead of accumulating for the whole run.
    let mut remaining: Vec<usize> = (0..nodes.len()).map(|i| graph.consumer_count(i)).collect();
    for (id, node) in nodes.iter().enumerate() {
        let in_t = resolve(&values, input, node.input)?;
        let aux = match node.op {
            NodeOp::Add { other } => Some(resolve(&values, input, other)?),
            _ => None,
        };
        let out = eval_node(&node.op, in_t, aux)?;
        observe(id, node, in_t, aux, &out);
        values[id] = Some(out);
        release_used(&mut values, &mut remaining, node);
    }
    values[graph.output_id()].take().ok_or_else(|| TensorError::invalid("graph produced no output"))
}

/// Decrements one reference's remaining-use counter, dropping the value
/// once all its consumers have run. The graph output has consumer count 0
/// and is therefore never dropped here.
pub(crate) fn release_ref(values: &mut [Option<Tensor>], remaining: &mut [usize], r: NodeRef) {
    if let NodeRef::Node(i) = r {
        remaining[i] = remaining[i].saturating_sub(1);
        if remaining[i] == 0 {
            values[i] = None;
        }
    }
}

/// Releases every tensor `node` just read.
pub(crate) fn release_used(
    values: &mut [Option<Tensor>],
    remaining: &mut [usize],
    node: &crate::ir::Node,
) {
    release_ref(values, remaining, node.input);
    if let NodeOp::Add { other } = node.op {
        release_ref(values, remaining, other);
    }
}

/// Blocked/fused backend: executes an [`ExecPlan`], streaming fusion
/// groups block-by-block so their intermediates never cross the off-chip
/// boundary. Blocks of a fusion group are spatially independent by
/// construction (paper §II-C), so with `threads > 1` they are dispatched
/// across scoped worker threads, each with its own scratch buffers;
/// outputs are bitwise-identical at any thread count.
#[derive(Debug, Clone)]
pub struct BlockedExecutor {
    graph: Arc<Graph>,
    plan: Arc<ExecPlan>,
    threads: usize,
}

impl BlockedExecutor {
    /// Compiles a single-threaded backend from a graph and a planned
    /// segment list. The plan is shared, not cloned; its `FusedChain`
    /// stages in turn share the graph's `Arc<Conv2d>` weights.
    pub fn new(graph: Arc<Graph>, plan: Arc<ExecPlan>) -> Self {
        Self::with_threads(graph, plan, 1)
    }

    /// [`new`](Self::new) with an explicit worker-thread count for block
    /// dispatch (`0` is treated as `1`).
    pub fn with_threads(graph: Arc<Graph>, plan: Arc<ExecPlan>, threads: usize) -> Self {
        Self { graph, plan, threads: threads.max(1) }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Worker threads used for block dispatch.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Executor for BlockedExecutor {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn run(&self, input: &Tensor) -> Result<RunReport, TensorError> {
        // A quantized plan carries integer fused chains and whole-map convs
        // that expect quantized dispatch: running it here would mix float
        // and integer numerics and report traffic at the wrong width.
        if let Some(bits) = self.plan.act_bits() {
            return Err(TensorError::invalid(format!(
                "plan was compiled for {bits}-bit quantized execution; \
                 use the quantized backend"
            )));
        }
        run_plan(&self.graph, &self.plan, self.threads, 32, input, |_, node, in_t, aux| {
            eval_node(&node.op, in_t, aux)
        })
    }
}

/// The segment-loop shared by the blocked and quantized backends: fused
/// segments run their chains block-by-block across `threads` workers,
/// whole-map nodes go through `eval_single` (the only point where the
/// backends differ — the quantized backend substitutes `QConv2d` for conv
/// nodes there). All [`MemStats`] accounting conventions — peak-working
/// tracking, the write + read-back rule for non-final segment outputs, the
/// in-place-ReLU exemption — live here once, so the two backends cannot
/// drift apart.
pub(crate) fn run_plan(
    graph: &Graph,
    plan: &ExecPlan,
    threads: usize,
    bits_per_elem: u8,
    input: &Tensor,
    eval_single: impl Fn(
        crate::ir::NodeId,
        &crate::ir::Node,
        &Tensor,
        Option<&Tensor>,
    ) -> Result<Tensor, TensorError>,
) -> Result<RunReport, TensorError> {
    check_input(graph, input)?;
    let nodes = graph.nodes();
    let mut values: Vec<Option<Tensor>> = vec![None; nodes.len()];
    // Remaining-use counters, as in the reference backend. Fused-group
    // interiors are never materialised, so only segment inputs (and
    // Add second operands) are counted down here.
    let mut remaining: Vec<usize> = (0..nodes.len()).map(|i| graph.consumer_count(i)).collect();
    let mut stats =
        MemStats { peak_working_elems: 0, offchip_elems: input.shape().numel(), bits_per_elem };
    let segments = plan.segments();
    let last_seg = segments.len().saturating_sub(1);
    for (si, seg) in segments.iter().enumerate() {
        let (out_id, out) = match seg {
            Segment::Fused { nodes: ids, chain, input: src } => {
                let in_t = resolve(&values, input, *src)?;
                let (out, gs) = chain.run_fused_threads(in_t, threads)?;
                // Per-block buffers are the group's working set; its
                // input/output traffic is accounted at the segment
                // boundaries below.
                stats.peak_working_elems = stats.peak_working_elems.max(gs.peak_working_elems);
                (*ids.last().expect("non-empty group"), out)
            }
            Segment::Single(id) => {
                let node = &nodes[*id];
                let in_t = resolve(&values, input, node.input)?;
                let aux = match node.op {
                    NodeOp::Add { other } => Some(resolve(&values, input, other)?),
                    _ => None,
                };
                let out = eval_single(*id, node, in_t, aux)?;
                let live = in_t.shape().numel()
                    + out.shape().numel()
                    + aux.map_or(0, |t| t.shape().numel());
                stats.peak_working_elems = stats.peak_working_elems.max(live);
                (*id, out)
            }
        };
        // Segment outputs are materialised off-chip: written once, and
        // read back unless this is the network output. In-place ReLU
        // singles transfer nothing (parity with the reference backend).
        let in_place_relu =
            matches!(seg, Segment::Single(id) if matches!(nodes[*id].op, NodeOp::Relu));
        if !in_place_relu {
            stats.offchip_elems +=
                if si == last_seg { out.shape().numel() } else { 2 * out.shape().numel() };
        }
        values[out_id] = Some(out);
        match seg {
            Segment::Fused { input: src, .. } => {
                release_ref(&mut values, &mut remaining, *src);
            }
            Segment::Single(id) => release_used(&mut values, &mut remaining, &nodes[*id]),
        }
    }
    let output = values[graph.output_id()]
        .take()
        .ok_or_else(|| TensorError::invalid("plan did not produce the graph output"))?;
    Ok(RunReport { output, stats, segments: segments.len() })
}
