//! Executors: pluggable backends that run a compiled [`Graph`].
//!
//! Three backends ship with the crate:
//!
//! * [`ReferenceExecutor`] — dense layer-wise execution on whole feature
//!   maps; every intermediate makes a DRAM round trip. The numerical and
//!   memory-accounting baseline.
//! * [`BlockedExecutor`] — executes an [`ExecPlan`]: fusion groups run
//!   block-by-block through [`bconv_core::fusion::FusedChain`], whole-map
//!   segments run densely, and [`MemStats`] records the off-chip traffic
//!   the fused schedule avoids.
//! * [`crate::quantize::QuantizedExecutor`] — the blocked schedule with
//!   every convolution in calibrated integer arithmetic (the paper's
//!   deployment path; see [`crate::quantize`]).
//!
//! The float backends share one node evaluator, so a graph with an
//! unblocked plan produces bit-identical outputs on `Reference` and
//! `Blocked`; blocking itself only perturbs block-boundary pixels (paper
//! §II-C). The quantized backend reuses the same segment loop and
//! evaluator but substitutes integer convolutions, so it tracks — rather
//! than matches — the float results.
//!
//! Executors are **immutable after construction** ([`Executor`] requires
//! `Send + Sync`): one compiled backend can serve concurrent callers.
//! All per-run mutable state lives in an [`ExecScratch`] owned by the
//! caller — [`Executor::run_scratch`] reuses it across requests so
//! steady-state serving performs no allocation beyond the output tensor
//! handed back in each [`RunReport`] (see [`crate::serve`]).

use std::sync::Arc;

use bconv_core::fusion::{MemStats, PipelineScratch};
use bconv_quant::qconv::QConvScratch;
use bconv_quant::qlinear::QLinearScratch;
use bconv_tensor::activation::relu_inplace;
use bconv_tensor::elementwise::add_into;
use bconv_tensor::kernel::{ConvScratch, KernelKind};
use bconv_tensor::pad::{pad2d_asym_into, PadMode};
use bconv_tensor::pool::{global_avg_pool_into, max_pool2d_into};
use bconv_tensor::upsample::upsample_nearest_into;
use bconv_tensor::{Tensor, TensorError};

use crate::ir::{Graph, NodeOp, NodeRef};
use crate::plan::{ExecPlan, Segment};

/// Result of one execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The network output.
    pub output: Tensor,
    /// Memory/traffic statistics in elements (multiply by the bitwidth for
    /// bits, as the paper's figures do).
    pub stats: MemStats,
    /// Number of executed segments (nodes for the reference backend).
    pub segments: usize,
}

/// Reusable per-caller execution state: the node-value table, a pool of
/// recycled intermediate tensors, and the kernel scratch buffers. One
/// scratch belongs to one caller at a time (a serving worker owns one for
/// its lifetime); the executor itself stays shared and immutable.
///
/// Buffers grow to the largest request seen and are reused afterwards:
/// once warm, a run's only allocation is the output tensor that leaves in
/// its [`RunReport`] (it is handed to the caller, so it cannot return to
/// the pool).
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// Materialised per-node values of the in-flight run.
    values: Vec<Option<Tensor>>,
    /// Remaining-use counters (consumer counts) of the in-flight run.
    remaining: Vec<usize>,
    /// Recycled value buffers: released intermediates land here and are
    /// reshaped for the next node instead of reallocating.
    pool: Vec<Tensor>,
    /// Per-block intermediates for serial fused-chain execution plus the
    /// boundary maps of spliced pipelines (one
    /// [`bconv_core::fusion::BlockScratch`] serves both the plain-chain
    /// and pipeline paths — see [`PipelineScratch::block_mut`]).
    pipeline: PipelineScratch,
    /// Whole-map (single-segment) kernel temporaries.
    single: SingleScratch,
}

impl ExecScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a tensor to the scratch's recycle pool — typically the
    /// [`RunReport::output`] of a finished request. The output buffer is
    /// the one allocation a warm [`run_scratch`](Executor::run_scratch)
    /// still performs (it leaves in the report, so it cannot return to the
    /// pool by itself); a caller that hands it back after consuming the
    /// result makes steady-state execution **fully** allocation-free,
    /// which `tests/alloc_gate.rs` asserts to the byte.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.pool.push(tensor);
    }
}

/// Kernel temporaries for whole-map (`Segment::Single`) node evaluation.
#[derive(Debug, Default)]
pub(crate) struct SingleScratch {
    /// Float conv kernel temporaries (im2col patches etc.).
    conv: ConvScratch,
    /// Integer conv temporaries (quantized activations).
    pub(crate) qconv: QConvScratch,
    /// Integer FC temporaries (quantized activations).
    pub(crate) qlinear: QLinearScratch,
    /// Padded-input staging buffer (conv geometry padding, pool `-inf`
    /// padding).
    padded: Tensor,
}

/// A compiled execution backend. Implementations are immutable after
/// construction and shareable across threads; all per-run mutable state
/// is confined to the caller's [`ExecScratch`].
pub trait Executor: Send + Sync {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Runs the network on `input` (NCHW, any batch size) with one-shot
    /// scratch buffers. Prefer [`run_scratch`](Self::run_scratch) when
    /// running many requests.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when `input` does not match the graph's
    /// input shape or an operator fails.
    fn run(&self, input: &Tensor) -> Result<RunReport, TensorError> {
        self.run_scratch(input, &mut ExecScratch::new())
    }

    /// [`run`](Self::run) reusing caller-owned buffers across requests —
    /// the serving entry point. Outputs are bitwise-identical to
    /// [`run`](Self::run); only the allocation behaviour differs.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    fn run_scratch(
        &self,
        input: &Tensor,
        scratch: &mut ExecScratch,
    ) -> Result<RunReport, TensorError>;
}

/// Validates the per-element input shape against the graph.
pub(crate) fn check_input(graph: &Graph, input: &Tensor) -> Result<(), TensorError> {
    let [_, c, h, w] = input.shape().dims();
    let want = graph.input_shape();
    if (c, h, w) != (want.c, want.h, want.w) {
        return Err(TensorError::shape_mismatch(
            format!("{} input", graph.name()),
            want.to_string(),
            format!("{c}x{h}x{w}"),
        ));
    }
    Ok(())
}

/// Max pooling with symmetric padding, padding with `-inf` so border
/// windows ignore the synthetic pixels (descriptor pools may carry `p>0`,
/// e.g. the ResNet stem's 3/2/1). The padded staging buffer comes from
/// the caller's scratch.
fn max_pool_padded_into(
    input: &Tensor,
    k: usize,
    s: usize,
    p: usize,
    out: &mut Tensor,
    padded: &mut Tensor,
) -> Result<(), TensorError> {
    if p == 0 {
        return max_pool2d_into(input, k, s, out);
    }
    let [n, c, h, w] = input.shape().dims();
    padded.reset([n, c, h + 2 * p, w + 2 * p]);
    padded.data_mut().fill(f32::NEG_INFINITY);
    padded.paste(input, p, p)?;
    max_pool2d_into(padded, k, s, out)
}

/// Shared node evaluator: the single source of truth for what each op
/// computes, used by every backend. Writes into `out` (reshaped to fit,
/// every element overwritten), drawing temporaries from `scratch`.
pub(crate) fn eval_node_into(
    op: &NodeOp,
    input: &Tensor,
    aux: Option<&Tensor>,
    out: &mut Tensor,
    scratch: &mut SingleScratch,
) -> Result<(), TensorError> {
    match op {
        NodeOp::Conv { conv, .. } => {
            // Whole-map convs pad with their own symmetric zero geometry
            // padding (exactly `Conv2d::forward`), staged in scratch.
            let p = conv.geom().padding;
            pad2d_asym_into(input, p, p, p, p, PadMode::Zero, &mut scratch.padded)?;
            conv.forward_prepadded_into(&scratch.padded, KernelKind::Direct, out, &mut scratch.conv)
        }
        NodeOp::Relu => {
            out.reset(input.shape());
            out.data_mut().copy_from_slice(input.data());
            relu_inplace(out);
            Ok(())
        }
        NodeOp::MaxPool { k, s, p } => {
            max_pool_padded_into(input, *k, *s, *p, out, &mut scratch.padded)
        }
        NodeOp::GlobalAvgPool => {
            global_avg_pool_into(input, out);
            Ok(())
        }
        NodeOp::Fc(linear) => linear.forward_into(input, out),
        NodeOp::Add { .. } => {
            let other = aux.ok_or_else(|| TensorError::invalid("Add without second input"))?;
            add_into(input, other, out)
        }
        NodeOp::Upsample { factor } => upsample_nearest_into(input, *factor, out),
    }
}

/// Resolves a [`NodeRef`] against stored values.
pub(crate) fn resolve<'a>(
    values: &'a [Option<Tensor>],
    input: &'a Tensor,
    r: NodeRef,
) -> Result<&'a Tensor, TensorError> {
    match r {
        NodeRef::Input => Ok(input),
        NodeRef::Node(i) => values[i]
            .as_ref()
            .ok_or_else(|| TensorError::invalid(format!("node {i} value not materialised"))),
    }
}

/// Dense layer-wise backend: the conventional accelerator dataflow where
/// every intermediate feature map is written to and read back from DRAM.
#[derive(Debug, Clone)]
pub struct ReferenceExecutor {
    graph: Arc<Graph>,
}

impl ReferenceExecutor {
    /// Compiles the backend (trivially) from a graph.
    pub fn new(graph: Arc<Graph>) -> Self {
        Self { graph }
    }
}

impl Executor for ReferenceExecutor {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn run_scratch(
        &self,
        input: &Tensor,
        scratch: &mut ExecScratch,
    ) -> Result<RunReport, TensorError> {
        let last = self.graph.output_id();
        let mut stats = MemStats {
            peak_working_elems: 0,
            offchip_elems: input.shape().numel(),
            ..MemStats::default()
        };
        let output = run_dense_scratch(&self.graph, input, scratch, |id, node, in_t, aux, out| {
            let live =
                in_t.shape().numel() + out.shape().numel() + aux.map_or(0, |t| t.shape().numel());
            stats.peak_working_elems = stats.peak_working_elems.max(live);
            // ReLU runs in place on hardware: no extra DRAM round trip
            // (matching FusedChain::run_layerwise's accounting).
            if !matches!(node.op, NodeOp::Relu) {
                stats.offchip_elems +=
                    if id == last { out.shape().numel() } else { 2 * out.shape().numel() };
            }
        })?;
        Ok(RunReport { output, stats, segments: self.graph.nodes().len() })
    }
}

/// The dense layer-wise graph walk shared by the reference backend and the
/// calibration pass: resolve inputs (including `Add` second operands),
/// evaluate through [`eval_node_into`], recycle intermediates after their
/// last consumer, return the graph output. `observe` sees every node's
/// inputs and output as it executes — the reference backend accumulates
/// [`MemStats`] there, calibration feeds conv inputs to its range
/// trackers. Keeping the walk here once guarantees calibration runs
/// exactly the numerics the reference backend reports.
pub(crate) fn run_dense_scratch(
    graph: &Graph,
    input: &Tensor,
    scratch: &mut ExecScratch,
    mut observe: impl FnMut(crate::ir::NodeId, &crate::ir::Node, &Tensor, Option<&Tensor>, &Tensor),
) -> Result<Tensor, TensorError> {
    check_input(graph, input)?;
    let nodes = graph.nodes();
    let ExecScratch { values, remaining, pool, single, .. } = scratch;
    // A cleared table drops any values a previously failed run left
    // behind; the Vec allocations themselves persist across requests.
    values.clear();
    values.resize_with(nodes.len(), || None);
    remaining.clear();
    remaining.extend((0..nodes.len()).map(|i| graph.consumer_count(i)));
    for (id, node) in nodes.iter().enumerate() {
        let mut out = pool.pop().unwrap_or_default();
        let in_t = resolve(values, input, node.input)?;
        let aux = match node.op {
            NodeOp::Add { other } => Some(resolve(values, input, other)?),
            _ => None,
        };
        eval_node_into(&node.op, in_t, aux, &mut out, single)?;
        observe(id, node, in_t, aux, &out);
        values[id] = Some(out);
        release_used(values, remaining, pool, node);
    }
    values[graph.output_id()].take().ok_or_else(|| TensorError::invalid("graph produced no output"))
}

/// [`run_dense_scratch`] with one-shot buffers (the calibration entry
/// point, which walks a graph only a handful of times).
pub(crate) fn run_dense(
    graph: &Graph,
    input: &Tensor,
    observe: impl FnMut(crate::ir::NodeId, &crate::ir::Node, &Tensor, Option<&Tensor>, &Tensor),
) -> Result<Tensor, TensorError> {
    run_dense_scratch(graph, input, &mut ExecScratch::new(), observe)
}

/// Decrements one reference's remaining-use counter, recycling the value
/// into the buffer pool once all its consumers have run. The graph output
/// has consumer count 0 and is therefore never recycled here.
pub(crate) fn release_ref(
    values: &mut [Option<Tensor>],
    remaining: &mut [usize],
    pool: &mut Vec<Tensor>,
    r: NodeRef,
) {
    if let NodeRef::Node(i) = r {
        remaining[i] = remaining[i].saturating_sub(1);
        if remaining[i] == 0 {
            if let Some(t) = values[i].take() {
                pool.push(t);
            }
        }
    }
}

/// Releases every tensor `node` just read.
pub(crate) fn release_used(
    values: &mut [Option<Tensor>],
    remaining: &mut [usize],
    pool: &mut Vec<Tensor>,
    node: &crate::ir::Node,
) {
    release_ref(values, remaining, pool, node.input);
    if let NodeOp::Add { other } = node.op {
        release_ref(values, remaining, pool, other);
    }
}

/// Blocked/fused backend: executes an [`ExecPlan`], streaming fusion
/// groups block-by-block so their intermediates never cross the off-chip
/// boundary. Blocks of a fusion group are spatially independent by
/// construction (paper §II-C), so with `threads > 1` they are dispatched
/// across scoped worker threads, each with its own scratch buffers;
/// outputs are bitwise-identical at any thread count.
#[derive(Debug, Clone)]
pub struct BlockedExecutor {
    graph: Arc<Graph>,
    plan: Arc<ExecPlan>,
    threads: usize,
}

impl BlockedExecutor {
    /// Compiles a single-threaded backend from a graph and a planned
    /// segment list. The plan is shared, not cloned; its `FusedChain`
    /// stages in turn share the graph's `Arc<Conv2d>` weights.
    pub fn new(graph: Arc<Graph>, plan: Arc<ExecPlan>) -> Self {
        Self::with_threads(graph, plan, 1)
    }

    /// [`new`](Self::new) with an explicit worker-thread count for block
    /// dispatch (`0` is treated as `1`).
    pub fn with_threads(graph: Arc<Graph>, plan: Arc<ExecPlan>, threads: usize) -> Self {
        Self { graph, plan, threads: threads.max(1) }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Worker threads used for block dispatch.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Executor for BlockedExecutor {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn run_scratch(
        &self,
        input: &Tensor,
        scratch: &mut ExecScratch,
    ) -> Result<RunReport, TensorError> {
        // A quantized plan carries integer fused chains and whole-map convs
        // that expect quantized dispatch: running it here would mix float
        // and integer numerics and report traffic at the wrong width.
        if let Some(bits) = self.plan.act_bits() {
            return Err(TensorError::invalid(format!(
                "plan was compiled for {bits}-bit quantized execution; \
                 use the quantized backend"
            )));
        }
        run_plan(
            &self.graph,
            &self.plan,
            self.threads,
            32,
            input,
            scratch,
            |_, node, in_t, aux, out, s| eval_node_into(&node.op, in_t, aux, out, s),
        )
    }
}

/// The segment-loop shared by the blocked and quantized backends: fused
/// segments run their chains block-by-block across `threads` workers,
/// whole-map nodes go through `eval_single` (the only point where the
/// backends differ — the quantized backend substitutes `QConv2d` for conv
/// nodes there). All [`MemStats`] accounting conventions — peak-working
/// tracking, the write + read-back rule for non-final segment outputs, the
/// in-place-ReLU exemption — live here once, so the two backends cannot
/// drift apart. All mutable run state draws from `scratch`.
pub(crate) fn run_plan(
    graph: &Graph,
    plan: &ExecPlan,
    threads: usize,
    bits_per_elem: u8,
    input: &Tensor,
    scratch: &mut ExecScratch,
    eval_single: impl Fn(
        crate::ir::NodeId,
        &crate::ir::Node,
        &Tensor,
        Option<&Tensor>,
        &mut Tensor,
        &mut SingleScratch,
    ) -> Result<(), TensorError>,
) -> Result<RunReport, TensorError> {
    check_input(graph, input)?;
    let nodes = graph.nodes();
    let ExecScratch { values, remaining, pool, pipeline, single } = scratch;
    values.clear();
    values.resize_with(nodes.len(), || None);
    // Remaining-use counters, as in the reference backend. Fused-group
    // interiors are never materialised, so only segment inputs (and
    // Add second operands) are counted down here.
    remaining.clear();
    remaining.extend((0..nodes.len()).map(|i| graph.consumer_count(i)));
    let mut stats =
        MemStats { peak_working_elems: 0, offchip_elems: input.shape().numel(), bits_per_elem };
    let segments = plan.segments();
    let last_seg = segments.len().saturating_sub(1);
    for (si, seg) in segments.iter().enumerate() {
        let mut out = pool.pop().unwrap_or_default();
        let out_id = match seg {
            Segment::Fused { nodes: ids, chain, input: src } => {
                let in_t = resolve(values, input, *src)?;
                let gs = chain.run_fused_into(in_t, threads, &mut out, pipeline.block_mut())?;
                // Per-block buffers are the group's working set; its
                // input/output traffic is accounted at the segment
                // boundaries below.
                stats.peak_working_elems = stats.peak_working_elems.max(gs.peak_working_elems);
                *ids.last().ok_or_else(|| TensorError::invalid("fused segment covers no nodes"))?
            }
            Segment::Spliced { nodes: ids, pipeline: pipe, input: src } => {
                let in_t = resolve(values, input, *src)?;
                let gs = pipe.run_fused_into(in_t, threads, &mut out, pipeline)?;
                // Group-boundary maps stayed on chip: they are part of the
                // pipeline's working-set peak, and the only off-chip
                // traffic is the segment input/output accounted below.
                stats.peak_working_elems = stats.peak_working_elems.max(gs.peak_working_elems);
                *ids.last()
                    .ok_or_else(|| TensorError::invalid("spliced segment covers no nodes"))?
            }
            Segment::Single(id) => {
                let node = &nodes[*id];
                let in_t = resolve(values, input, node.input)?;
                let aux = match node.op {
                    NodeOp::Add { other } => Some(resolve(values, input, other)?),
                    _ => None,
                };
                eval_single(*id, node, in_t, aux, &mut out, single)?;
                let live = in_t.shape().numel()
                    + out.shape().numel()
                    + aux.map_or(0, |t| t.shape().numel());
                stats.peak_working_elems = stats.peak_working_elems.max(live);
                *id
            }
        };
        // Segment outputs are materialised off-chip: written once, and
        // read back unless this is the network output. In-place ReLU
        // singles transfer nothing (parity with the reference backend).
        let in_place_relu =
            matches!(seg, Segment::Single(id) if matches!(nodes[*id].op, NodeOp::Relu));
        if !in_place_relu {
            stats.offchip_elems +=
                if si == last_seg { out.shape().numel() } else { 2 * out.shape().numel() };
        }
        values[out_id] = Some(out);
        match seg {
            Segment::Fused { input: src, .. } | Segment::Spliced { input: src, .. } => {
                release_ref(values, remaining, pool, *src);
            }
            Segment::Single(id) => release_used(values, remaining, pool, &nodes[*id]),
        }
    }
    let output = values[graph.output_id()]
        .take()
        .ok_or_else(|| TensorError::invalid("plan did not produce the graph output"))?;
    Ok(RunReport { output, stats, segments: segments.len() })
}
