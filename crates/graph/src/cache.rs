//! Plan compilation cache: serialize a compiled [`ExecPlan`] once, pin it
//! on disk, and rebuild it on the next process start without re-running
//! the planner walk.
//!
//! The serialized form stores the plan's *decisions* — segment node
//! lists, each fused group's input [`BlockGrid`] — not its solved block
//! convolutions. Loading re-solves Equation 2 per stored grid through
//! [`BlockConv2d::plan_with_kernel`] and reassembles chains with
//! [`FusedChain::from_planned`] (or the quantized variant against the
//! session's freshly calibrated spec), exactly the path the planner's own
//! `finalize` takes — so a cache-loaded session executes bitwise
//! identically to a freshly planned one, while skipping the planner walk
//! entirely (asserted via [`crate::plan::planner_invocations`]).
//!
//! Entries are keyed by [`PlanKey`]: network content hash × blocking
//! pattern × backend × cost-model parameters × kernel policy × pad mode ×
//! host fingerprint. A stale or foreign entry under the same file name is
//! rejected with [`PlanCacheError::KeyMismatch`] and the session falls
//! back to fresh planning — a cache can corrupt start-up *time*, never
//! results.
//!
//! The codec is a hand-rolled recursive-descent JSON reader and a
//! string-builder writer (the same offline idiom as `bconv_bench`'s
//! `check` module): no serde, objects as ordered `Vec<(String, Json)>`
//! pairs, every malformed byte a typed error rather than a panic.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::fusion::{FusedChain, FusedPipeline, PlannedOp};
use bconv_core::plan::{LayerBlocking, NetworkPlan};
use bconv_core::BlockConv2d;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::pad::PadMode;

use crate::cost::CostModel;
use crate::ir::{Graph, NodeId, NodeOp};
use crate::plan::{ExecPlan, PlanProvenance, PlanReport, Segment, SpliceReport};
use crate::quantize::GraphQuantSpec;
use crate::session::Backend;

/// Serialized-plan schema version; bumped when the layout changes so old
/// entries are rejected as [`PlanCacheError::Incompatible`], not
/// misparsed.
const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Minimal JSON value + parser (offline codec, no serde)
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order as key/value pairs —
/// plan files are small and written by this module, so linear key lookup
/// beats pulling in a map type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (plan files only use integers, parsed through f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractions.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return None;
        }
        Some(n as u64)
    }

    pub(crate) fn as_usize(&self) -> Option<usize> {
        usize::try_from(self.as_u64()?).ok()
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let (value, mut pos) = parse_value(bytes, 0)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], mut pos: usize) -> usize {
    while matches!(bytes.get(pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        pos += 1;
    }
    pos
}

fn parse_value(bytes: &[u8], pos: usize) -> Result<(Json, usize), String> {
    let pos = skip_ws(bytes, pos);
    match bytes.get(pos) {
        Some(b'{') => parse_object(bytes, pos + 1),
        Some(b'[') => parse_array(bytes, pos + 1),
        Some(b'"') => {
            let (s, next) = parse_string(bytes, pos + 1)?;
            Ok((Json::Str(s), next))
        }
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: usize, lit: &str, value: Json) -> Result<(Json, usize), String> {
    let end = pos + lit.len();
    if bytes.get(pos..end) == Some(lit.as_bytes()) {
        Ok((value, end))
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: usize) -> Result<(Json, usize), String> {
    let mut end = pos;
    while matches!(bytes.get(end), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
        end += 1;
    }
    let text = bytes
        .get(pos..end)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or_else(|| format!("invalid number at offset {pos}"))?;
    let n: f64 = text.parse().map_err(|_| format!("invalid number {text:?} at offset {pos}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at offset {pos}"));
    }
    Ok((Json::Num(n), end))
}

fn parse_string(bytes: &[u8], mut pos: usize) -> Result<(String, usize), String> {
    let mut out = String::new();
    loop {
        match bytes.get(pos) {
            Some(b'"') => return Ok((out, pos + 1)),
            Some(b'\\') => {
                match bytes.get(pos + 1) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => {
                        return Err(format!("unsupported escape {other:?} at offset {pos}"));
                    }
                }
                pos += 2;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let tail = bytes.get(pos..).unwrap_or_default();
                let s = std::str::from_utf8(tail)
                    .map_err(|_| format!("invalid utf-8 at offset {pos}"))?;
                let ch = s.chars().next().ok_or_else(|| "truncated string".to_string())?;
                out.push(ch);
                pos += ch.len_utf8();
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_array(bytes: &[u8], mut pos: usize) -> Result<(Json, usize), String> {
    let mut items = Vec::new();
    pos = skip_ws(bytes, pos);
    if bytes.get(pos) == Some(&b']') {
        return Ok((Json::Arr(items), pos + 1));
    }
    loop {
        let (value, next) = parse_value(bytes, pos)?;
        items.push(value);
        pos = skip_ws(bytes, next);
        match bytes.get(pos) {
            Some(b',') => pos = skip_ws(bytes, pos + 1),
            Some(b']') => return Ok((Json::Arr(items), pos + 1)),
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], mut pos: usize) -> Result<(Json, usize), String> {
    let mut pairs = Vec::new();
    pos = skip_ws(bytes, pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok((Json::Obj(pairs), pos + 1));
    }
    loop {
        pos = skip_ws(bytes, pos);
        if bytes.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let (key, next) = parse_string(bytes, pos + 1)?;
        pos = skip_ws(bytes, next);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        let (value, next) = parse_value(bytes, pos + 1)?;
        pairs.push((key, value));
        pos = skip_ws(bytes, next);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok((Json::Obj(pairs), pos + 1)),
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Plan keys
// ---------------------------------------------------------------------

/// FNV-1a over a byte string — the stable, dependency-free hash behind
/// network content hashes and cache file names.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// This host's planning-relevant fingerprint: the same
/// available-parallelism probe `bench_check` gates timing comparisons on.
/// Thread count feeds the tuner's search space, so plans pinned on one
/// host class never silently serve another.
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!("cores{cores}")
}

/// Content hash of a lowered graph: structure, shapes, conv geometry and
/// the weight-binding seed. Weights are derived deterministically from
/// `(structure, seed)`, so two graphs with equal hashes carry equal
/// parameters.
pub fn graph_content_hash(graph: &Graph, seed: u64) -> u64 {
    let mut desc = String::new();
    desc.push_str(graph.name());
    let s = graph.input_shape();
    desc.push_str(&format!("|in{}x{}x{}|seed{seed}", s.c, s.h, s.w));
    for node in graph.nodes() {
        desc.push('|');
        desc.push_str(&node.name);
        desc.push(':');
        desc.push_str(node.op.mnemonic());
        desc.push_str(&format!(
            ":{}x{}x{}>{}x{}x{}",
            node.in_shape.c,
            node.in_shape.h,
            node.in_shape.w,
            node.out_shape.c,
            node.out_shape.h,
            node.out_shape.w
        ));
        match &node.op {
            NodeOp::Conv { conv, conv_ordinal } => {
                let g = conv.geom();
                desc.push_str(&format!(
                    ":o{conv_ordinal}k{}s{}p{}g{}c{}>{}",
                    g.kernel,
                    g.stride,
                    g.padding,
                    conv.groups(),
                    conv.c_in(),
                    conv.c_out()
                ));
            }
            NodeOp::MaxPool { k, s, p } => desc.push_str(&format!(":k{k}s{s}p{p}")),
            NodeOp::Upsample { factor } => desc.push_str(&format!(":f{factor}")),
            NodeOp::Add { other } => desc.push_str(&format!(":{other:?}")),
            _ => {}
        }
    }
    fnv1a(desc.as_bytes())
}

/// Stable identity string for an explicit [`NetworkPlan`] (the
/// per-conv-layer blocking decisions), or the resolution-rule marker when
/// the planner derives decisions itself.
pub fn network_plan_key(plan: Option<&NetworkPlan>) -> String {
    match plan {
        None => "resolution-rule".to_string(),
        Some(p) => {
            let mut out = String::from("explicit:");
            for d in p.per_layer() {
                match d {
                    LayerBlocking::Normal => out.push('N'),
                    LayerBlocking::Blocked(pat) => out.push_str(&format!("B({pat})")),
                }
                out.push(',');
            }
            out
        }
    }
}

/// Stable identity string for a [`Backend`].
pub fn backend_key(backend: Backend) -> String {
    match backend {
        Backend::Reference => "reference".to_string(),
        Backend::Blocked => "blocked".to_string(),
        Backend::Quantized { weight_bits, act_bits } => {
            format!("quantized_w{weight_bits}a{act_bits}")
        }
    }
}

/// Everything that must match for a pinned plan to be reusable: the
/// network's content hash, the blocking pattern, the explicit network
/// plan (if any), the backend, the cost model's parameters, the kernel
/// policy, the pad mode, and the host fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    /// Network name (informational; the hash is the identity).
    pub network: String,
    /// [`graph_content_hash`] of the lowered graph + seed.
    pub net_hash: u64,
    /// Blocking pattern, in its `Display` form (`F28`, `H2x2`).
    pub pattern: String,
    /// [`network_plan_key`] of the explicit per-layer decisions.
    pub plan: String,
    /// [`backend_key`] of the session backend.
    pub backend: String,
    /// [`CostModel::cache_param_key`] of the effective cost model.
    pub cost_model: String,
    /// Kernel policy name (`auto` / `direct` / `im2col-gemm`).
    pub kernel: String,
    /// Pad mode name (`zero` / `replicate` / `reflect`).
    pub pad: String,
    /// [`host_fingerprint`] of the planning host.
    pub host: String,
}

impl PlanKey {
    /// Assembles the key for a session build.
    #[allow(clippy::too_many_arguments)]
    pub fn for_build(
        graph: &Graph,
        seed: u64,
        pattern: BlockingPattern,
        plan: Option<&NetworkPlan>,
        backend: Backend,
        cost_model: &dyn CostModel,
        kernel: KernelPolicy,
        pad: PadMode,
    ) -> Self {
        Self {
            network: graph.name().to_string(),
            net_hash: graph_content_hash(graph, seed),
            pattern: pattern.to_string(),
            plan: network_plan_key(plan),
            backend: backend_key(backend),
            cost_model: cost_model.cache_param_key(),
            kernel: kernel.name().to_string(),
            pad: pad.name().to_string(),
            host: host_fingerprint(),
        }
    }

    /// The canonical one-line form stored inside (and checked against)
    /// every cache entry.
    pub fn canonical(&self) -> String {
        format!(
            "{}|{:016x}|{}|{}|{}|{}|{}|{}|{}",
            self.network,
            self.net_hash,
            self.pattern,
            self.plan,
            self.backend,
            self.cost_model,
            self.kernel,
            self.pad,
            self.host
        )
    }

    /// Cache file stem: an FNV-1a digest of the canonical form, so every
    /// distinct key maps to its own file and collisions surface as
    /// [`PlanCacheError::KeyMismatch`] on the stored canonical string.
    pub fn file_stem(&self) -> String {
        format!("plan-{:016x}", fnv1a(self.canonical().as_bytes()))
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a cache entry could not be used. Every variant is a *soft*
/// failure: the session build falls back to fresh planning and may
/// overwrite the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanCacheError {
    /// The entry does not exist or could not be read/written.
    Io(String),
    /// The file exists but is not a well-formed plan document.
    Parse(String),
    /// The file parses but was pinned under a different key (stale
    /// weights, other host, other cost model, hash collision).
    KeyMismatch {
        /// The key this build requires.
        expected: String,
        /// The key the entry was stored under.
        found: String,
    },
    /// The entry's decisions no longer rebuild against this graph (e.g.
    /// node ids out of range, grids that fail Equation 2).
    Incompatible(String),
}

impl std::fmt::Display for PlanCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "plan cache io: {msg}"),
            Self::Parse(msg) => write!(f, "plan cache parse: {msg}"),
            Self::KeyMismatch { expected, found } => {
                write!(f, "plan cache key mismatch: expected {expected}, found {found}")
            }
            Self::Incompatible(msg) => write!(f, "plan cache incompatible: {msg}"),
        }
    }
}

impl std::error::Error for PlanCacheError {}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// An on-disk store of pinned plans, one JSON file per [`PlanKey`].
#[derive(Debug, Clone)]
pub struct PlanCache {
    dir: PathBuf,
}

impl PlanCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn path_for(&self, key: &PlanKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Loads and rebuilds the pinned plan for `key`, re-solving block
    /// plans against `graph` under `pad`/`kernel` (and, for quantized
    /// sessions, the freshly calibrated `quant` spec). On success the
    /// plan's provenance is [`PlanProvenance::CacheLoaded`].
    ///
    /// # Errors
    ///
    /// Any [`PlanCacheError`]; all are soft — callers fall back to fresh
    /// planning.
    pub fn load(
        &self,
        key: &PlanKey,
        graph: &Graph,
        pad: PadMode,
        kernel: KernelPolicy,
        quant: Option<&GraphQuantSpec>,
    ) -> Result<ExecPlan, PlanCacheError> {
        let path = self.path_for(key);
        let text = std::fs::read_to_string(&path).map_err(|e| PlanCacheError::Io(e.to_string()))?;
        let doc = parse_json(&text).map_err(PlanCacheError::Parse)?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| PlanCacheError::Parse("missing version".to_string()))?;
        if version != SCHEMA_VERSION {
            return Err(PlanCacheError::Incompatible(format!(
                "schema version {version}, expected {SCHEMA_VERSION}"
            )));
        }
        let found = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| PlanCacheError::Parse("missing key".to_string()))?;
        let expected = key.canonical();
        if found != expected {
            return Err(PlanCacheError::KeyMismatch { expected, found: found.to_string() });
        }
        rebuild_plan(&doc, key, graph, pad, kernel, quant)
    }

    /// Serializes `plan` under `key`, creating the cache directory if
    /// needed.
    ///
    /// # Errors
    ///
    /// [`PlanCacheError::Io`] when the directory or file cannot be
    /// written. Callers treat a failed store as a missed optimisation,
    /// not a build failure.
    pub fn store(&self, key: &PlanKey, plan: &ExecPlan) -> Result<(), PlanCacheError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| PlanCacheError::Io(e.to_string()))?;
        let text = serialize_plan(key, plan);
        std::fs::write(self.path_for(key), text).map_err(|e| PlanCacheError::Io(e.to_string()))
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn grid_json(grid: &BlockGrid) -> String {
    let segs = |pairs: &[(usize, usize)]| -> String {
        let items: Vec<String> =
            pairs.iter().map(|(start, size)| format!("[{start},{size}]")).collect();
        format!("[{}]", items.join(","))
    };
    format!(
        "{{\"h\":{},\"w\":{},\"rows\":{},\"cols\":{}}}",
        grid.h(),
        grid.w(),
        segs(grid.row_segments()),
        segs(grid.col_segments())
    )
}

fn nodes_json(nodes: &[NodeId]) -> String {
    let items: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Serializes a compiled plan (with its key) to the cache document form.
pub fn serialize_plan(key: &PlanKey, plan: &ExecPlan) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"key\": \"{}\",\n", escape_json(&key.canonical())));
    let pattern = match plan.pattern() {
        BlockingPattern::Fixed { th, tw } => {
            format!("{{\"kind\":\"fixed\",\"th\":{th},\"tw\":{tw}}}")
        }
        BlockingPattern::Hierarchical { gh, gw } => {
            format!("{{\"kind\":\"hierarchical\",\"gh\":{gh},\"gw\":{gw}}}")
        }
    };
    out.push_str(&format!("  \"pattern\": {pattern},\n"));
    match plan.act_bits() {
        Some(bits) => out.push_str(&format!("  \"act_bits\": {bits},\n")),
        None => out.push_str("  \"act_bits\": null,\n"),
    }
    out.push_str(&format!("  \"blocked_convs\": {},\n", plan.blocked_convs()));
    out.push_str(&format!("  \"total_convs\": {},\n", plan.total_convs()));
    let report = plan.report();
    let cuts: Vec<String> = report.cost_cuts.iter().map(|n| n.to_string()).collect();
    let splices: Vec<String> = report
        .splices
        .iter()
        .map(|s| {
            format!(
                "{{\"from\":{},\"to\":{},\"saved\":{}}}",
                s.from_node, s.to_node, s.saved_offchip_elems
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"report\": {{\"cost_model\":\"{}\",\"cost_cuts\":[{}],\"splices\":[{}]}},\n",
        escape_json(&report.cost_model),
        cuts.join(","),
        splices.join(",")
    ));
    out.push_str("  \"segments\": [\n");
    let seg_lines: Vec<String> = plan
        .segments()
        .iter()
        .map(|seg| match seg {
            Segment::Single(id) => format!("    {{\"kind\":\"single\",\"node\":{id}}}"),
            Segment::Fused { nodes, chain, .. } => format!(
                "    {{\"kind\":\"fused\",\"nodes\":{},\"grid\":{}}}",
                nodes_json(nodes),
                grid_json(chain.in_grid())
            ),
            Segment::Spliced { nodes, pipeline, .. } => {
                let groups: Vec<String> = pipeline
                    .groups()
                    .iter()
                    .map(|g| format!("{{\"len\":{},\"grid\":{}}}", g.len(), grid_json(g.in_grid())))
                    .collect();
                format!(
                    "    {{\"kind\":\"spliced\",\"nodes\":{},\"groups\":[{}]}}",
                    nodes_json(nodes),
                    groups.join(",")
                )
            }
        })
        .collect();
    out.push_str(&seg_lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Rebuild (deserialization)
// ---------------------------------------------------------------------

fn parse_grid(value: &Json) -> Result<BlockGrid, PlanCacheError> {
    let field = |name: &str| -> Result<usize, PlanCacheError> {
        value
            .get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| PlanCacheError::Parse(format!("grid missing {name}")))
    };
    let segs = |name: &str| -> Result<Vec<(usize, usize)>, PlanCacheError> {
        let arr = value
            .get(name)
            .and_then(Json::as_arr)
            .ok_or_else(|| PlanCacheError::Parse(format!("grid missing {name}")))?;
        arr.iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .ok_or_else(|| PlanCacheError::Parse("grid segment not a pair".into()))?;
                match items {
                    [a, b] => match (a.as_usize(), b.as_usize()) {
                        (Some(start), Some(size)) => Ok((start, size)),
                        _ => Err(PlanCacheError::Parse("grid segment not integers".into())),
                    },
                    _ => Err(PlanCacheError::Parse("grid segment not a pair".into())),
                }
            })
            .collect()
    };
    BlockGrid::from_segments(field("h")?, field("w")?, segs("rows")?, segs("cols")?)
        .map_err(|e| PlanCacheError::Incompatible(format!("stored grid invalid: {e}")))
}

fn parse_nodes(value: &Json) -> Result<Vec<NodeId>, PlanCacheError> {
    let arr = value
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or_else(|| PlanCacheError::Parse("segment missing nodes".to_string()))?;
    arr.iter()
        .map(|n| {
            n.as_usize().ok_or_else(|| PlanCacheError::Parse("node id not an integer".to_string()))
        })
        .collect()
}

/// Re-solves the planned ops of one fused group from its stored node list
/// and input grid — the same [`BlockConv2d::plan_with_kernel`] calls the
/// planner's trial walk made, in the same order, so the rebuilt chain is
/// bit-identical. Returns the ops and the number of blocked convs.
fn rebuild_ops(
    graph: &Graph,
    nodes: &[NodeId],
    start: &BlockGrid,
    pad: PadMode,
    kernel: KernelPolicy,
) -> Result<(Vec<PlannedOp>, usize), PlanCacheError> {
    let mut cur = start.clone();
    let mut ops = Vec::with_capacity(nodes.len());
    let mut convs = 0usize;
    for &id in nodes {
        let node = graph
            .nodes()
            .get(id)
            .ok_or_else(|| PlanCacheError::Incompatible(format!("node {id} out of range")))?;
        match &node.op {
            NodeOp::Conv { conv, .. } => {
                let bconv =
                    BlockConv2d::plan_with_kernel(Arc::clone(conv), cur.clone(), pad, kernel)
                        .map_err(|e| {
                            PlanCacheError::Incompatible(format!("node {id} unplannable: {e}"))
                        })?;
                cur = bconv.output_grid().map_err(|e| {
                    PlanCacheError::Incompatible(format!("node {id} output grid: {e}"))
                })?;
                ops.push(PlannedOp::Conv(bconv));
                convs += 1;
            }
            NodeOp::Relu => ops.push(PlannedOp::Relu),
            NodeOp::MaxPool { k, s, p } if k == s && *p == 0 => {
                cur = cur.downscale(*k).map_err(|e| {
                    PlanCacheError::Incompatible(format!("node {id} pool grid: {e}"))
                })?;
                ops.push(PlannedOp::MaxPool { k: *k });
            }
            op => {
                return Err(PlanCacheError::Incompatible(format!(
                    "node {id} ({}) cannot appear in a fused group",
                    op.mnemonic()
                )));
            }
        }
    }
    Ok((ops, convs))
}

/// Builds one [`FusedChain`] from rebuilt ops, on the float or quantized
/// path to match the session backend.
fn rebuild_chain(
    nodes: &[NodeId],
    ops: Vec<PlannedOp>,
    start: BlockGrid,
    quant: Option<&GraphQuantSpec>,
) -> Result<FusedChain, PlanCacheError> {
    match quant {
        None => FusedChain::from_planned(ops, start)
            .map_err(|e| PlanCacheError::Incompatible(format!("chain rebuild: {e}"))),
        Some(spec) => {
            let mut params = Vec::new();
            for (&id, op) in nodes.iter().zip(&ops) {
                if matches!(op, PlannedOp::Conv(_)) {
                    params.push(spec.act_params(id).ok_or_else(|| {
                        PlanCacheError::Incompatible(format!(
                            "no calibrated activation range for node {id}"
                        ))
                    })?);
                }
            }
            FusedChain::from_planned_quantized(ops, start, spec.weight_bits, &params)
                .map_err(|e| PlanCacheError::Incompatible(format!("chain rebuild: {e}")))
        }
    }
}

/// Input reference of a segment's first node, read from the graph (the
/// graph is the authority on wiring; the file only stores decisions).
fn segment_input(graph: &Graph, first: NodeId) -> Result<crate::ir::NodeRef, PlanCacheError> {
    graph
        .nodes()
        .get(first)
        .map(|n| n.input)
        .ok_or_else(|| PlanCacheError::Incompatible(format!("node {first} out of range")))
}

fn rebuild_plan(
    doc: &Json,
    key: &PlanKey,
    graph: &Graph,
    pad: PadMode,
    kernel: KernelPolicy,
    quant: Option<&GraphQuantSpec>,
) -> Result<ExecPlan, PlanCacheError> {
    let stored_act_bits =
        match doc.get("act_bits") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64().and_then(|b| u8::try_from(b).ok()).ok_or_else(|| {
                PlanCacheError::Parse("act_bits not a small integer".to_string())
            })?),
        };
    let expected_act_bits = quant.map(|spec| spec.act_bits);
    if stored_act_bits != expected_act_bits {
        return Err(PlanCacheError::Incompatible(format!(
            "stored act_bits {stored_act_bits:?} but session expects {expected_act_bits:?}"
        )));
    }
    let pattern_doc =
        doc.get("pattern").ok_or_else(|| PlanCacheError::Parse("missing pattern".to_string()))?;
    let pfield = |name: &str| -> Result<usize, PlanCacheError> {
        pattern_doc
            .get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| PlanCacheError::Parse(format!("pattern missing {name}")))
    };
    let pattern = match pattern_doc.get("kind").and_then(Json::as_str) {
        Some("fixed") => BlockingPattern::Fixed { th: pfield("th")?, tw: pfield("tw")? },
        Some("hierarchical") => {
            BlockingPattern::Hierarchical { gh: pfield("gh")?, gw: pfield("gw")? }
        }
        _ => return Err(PlanCacheError::Parse("unknown pattern kind".to_string())),
    };

    let report_doc =
        doc.get("report").ok_or_else(|| PlanCacheError::Parse("missing report".to_string()))?;
    let cost_model = report_doc
        .get("cost_model")
        .and_then(Json::as_str)
        .ok_or_else(|| PlanCacheError::Parse("report missing cost_model".to_string()))?
        .to_string();
    let cost_cuts: Vec<NodeId> = report_doc
        .get("cost_cuts")
        .and_then(Json::as_arr)
        .ok_or_else(|| PlanCacheError::Parse("report missing cost_cuts".to_string()))?
        .iter()
        .map(|n| {
            n.as_usize().ok_or_else(|| PlanCacheError::Parse("cost cut not an integer".to_string()))
        })
        .collect::<Result<_, _>>()?;
    let splices: Vec<SpliceReport> = report_doc
        .get("splices")
        .and_then(Json::as_arr)
        .ok_or_else(|| PlanCacheError::Parse("report missing splices".to_string()))?
        .iter()
        .map(|s| {
            let field = |name: &str| -> Result<usize, PlanCacheError> {
                s.get(name)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| PlanCacheError::Parse(format!("splice missing {name}")))
            };
            Ok(SpliceReport {
                from_node: field("from")?,
                to_node: field("to")?,
                saved_offchip_elems: field("saved")?,
            })
        })
        .collect::<Result<_, _>>()?;

    let seg_docs = doc
        .get("segments")
        .and_then(Json::as_arr)
        .ok_or_else(|| PlanCacheError::Parse("missing segments".to_string()))?;
    let mut segments = Vec::with_capacity(seg_docs.len());
    let mut blocked_convs = 0usize;
    for seg in seg_docs {
        match seg.get("kind").and_then(Json::as_str) {
            Some("single") => {
                let id = seg
                    .get("node")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| PlanCacheError::Parse("single missing node".to_string()))?;
                if graph.nodes().get(id).is_none() {
                    return Err(PlanCacheError::Incompatible(format!("node {id} out of range")));
                }
                segments.push(Segment::Single(id));
            }
            Some("fused") => {
                let nodes = parse_nodes(seg)?;
                let first = *nodes.first().ok_or_else(|| {
                    PlanCacheError::Parse("fused segment with no nodes".to_string())
                })?;
                let grid = parse_grid(seg.get("grid").ok_or_else(|| {
                    PlanCacheError::Parse("fused segment missing grid".to_string())
                })?)?;
                let (ops, convs) = rebuild_ops(graph, &nodes, &grid, pad, kernel)?;
                blocked_convs += convs;
                let chain = rebuild_chain(&nodes, ops, grid, quant)?;
                let input = segment_input(graph, first)?;
                segments.push(Segment::Fused { nodes, chain, input });
            }
            Some("spliced") => {
                let nodes = parse_nodes(seg)?;
                let first = *nodes.first().ok_or_else(|| {
                    PlanCacheError::Parse("spliced segment with no nodes".to_string())
                })?;
                let group_docs = seg.get("groups").and_then(Json::as_arr).ok_or_else(|| {
                    PlanCacheError::Parse("spliced segment missing groups".to_string())
                })?;
                let mut cursor = 0usize;
                let mut groups = Vec::with_capacity(group_docs.len());
                for g in group_docs {
                    let len = g
                        .get("len")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| PlanCacheError::Parse("group missing len".to_string()))?;
                    let span = nodes.get(cursor..cursor + len).ok_or_else(|| {
                        PlanCacheError::Parse("group lengths exceed node list".to_string())
                    })?;
                    cursor += len;
                    let grid =
                        parse_grid(g.get("grid").ok_or_else(|| {
                            PlanCacheError::Parse("group missing grid".to_string())
                        })?)?;
                    let (ops, convs) = rebuild_ops(graph, span, &grid, pad, kernel)?;
                    blocked_convs += convs;
                    groups.push(rebuild_chain(span, ops, grid, quant)?);
                }
                if cursor != nodes.len() {
                    return Err(PlanCacheError::Parse(
                        "group lengths do not cover the node list".to_string(),
                    ));
                }
                let pipeline = FusedPipeline::new(groups)
                    .map_err(|e| PlanCacheError::Incompatible(format!("pipeline rebuild: {e}")))?;
                let input = segment_input(graph, first)?;
                segments.push(Segment::Spliced { nodes, pipeline, input });
            }
            _ => return Err(PlanCacheError::Parse("unknown segment kind".to_string())),
        }
    }

    let report = PlanReport {
        cost_model,
        cost_cuts,
        splices,
        provenance: PlanProvenance::CacheLoaded { key: key.canonical() },
    };
    Ok(ExecPlan::from_parts(
        segments,
        pattern,
        blocked_convs,
        graph.conv_count(),
        stored_act_bits,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_plan_shapes() {
        let doc = parse_json(
            "{\"version\": 1, \"arr\": [[0,16],[16,16]], \"s\": \"a|b\", \"neg\": -1, \
             \"none\": null, \"t\": true}",
        )
        .unwrap();
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-1.0));
        assert_eq!(doc.get("neg").and_then(Json::as_u64), None, "negatives are not u64");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a|b"));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        assert_eq!(doc.get("t"), Some(&Json::Bool(true)));
        let arr = doc.get("arr").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_arr().unwrap()[0].as_usize(), Some(16));
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        for bad in ["", "{", "{\"a\":}", "[1,", "{\"a\" 1}", "{} trailing", "nul", "1e999"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t";
        let doc = parse_json(&format!("{{\"k\":\"{}\"}}", escape_json(s))).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_str), Some(s));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn plan_keys_distinguish_every_axis() {
        let base = PlanKey {
            network: "n".into(),
            net_hash: 1,
            pattern: "H2x2".into(),
            plan: "resolution-rule".into(),
            backend: "blocked".into(),
            cost_model: "element-budget(unbounded)".into(),
            kernel: "auto".into(),
            pad: "zero".into(),
            host: "cores4".into(),
        };
        let mut variants = vec![base.clone()];
        let mut k = base.clone();
        k.net_hash = 2;
        variants.push(k);
        let mut k = base.clone();
        k.pattern = "F8".into();
        variants.push(k);
        let mut k = base.clone();
        k.backend = "quantized_w8a8".into();
        variants.push(k);
        let mut k = base.clone();
        k.cost_model = "element-budget(b1500)".into();
        variants.push(k);
        let mut k = base.clone();
        k.host = "cores8".into();
        variants.push(k);
        let canon: Vec<String> = variants.iter().map(PlanKey::canonical).collect();
        for (i, a) in canon.iter().enumerate() {
            for (j, b) in canon.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "keys {i} and {j} collide");
                }
            }
        }
    }
}
