//! The quantized executor backend: post-training quantization of a compiled
//! graph, executed on the blocked/fused schedule.
//!
//! This is the paper's deployment path (§III-C, Figure 7): the hardware
//! designs run *quantized* blocked convolutions — 16/8-bit for the VGG-16
//! accelerator, 8-bit activations × 4-bit weights for VDSR. Compilation
//! adds one stage over the float backends:
//!
//! 1. **Calibration** ([`GraphQuantSpec::calibrate`]) — run the graph
//!    densely (reference semantics) on a handful of calibration inputs,
//!    observing every convolution's input activations through a
//!    [`Calibrator`]; freeze per-node [`QParams`] from the EMA of
//!    per-batch maxima (the Distiller-style PTQ policy).
//! 2. **Quantized planning** ([`crate::plan::Planner::plan_quantized`]) —
//!    the same fusion-group walk as the float plan, but chains are built
//!    with [`bconv_core::fusion::FusedChain::plan_quantized`]: integer
//!    convolution stages with per-stage requantization.
//! 3. **Execution** ([`QuantizedExecutor`]) — the blocked schedule; fused
//!    groups run their quantized chains block-by-block, whole-map conv
//!    segments run through dense [`QConv2d`], everything else (pool, FC,
//!    add, ...) stays float. [`bconv_core::fusion::MemStats`] reports
//!    feature-map traffic at
//!    the activation bitwidth, so `offchip_bits()` reproduces the paper's
//!    memory accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bconv_quant::calibrate::Calibrator;
use bconv_quant::qconv::QConv2d;
use bconv_quant::qlinear::QLinear;
use bconv_quant::QParams;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::pad::PadMode;
use bconv_tensor::{Tensor, TensorError};

use crate::exec::{eval_node_into, run_dense, run_plan, ExecScratch, Executor, RunReport};
use crate::ir::{Graph, NodeId, NodeOp};
use crate::plan::{ExecPlan, Segment};

/// Process-wide count of completed calibration passes, incremented by
/// [`GraphQuantSpec::calibrate`].
static CALIBRATION_PASSES: AtomicU64 = AtomicU64::new(0);

/// Number of calibration passes this process has run. Calibration is the
/// most expensive build-time step (a dense forward pass per calibration
/// batch), so deployments that stamp out engine replicas should see this
/// counter rise **once** per model — replicas built through
/// [`Session::fork`](crate::Session::fork) or
/// [`crate::serve::router::Router`] share the calibrated spec instead of
/// re-calibrating (`tests/serve_router.rs` pins that contract).
pub fn calibration_passes() -> u64 {
    CALIBRATION_PASSES.load(Ordering::Relaxed)
}

/// Validates a bitwidth request before it reaches [`QParams`] (which
/// panics on out-of-range widths).
pub(crate) fn check_bits(what: &str, bits: u8) -> Result<(), TensorError> {
    if !(2..=16).contains(&bits) {
        return Err(TensorError::invalid(format!("{what} must be in 2..=16 bits, got {bits}")));
    }
    Ok(())
}

/// Bitwidths plus frozen per-node activation ranges: everything the
/// quantized planner and executor need beyond the float graph.
#[derive(Debug, Clone)]
pub struct GraphQuantSpec {
    /// Weight bitwidth for every quantized convolution.
    pub weight_bits: u8,
    /// Activation bitwidth (feature-map word width).
    pub act_bits: u8,
    /// Per-node input-activation params (`None` for nodes that are neither
    /// conv nor FC, and for nodes whose calibration observed only zeros).
    act_params: Vec<Option<QParams>>,
}

impl GraphQuantSpec {
    /// Frozen input-activation parameters of conv/FC node `id`, if any.
    pub fn act_params(&self, id: NodeId) -> Option<QParams> {
        self.act_params.get(id).copied().flatten()
    }

    /// Runs the calibration pass: evaluates the graph densely on each
    /// calibration input (exactly the reference executor's numerics),
    /// feeding every conv and FC node's input activations to a
    /// [`Calibrator`], then freezes per-node [`QParams`] at `act_bits`
    /// from the EMA of per-batch maxima (after a single batch the EMA
    /// equals the absolute maximum; a node whose inputs were all zero
    /// gets `None`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when `inputs` is empty or
    /// a bitwidth is out of range, and shape errors when a calibration
    /// input does not match the graph.
    pub fn calibrate(
        graph: &Graph,
        inputs: &[Tensor],
        weight_bits: u8,
        act_bits: u8,
    ) -> Result<Self, TensorError> {
        check_bits("weight_bits", weight_bits)?;
        check_bits("act_bits", act_bits)?;
        if inputs.is_empty() {
            return Err(TensorError::invalid(
                "calibration needs at least one input (got an empty batch list)",
            ));
        }
        let mut cals: Vec<Option<Calibrator>> = graph
            .nodes()
            .iter()
            .map(|n| matches!(n.op, NodeOp::Conv { .. } | NodeOp::Fc(_)).then(Calibrator::new))
            .collect();
        for input in inputs {
            // The reference backend's dense walk, observing every conv
            // node's input activations: calibration sees exactly the
            // numerics the reference executor computes.
            run_dense(graph, input, |id, _, in_t, _, _| {
                if let Some(cal) = cals[id].as_mut() {
                    cal.observe(in_t);
                }
            })?;
        }
        let act_params =
            cals.iter().map(|c| c.as_ref().and_then(|c| c.finalize_ema(act_bits))).collect();
        CALIBRATION_PASSES.fetch_add(1, Ordering::Relaxed);
        Ok(Self { weight_bits, act_bits, act_params })
    }
}

/// Quantized backend: the blocked/fused schedule with every convolution in
/// integer arithmetic. Fused segments execute the plan's quantized chains
/// (block dispatch across worker threads, exactly like the float blocked
/// backend); whole-map conv segments run dense [`QConv2d`] — through the
/// integer im2col+GEMM fast path wherever the kernel policy picks it —
/// with zero outer padding (matching the float reference's geometry
/// padding); FC nodes run through quantized [`QLinear`]; all other
/// whole-map ops run float.
#[derive(Debug, Clone)]
pub struct QuantizedExecutor {
    graph: Arc<Graph>,
    plan: Arc<ExecPlan>,
    spec: Arc<GraphQuantSpec>,
    /// Dense quantized convolutions for `Segment::Single` conv nodes,
    /// indexed by node id.
    qconvs: Vec<Option<Arc<QConv2d>>>,
    /// Quantized FC layers for `Segment::Single` FC nodes, indexed by node
    /// id (`None` where weights or calibration leave no integer form — the
    /// node then falls back to float).
    qlinears: Vec<Option<Arc<QLinear>>>,
    threads: usize,
}

impl QuantizedExecutor {
    /// Compiles the backend from a graph, a **quantized** plan (built by
    /// [`crate::plan::Planner::plan_quantized`] with the same `spec`), and
    /// the frozen quantization spec. Whole-map convolutions resolve
    /// `policy` per layer (the same resolution the plan applied to its
    /// blocked stages), so `Auto` sends them down the integer GEMM path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when a whole-map conv
    /// segment has all-zero weights or no calibrated activation range.
    pub fn new(
        graph: Arc<Graph>,
        plan: Arc<ExecPlan>,
        spec: Arc<GraphQuantSpec>,
        threads: usize,
        policy: KernelPolicy,
    ) -> Result<Self, TensorError> {
        if plan.act_bits() != Some(spec.act_bits) {
            return Err(TensorError::invalid(format!(
                "plan precision ({:?} act bits) does not match the quantization spec ({}); \
                 compile the plan with Planner::plan_quantized and the same spec",
                plan.act_bits(),
                spec.act_bits
            )));
        }
        let mut qconvs: Vec<Option<Arc<QConv2d>>> = vec![None; graph.nodes().len()];
        let mut qlinears: Vec<Option<Arc<QLinear>>> = vec![None; graph.nodes().len()];
        for seg in plan.segments() {
            let Segment::Single(id) = seg else { continue };
            let name = &graph.nodes()[*id].name;
            match &graph.nodes()[*id].op {
                NodeOp::Conv { conv, .. } => {
                    if spec.act_params(*id).is_none() {
                        return Err(TensorError::invalid(format!(
                            "no calibrated activation range for conv node {name}"
                        )));
                    }
                    let q = QConv2d::from_conv_with_kernel(
                        conv,
                        spec.weight_bits,
                        policy.resolve(conv),
                    )
                    .ok_or_else(|| {
                        TensorError::invalid(format!("conv node {name} has all-zero weights"))
                    })?;
                    qconvs[*id] = Some(Arc::new(q));
                }
                // FC nodes quantize opportunistically: zero weights or an
                // uncalibrated input range simply leave the node on the
                // float path (the classifier head is not worth failing a
                // build over, unlike a conv trunk).
                NodeOp::Fc(linear) if spec.act_params(*id).is_some() => {
                    qlinears[*id] = QLinear::from_linear(linear, spec.weight_bits).map(Arc::new);
                }
                _ => {}
            }
        }
        Ok(Self { graph, plan, spec, qconvs, qlinears, threads: threads.max(1) })
    }

    /// The compiled (quantized) plan.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The frozen quantization spec.
    pub fn spec(&self) -> &GraphQuantSpec {
        &self.spec
    }

    /// Worker threads used for block dispatch.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Executor for QuantizedExecutor {
    fn name(&self) -> &'static str {
        "quantized"
    }

    fn run_scratch(
        &self,
        input: &Tensor,
        scratch: &mut ExecScratch,
    ) -> Result<RunReport, TensorError> {
        // The shared segment loop, with feature maps crossing the off-chip
        // boundary at the activation bitwidth (the paper's Figure 7 memory
        // accounting) and whole-map convs dispatched to dense QConv2d.
        run_plan(
            &self.graph,
            &self.plan,
            self.threads,
            self.spec.act_bits,
            input,
            scratch,
            |id, node, in_t, aux, out, s| {
                // Whole-map quantized conv: outer padding is zero, exactly
                // as the float path pads whole maps.
                if let Some(q) = &self.qconvs[id] {
                    let params = self.spec.act_params(id).ok_or_else(|| {
                        TensorError::invalid(format!(
                            "no calibrated activation params for conv node {id} \
                             (spec/graph mismatch)"
                        ))
                    })?;
                    return q.forward_into(in_t, params, PadMode::Zero, out, &mut s.qconv);
                }
                // Quantized FC: integer dot products at the calibrated
                // input range.
                if let Some(ql) = &self.qlinears[id] {
                    let params = self.spec.act_params(id).ok_or_else(|| {
                        TensorError::invalid(format!(
                            "no calibrated activation params for fc node {id} \
                             (spec/graph mismatch)"
                        ))
                    })?;
                    return ql.forward_into(in_t, params, out, &mut s.qlinear);
                }
                eval_node_into(&node.op, in_t, aux, out, s)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LowerOptions;
    use bconv_models::small::vgg16_small;
    use bconv_tensor::init::{seeded_rng, uniform_tensor};

    fn lowered() -> Graph {
        Graph::lower(&vgg16_small(32), &LowerOptions::default()).unwrap()
    }

    #[test]
    fn calibration_freezes_params_for_every_conv_and_fc() {
        let g = lowered();
        let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(1));
        let spec = GraphQuantSpec::calibrate(&g, &[input], 8, 8).unwrap();
        let mut fc_seen = false;
        for (id, node) in g.nodes().iter().enumerate() {
            match node.op {
                NodeOp::Conv { .. } | NodeOp::Fc(_) => {
                    fc_seen |= matches!(node.op, NodeOp::Fc(_));
                    let p = spec.act_params(id);
                    assert!(p.is_some(), "node {} has no params", node.name);
                    assert_eq!(p.unwrap().bits(), 8);
                }
                _ => assert!(spec.act_params(id).is_none()),
            }
        }
        assert!(fc_seen, "vgg16_small should end in an FC head");
    }

    #[test]
    fn calibration_rejects_empty_batches_and_bad_bits() {
        let g = lowered();
        let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(2));
        assert!(GraphQuantSpec::calibrate(&g, &[], 8, 8).is_err());
        assert!(GraphQuantSpec::calibrate(&g, std::slice::from_ref(&input), 1, 8).is_err());
        assert!(GraphQuantSpec::calibrate(&g, std::slice::from_ref(&input), 8, 32).is_err());
    }

    #[test]
    fn executors_reject_mismatched_plan_precision() {
        use crate::exec::{BlockedExecutor, Executor};
        use crate::plan::{Planner, PlannerOptions};
        let g = Arc::new(lowered());
        let input = uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut seeded_rng(4));
        let spec =
            Arc::new(GraphQuantSpec::calibrate(&g, std::slice::from_ref(&input), 8, 8).unwrap());
        let planner = Planner::new(PlannerOptions::default());
        let qplan = Arc::new(planner.plan_quantized(&g, &spec).unwrap());
        let fplan = Arc::new(planner.plan(&g).unwrap());
        // A quantized plan on the float blocked backend is refused at run.
        let blocked = BlockedExecutor::new(Arc::clone(&g), Arc::clone(&qplan));
        assert!(blocked.run(&input).is_err());
        // A float plan on the quantized backend is refused at construction.
        assert!(QuantizedExecutor::new(
            Arc::clone(&g),
            fplan,
            Arc::clone(&spec),
            1,
            KernelPolicy::Auto
        )
        .is_err());
        // The matched pair runs.
        let q = QuantizedExecutor::new(g, qplan, spec, 1, KernelPolicy::Auto).unwrap();
        assert!(q.run(&input).is_ok());
    }

    #[test]
    fn ema_discounts_an_outlier_batch() {
        let g = lowered();
        let mut rng = seeded_rng(3);
        let mut inputs: Vec<Tensor> =
            (0..3).map(|_| uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut rng)).collect();
        inputs.push(uniform_tensor([1, 3, 32, 32], -50.0, 50.0, &mut rng)); // outlier
        inputs.push(uniform_tensor([1, 3, 32, 32], -1.0, 1.0, &mut rng));
        let spec = GraphQuantSpec::calibrate(&g, &inputs, 8, 8).unwrap();
        // Node 0 is the first conv, reading the graph input: the EMA range
        // must sit well below the outlier's absolute maximum.
        let p = spec.act_params(0).unwrap();
        assert!(p.scale() * (p.qmax() as f32) < 49.0, "EMA did not discount the outlier");
    }
}
