//! [`ServeEngine`]: batched, multi-stream serving on top of a compiled
//! [`Session`].
//!
//! A session compiles a network once and can answer `run(&input)` calls,
//! but a server needs more: many callers, bounded memory under load, and
//! batch coalescing so per-run dispatch overhead is amortised. The engine
//! provides exactly that, with std primitives only (threads + channels —
//! the workspace has no crates.io access):
//!
//! * **Lifecycle** — [`Session::into_engine`](crate::Session::into_engine)
//!   consumes the session and spawns a fixed pool of worker threads. Every
//!   worker shares the session's immutable executor
//!   ([`Executor`] is `Send + Sync`) and owns one
//!   reusable [`ExecScratch`], so steady-state serving performs no
//!   tensor/scratch allocation beyond each request's output tensor
//!   (bookkeeping — tickets, job lists — is a few machine words per
//!   request). [`ServeEngine::shutdown`] (or
//!   drop) closes the queue, drains in-flight requests, and joins the
//!   workers.
//! * **Entry points** — [`submit`](ServeEngine::submit) enqueues a request
//!   and returns a [`TicketId`] immediately; [`wait`](ServeEngine::wait)
//!   blocks until that ticket's [`RunReport`] is ready (each ticket is
//!   delivered exactly once). [`run_batch`](ServeEngine::run_batch) is the
//!   synchronous batch facade: submit everything, wait for everything,
//!   reports in request order.
//! * **Backpressure** — the request queue is a bounded
//!   [`sync_channel`](std::sync::mpsc::sync_channel) of depth
//!   [`ServeConfig::queue_depth`]: `submit` blocks while the queue is
//!   full, so at most `queue_depth` queued requests + one in-flight
//!   batch and one carried-over job per worker exist at any time and
//!   request memory stays bounded no matter how fast clients submit; [`try_submit`](ServeEngine::try_submit)
//!   returns `None` instead of blocking. (Completed reports are retained
//!   until their ticket is waited on or the engine shuts down — a caller
//!   that submits fire-and-forget without ever redeeming tickets is
//!   keeping its own results alive.)
//! * **Batch coalescing** — requests to one engine always share the
//!   graph's per-sample input shape (validated at submit), so workers
//!   greedily drain up to [`ServeConfig::max_batch`] queued samples and
//!   run them as a single NCHW batch; `run_batch` additionally
//!   pre-coalesces its inputs into `max_batch`-sample jobs at submit
//!   time. Samples are independent under every backend (convolution,
//!   pooling, FC and requantization never mix batch elements), so
//!   coalescing is **bitwise invisible**: each request's output is
//!   identical to a solo [`Session::run`](crate::Session::run), at any
//!   worker count and any batching accident of timing.
//! * **Exact per-request [`MemStats`]** — every traffic and working-set
//!   term of a batched run carries the batch-size factor, so the batch
//!   report divides exactly back into per-request reports
//!   (`stats × nᵢ / N`); a coalesced request reports the same stats it
//!   would have reported alone.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use bconv_core::fusion::MemStats;
use bconv_tensor::{Tensor, TensorError};

use crate::exec::{check_input, ExecScratch, Executor, RunReport};
use crate::ir::Graph;
use crate::session::{Backend, Session};

/// Sizing of a [`ServeEngine`]'s worker pool, queue, and batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads answering requests; `0` (the default) means
    /// **auto**: one worker per core not already claimed by the
    /// session's intra-request block threads
    /// (`available_parallelism / session.threads()`, at least 1), so the
    /// two axes compose without oversubscribing the machine. Each worker
    /// runs one request batch at a time through the shared executor; a
    /// blocked/quantized session with `threads > 1` additionally fans
    /// each fused group out across that many scoped threads *inside* the
    /// worker, so serving deployments typically build the session with
    /// `.threads(1)` and scale `workers` instead (parallelism across
    /// requests beats parallelism within one once the queue is busy).
    pub workers: usize,
    /// Capacity of the bounded request queue ([`ServeEngine::submit`]
    /// blocks while it is full). Queued plus in-flight requests are the
    /// engine's entire buffered state, so this caps server memory.
    pub queue_depth: usize,
    /// Maximum samples coalesced into one executor run (1 disables
    /// batching).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { workers: 0, queue_depth: 64, max_batch: 8 }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), TensorError> {
        if self.queue_depth == 0 {
            return Err(TensorError::invalid("ServeConfig::queue_depth must be >= 1"));
        }
        if self.max_batch == 0 {
            return Err(TensorError::invalid("ServeConfig::max_batch must be >= 1"));
        }
        Ok(())
    }
}

/// Handle to one submitted request; redeem it with [`ServeEngine::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketId(u64);

/// One queue entry: an input batch plus the tickets it answers.
/// `submit` enqueues single-part jobs; `run_batch` pre-coalesces chunks
/// into multi-part jobs; workers may merge further at dequeue time.
struct Job {
    /// `(ticket, samples)` per request, in batch order.
    parts: Vec<(u64, usize)>,
    input: Tensor,
}

impl Job {
    fn samples(&self) -> usize {
        self.parts.iter().map(|&(_, n)| n).sum()
    }
}

/// A ticket's delivery slot.
enum Slot {
    Pending,
    Done(Result<RunReport, TensorError>),
}

/// State shared between clients and workers.
///
/// The ticket table is a `BTreeMap`, not a `HashMap`, on purpose: tickets
/// are dense sequential integers, the table is tiny (bounded by the
/// in-flight request window), and an ordered structure keeps every
/// conceivable traversal deterministic — the engine's bitwise-determinism
/// contract must not hinge on "nobody ever iterates this map"
/// (`bconv-analyze` lint L3 bans `HashMap`/`HashSet` in this module).
struct Shared {
    results: Mutex<BTreeMap<u64, Slot>>,
    done: Condvar,
}

impl Shared {
    /// Poison-tolerant lock on the ticket table. A worker unwind (the very
    /// event [`InFlightGuard`] exists for) may poison this mutex between a
    /// slot update and its notify; waiters must still be able to drain
    /// their tickets — the table itself is never left mid-update (every
    /// critical section completes its map operation before unwinding can
    /// reach it through the executor).
    fn lock_results(&self) -> MutexGuard<'_, BTreeMap<u64, Slot>> {
        self.results.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The serving engine: a compiled session behind a bounded queue and a
/// worker pool. See the [module docs](self) for the full semantics.
pub struct ServeEngine {
    graph: Arc<Graph>,
    backend: Backend,
    config: ServeConfig,
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    next_ticket: AtomicU64,
}

impl ServeEngine {
    /// Builds the engine from a compiled session (the
    /// [`Session::into_engine`] destination).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when `config` is invalid.
    pub(crate) fn new(session: Session, config: ServeConfig) -> Result<Self, TensorError> {
        config.validate()?;
        // Resolve workers = 0 (auto) against the session's intra-request
        // thread count so the default configs compose to roughly one
        // runnable thread per core instead of workers x threads.
        let mut config = config;
        if config.workers == 0 {
            let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
            config.workers = (avail / session.threads().max(1)).max(1);
        }
        let backend = session.backend();
        let (graph, executor) = session.shared_parts();
        let shared =
            Arc::new(Shared { results: Mutex::new(BTreeMap::new()), done: Condvar::new() });
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Job>(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let executor = Arc::clone(&executor);
            let receiver = Arc::clone(&receiver);
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("bconv-serve-{i}"))
                .spawn(move || worker_loop(&*executor, &receiver, &shared, config.max_batch));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Disconnect the (empty) queue so already-spawned
                    // workers exit, then report the resource failure as a
                    // typed error instead of panicking mid-construction.
                    drop(sender);
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(TensorError::invalid(format!(
                        "cannot spawn serve worker thread {i} of {}: {e}",
                        config.workers
                    )));
                }
            }
        }
        Ok(Self {
            graph,
            backend,
            config,
            sender: Some(sender),
            workers,
            shared,
            next_ticket: AtomicU64::new(1),
        })
    }

    /// The backend the engine serves.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The engine's sizing configuration, with `workers = 0` (auto)
    /// already resolved to the actual pool size.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Validates a request input: per-sample shape must match the graph,
    /// and the batch must be non-empty (an empty batch has no ticket to
    /// answer).
    fn check_request(&self, input: &Tensor) -> Result<usize, TensorError> {
        check_input(&self.graph, input)?;
        let n = input.shape().dims()[0];
        if n == 0 {
            return Err(TensorError::invalid("cannot serve an empty (batch 0) request"));
        }
        Ok(n)
    }

    fn issue_ticket(&self) -> u64 {
        self.next_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers pending slots for `parts` and enqueues the job through
    /// `send`. On queue rejection the slots are rolled back so the
    /// tickets read as unknown rather than hanging forever.
    fn enqueue(
        &self,
        parts: Vec<(u64, usize)>,
        input: Tensor,
        send: impl FnOnce(&SyncSender<Job>, Job) -> Result<bool, TensorError>,
    ) -> Result<bool, TensorError> {
        let sender =
            self.sender.as_ref().ok_or_else(|| TensorError::invalid("engine is shut down"))?;
        {
            let mut results = self.shared.lock_results();
            for &(t, _) in &parts {
                results.insert(t, Slot::Pending);
            }
        }
        let tickets: Vec<u64> = parts.iter().map(|&(t, _)| t).collect();
        match send(sender, Job { parts, input }) {
            Ok(enqueued) => {
                if !enqueued {
                    let mut results = self.shared.lock_results();
                    for t in &tickets {
                        results.remove(t);
                    }
                }
                Ok(enqueued)
            }
            Err(e) => {
                let mut results = self.shared.lock_results();
                for t in &tickets {
                    results.remove(t);
                }
                Err(e)
            }
        }
    }

    /// Enqueues one request (any batch size), **blocking while the queue
    /// is full** — the backpressure point. Returns a ticket redeemable
    /// once with [`wait`](Self::wait).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on per-sample shape mismatch, an empty
    /// batch, or an engine that is shutting down.
    pub fn submit(&self, input: Tensor) -> Result<TicketId, TensorError> {
        let n = self.check_request(&input)?;
        let ticket = self.issue_ticket();
        self.enqueue(vec![(ticket, n)], input, |sender, job| {
            sender.send(job).map(|()| true).map_err(|_| TensorError::invalid("engine is shut down"))
        })?;
        Ok(TicketId(ticket))
    }

    /// Non-blocking [`submit`](Self::submit): returns `Ok(None)` instead
    /// of blocking when the queue is full (the caller sees backpressure
    /// and can shed load).
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn try_submit(&self, input: Tensor) -> Result<Option<TicketId>, TensorError> {
        let n = self.check_request(&input)?;
        let ticket = self.issue_ticket();
        let enqueued =
            self.enqueue(vec![(ticket, n)], input, |sender, job| match sender.try_send(job) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(_)) => Ok(false),
                Err(TrySendError::Disconnected(_)) => {
                    Err(TensorError::invalid("engine is shut down"))
                }
            })?;
        Ok(enqueued.then_some(TicketId(ticket)))
    }

    /// Blocks until `ticket`'s request has executed and returns its
    /// report. Every ticket is delivered exactly once; waiting again (or
    /// on a ticket this engine never issued) is an error, not a hang.
    ///
    /// # Errors
    ///
    /// Returns the request's own execution error, or
    /// [`TensorError::InvalidParameter`] for an unknown/already-delivered
    /// ticket.
    pub fn wait(&self, ticket: TicketId) -> Result<RunReport, TensorError> {
        let mut results = self.shared.lock_results();
        loop {
            // Take the slot out: a Done slot is delivered (exactly once), a
            // Pending slot goes straight back before parking on the condvar.
            match results.remove(&ticket.0) {
                None => {
                    return Err(TensorError::invalid(format!(
                        "ticket {} is unknown or was already delivered",
                        ticket.0
                    )))
                }
                Some(Slot::Done(report)) => return report,
                Some(Slot::Pending) => {
                    results.insert(ticket.0, Slot::Pending);
                    results =
                        self.shared.done.wait(results).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Runs a batch of requests and returns their reports in request
    /// order. Inputs are validated up front, pre-coalesced into
    /// [`ServeConfig::max_batch`]-sample jobs (amortising block dispatch
    /// across the batch), executed by the worker pool, and split back
    /// into per-request reports with exact per-request [`MemStats`].
    /// Outputs are bitwise-identical to running each input through
    /// [`Session::run`](crate::Session::run) alone.
    ///
    /// # Errors
    ///
    /// Returns the first failing request's error (after all requests
    /// finished), or a validation error before anything is enqueued.
    pub fn run_batch(&self, inputs: &[Tensor]) -> Result<Vec<RunReport>, TensorError> {
        let mut sizes = Vec::with_capacity(inputs.len());
        for input in inputs {
            sizes.push(self.check_request(input)?);
        }
        let mut tickets: Vec<TicketId> = Vec::with_capacity(inputs.len());
        let mut i = 0usize;
        while i < inputs.len() {
            // Greedy chunk: extend while the sample budget holds (a single
            // oversized request still ships alone — the executor takes any
            // batch size; max_batch only caps *coalescing*).
            let mut j = i + 1;
            let mut samples = sizes[i];
            while j < inputs.len() && samples + sizes[j] <= self.config.max_batch {
                samples += sizes[j];
                j += 1;
            }
            let parts: Vec<(u64, usize)> =
                (i..j).map(|k| (self.issue_ticket(), sizes[k])).collect();
            let chunk_tickets: Vec<TicketId> = parts.iter().map(|&(t, _)| TicketId(t)).collect();
            let input = if j - i == 1 {
                inputs[i].clone()
            } else {
                let chunk: Vec<&Tensor> = inputs[i..j].iter().collect();
                let mut batch = Tensor::default();
                concat_batch_into(&chunk, samples, &mut batch);
                batch
            };
            if let Err(e) = self.enqueue(parts, input, |sender, job| {
                sender
                    .send(job)
                    .map(|()| true)
                    .map_err(|_| TensorError::invalid("engine is shut down"))
            }) {
                // A send can only fail once every worker has exited (the
                // receiver is dropped last), so chunks enqueued earlier
                // that are not already Done will never be: resolve their
                // Pending slots to errors, then drain everything so no
                // result lingers undelivered. Blind-waiting instead
                // would hang on the first abandoned ticket.
                {
                    let mut results = self.shared.lock_results();
                    for t in &tickets {
                        if matches!(results.get(&t.0), Some(Slot::Pending)) {
                            results.insert(t.0, Slot::Done(Err(e.clone())));
                        }
                    }
                }
                self.shared.done.notify_all();
                for ticket in tickets {
                    let _ = self.wait(ticket);
                }
                return Err(e);
            }
            tickets.extend(chunk_tickets);
            i = j;
        }
        let mut reports = Vec::with_capacity(tickets.len());
        let mut first_err: Option<TensorError> = None;
        for ticket in tickets {
            match self.wait(ticket) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(reports),
            Some(e) => Err(e),
        }
    }

    /// Closes the queue, drains every already-submitted request, and
    /// joins the worker pool. Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Dropping the sender disconnects the channel; workers finish the
        // queued jobs, then their recv errors out and they exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("network", &self.graph.name())
            .field("backend", &self.backend)
            .field("config", &self.config)
            .finish()
    }
}

/// Concatenates same-per-sample-shape requests along the batch dimension
/// into `out` (NCHW is sample-major, so this is a plain append). The one
/// coalescing primitive, shared by `run_batch` pre-coalescing and the
/// worker-side merge.
fn concat_batch_into(chunk: &[&Tensor], total_n: usize, out: &mut Tensor) {
    let [_, c, h, w] = chunk[0].shape().dims();
    out.reset([total_n, c, h, w]);
    let mut off = 0usize;
    for t in chunk {
        let d = t.data();
        out.data_mut()[off..off + d.len()].copy_from_slice(d);
        off += d.len();
    }
}

/// Per-request share of a coalesced batch's [`MemStats`]: every counter
/// term of the shipped backends scales linearly with the batch
/// dimension, so `x * n / total_n` is exact and equals the stats of a
/// solo run of the same request (`tests/serve_determinism.rs` asserts
/// the equality). The multiply-first u128 arithmetic keeps release
/// builds sensible (nearest rounding, no truncation bias) even if a
/// future backend adds a batch-independent term; the debug asserts are
/// the canary that flags such a term during development.
fn per_request_stats(batch: MemStats, total_n: usize, n: usize) -> MemStats {
    debug_assert_eq!(
        batch.offchip_elems % total_n,
        0,
        "off-chip traffic must carry the batch factor"
    );
    debug_assert_eq!(
        batch.peak_working_elems % total_n,
        0,
        "working-set peak must carry the batch factor"
    );
    let share = |x: usize| -> usize {
        ((x as u128 * n as u128 + total_n as u128 / 2) / total_n as u128) as usize
    };
    MemStats {
        peak_working_elems: share(batch.peak_working_elems),
        offchip_elems: share(batch.offchip_elems),
        bits_per_elem: batch.bits_per_elem,
    }
}

/// Publishes one ticket's result and wakes waiters.
fn fulfill(shared: &Shared, ticket: u64, report: Result<RunReport, TensorError>) {
    let mut results = shared.lock_results();
    results.insert(ticket, Slot::Done(report));
    shared.done.notify_all();
}

/// Splits a coalesced batch report back into per-request reports, in
/// batch order. The output batch dimension is partitioned at the request
/// boundaries; stats divide exactly (see [`per_request_stats`]).
fn fulfill_split(shared: &Shared, parts: &[(u64, usize)], total_n: usize, report: &RunReport) {
    let [out_n, c_out, oh, ow] = report.output.shape().dims();
    debug_assert_eq!(out_n, total_n, "output batch must match the coalesced input batch");
    let per_sample = c_out * oh * ow;
    let mut start = 0usize;
    for &(ticket, n) in parts {
        let data = report.output.data()[start * per_sample..(start + n) * per_sample].to_vec();
        // The split dims match the copied slice by construction; should
        // that invariant ever break, the ticket receives the shape error
        // instead of the worker unwinding.
        let result = Tensor::from_vec([n, c_out, oh, ow], data).map(|output| RunReport {
            output,
            stats: per_request_stats(report.stats, total_n, n),
            segments: report.segments,
        });
        fulfill(shared, ticket, result);
        start += n;
    }
}

/// A worker: pull a job, opportunistically coalesce more queued jobs up
/// to `max_batch` samples, run the batch once through the shared
/// executor with this worker's scratch, split the results per ticket.
fn worker_loop(
    executor: &dyn Executor,
    receiver: &Mutex<Receiver<Job>>,
    shared: &Shared,
    max_batch: usize,
) {
    let mut scratch = ExecScratch::new();
    let mut batch_buf = Tensor::default();
    // A job drained from the queue that would have pushed the running
    // batch past max_batch: it leads this worker's next batch instead.
    let mut carry: Option<Job> = None;
    loop {
        // A carried job must run WITHOUT touching the receiver: an idle
        // peer may be parked inside a blocking recv while holding the
        // receiver mutex, and if every client is waiting on the carried
        // job no new submission will ever release it — blocking here
        // would deadlock the engine. The carried job simply runs alone
        // (forfeiting one coalescing opportunity).
        let jobs = if let Some(job) = carry.take() {
            vec![job]
        } else {
            // Holding the receiver lock across the blocking recv is the
            // standard shared-receiver pattern: a parked peer blocks on
            // the mutex instead of the channel and takes the next job.
            // Poison-tolerant: a peer that panicked mid-recv leaves the
            // channel itself consistent, and this worker must keep
            // draining jobs so no client hangs.
            let rx = receiver.lock().unwrap_or_else(PoisonError::into_inner);
            let first = match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // disconnected and drained: shut down
            };
            let mut samples = first.samples();
            let mut jobs = vec![first];
            while samples < max_batch {
                match rx.try_recv() {
                    Ok(job) => {
                        // Never exceed the batch cap: an overflowing job
                        // is carried into the next batch. (A single job
                        // larger than max_batch still runs — alone; the
                        // cap bounds coalescing, not request size.)
                        if samples + job.samples() > max_batch {
                            carry = Some(job);
                            break;
                        }
                        samples += job.samples();
                        jobs.push(job);
                    }
                    Err(_) => break,
                }
            }
            jobs
        };

        let parts: Vec<(u64, usize)> = jobs.iter().flat_map(|j| j.parts.iter().copied()).collect();
        // Exactly-once delivery must survive a panic anywhere between
        // dequeue and delivery (executor run AND result splitting): the
        // guard stays armed through fulfillment, and its Drop fails only
        // tickets still Pending, so no client hangs in `wait` and no
        // delivered result is overwritten.
        let guard = InFlightGuard { shared, tickets: parts.iter().map(|&(t, _)| t).collect() };
        let result = if jobs.len() == 1 {
            executor.run_scratch(&jobs[0].input, &mut scratch)
        } else {
            let total: usize = jobs.iter().map(Job::samples).sum();
            let inputs: Vec<&Tensor> = jobs.iter().map(|j| &j.input).collect();
            concat_batch_into(&inputs, total, &mut batch_buf);
            executor.run_scratch(&batch_buf, &mut scratch)
        };

        let total_n: usize = parts.iter().map(|&(_, n)| n).sum();
        match result {
            Ok(report) => {
                if let [(ticket, _)] = parts[..] {
                    // Sole request: hand the report over without a copy.
                    fulfill(shared, ticket, Ok(report));
                } else {
                    fulfill_split(shared, &parts, total_n, &report);
                }
            }
            Err(e) => {
                for &(ticket, _) in &parts {
                    fulfill(shared, ticket, Err(e.clone()));
                }
            }
        }
        drop(guard); // everything delivered: the guard finds nothing Pending
    }
}

/// Unwind guard for a worker's in-flight job: on drop it publishes an
/// error for every ticket still `Pending` (delivered results — Done or
/// already redeemed — are left untouched, so the guard is a no-op on the
/// normal path). Uses poison-tolerant locking: the unwind it exists for
/// may have poisoned any mutex. Preserves the "a ticket always resolves"
/// contract even when the executor or the result-splitting path panics.
struct InFlightGuard<'a> {
    shared: &'a Shared,
    tickets: Vec<u64>,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut results = self.shared.results.lock().unwrap_or_else(PoisonError::into_inner);
        let mut failed_any = false;
        for &ticket in &self.tickets {
            if matches!(results.get(&ticket), Some(Slot::Pending)) {
                results.insert(
                    ticket,
                    Slot::Done(Err(TensorError::invalid(
                        "serving worker panicked while executing this request",
                    ))),
                );
                failed_any = true;
            }
        }
        drop(results);
        if failed_any {
            self.shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use bconv_models::builder::{conv, maxpool, NetBuilder};
    use bconv_models::{ActShape, Network};
    use bconv_tensor::init::{seeded_rng, uniform_tensor};

    /// A 3-op net small enough for tight unit-test loops.
    fn tiny_net() -> Network {
        let mut b = NetBuilder::new("tiny_serve", ActShape { c: 2, h: 16, w: 16 });
        b.push("conv1", conv(3, 1, 1, 2, 3));
        b.push("conv2", conv(3, 1, 1, 3, 2));
        b.push("pool", maxpool(2, 2, 0));
        b.build()
    }

    fn builder() -> SessionBuilder {
        Session::builder().network(tiny_net()).seed(7).threads(1).relu_after_conv(true)
    }

    fn input(seed: u64, n: usize) -> Tensor {
        uniform_tensor([n, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(seed))
    }

    #[test]
    fn config_is_validated() {
        for cfg in [
            ServeConfig { queue_depth: 0, ..ServeConfig::default() },
            ServeConfig { max_batch: 0, ..ServeConfig::default() },
        ] {
            assert!(builder().build().unwrap().into_engine(cfg).is_err(), "{cfg:?} must fail");
        }
    }

    #[test]
    fn zero_workers_resolves_to_a_sane_auto_pool() {
        // workers = 0 is auto: sized against the session's intra-request
        // threads so the default combination cannot oversubscribe
        // workers x threads. A threads(2) session on any host resolves to
        // at most ceil(cores / 2) workers, and always at least one.
        let session = builder().threads(2).build().unwrap();
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        let engine = session.into_engine(ServeConfig::default()).unwrap();
        let resolved = engine.config().workers;
        assert!(resolved >= 1, "auto must yield at least one worker");
        assert!(resolved <= avail.div_ceil(2), "auto must respect session threads");
        let t = engine.submit(input(5, 1)).unwrap();
        assert!(engine.wait(t).is_ok());
    }

    #[test]
    fn submit_wait_matches_session_run() {
        let oracle = builder().build().unwrap();
        let engine = builder()
            .build()
            .unwrap()
            .into_engine(ServeConfig { workers: 2, queue_depth: 4, max_batch: 4 })
            .unwrap();
        let inputs: Vec<Tensor> = (0..4).map(|i| input(10 + i, 1)).collect();
        let want: Vec<Tensor> = inputs.iter().map(|t| oracle.run(t).unwrap().output).collect();
        let tickets: Vec<TicketId> =
            inputs.iter().map(|t| engine.submit(t.clone()).unwrap()).collect();
        // Wait out of order: tickets resolve independently.
        for (i, &t) in tickets.iter().enumerate().rev() {
            let report = engine.wait(t).unwrap();
            assert_eq!(report.output.data(), want[i].data(), "request {i} diverged");
        }
    }

    #[test]
    fn tickets_deliver_exactly_once() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        let t = engine.submit(input(1, 1)).unwrap();
        engine.wait(t).unwrap();
        assert!(engine.wait(t).is_err(), "double wait must error, not hang");
        assert!(engine.wait(TicketId(9999)).is_err(), "unknown ticket must error");
    }

    #[test]
    fn submit_validates_shape_and_batch() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        assert!(engine.submit(Tensor::zeros([1, 2, 8, 8])).is_err(), "wrong spatial dims");
        assert!(engine.submit(Tensor::zeros([0, 2, 16, 16])).is_err(), "empty batch");
        assert!(engine.try_submit(Tensor::zeros([1, 3, 16, 16])).is_err(), "wrong channels");
    }

    #[test]
    fn run_batch_with_mixed_batch_sizes_matches_solo_runs() {
        let oracle = builder().build().unwrap();
        let engine = builder()
            .build()
            .unwrap()
            .into_engine(ServeConfig { workers: 2, queue_depth: 8, max_batch: 3 })
            .unwrap();
        // Mixed sizes force uneven coalescing chunks under max_batch = 3.
        let inputs: Vec<Tensor> = [1usize, 2, 1, 3, 1]
            .iter()
            .enumerate()
            .map(|(i, &n)| input(20 + i as u64, n))
            .collect();
        let reports = engine.run_batch(&inputs).unwrap();
        assert_eq!(reports.len(), inputs.len());
        for (i, (inp, got)) in inputs.iter().zip(&reports).enumerate() {
            let want = oracle.run(inp).unwrap();
            assert_eq!(got.output.data(), want.output.data(), "request {i} output diverged");
            assert_eq!(got.stats, want.stats, "request {i} stats diverged");
            assert_eq!(got.segments, want.segments);
        }
    }

    #[test]
    fn run_batch_of_nothing_is_empty() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        assert!(engine.run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn try_submit_succeeds_on_an_idle_engine() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        let t = engine.try_submit(input(3, 1)).unwrap().expect("idle queue accepts");
        assert!(engine.wait(t).is_ok());
    }

    #[test]
    fn shutdown_with_undelivered_results_does_not_hang() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        for i in 0..3 {
            engine.submit(input(30 + i, 1)).unwrap();
        }
        engine.shutdown(); // tickets never waited on; must still join cleanly
    }

    #[test]
    fn engine_reports_its_configuration() {
        let cfg = ServeConfig { workers: 2, queue_depth: 5, max_batch: 3 };
        let engine = builder().build().unwrap().into_engine(cfg).unwrap();
        assert_eq!(engine.config(), cfg);
        assert_eq!(engine.backend(), Backend::Blocked);
        let d = format!("{engine:?}");
        assert!(d.contains("tiny_serve"), "{d}");
    }
}
