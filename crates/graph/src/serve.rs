//! [`ServeEngine`]: batched, prioritised, observable serving on top of a
//! compiled [`Session`].
//!
//! A session compiles a network once and can answer `run(&input)` calls,
//! but a server needs more: many callers, bounded memory under load,
//! batch coalescing, completion without a parked thread per request, and
//! visibility into what the queue is doing. The engine provides exactly
//! that, with std primitives only (threads + mutex/condvar — the
//! workspace has no crates.io access):
//!
//! * **Lifecycle** — [`Session::into_engine`](crate::Session::into_engine)
//!   consumes the session and spawns a fixed pool of worker threads.
//!   Every worker shares the session's immutable executor ([`Executor`]
//!   is `Send + Sync`) and owns one reusable [`ExecScratch`], so
//!   steady-state serving performs no tensor/scratch allocation beyond
//!   each request's output tensor (bookkeeping — tickets, job lists — is
//!   a few machine words per request). [`ServeEngine::shutdown`] (or
//!   drop) closes the queue, drains in-flight requests, and joins the
//!   workers. If every worker dies (executor panics), queued and blocked
//!   callers resolve to errors instead of hanging.
//! * **Completion** — [`submit`](ServeEngine::submit) enqueues a request
//!   and returns a [`TicketId`] immediately. Redeem it by **blocking**
//!   ([`wait`](ServeEngine::wait)), **polling** ([`poll`](ServeEngine::poll)
//!   returns `Ok(None)` while in flight), or **callback**
//!   ([`submit_with_waker`](ServeEngine::submit_with_waker) registers a
//!   [`Waker`] invoked exactly once when the ticket resolves, so async
//!   executors can park a task instead of a thread: the waker schedules
//!   the task, which then redeems via `poll`). Each ticket is delivered
//!   exactly once.
//! * **Priorities & deadlines** — [`submit_with`](ServeEngine::submit_with)
//!   takes [`SubmitOptions`]: higher [`priority`](SubmitOptions::priority)
//!   requests dequeue first (FIFO within a class), and a request whose
//!   [`deadline`](SubmitOptions::deadline) expires before execution is
//!   **shed**: its ticket resolves to the typed
//!   [`TensorError::DeadlineExpired`] without reaching the executor, so
//!   overload burns no compute on answers nobody is waiting for.
//! * **Backpressure** — the priority queue holds at most
//!   [`ServeConfig::queue_depth`] jobs: `submit` blocks while it is
//!   full, so queued + in-flight requests bound server memory no matter
//!   how fast clients submit; [`try_submit`](ServeEngine::try_submit)
//!   returns `None` instead of blocking. (Completed reports are retained
//!   until their ticket is redeemed or the engine shuts down — a caller
//!   that submits fire-and-forget without ever redeeming tickets is
//!   keeping its own results alive.)
//! * **Batch coalescing** — requests to one engine always share the
//!   graph's per-sample input shape (validated at submit), so workers
//!   greedily drain queued samples and run them as a single NCHW batch;
//!   [`run_batch`](ServeEngine::run_batch) additionally pre-coalesces its
//!   (owned) inputs into [`ServeConfig::max_batch`]-sample jobs at submit
//!   time, recycling batch buffers through an internal pool so the warm
//!   path re-copies nothing it can move. With
//!   [`ServeConfig::adaptive_batch`] the worker-side merge cap tracks a
//!   queue-depth EWMA: a quiet queue runs batch-of-1 for latency, a deep
//!   queue coalesces up to `max_batch` for throughput. Samples are
//!   independent under every backend (convolution, pooling, FC and
//!   requantization never mix batch elements), so coalescing — adaptive
//!   or not — is **bitwise invisible**: each request's output is
//!   identical to a solo [`Session::run`](crate::Session::run), at any
//!   worker count and any batching accident of timing.
//! * **Metrics** — every engine keeps lock-light counters (relaxed
//!   atomics, integer-only): p50/p99/max latency, queue depth, realised
//!   batch-size histogram, shed/failed counts.
//!   [`metrics`](ServeEngine::metrics) returns a [`ServeMetrics`]
//!   snapshot without blocking the serving path.
//! * **Exact per-request [`MemStats`]** — every traffic and working-set
//!   term of a batched run carries the batch-size factor, so the batch
//!   report divides exactly back into per-request reports
//!   (`stats × nᵢ / N`); a coalesced request reports the same stats it
//!   would have reported alone.
//!
//! To scale past one engine, [`Session::into_router`](crate::Session::into_router)
//! builds a [`router::Router`] that shards these APIs across N replica
//! engines sharing one compiled graph, plan, and calibration.

pub mod metrics;
pub mod router;

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use bconv_core::fusion::MemStats;
use bconv_tensor::{Tensor, TensorError};

use crate::exec::{check_input, ExecScratch, Executor, RunReport};
use crate::ir::Graph;
use crate::session::{Backend, Session};

use metrics::{MetricsCore, ServeMetrics};

/// Sizing of a [`ServeEngine`]'s worker pool, queue, and batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads answering requests; `0` (the default) means
    /// **auto**: one worker per core not already claimed by the
    /// session's intra-request block threads
    /// (`available_parallelism / session.threads()`, at least 1), so the
    /// two axes compose without oversubscribing the machine. Each worker
    /// runs one request batch at a time through the shared executor; a
    /// blocked/quantized session with `threads > 1` additionally fans
    /// each fused group out across that many scoped threads *inside* the
    /// worker, so serving deployments typically build the session with
    /// `.threads(1)` and scale `workers` instead (parallelism across
    /// requests beats parallelism within one once the queue is busy).
    pub workers: usize,
    /// Capacity of the bounded request queue, in jobs
    /// ([`ServeEngine::submit`] blocks while it is full). Queued plus
    /// in-flight requests are the engine's entire buffered state, so
    /// this caps server memory.
    pub queue_depth: usize,
    /// Maximum samples coalesced into one executor run (1 disables
    /// batching).
    pub max_batch: usize,
    /// When `true` (the default) the worker-side merge cap follows the
    /// observed queue-depth EWMA instead of always charging up to
    /// `max_batch`: an idle queue ships single requests immediately
    /// (minimum latency), a backed-up queue coalesces toward `max_batch`
    /// (maximum throughput). Jobs are never split, and outputs are
    /// bitwise-independent of the cap, so this only moves the
    /// latency/throughput trade-off.
    pub adaptive_batch: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { workers: 0, queue_depth: 64, max_batch: 8, adaptive_batch: true }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), TensorError> {
        if self.queue_depth == 0 {
            return Err(TensorError::invalid("ServeConfig::queue_depth must be >= 1"));
        }
        if self.max_batch == 0 {
            return Err(TensorError::invalid("ServeConfig::max_batch must be >= 1"));
        }
        Ok(())
    }
}

/// Handle to one submitted request; redeem it with
/// [`ServeEngine::wait`] or [`ServeEngine::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketId(u64);

/// Per-request scheduling options for
/// [`ServeEngine::submit_with`] / [`ServeEngine::submit_with_waker`].
///
/// The default (`priority` 0, no deadline) reproduces plain
/// [`submit`](ServeEngine::submit).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Scheduling class: **higher dequeues first**; requests within a
    /// class run FIFO. Priorities reorder *when* a request runs, never
    /// *what* it computes.
    pub priority: u8,
    /// Latest instant at which starting execution is still useful. A
    /// request found expired — at submit or at dequeue — is shed: its
    /// ticket resolves to [`TensorError::DeadlineExpired`] without
    /// touching the executor, and the shed is counted in
    /// [`ServeMetrics::shed`].
    pub deadline: Option<Instant>,
}

/// Completion callback registered at submit
/// ([`ServeEngine::submit_with_waker`]): invoked exactly once, from the
/// resolving thread, when the ticket transitions to done (success,
/// error, or shed). The waker must be cheap and must not call back into
/// the engine's blocking APIs; the intended use is waking an async task
/// or semaphore which then redeems the ticket via
/// [`poll`](ServeEngine::poll). The box is allocated by the caller, so
/// the serving hot path itself stays allocation-free. A panicking waker
/// is caught and ignored (the result is already published).
pub type Waker = Box<dyn FnOnce(TicketId) + Send + 'static>;

/// `(ticket, samples)` pairs answered by one job. `submit` jobs have
/// exactly one part (stack-stored: no heap allocation on the submit hot
/// path); `run_batch` pre-coalesced chunks carry one part per request.
enum Parts {
    One([(u64, usize); 1]),
    Many(Vec<(u64, usize)>),
}

impl Parts {
    fn as_slice(&self) -> &[(u64, usize)] {
        match self {
            Parts::One(p) => p,
            Parts::Many(p) => p,
        }
    }
}

/// One queue entry: an input batch, the tickets it answers, and its
/// scheduling metadata.
struct Job {
    parts: Parts,
    input: Tensor,
    deadline: Option<Instant>,
    submitted: Instant,
}

impl Job {
    fn samples(&self) -> usize {
        self.parts.as_slice().iter().map(|&(_, n)| n).sum()
    }
}

/// A ticket's delivery slot.
enum Slot {
    /// Submitted, not yet resolved. The waker (if any) is taken and
    /// invoked exactly once when the slot transitions to `Done`.
    Pending {
        waker: Option<Waker>,
    },
    Done(Result<RunReport, TensorError>),
}

/// Lifecycle of the shared request queue.
#[derive(Clone, Copy, PartialEq, Eq)]
enum QueuePhase {
    /// Accepting submissions.
    Open,
    /// Shutdown requested: submissions are rejected, workers drain the
    /// remaining jobs and exit.
    Closing,
    /// Every worker has exited (panic storm or completed shutdown);
    /// nothing will ever be dequeued again.
    Dead,
}

/// The priority request queue. Keyed by `(Reverse(priority), seq)` so
/// ascending BTreeMap order is "highest priority first, FIFO within a
/// class" — and iteration order is fully deterministic (lint L3 bans
/// hash maps in this module for exactly that reason).
struct QueueState {
    jobs: BTreeMap<(Reverse<u8>, u64), Job>,
    /// Monotone enqueue sequence (FIFO tie-break within a priority).
    seq: u64,
    /// Total samples across `jobs` (the metrics depth gauge).
    samples: usize,
    phase: QueuePhase,
}

/// State shared between clients and workers.
///
/// The ticket table is a `BTreeMap`, not a `HashMap`, on purpose:
/// tickets are dense sequential integers, the table is tiny (bounded by
/// the in-flight request window), and an ordered structure keeps every
/// conceivable traversal deterministic — the engine's
/// bitwise-determinism contract must not hinge on "nobody ever iterates
/// this map".
///
/// Lock order: `queue` before `results` (the worker-death path holds
/// `queue` while publishing errors); no path ever takes `queue` while
/// holding `results`.
struct Shared {
    results: Mutex<BTreeMap<u64, Slot>>,
    done: Condvar,
    queue: Mutex<QueueState>,
    /// Signalled when queue space frees up (submitters park here).
    queue_push: Condvar,
    /// Signalled when a job arrives or the phase changes (workers park
    /// here).
    queue_pop: Condvar,
    /// Recycled batch-input tensors: workers return finished job inputs,
    /// `run_batch` reuses them for its coalesced chunks, so the warm
    /// batched path allocates no fresh batch buffers.
    pool: Mutex<Vec<Tensor>>,
    metrics: MetricsCore,
    /// Workers still running; the last one out fails all queued work.
    live_workers: AtomicUsize,
}

/// Recycled-buffer pool cap: enough for every worker plus a couple of
/// in-flight `run_batch` chunks; beyond that, tensors just drop.
const POOL_CAP: usize = 8;

/// Outcome of a queue push; rejected pushes hand the job back so the
/// caller can roll back its pending slots without re-collecting tickets.
enum Pushed {
    Accepted,
    Full(Job),
    Rejected(Job),
}

impl Shared {
    /// Poison-tolerant lock on the ticket table. A worker unwind (the very
    /// event [`InFlightGuard`] exists for) may poison this mutex between a
    /// slot update and its notify; waiters must still be able to drain
    /// their tickets — the table itself is never left mid-update (every
    /// critical section completes its map operation before unwinding can
    /// reach it through the executor).
    fn lock_results(&self) -> MutexGuard<'_, BTreeMap<u64, Slot>> {
        self.results.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Poison-tolerant lock on the request queue (same rationale).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pushes a job, parking on `queue_push` while the queue is full (or
    /// returning [`Pushed::Full`] when `block` is false). Returns
    /// [`Pushed::Rejected`] once the engine stops accepting work.
    fn push_job(&self, job: Job, priority: u8, depth: usize, block: bool) -> Pushed {
        let mut q = self.lock_queue();
        while q.phase == QueuePhase::Open && q.jobs.len() >= depth {
            if !block {
                return Pushed::Full(job);
            }
            q = self.queue_push.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        if q.phase != QueuePhase::Open {
            return Pushed::Rejected(job);
        }
        let seq = q.seq;
        q.seq += 1;
        q.samples += job.samples();
        q.jobs.insert((Reverse(priority), seq), job);
        self.metrics.on_queue_depth(q.jobs.len() as u64, q.samples as u64);
        drop(q);
        self.queue_pop.notify_one();
        Pushed::Accepted
    }

    /// Takes a recycled batch buffer (or a fresh empty tensor).
    fn take_buf(&self) -> Tensor {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        pool.pop().unwrap_or_default()
    }

    /// Returns a finished job input to the pool (dropped once full).
    fn put_buf(&self, buf: Tensor) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }
}

/// The serving engine: a compiled session behind a bounded priority
/// queue and a worker pool. See the [module docs](self) for the full
/// semantics.
pub struct ServeEngine {
    graph: Arc<Graph>,
    executor: Arc<dyn Executor>,
    backend: Backend,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    next_ticket: AtomicU64,
}

impl ServeEngine {
    /// Builds the engine from a compiled session (the
    /// [`Session::into_engine`] destination).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when `config` is invalid.
    pub(crate) fn new(session: Session, config: ServeConfig) -> Result<Self, TensorError> {
        config.validate()?;
        // Resolve workers = 0 (auto) against the session's intra-request
        // thread count so the default configs compose to roughly one
        // runnable thread per core instead of workers x threads.
        let mut config = config;
        if config.workers == 0 {
            let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
            config.workers = (avail / session.threads().max(1)).max(1);
        }
        let backend = session.backend();
        let (graph, executor) = session.shared_parts();
        let shared = Arc::new(Shared {
            results: Mutex::new(BTreeMap::new()),
            done: Condvar::new(),
            queue: Mutex::new(QueueState {
                jobs: BTreeMap::new(),
                seq: 0,
                samples: 0,
                phase: QueuePhase::Open,
            }),
            queue_push: Condvar::new(),
            queue_pop: Condvar::new(),
            pool: Mutex::new(Vec::new()),
            metrics: MetricsCore::new(),
            // Registered up front so a worker that dies before its
            // siblings even start still leaves an exact count.
            live_workers: AtomicUsize::new(config.workers),
        });
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let executor = Arc::clone(&executor);
            let shared_worker = Arc::clone(&shared);
            let spawned =
                std::thread::Builder::new().name(format!("bconv-serve-{i}")).spawn(move || {
                    // Worker-owned reusable buffers, built here (cold
                    // construction) so the serving loop itself never
                    // allocates bookkeeping.
                    let mut state = WorkerState {
                        scratch: ExecScratch::new(),
                        batch_buf: Tensor::default(),
                        jobs: Vec::new(),
                        parts: Vec::new(),
                    };
                    worker_loop(&*executor, &shared_worker, &mut state, config);
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Un-register the workers that will never run, close
                    // the queue so the spawned ones exit, and report the
                    // resource failure as a typed error instead of
                    // panicking mid-construction.
                    shared.live_workers.fetch_sub(config.workers - i, Ordering::AcqRel);
                    {
                        let mut q = shared.lock_queue();
                        q.phase = QueuePhase::Closing;
                    }
                    shared.queue_pop.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(TensorError::invalid(format!(
                        "cannot spawn serve worker thread {i} of {}: {e}",
                        config.workers
                    )));
                }
            }
        }
        Ok(Self {
            graph,
            executor,
            backend,
            config,
            workers,
            shared,
            next_ticket: AtomicU64::new(1),
        })
    }

    /// The backend the engine serves.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The engine's sizing configuration, with `workers = 0` (auto)
    /// already resolved to the actual pool size.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// A point-in-time [`ServeMetrics`] snapshot. Lock-free on the
    /// serving path: counters are relaxed atomics, so the snapshot is
    /// cheap and never blocks workers or submitters.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.metrics.snapshot()
    }

    /// `true` when `other` serves the same compiled model: same graph
    /// and same executor (weights, plan, calibration) by `Arc` identity.
    /// Router replicas built by [`Session::into_router`] all share one
    /// model this way.
    pub fn shares_model_with(&self, other: &ServeEngine) -> bool {
        Arc::ptr_eq(&self.graph, &other.graph) && Arc::ptr_eq(&self.executor, &other.executor)
    }

    /// Samples currently queued (not yet dequeued by a worker) — the
    /// router's load-balancing signal.
    pub(crate) fn queued_samples(&self) -> u64 {
        self.shared.metrics.snapshot_queue_samples()
    }

    /// Validates a request input: per-sample shape must match the graph,
    /// and the batch must be non-empty (an empty batch has no ticket to
    /// answer).
    fn check_request(&self, input: &Tensor) -> Result<usize, TensorError> {
        check_input(&self.graph, input)?;
        let n = input.shape().dims()[0];
        if n == 0 {
            return Err(TensorError::invalid("cannot serve an empty (batch 0) request"));
        }
        Ok(n)
    }

    fn issue_ticket(&self) -> u64 {
        self.next_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers pending slots for `parts` (attaching `waker` to the
    /// first ticket) and pushes the job. On rejection the slots are
    /// rolled back so the tickets read as unknown rather than hanging
    /// forever. Returns `Ok(false)` only for a non-blocking push into a
    /// full queue.
    fn enqueue(
        &self,
        parts: Parts,
        input: Tensor,
        opts: SubmitOptions,
        waker: Option<Waker>,
        block: bool,
    ) -> Result<bool, TensorError> {
        let n_parts = parts.as_slice().len() as u64;
        {
            let mut results = self.shared.lock_results();
            let mut waker = waker;
            for &(t, _) in parts.as_slice() {
                results.insert(t, Slot::Pending { waker: waker.take() });
            }
        }
        let job = Job { parts, input, deadline: opts.deadline, submitted: Instant::now() };
        match self.shared.push_job(job, opts.priority, self.config.queue_depth, block) {
            Pushed::Accepted => {
                self.shared.metrics.on_submit(n_parts);
                Ok(true)
            }
            Pushed::Full(job) => {
                self.rollback(&job);
                Ok(false)
            }
            Pushed::Rejected(job) => {
                self.rollback(&job);
                Err(TensorError::invalid("engine is shut down"))
            }
        }
    }

    /// Removes the (still-pending) slots of a job the queue refused.
    fn rollback(&self, job: &Job) {
        let mut results = self.shared.lock_results();
        for &(t, _) in job.parts.as_slice() {
            results.remove(&t);
        }
    }

    fn submit_inner(
        &self,
        input: Tensor,
        opts: SubmitOptions,
        waker: Option<Waker>,
        block: bool,
    ) -> Result<Option<TicketId>, TensorError> {
        let n = self.check_request(&input)?;
        let ticket = self.issue_ticket();
        if let Some(deadline) = opts.deadline {
            if Instant::now() >= deadline {
                // Already expired at the door: resolve the ticket to the
                // typed shed error without ever queueing it.
                self.shared.metrics.on_submit(1);
                shed_ticket(&self.shared, ticket, waker);
                return Ok(Some(TicketId(ticket)));
            }
        }
        let enqueued = self.enqueue(Parts::One([(ticket, n)]), input, opts, waker, block)?;
        Ok(enqueued.then_some(TicketId(ticket)))
    }

    /// Enqueues one request (any batch size) at default priority with no
    /// deadline, **blocking while the queue is full** — the backpressure
    /// point. Returns a ticket redeemable once with [`wait`](Self::wait)
    /// or [`poll`](Self::poll).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on per-sample shape mismatch, an empty
    /// batch, or an engine that is shutting down.
    pub fn submit(&self, input: Tensor) -> Result<TicketId, TensorError> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with explicit [`SubmitOptions`]
    /// (priority and deadline).
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit). An already-expired deadline is not
    /// an error: the returned ticket resolves to
    /// [`TensorError::DeadlineExpired`].
    pub fn submit_with(&self, input: Tensor, opts: SubmitOptions) -> Result<TicketId, TensorError> {
        match self.submit_inner(input, opts, None, true)? {
            Some(ticket) => Ok(ticket),
            // Blocking push only returns "not enqueued" on shutdown.
            None => Err(TensorError::invalid("engine is shut down")),
        }
    }

    /// [`submit_with`](Self::submit_with) plus a completion [`Waker`]:
    /// `waker` is invoked exactly once — from whichever thread resolves
    /// the ticket — when the result becomes ready (success, error, or
    /// shed). Redeem the ticket afterwards with [`poll`](Self::poll) (or
    /// [`wait`](Self::wait), which will not block by then).
    ///
    /// # Errors
    ///
    /// See [`submit_with`](Self::submit_with). If submission itself
    /// fails, the waker is dropped without being invoked.
    pub fn submit_with_waker(
        &self,
        input: Tensor,
        opts: SubmitOptions,
        waker: Waker,
    ) -> Result<TicketId, TensorError> {
        match self.submit_inner(input, opts, Some(waker), true)? {
            Some(ticket) => Ok(ticket),
            None => Err(TensorError::invalid("engine is shut down")),
        }
    }

    /// Non-blocking [`submit`](Self::submit): returns `Ok(None)` instead
    /// of blocking when the queue is full (the caller sees backpressure
    /// and can shed load).
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn try_submit(&self, input: Tensor) -> Result<Option<TicketId>, TensorError> {
        self.submit_inner(input, SubmitOptions::default(), None, false)
    }

    /// Non-blocking completion check: `Ok(Some(report))` delivers the
    /// result (exactly once — the ticket is consumed), `Ok(None)` means
    /// still in flight (the ticket stays redeemable).
    ///
    /// # Errors
    ///
    /// Returns the request's own execution error (consuming the ticket),
    /// or [`TensorError::InvalidParameter`] for an unknown or
    /// already-delivered ticket.
    pub fn poll(&self, ticket: TicketId) -> Result<Option<RunReport>, TensorError> {
        let mut results = self.shared.lock_results();
        match results.remove(&ticket.0) {
            None => Err(TensorError::invalid("ticket is unknown or was already delivered")),
            Some(Slot::Done(report)) => report.map(Some),
            Some(pending @ Slot::Pending { .. }) => {
                results.insert(ticket.0, pending);
                Ok(None)
            }
        }
    }

    /// Blocks until `ticket`'s request has executed and returns its
    /// report. Every ticket is delivered exactly once; waiting again (or
    /// on a ticket this engine never issued) is an error, not a hang.
    ///
    /// # Errors
    ///
    /// Returns the request's own execution error, or
    /// [`TensorError::InvalidParameter`] for an unknown/already-delivered
    /// ticket.
    pub fn wait(&self, ticket: TicketId) -> Result<RunReport, TensorError> {
        let mut results = self.shared.lock_results();
        loop {
            // Take the slot out: a Done slot is delivered (exactly once), a
            // Pending slot goes straight back before parking on the condvar.
            match results.remove(&ticket.0) {
                None => {
                    return Err(TensorError::invalid("ticket is unknown or was already delivered"))
                }
                Some(Slot::Done(report)) => return report,
                Some(pending @ Slot::Pending { .. }) => {
                    results.insert(ticket.0, pending);
                    results =
                        self.shared.done.wait(results).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Runs a batch of requests and returns their reports in request
    /// order. Inputs are validated up front, pre-coalesced into
    /// [`ServeConfig::max_batch`]-sample jobs (amortising block dispatch
    /// across the batch), executed by the worker pool, and split back
    /// into per-request reports with exact per-request [`MemStats`].
    /// Outputs are bitwise-identical to running each input through
    /// [`Session::run`](crate::Session::run) alone.
    ///
    /// Takes the inputs **by value**: a single-request chunk ships the
    /// caller's tensor itself (no deep copy), and multi-request chunks
    /// concatenate into recycled pool buffers — the warm batched path
    /// performs no per-chunk buffer allocation.
    ///
    /// # Errors
    ///
    /// Returns the first failing request's error (after all requests
    /// finished), or a validation error before anything is enqueued.
    pub fn run_batch(&self, inputs: Vec<Tensor>) -> Result<Vec<RunReport>, TensorError> {
        let mut inputs = inputs;
        let mut sizes = Vec::with_capacity(inputs.len());
        for input in &inputs {
            sizes.push(self.check_request(input)?);
        }
        let mut tickets: Vec<TicketId> = Vec::with_capacity(inputs.len());
        let mut i = 0usize;
        while i < inputs.len() {
            // Greedy chunk: extend while the sample budget holds (a single
            // oversized request still ships alone — the executor takes any
            // batch size; max_batch only caps *coalescing*).
            let mut j = i + 1;
            let mut samples = sizes[i];
            while j < inputs.len() && samples + sizes[j] <= self.config.max_batch {
                samples += sizes[j];
                j += 1;
            }
            let (parts, input) = if j - i == 1 {
                // Sole request in the chunk: move the caller's tensor
                // straight into the job — no copy of any kind.
                (Parts::One([(self.issue_ticket(), sizes[i])]), std::mem::take(&mut inputs[i]))
            } else {
                let parts: Vec<(u64, usize)> =
                    (i..j).map(|k| (self.issue_ticket(), sizes[k])).collect();
                let chunk: Vec<&Tensor> = inputs[i..j].iter().collect();
                let mut batch = self.shared.take_buf();
                concat_batch_into(&chunk, samples, &mut batch);
                (Parts::Many(parts), batch)
            };
            let chunk_tickets: Vec<u64> = parts.as_slice().iter().map(|&(t, _)| t).collect();
            if let Err(e) = self.enqueue(parts, input, SubmitOptions::default(), None, true) {
                // A blocking push can only be rejected once the engine
                // stops accepting work, so chunks enqueued earlier that
                // are not already Done will never be: resolve their
                // Pending slots to errors, then drain everything so no
                // result lingers undelivered. (This chunk's own tickets
                // were rolled back inside `enqueue` — they resolve as
                // unknown, not as a hang.) Blind-waiting instead would
                // hang on the first abandoned ticket.
                {
                    let mut results = self.shared.lock_results();
                    for t in &tickets {
                        if matches!(results.get(&t.0), Some(Slot::Pending { .. })) {
                            results.insert(t.0, Slot::Done(Err(e.clone())));
                        }
                    }
                }
                self.shared.done.notify_all();
                for ticket in tickets {
                    let _ = self.wait(ticket);
                }
                return Err(e);
            }
            tickets.extend(chunk_tickets.iter().map(|&t| TicketId(t)));
            i = j;
        }
        let mut reports = Vec::with_capacity(tickets.len());
        let mut first_err: Option<TensorError> = None;
        for ticket in tickets {
            match self.wait(ticket) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(reports),
            Some(e) => Err(e),
        }
    }

    /// Closes the queue, drains every already-submitted request, and
    /// joins the worker pool. Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.lock_queue();
            if q.phase == QueuePhase::Open {
                q.phase = QueuePhase::Closing;
            }
        }
        // Wake every parked worker (to drain and exit) and submitter (to
        // observe the rejection).
        self.shared.queue_pop.notify_all();
        self.shared.queue_push.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Slots still resident in the ticket table (pending or undelivered).
    #[cfg(test)]
    pub(crate) fn resident_slots(&self) -> usize {
        self.shared.lock_results().len()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("network", &self.graph.name())
            .field("backend", &self.backend)
            .field("config", &self.config)
            .finish()
    }
}

/// Concatenates same-per-sample-shape requests along the batch dimension
/// into `out` (NCHW is sample-major, so this is a plain append) —
/// `run_batch`'s pre-coalescing primitive, writing into a recycled pool
/// buffer.
fn concat_batch_into(chunk: &[&Tensor], total_n: usize, out: &mut Tensor) {
    let [_, c, h, w] = chunk[0].shape().dims();
    out.reset([total_n, c, h, w]);
    let mut off = 0usize;
    for t in chunk {
        let d = t.data();
        out.data_mut()[off..off + d.len()].copy_from_slice(d);
        off += d.len();
    }
}

/// Worker-side twin of [`concat_batch_into`]: appends each drained job's
/// input into the worker's reusable batch buffer without building a
/// borrow list first (the serving loop stays free of per-batch
/// bookkeeping allocation).
fn concat_jobs_into(jobs: &[Job], total_n: usize, out: &mut Tensor) {
    let [_, c, h, w] = jobs[0].input.shape().dims();
    out.reset([total_n, c, h, w]);
    let mut off = 0usize;
    for job in jobs {
        let d = job.input.data();
        out.data_mut()[off..off + d.len()].copy_from_slice(d);
        off += d.len();
    }
}

/// Per-request share of a coalesced batch's [`MemStats`]: every counter
/// term of the shipped backends scales linearly with the batch
/// dimension, so `x * n / total_n` is exact and equals the stats of a
/// solo run of the same request (`tests/serve_determinism.rs` asserts
/// the equality). The multiply-first u128 arithmetic keeps release
/// builds sensible (nearest rounding, no truncation bias) even if a
/// future backend adds a batch-independent term; the debug asserts are
/// the canary that flags such a term during development.
fn per_request_stats(batch: MemStats, total_n: usize, n: usize) -> MemStats {
    debug_assert_eq!(
        batch.offchip_elems % total_n,
        0,
        "off-chip traffic must carry the batch factor"
    );
    debug_assert_eq!(
        batch.peak_working_elems % total_n,
        0,
        "working-set peak must carry the batch factor"
    );
    let share = |x: usize| -> usize {
        ((x as u128 * n as u128 + total_n as u128 / 2) / total_n as u128) as usize
    };
    MemStats {
        peak_working_elems: share(batch.peak_working_elems),
        offchip_elems: share(batch.offchip_elems),
        bits_per_elem: batch.bits_per_elem,
    }
}

/// Publishes one ticket's result, wakes blocking waiters, and invokes
/// the ticket's registered waker (if any) exactly once. The waker runs
/// outside the results lock; a panicking waker is contained so it can
/// never take down a worker (the result is already published).
fn fulfill(shared: &Shared, ticket: u64, report: Result<RunReport, TensorError>) {
    let waker = {
        let mut results = shared.lock_results();
        match results.insert(ticket, Slot::Done(report)) {
            Some(Slot::Pending { waker }) => waker,
            _ => None,
        }
    };
    shared.done.notify_all();
    if let Some(waker) = waker {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            waker(TicketId(ticket));
        }));
    }
}

/// Resolves a ticket to the typed shed error ([`TensorError::DeadlineExpired`])
/// at the submission door, before it ever queues.
fn shed_ticket(shared: &Shared, ticket: u64, waker: Option<Waker>) {
    shared.metrics.on_shed();
    {
        let mut results = shared.lock_results();
        results.insert(ticket, Slot::Done(Err(TensorError::DeadlineExpired)));
    }
    shared.done.notify_all();
    if let Some(waker) = waker {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            waker(TicketId(ticket));
        }));
    }
}

/// Sheds a dequeued-but-expired job: every ticket it carries resolves to
/// [`TensorError::DeadlineExpired`] without touching the executor.
fn shed_expired(shared: &Shared, parts: &[(u64, usize)]) {
    for &(ticket, _) in parts {
        shared.metrics.on_shed();
        fulfill(shared, ticket, Err(TensorError::DeadlineExpired));
    }
}

/// Splits a coalesced batch report back into per-request reports, in
/// batch order. The output batch dimension is partitioned at the request
/// boundaries; stats divide exactly (see [`per_request_stats`]).
fn fulfill_split(shared: &Shared, parts: &[(u64, usize)], total_n: usize, report: &RunReport) {
    let [out_n, c_out, oh, ow] = report.output.shape().dims();
    debug_assert_eq!(out_n, total_n, "output batch must match the coalesced input batch");
    let per_sample = c_out * oh * ow;
    let mut start = 0usize;
    for &(ticket, n) in parts {
        let data = report.output.data()[start * per_sample..(start + n) * per_sample].to_vec();
        // The split dims match the copied slice by construction; should
        // that invariant ever break, the ticket receives the shape error
        // instead of the worker unwinding.
        let result = Tensor::from_vec([n, c_out, oh, ow], data).map(|output| RunReport {
            output,
            stats: per_request_stats(report.stats, total_n, n),
            segments: report.segments,
        });
        fulfill(shared, ticket, result);
        start += n;
    }
}

/// A worker's reusable buffers, constructed once at spawn (in
/// [`ServeEngine::new`]'s thread closure) so the serving loop performs
/// no per-batch bookkeeping allocation.
struct WorkerState {
    scratch: ExecScratch,
    batch_buf: Tensor,
    /// Jobs drained for the current batch.
    jobs: Vec<Job>,
    /// Flattened `(ticket, samples)` parts of the current batch.
    parts: Vec<(u64, usize)>,
}

/// A worker: pull the highest-priority job, opportunistically coalesce
/// more queued jobs up to the (possibly adaptive) sample cap, shed the
/// expired ones, run the rest as one batch through the shared executor
/// with this worker's scratch, split the results per ticket, and recycle
/// the input buffers.
fn worker_loop(
    executor: &dyn Executor,
    shared: &Shared,
    state: &mut WorkerState,
    config: ServeConfig,
) {
    // Declared first so it drops LAST on unwind: the in-flight guard
    // (below) fails this worker's own tickets before the exit guard
    // decides whether the whole engine is dead.
    let _exit = WorkerExitGuard { shared };
    loop {
        let mut q = shared.lock_queue();
        let first = loop {
            if let Some((_, job)) = q.jobs.pop_first() {
                break job;
            }
            match q.phase {
                // Parking on the condvar releases the queue lock (lint
                // L5's release-and-park exemption) — no lock is held
                // while blocked.
                QueuePhase::Open => {
                    q = shared.queue_pop.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
                // Closing with an empty queue (drained) or Dead: exit.
                _ => return,
            }
        };
        // Adaptive coalescing cap: follow the smoothed queue depth so a
        // quiet queue ships single requests immediately while a deep
        // queue amortises dispatch across up to max_batch samples. Jobs
        // are never split, so a pre-coalesced run_batch chunk always
        // runs whole.
        let cap = if config.adaptive_batch {
            (shared.metrics.depth_ewma_samples() as usize).clamp(1, config.max_batch)
        } else {
            config.max_batch
        };
        let mut samples = first.samples();
        state.jobs.push(first);
        while samples < cap {
            let fits = matches!(
                q.jobs.first_key_value(),
                Some((_, job)) if samples + job.samples() <= cap
            );
            if !fits {
                break;
            }
            if let Some((_, job)) = q.jobs.pop_first() {
                samples += job.samples();
                state.jobs.push(job);
            } else {
                break;
            }
        }
        q.samples = q.samples.saturating_sub(samples);
        shared.metrics.on_queue_depth(q.jobs.len() as u64, q.samples as u64);
        drop(q);
        // Space freed: wake every parked submitter that now fits.
        shared.queue_push.notify_all();

        // Shed-on-expiry: a job whose deadline passed while queued never
        // reaches the executor — its tickets resolve to the typed error.
        let now = Instant::now();
        state.jobs.retain(|job| {
            let expired = job.deadline.is_some_and(|d| now >= d);
            if expired {
                shed_expired(shared, job.parts.as_slice());
            }
            !expired
        });
        if state.jobs.is_empty() {
            continue;
        }

        state.parts.clear();
        for job in &state.jobs {
            for &part in job.parts.as_slice() {
                state.parts.push(part);
            }
        }
        let total_n: usize = state.parts.iter().map(|&(_, n)| n).sum();

        // Exactly-once delivery must survive a panic anywhere between
        // dequeue and delivery (executor run AND result splitting): the
        // guard stays armed through fulfillment, and its Drop fails only
        // tickets still Pending, so no client hangs in `wait` and no
        // delivered result is overwritten.
        let guard = InFlightGuard { shared, parts: &state.parts };
        let result = if state.jobs.len() == 1 {
            executor.run_scratch(&state.jobs[0].input, &mut state.scratch)
        } else {
            concat_jobs_into(&state.jobs, total_n, &mut state.batch_buf);
            executor.run_scratch(&state.batch_buf, &mut state.scratch)
        };
        shared.metrics.on_batch(total_n);

        match result {
            Ok(report) => {
                // Count completions *before* publishing any result: the
                // moment a slot turns Done a waiter may wake and read the
                // metrics, and it must see its own request counted.
                for job in &state.jobs {
                    let us = job.submitted.elapsed().as_micros() as u64;
                    for _ in job.parts.as_slice() {
                        shared.metrics.on_complete(us);
                    }
                }
                match state.parts[..] {
                    // Sole request: hand the report over without a copy.
                    [(ticket, _)] => fulfill(shared, ticket, Ok(report)),
                    _ => fulfill_split(shared, &state.parts, total_n, &report),
                }
            }
            Err(e) => {
                for _ in state.parts.iter() {
                    shared.metrics.on_fail();
                }
                for &(ticket, _) in state.parts.iter() {
                    fulfill(shared, ticket, Err(e.clone()));
                }
            }
        }
        drop(guard); // everything delivered: the guard finds nothing Pending

        // Recycle the finished inputs so run_batch's next chunks reuse
        // them instead of allocating fresh batch buffers.
        for job in state.jobs.drain(..) {
            shared.put_buf(job.input);
        }
    }
}

/// Unwind guard for a worker's in-flight job: on drop it publishes an
/// error for every ticket still `Pending` (delivered results — Done or
/// already redeemed — are left untouched, so the guard is a no-op on the
/// normal path). Uses poison-tolerant locking: the unwind it exists for
/// may have poisoned any mutex. Preserves the "a ticket always resolves"
/// contract even when the executor or the result-splitting path panics.
struct InFlightGuard<'a> {
    shared: &'a Shared,
    parts: &'a [(u64, usize)],
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut failed_any = false;
        {
            let mut results = self.shared.lock_results();
            for &(ticket, _) in self.parts {
                if matches!(results.get(&ticket), Some(Slot::Pending { .. })) {
                    results.insert(
                        ticket,
                        Slot::Done(Err(TensorError::invalid(
                            "serving worker panicked while executing this request",
                        ))),
                    );
                    self.shared.metrics.on_fail();
                    failed_any = true;
                }
            }
        }
        if failed_any {
            self.shared.done.notify_all();
        }
    }
}

/// Worker-exit accounting: the last worker out (normal shutdown or a
/// panic storm) marks the queue Dead, fails every still-queued ticket,
/// and wakes all parked submitters and waiters — so a fully-dead engine
/// rejects instead of hanging. Poison-tolerant throughout: it runs
/// during unwinds.
struct WorkerExitGuard<'a> {
    shared: &'a Shared,
}

impl Drop for WorkerExitGuard<'_> {
    fn drop(&mut self) {
        if self.shared.live_workers.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Last worker out: nothing will ever be dequeued again.
        {
            let mut q = self.shared.lock_queue();
            q.phase = QueuePhase::Dead;
            q.samples = 0;
            self.shared.metrics.on_queue_depth(0, 0);
        }
        self.shared.queue_push.notify_all();
        self.shared.queue_pop.notify_all();
        // Fail the orphaned jobs one at a time, never holding the queue
        // lock while publishing results (lock-order hygiene: fulfill
        // takes the results lock and may run a waker).
        loop {
            let job = {
                let mut q = self.shared.lock_queue();
                match q.jobs.pop_first() {
                    Some((_, job)) => job,
                    None => break,
                }
            };
            for &(ticket, _) in job.parts.as_slice() {
                self.shared.metrics.on_fail();
                fulfill(
                    self.shared,
                    ticket,
                    Err(TensorError::invalid("all serving workers have exited")),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use bconv_models::builder::{conv, maxpool, NetBuilder};
    use bconv_models::{ActShape, Network};
    use bconv_tensor::init::{seeded_rng, uniform_tensor};
    use std::sync::mpsc;

    /// A 3-op net small enough for tight unit-test loops.
    fn tiny_net() -> Network {
        let mut b = NetBuilder::new("tiny_serve", ActShape { c: 2, h: 16, w: 16 });
        b.push("conv1", conv(3, 1, 1, 2, 3));
        b.push("conv2", conv(3, 1, 1, 3, 2));
        b.push("pool", maxpool(2, 2, 0));
        b.build()
    }

    fn builder() -> SessionBuilder {
        Session::builder().network(tiny_net()).seed(7).threads(1).relu_after_conv(true)
    }

    fn input(seed: u64, n: usize) -> Tensor {
        uniform_tensor([n, 2, 16, 16], -1.0, 1.0, &mut seeded_rng(seed))
    }

    fn cfg(workers: usize, queue_depth: usize, max_batch: usize) -> ServeConfig {
        ServeConfig { workers, queue_depth, max_batch, adaptive_batch: true }
    }

    #[test]
    fn config_is_validated() {
        for bad in [
            ServeConfig { queue_depth: 0, ..ServeConfig::default() },
            ServeConfig { max_batch: 0, ..ServeConfig::default() },
        ] {
            assert!(builder().build().unwrap().into_engine(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn zero_workers_resolves_to_a_sane_auto_pool() {
        // workers = 0 is auto: sized against the session's intra-request
        // threads so the default combination cannot oversubscribe
        // workers x threads. A threads(2) session on any host resolves to
        // at most ceil(cores / 2) workers, and always at least one.
        let session = builder().threads(2).build().unwrap();
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        let engine = session.into_engine(ServeConfig::default()).unwrap();
        let resolved = engine.config().workers;
        assert!(resolved >= 1, "auto must yield at least one worker");
        assert!(resolved <= avail.div_ceil(2), "auto must respect session threads");
        let t = engine.submit(input(5, 1)).unwrap();
        assert!(engine.wait(t).is_ok());
    }

    #[test]
    fn submit_wait_matches_session_run() {
        let oracle = builder().build().unwrap();
        let engine = builder().build().unwrap().into_engine(cfg(2, 4, 4)).unwrap();
        let inputs: Vec<Tensor> = (0..4).map(|i| input(10 + i, 1)).collect();
        let want: Vec<Tensor> = inputs.iter().map(|t| oracle.run(t).unwrap().output).collect();
        let tickets: Vec<TicketId> =
            inputs.iter().map(|t| engine.submit(t.clone()).unwrap()).collect();
        // Wait out of order: tickets resolve independently.
        for (i, &t) in tickets.iter().enumerate().rev() {
            let report = engine.wait(t).unwrap();
            assert_eq!(report.output.data(), want[i].data(), "request {i} diverged");
        }
    }

    #[test]
    fn tickets_deliver_exactly_once() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        let t = engine.submit(input(1, 1)).unwrap();
        engine.wait(t).unwrap();
        assert!(engine.wait(t).is_err(), "double wait must error, not hang");
        assert!(engine.wait(TicketId(9999)).is_err(), "unknown ticket must error");
        assert!(engine.poll(TicketId(9999)).is_err(), "unknown ticket must error on poll too");
    }

    #[test]
    fn submit_validates_shape_and_batch() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        assert!(engine.submit(Tensor::zeros([1, 2, 8, 8])).is_err(), "wrong spatial dims");
        assert!(engine.submit(Tensor::zeros([0, 2, 16, 16])).is_err(), "empty batch");
        assert!(engine.try_submit(Tensor::zeros([1, 3, 16, 16])).is_err(), "wrong channels");
    }

    #[test]
    fn run_batch_with_mixed_batch_sizes_matches_solo_runs() {
        let oracle = builder().build().unwrap();
        let engine = builder().build().unwrap().into_engine(cfg(2, 8, 3)).unwrap();
        // Mixed sizes force uneven coalescing chunks under max_batch = 3.
        let inputs: Vec<Tensor> = [1usize, 2, 1, 3, 1]
            .iter()
            .enumerate()
            .map(|(i, &n)| input(20 + i as u64, n))
            .collect();
        let reports = engine.run_batch(inputs.clone()).unwrap();
        assert_eq!(reports.len(), inputs.len());
        for (i, (inp, got)) in inputs.iter().zip(&reports).enumerate() {
            let want = oracle.run(inp).unwrap();
            assert_eq!(got.output.data(), want.output.data(), "request {i} output diverged");
            assert_eq!(got.stats, want.stats, "request {i} stats diverged");
            assert_eq!(got.segments, want.segments);
        }
    }

    #[test]
    fn run_batch_of_nothing_is_empty() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        assert!(engine.run_batch(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn try_submit_succeeds_on_an_idle_engine() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        let t = engine.try_submit(input(3, 1)).unwrap().expect("idle queue accepts");
        assert!(engine.wait(t).is_ok());
    }

    #[test]
    fn shutdown_with_undelivered_results_does_not_hang() {
        let engine = builder().build().unwrap().into_engine(ServeConfig::default()).unwrap();
        for i in 0..3 {
            engine.submit(input(30 + i, 1)).unwrap();
        }
        engine.shutdown(); // tickets never waited on; must still join cleanly
    }

    #[test]
    fn engine_reports_its_configuration() {
        let conf = cfg(2, 5, 3);
        let engine = builder().build().unwrap().into_engine(conf).unwrap();
        assert_eq!(engine.config(), conf);
        assert_eq!(engine.backend(), Backend::Blocked);
        let d = format!("{engine:?}");
        assert!(d.contains("tiny_serve"), "{d}");
    }

    #[test]
    fn poll_delivers_exactly_once() {
        let oracle = builder().build().unwrap();
        let engine = builder().build().unwrap().into_engine(cfg(1, 4, 1)).unwrap();
        let inp = input(40, 1);
        let want = oracle.run(&inp).unwrap().output;
        let t = engine.submit(inp).unwrap();
        // Spin: poll returns Ok(None) while in flight, then the report.
        let report = loop {
            match engine.poll(t).unwrap() {
                Some(report) => break report,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(report.output.data(), want.data());
        assert!(engine.poll(t).is_err(), "a delivered ticket must not poll again");
        assert!(engine.wait(t).is_err(), "nor wait again");
    }

    #[test]
    fn waker_fires_exactly_once_and_result_polls() {
        let engine = builder().build().unwrap().into_engine(cfg(1, 4, 2)).unwrap();
        let (tx, rx) = mpsc::channel::<TicketId>();
        let t = engine
            .submit_with_waker(
                input(41, 1),
                SubmitOptions::default(),
                Box::new(move |done| {
                    let _ = tx.send(done);
                }),
            )
            .unwrap();
        let woken = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(woken, t, "waker must receive its own ticket");
        // After the wake the result is ready: poll must not return None.
        let report = engine.poll(t).unwrap();
        assert!(report.is_some(), "waker fired before the result was published");
        assert!(rx.try_recv().is_err(), "waker must fire exactly once");
    }

    #[test]
    fn zero_deadline_sheds_with_typed_error() {
        let engine = builder().build().unwrap().into_engine(cfg(1, 4, 2)).unwrap();
        let opts = SubmitOptions { priority: 3, deadline: Some(Instant::now()) };
        let (tx, rx) = mpsc::channel::<TicketId>();
        let t = engine
            .submit_with_waker(
                input(42, 1),
                opts,
                Box::new(move |done| {
                    let _ = tx.send(done);
                }),
            )
            .unwrap();
        // Shed notifies the waker too (the ticket resolved).
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(), t);
        assert!(matches!(engine.wait(t), Err(TensorError::DeadlineExpired)));
        let m = engine.metrics();
        assert_eq!(m.shed, 1, "shed must be counted");
        assert_eq!(m.completed, 0);
        // A generous deadline is not shed.
        let far = SubmitOptions {
            deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
            ..SubmitOptions::default()
        };
        let t2 = engine.submit_with(input(43, 1), far).unwrap();
        assert!(engine.wait(t2).is_ok(), "future deadline must execute normally");
    }

    #[test]
    fn metrics_count_requests_and_batches() {
        let oracle = builder().build().unwrap();
        let engine = builder().build().unwrap().into_engine(cfg(1, 8, 4)).unwrap();
        let inputs: Vec<Tensor> = (0..6).map(|i| input(50 + i, 1)).collect();
        let reports = engine.run_batch(inputs.clone()).unwrap();
        for (inp, got) in inputs.iter().zip(&reports) {
            assert_eq!(got.output.data(), oracle.run(inp).unwrap().output.data());
        }
        let m = engine.metrics();
        assert_eq!(m.submitted, 6);
        assert_eq!(m.completed, 6);
        assert_eq!((m.failed, m.shed), (0, 0));
        assert!(m.batches >= 2, "6 samples under max_batch 4 need >= 2 dispatches");
        assert_eq!(m.batched_samples, 6);
        assert_eq!(m.batch_hist.iter().sum::<u64>(), m.batches);
        assert!(m.p99_latency_us >= m.p50_latency_us);
        assert!(m.max_latency_us >= m.p99_latency_us);
    }

    /// Test executor: waits for a gate permit before each run and records
    /// the order in which request tags (first input element, rounded)
    /// reach the executor — the priority-ordering observer.
    struct GatedExecutor {
        inner: Arc<dyn Executor>,
        started: mpsc::Sender<()>,
        gate: Mutex<mpsc::Receiver<()>>,
        order: Mutex<Vec<i64>>,
    }

    impl Executor for GatedExecutor {
        fn name(&self) -> &'static str {
            "gated-test"
        }

        fn run_scratch(
            &self,
            input: &Tensor,
            scratch: &mut ExecScratch,
        ) -> Result<RunReport, TensorError> {
            let _ = self.started.send(());
            let _ = self.gate.lock().unwrap().recv();
            self.order.lock().unwrap().push(input.data()[0].round() as i64);
            self.inner.run_scratch(input, scratch)
        }
    }

    /// Tags a request input: first element set to `tag` (the rest random)
    /// so the gated executor can identify it.
    fn tagged(seed: u64, tag: f32) -> Tensor {
        let mut t = input(seed, 1);
        t.data_mut()[0] = tag;
        t
    }

    #[test]
    fn higher_priority_dequeues_first() {
        let mut session = builder().build().unwrap();
        let (_graph, inner) = session.shared_parts();
        let (started_tx, started_rx) = mpsc::channel();
        let (permit_tx, permit_rx) = mpsc::channel();
        let order = {
            let gated = Arc::new(GatedExecutor {
                inner,
                started: started_tx,
                gate: Mutex::new(permit_rx),
                order: Mutex::new(Vec::new()),
            });
            session.swap_executor(Arc::clone(&gated) as Arc<dyn Executor>);
            // One worker, batch-of-1, fixed cap: dequeue order is exactly
            // queue priority order.
            let engine = session
                .into_engine(ServeConfig {
                    workers: 1,
                    queue_depth: 16,
                    max_batch: 1,
                    adaptive_batch: false,
                })
                .unwrap();
            // Block the worker on a sacrificial request so the next three
            // submissions all queue up before anything else is dequeued.
            let t0 = engine.submit(tagged(60, 100.0)).unwrap();
            started_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
            let low1 = engine
                .submit_with(tagged(61, 1.0), SubmitOptions { priority: 0, deadline: None })
                .unwrap();
            let low2 = engine
                .submit_with(tagged(62, 2.0), SubmitOptions { priority: 0, deadline: None })
                .unwrap();
            let high = engine
                .submit_with(tagged(63, 3.0), SubmitOptions { priority: 9, deadline: None })
                .unwrap();
            for _ in 0..4 {
                permit_tx.send(()).unwrap();
            }
            for t in [t0, high, low1, low2] {
                engine.wait(t).unwrap();
            }
            engine.shutdown();
            let recorded = gated.order.lock().unwrap().clone();
            recorded
        };
        // The blocked request ran first (already in flight), then the
        // high-priority one jumped the two earlier low-priority ones,
        // which kept FIFO order between themselves.
        assert_eq!(order, [100, 3, 1, 2]);
    }

    /// Test executor: panics on inputs tagged with the poison value —
    /// the worker-death injector for the run_batch regression test.
    struct PanickingExecutor {
        inner: Arc<dyn Executor>,
    }

    const POISON_TAG: f32 = 12_345.0;

    impl Executor for PanickingExecutor {
        fn name(&self) -> &'static str {
            "panicking-test"
        }

        fn run_scratch(
            &self,
            input: &Tensor,
            scratch: &mut ExecScratch,
        ) -> Result<RunReport, TensorError> {
            assert!(input.data()[0] != POISON_TAG, "poisoned request reached the executor");
            self.inner.run_scratch(input, scratch)
        }
    }

    #[test]
    fn run_batch_survives_worker_death_mid_batch() {
        // Regression (ISSUE 9): when the queue dies mid-run_batch, every
        // ticket — executed, queued, or never enqueued — must resolve,
        // and no slot may linger in the results table.
        let mut session = builder().build().unwrap();
        let (_graph, inner) = session.shared_parts();
        session.swap_executor(Arc::new(PanickingExecutor { inner }));
        // One worker and a depth-1 queue: the poison chunk kills the only
        // worker while later chunks are queued or blocked in submit.
        let engine = session
            .into_engine(ServeConfig {
                workers: 1,
                queue_depth: 1,
                max_batch: 1,
                adaptive_batch: false,
            })
            .unwrap();
        let inputs = vec![tagged(70, POISON_TAG), tagged(71, 1.0), tagged(72, 2.0)];
        let err = engine.run_batch(inputs).expect_err("a poisoned batch must fail");
        assert_ne!(err, TensorError::DeadlineExpired);
        assert_eq!(engine.resident_slots(), 0, "no slot may linger after the error path");
        // The engine is dead: later submissions fail fast instead of hanging.
        assert!(engine.submit(tagged(73, 3.0)).is_err());
        assert!(engine.try_submit(tagged(74, 4.0)).is_err());
        let m = engine.metrics();
        assert!(m.failed >= 1, "worker death must be visible in metrics");
    }

    #[test]
    fn adaptive_and_fixed_caps_agree_bitwise() {
        let oracle = builder().build().unwrap();
        let adaptive = builder().build().unwrap().into_engine(cfg(2, 8, 4)).unwrap();
        let fixed = builder()
            .build()
            .unwrap()
            .into_engine(ServeConfig {
                workers: 2,
                queue_depth: 8,
                max_batch: 4,
                adaptive_batch: false,
            })
            .unwrap();
        let inputs: Vec<Tensor> = (0..5).map(|i| input(80 + i, 1)).collect();
        let a = adaptive.run_batch(inputs.clone()).unwrap();
        let f = fixed.run_batch(inputs.clone()).unwrap();
        for ((inp, ra), rf) in inputs.iter().zip(&a).zip(&f) {
            let want = oracle.run(inp).unwrap().output;
            assert_eq!(ra.output.data(), want.data(), "adaptive cap changed an output");
            assert_eq!(rf.output.data(), want.data(), "fixed cap changed an output");
        }
    }
}
