//! Compile [`bconv_models::Network`] descriptors into executable blocked /
//! fused pipelines — the load-bearing spine between the paper's operator
//! (`bconv-core`) and its whole-network claims.
//!
//! The crate is a three-stage compiler plus a facade:
//!
//! 1. **Lowering** ([`ir::Graph::lower`]) — turns an architectural
//!    descriptor into a typed graph of executable nodes, binding
//!    deterministic He-initialised weights via [`bconv_tensor::init`];
//! 2. **Planning** ([`plan::Planner`]) — consumes a
//!    [`bconv_core::plan::NetworkPlan`] (or derives the paper's
//!    resolution rule) plus an on-chip budget, and partitions the graph
//!    into [`bconv_core::fusion::FusedChain`] fusion groups;
//! 3. **Execution** ([`exec::Executor`]) — pluggable backends:
//!    [`exec::ReferenceExecutor`] (dense layer-wise) and
//!    [`exec::BlockedExecutor`] (per-block fused, reporting
//!    [`bconv_core::fusion::MemStats`]).
//!
//! [`Session`] ties the stages together behind a builder:
//!
//! ```
//! use bconv_graph::Session;
//! use bconv_core::BlockingPattern;
//! use bconv_models::small::vgg16_small;
//! use bconv_tensor::{PadMode, Tensor};
//!
//! # fn main() -> Result<(), bconv_tensor::TensorError> {
//! let session = Session::builder()
//!     .network(vgg16_small(32))
//!     .pattern(BlockingPattern::hierarchical(2))
//!     .pad(PadMode::Zero)
//!     .build()?;
//! let report = session.run(&Tensor::filled([1, 3, 32, 32], 0.5))?;
//! println!("{} -> {:?}, {} off-chip elements",
//!     session.graph().name(), report.output.shape(), report.stats.offchip_elems);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod cost;
pub mod exec;
pub mod ir;
pub mod plan;
pub mod quantize;
pub mod serve;
pub mod session;
pub mod tune;

pub use cache::{graph_content_hash, host_fingerprint, PlanCache, PlanCacheError, PlanKey};
pub use cost::{AccelCost, CostModel, ElementBudget, SpliceCost, StageCost};
pub use exec::{BlockedExecutor, ExecScratch, Executor, ReferenceExecutor, RunReport};
pub use ir::{Graph, LowerOptions, Node, NodeId, NodeOp, NodeRef};
pub use plan::{
    planner_invocations, ExecPlan, PlanProvenance, PlanReport, Planner, PlannerOptions, Segment,
    SpliceReport,
};
pub use quantize::{GraphQuantSpec, QuantizedExecutor};
pub use serve::metrics::ServeMetrics;
pub use serve::router::{Router, RouterTicket};
pub use serve::{ServeConfig, ServeEngine, SubmitOptions, TicketId, Waker};
pub use session::{
    Backend, PlanSpec, Session, SessionBuilder, DEFAULT_CALIBRATION_BATCHES, THREADS_ENV,
};
pub use tune::{
    load_cached_winner, modeled_offchip_elems, tune, tune_lowered, TuneOptions, TunePoint,
    TuneReport, TuneWinner,
};

// Re-exported so session callers can pick a conv kernel without a direct
// bconv-tensor dependency.
pub use bconv_tensor::kernel::{KernelKind, KernelPolicy};
