//! Lock-light serving observability: every counter a [`ServeEngine`]
//! maintains is a relaxed atomic, so recording a request costs a handful
//! of uncontended `fetch_add`s and reading a [`ServeMetrics`] snapshot
//! never blocks the serving path (no mutex, no histogram lock — the
//! snapshot is a racy-but-monotone read, which is exactly what a metrics
//! scrape wants).
//!
//! Latency is tracked in a log-linear histogram (exact below 16 µs, then
//! four sub-buckets per power of two — ≤ 12.5% relative resolution), the
//! same layout HDR-style histograms use. Percentiles are computed from
//! the bucket counts in **integer microseconds**; this module performs no
//! float arithmetic at all, keeping it trivially inside the analyzer's
//! L6 float-determinism policy for serve modules.
//!
//! [`ServeEngine`]: crate::serve::ServeEngine

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of exact buckets (values 0..16 µs map to their own bucket).
const EXACT: usize = 16;
/// Sub-buckets per octave above the exact range.
const SUBS: usize = 4;
/// Total latency buckets: exact range + 4 sub-buckets for each octave
/// from 2^4 µs up to 2^63 µs (far beyond any real request latency).
const LAT_BUCKETS: usize = EXACT + (64 - 4) * SUBS;
/// Batch sizes tracked individually; larger batches land in the last
/// (overflow) bucket.
const BATCH_TRACKED: usize = 32;

/// EWMA smoothing: `ewma += (sample - ewma) / 2^EWMA_SHIFT`, in 1/16ths.
const EWMA_SHIFT: u32 = 2;
/// Fixed-point scale of the stored queue-depth EWMA.
const EWMA_FP: u64 = 16;

/// Latency bucket index for a microsecond value: identity below
/// [`EXACT`], then `(octave, top-two-mantissa-bits)`.
fn lat_bucket(us: u64) -> usize {
    if us < EXACT as u64 {
        return us as usize;
    }
    let oct = 63 - us.leading_zeros() as usize; // >= 4 here
    let sub = ((us >> (oct - 2)) & 0x3) as usize;
    EXACT + (oct - 4) * SUBS + sub
}

/// Lower bound of a latency bucket, in microseconds — the value a
/// percentile query reports (conservative: never over-states latency by
/// more than one sub-bucket, ≤ 12.5%).
fn lat_bucket_floor(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let oct = 4 + (idx - EXACT) / SUBS;
    let sub = ((idx - EXACT) % SUBS) as u64;
    (1u64 << oct) + (sub << (oct - 2))
}

/// The live counters, shared by clients and workers. All updates are
/// `Ordering::Relaxed`: metrics never synchronise the request path, and
/// every field is independently monotone (the gauges are last-writer-wins,
/// which is fine for an instantaneous depth reading).
#[derive(Debug)]
pub(crate) struct MetricsCore {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    queue_jobs: AtomicU64,
    queue_samples: AtomicU64,
    /// Queue-depth EWMA in samples, fixed-point 1/16ths — the signal the
    /// adaptive batch cap reads.
    depth_ewma_fp: AtomicU64,
    lat_count: AtomicU64,
    lat_sum_us: AtomicU64,
    lat_max_us: AtomicU64,
    lat: [AtomicU64; LAT_BUCKETS],
    batch_hist: [AtomicU64; BATCH_TRACKED + 1],
}

impl MetricsCore {
    pub(crate) fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_samples: AtomicU64::new(0),
            queue_jobs: AtomicU64::new(0),
            queue_samples: AtomicU64::new(0),
            depth_ewma_fp: AtomicU64::new(0),
            lat_count: AtomicU64::new(0),
            lat_sum_us: AtomicU64::new(0),
            lat_max_us: AtomicU64::new(0),
            lat: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// `n` requests (tickets) accepted by `submit`/`run_batch`.
    pub(crate) fn on_submit(&self, n: u64) {
        self.submitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Cheap single-gauge read for load balancing (avoids a full
    /// snapshot on the router's submit path).
    pub(crate) fn snapshot_queue_samples(&self) -> u64 {
        self.queue_samples.load(Ordering::Relaxed)
    }

    /// Queue state after a push or pop, from inside the queue's critical
    /// section (so the gauge pair is coherent); also advances the depth
    /// EWMA the adaptive batch cap consumes.
    pub(crate) fn on_queue_depth(&self, jobs: u64, samples: u64) {
        self.queue_jobs.store(jobs, Ordering::Relaxed);
        self.queue_samples.store(samples, Ordering::Relaxed);
        // Racy read-modify-write is acceptable: a lost EWMA update skews a
        // smoothing term, not correctness (outputs never depend on it).
        // The step is clamped to at least one fixed-point unit so the
        // average converges to the sustained value instead of stalling
        // when the remaining gap is below 2^EWMA_SHIFT units.
        let old = self.depth_ewma_fp.load(Ordering::Relaxed);
        let sample = samples * EWMA_FP;
        let new = if sample >= old {
            old + ((sample - old) >> EWMA_SHIFT).max((sample > old) as u64)
        } else {
            old - ((old - sample) >> EWMA_SHIFT).max(1)
        };
        self.depth_ewma_fp.store(new, Ordering::Relaxed);
    }

    /// Smoothed queue depth in whole samples, rounded up so a non-empty
    /// queue never reads as zero.
    pub(crate) fn depth_ewma_samples(&self) -> u64 {
        self.depth_ewma_fp.load(Ordering::Relaxed).div_ceil(EWMA_FP)
    }

    /// A request shed on deadline expiry (counted per ticket).
    pub(crate) fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request delivered successfully, with its submit→fulfil latency.
    pub(crate) fn on_complete(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.lat_count.fetch_add(1, Ordering::Relaxed);
        self.lat_sum_us.fetch_add(latency_us, Ordering::Relaxed);
        self.lat_max_us.fetch_max(latency_us, Ordering::Relaxed);
        self.lat[lat_bucket(latency_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// A request resolved with an error (executor failure, worker panic).
    pub(crate) fn on_fail(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One executor dispatch of `samples` coalesced samples.
    pub(crate) fn on_batch(&self, samples: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples.fetch_add(samples as u64, Ordering::Relaxed);
        self.batch_hist[samples.min(BATCH_TRACKED)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot (relaxed reads; monotone counters may be
    /// mutually off by an in-flight request — fine for observability).
    pub(crate) fn snapshot(&self) -> ServeMetrics {
        let mut lat = [0u64; LAT_BUCKETS];
        for (out, b) in lat.iter_mut().zip(&self.lat) {
            *out = b.load(Ordering::Relaxed);
        }
        let count: u64 = lat.iter().sum();
        let mut batch_hist = [0u64; BATCH_TRACKED + 1];
        for (out, b) in batch_hist.iter_mut().zip(&self.batch_hist) {
            *out = b.load(Ordering::Relaxed);
        }
        ServeMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_samples: self.batched_samples.load(Ordering::Relaxed),
            queue_jobs: self.queue_jobs.load(Ordering::Relaxed),
            queue_samples: self.queue_samples.load(Ordering::Relaxed),
            queue_depth_ewma_x16: self.depth_ewma_fp.load(Ordering::Relaxed),
            p50_latency_us: percentile(&lat, count, 50),
            p99_latency_us: percentile(&lat, count, 99),
            max_latency_us: self.lat_max_us.load(Ordering::Relaxed),
            mean_latency_us: self
                .lat_sum_us
                .load(Ordering::Relaxed)
                .checked_div(self.lat_count.load(Ordering::Relaxed))
                .unwrap_or(0),
            batch_hist,
        }
    }
}

/// `pct`-th percentile (nearest-rank) over the captured bucket counts,
/// reported as the matched bucket's floor. Zero when nothing completed.
fn percentile(lat: &[u64; LAT_BUCKETS], count: u64, pct: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Exclusive nearest-rank: the smallest bucket whose cumulative count
    // *exceeds* pct% of the population, so p99 over 100 requests lands on
    // the slowest one (the tail reading an operator wants) rather than
    // the 99th-fastest.
    let rank = ((pct * count) / 100 + 1).min(count);
    let mut seen = 0u64;
    for (idx, &c) in lat.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return lat_bucket_floor(idx);
        }
    }
    lat_bucket_floor(LAT_BUCKETS - 1)
}

/// A point-in-time reading of one engine's counters — plain data, safe to
/// ship across threads, print, or serialise. Obtained from
/// [`ServeEngine::metrics`](crate::serve::ServeEngine::metrics) or
/// aggregated across replicas by
/// [`Router::metrics`](crate::serve::router::Router::metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Requests accepted (one per ticket, including later-shed ones).
    pub submitted: u64,
    /// Requests delivered successfully.
    pub completed: u64,
    /// Requests resolved with an error (executor failure, worker panic,
    /// engine death) — excludes sheds.
    pub failed: u64,
    /// Requests shed because their deadline expired before execution.
    pub shed: u64,
    /// Executor dispatches (each runs one coalesced batch).
    pub batches: u64,
    /// Total samples across all dispatches; `batched_samples / batches`
    /// is the realised mean batch size.
    pub batched_samples: u64,
    /// Jobs sitting in the queue right now.
    pub queue_jobs: u64,
    /// Samples sitting in the queue right now.
    pub queue_samples: u64,
    /// Smoothed queue depth (samples, fixed-point 1/16ths) — the signal
    /// driving the adaptive batch cap.
    pub queue_depth_ewma_x16: u64,
    /// Median submit→fulfil latency, µs (log-linear buckets, ≤ 12.5%
    /// resolution; conservative floor).
    pub p50_latency_us: u64,
    /// 99th-percentile submit→fulfil latency, µs.
    pub p99_latency_us: u64,
    /// Worst observed latency, µs (exact, not bucketed).
    pub max_latency_us: u64,
    /// Mean latency, µs (exact sum/count).
    pub mean_latency_us: u64,
    /// Dispatch count per coalesced batch size; index 0 is unused, the
    /// last slot aggregates batches larger than 32 samples.
    pub batch_hist: [u64; BATCH_TRACKED + 1],
}

impl ServeMetrics {
    /// Element-wise sum of two snapshots: counters add; the percentile,
    /// max and EWMA fields take the worse (larger) reading, which is the
    /// conservative aggregate a router reports for its replica set.
    #[must_use]
    pub fn merged(&self, other: &ServeMetrics) -> ServeMetrics {
        let mut batch_hist = self.batch_hist;
        for (a, b) in batch_hist.iter_mut().zip(&other.batch_hist) {
            *a += b;
        }
        ServeMetrics {
            submitted: self.submitted + other.submitted,
            completed: self.completed + other.completed,
            failed: self.failed + other.failed,
            shed: self.shed + other.shed,
            batches: self.batches + other.batches,
            batched_samples: self.batched_samples + other.batched_samples,
            queue_jobs: self.queue_jobs + other.queue_jobs,
            queue_samples: self.queue_samples + other.queue_samples,
            queue_depth_ewma_x16: self.queue_depth_ewma_x16.max(other.queue_depth_ewma_x16),
            p50_latency_us: self.p50_latency_us.max(other.p50_latency_us),
            p99_latency_us: self.p99_latency_us.max(other.p99_latency_us),
            max_latency_us: self.max_latency_us.max(other.max_latency_us),
            mean_latency_us: self.mean_latency_us.max(other.mean_latency_us),
            batch_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_then_log_linear() {
        // Exact range: identity.
        for us in 0..16u64 {
            assert_eq!(lat_bucket(us), us as usize);
            assert_eq!(lat_bucket_floor(us as usize), us);
        }
        // Above: floor(bucket(v)) <= v, within 12.5%.
        for us in [16u64, 17, 100, 1000, 12_345, 1 << 20, u64::MAX / 2] {
            let idx = lat_bucket(us);
            let floor = lat_bucket_floor(idx);
            assert!(floor <= us, "floor {floor} > value {us}");
            assert!(us - floor <= us / 8, "bucket floor {floor} too far below {us}");
            // Buckets are monotone in the value.
            assert!(lat_bucket(us + 1) >= idx);
        }
    }

    #[test]
    fn percentiles_read_back_recorded_latencies() {
        let m = MetricsCore::new();
        // 99 fast requests at 10 µs, one slow one at ~10 ms.
        for _ in 0..99 {
            m.on_complete(10);
        }
        m.on_complete(10_000);
        let s = m.snapshot();
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_latency_us, 10);
        assert!(s.p99_latency_us <= 10_000 && s.p99_latency_us > 8_000, "{}", s.p99_latency_us);
        assert_eq!(s.max_latency_us, 10_000);
        assert!(s.mean_latency_us >= 100 && s.mean_latency_us <= 110, "{}", s.mean_latency_us);
    }

    #[test]
    fn empty_metrics_report_zero_percentiles() {
        let s = MetricsCore::new().snapshot();
        assert_eq!((s.p50_latency_us, s.p99_latency_us, s.max_latency_us), (0, 0, 0));
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn batch_histogram_tracks_and_overflows() {
        let m = MetricsCore::new();
        m.on_batch(1);
        m.on_batch(4);
        m.on_batch(4);
        m.on_batch(1000); // overflow bucket
        let s = m.snapshot();
        assert_eq!(s.batches, 4);
        assert_eq!(s.batched_samples, 1 + 4 + 4 + 1000);
        assert_eq!(s.batch_hist[1], 1);
        assert_eq!(s.batch_hist[4], 2);
        assert_eq!(s.batch_hist[BATCH_TRACKED], 1);
    }

    #[test]
    fn depth_ewma_tracks_queue_depth() {
        let m = MetricsCore::new();
        assert_eq!(m.depth_ewma_samples(), 0);
        for _ in 0..64 {
            m.on_queue_depth(8, 8);
        }
        // Converges to the sustained depth.
        assert_eq!(m.depth_ewma_samples(), 8);
        for _ in 0..64 {
            m.on_queue_depth(0, 0);
        }
        assert_eq!(m.depth_ewma_samples(), 0);
        // A single spike moves it only fractionally.
        m.on_queue_depth(100, 100);
        assert!(m.depth_ewma_samples() <= 100 / 2, "{}", m.depth_ewma_samples());
    }

    #[test]
    fn merged_adds_counters_and_maxes_latencies() {
        let a = MetricsCore::new();
        a.on_complete(10);
        a.on_batch(2);
        let b = MetricsCore::new();
        b.on_complete(100);
        b.on_shed();
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.completed, 2);
        assert_eq!(m.shed, 1);
        assert_eq!(m.batches, 1);
        assert_eq!(m.max_latency_us, 100);
    }
}
