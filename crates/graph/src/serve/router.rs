//! [`Router`]: one serving front door over N [`ServeEngine`] replicas
//! that share a single compiled model.
//!
//! A single engine's throughput tops out at its worker pool; the router
//! scales past that by sharding requests across replica engines while
//! paying the model cost **once**: every replica is built from a
//! [`Session::fork`](crate::Session::fork), so all of them hold the same
//! `Arc`'d graph, fusion plan, weights, and (for the quantized backend)
//! the same calibration — N replicas, one lowering, one planning pass,
//! one calibration pass ([`crate::quantize::calibration_passes`] counts
//! them). Shard choice is least-queued-samples with a rotating
//! tie-break, which is pure load balancing: samples are independent and
//! every replica runs the identical executor, so routing — like batch
//! coalescing — is bitwise invisible and each request's output equals a
//! solo [`Session::run`](crate::Session::run).
//!
//! The API mirrors the engine: [`submit`](Router::submit) /
//! [`submit_with`](Router::submit_with) /
//! [`submit_with_waker`](Router::submit_with_waker) return a
//! [`RouterTicket`] (shard + engine ticket), redeemed with
//! [`wait`](Router::wait) or [`poll`](Router::poll);
//! [`run_batch`](Router::run_batch) spreads a whole batch over the
//! replica set; [`metrics`](Router::metrics) folds every replica's
//! [`ServeMetrics`] into one fleet view.

use std::sync::atomic::{AtomicUsize, Ordering};

use bconv_tensor::{Tensor, TensorError};

use crate::exec::RunReport;
use crate::serve::metrics::ServeMetrics;
use crate::serve::{ServeConfig, ServeEngine, SubmitOptions, TicketId, Waker};
use crate::session::Session;

/// Handle to one routed request: remembers which replica holds the
/// underlying [`TicketId`]. Redeem with [`Router::wait`] or
/// [`Router::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterTicket {
    shard: usize,
    ticket: TicketId,
}

/// N replica [`ServeEngine`]s behind one submit/wait/poll surface. Built
/// by [`Session::into_router`](crate::Session::into_router); see the
/// [module docs](self).
pub struct Router {
    replicas: Vec<ServeEngine>,
    /// Rotating tie-break so equally-idle replicas share work instead of
    /// all traffic landing on shard 0.
    rr: AtomicUsize,
}

impl Router {
    /// Builds `replicas` engines, each configured with `config`, all
    /// forked from one compiled `session` (shared graph, plan, weights,
    /// calibration — nothing is re-lowered or re-calibrated per
    /// replica).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] for `replicas == 0` or
    /// an invalid `config`.
    pub(crate) fn new(
        session: Session,
        replicas: usize,
        config: ServeConfig,
    ) -> Result<Self, TensorError> {
        if replicas == 0 {
            return Err(TensorError::invalid("Router requires at least one replica"));
        }
        let mut engines = Vec::with_capacity(replicas);
        for _ in 1..replicas {
            engines.push(session.fork().into_engine(config)?);
        }
        engines.push(session.into_engine(config)?);
        Ok(Self { replicas: engines, rr: AtomicUsize::new(0) })
    }

    /// The replica engines, for per-shard inspection (metrics, config).
    pub fn replicas(&self) -> &[ServeEngine] {
        &self.replicas
    }

    /// Least-loaded shard (queued samples), ties broken by a rotating
    /// offset. Pure heuristic: any choice yields identical outputs.
    fn pick(&self) -> usize {
        let n = self.replicas.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        let mut best = start;
        let mut best_depth = self.replicas[start].queued_samples();
        let mut i = (start + 1) % n;
        while i != start {
            let depth = self.replicas[i].queued_samples();
            if depth < best_depth {
                best = i;
                best_depth = depth;
            }
            i = (i + 1) % n;
        }
        best
    }

    /// Routes one request to the least-loaded replica. See
    /// [`ServeEngine::submit`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit`].
    pub fn submit(&self, input: Tensor) -> Result<RouterTicket, TensorError> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with explicit priority/deadline. See
    /// [`ServeEngine::submit_with`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit_with`].
    pub fn submit_with(
        &self,
        input: Tensor,
        opts: SubmitOptions,
    ) -> Result<RouterTicket, TensorError> {
        let shard = self.pick();
        let ticket = self.replicas[shard].submit_with(input, opts)?;
        Ok(RouterTicket { shard, ticket })
    }

    /// [`submit_with`](Self::submit_with) plus a completion [`Waker`].
    /// See [`ServeEngine::submit_with_waker`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit_with_waker`].
    pub fn submit_with_waker(
        &self,
        input: Tensor,
        opts: SubmitOptions,
        waker: Waker,
    ) -> Result<RouterTicket, TensorError> {
        let shard = self.pick();
        let ticket = self.replicas[shard].submit_with_waker(input, opts, waker)?;
        Ok(RouterTicket { shard, ticket })
    }

    /// Blocks until the routed request resolves. See
    /// [`ServeEngine::wait`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::wait`].
    pub fn wait(&self, ticket: RouterTicket) -> Result<RunReport, TensorError> {
        match self.replicas.get(ticket.shard) {
            Some(engine) => engine.wait(ticket.ticket),
            None => Err(TensorError::invalid("router ticket references an unknown shard")),
        }
    }

    /// Non-blocking completion check. See [`ServeEngine::poll`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::poll`].
    pub fn poll(&self, ticket: RouterTicket) -> Result<Option<RunReport>, TensorError> {
        match self.replicas.get(ticket.shard) {
            Some(engine) => engine.poll(ticket.ticket),
            None => Err(TensorError::invalid("router ticket references an unknown shard")),
        }
    }

    /// Spreads a whole batch across the replica set (per-request
    /// routing; worker-side coalescing still batches within each
    /// shard) and returns the reports in request order — bitwise
    /// identical to solo runs, like [`ServeEngine::run_batch`].
    ///
    /// # Errors
    ///
    /// Returns the first failing request's error (after all requests
    /// finished), or a validation error from the rejecting shard.
    pub fn run_batch(&self, inputs: Vec<Tensor>) -> Result<Vec<RunReport>, TensorError> {
        let mut tickets: Vec<RouterTicket> = Vec::with_capacity(inputs.len());
        let mut submit_err: Option<TensorError> = None;
        for input in inputs {
            match self.submit(input) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    submit_err = Some(e);
                    break;
                }
            }
        }
        let mut reports = Vec::with_capacity(tickets.len());
        let mut first_err: Option<TensorError> = None;
        for ticket in tickets {
            match self.wait(ticket) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match submit_err.or(first_err) {
            None => Ok(reports),
            Some(e) => Err(e),
        }
    }

    /// Fleet-wide [`ServeMetrics`]: counters summed, latency percentiles
    /// and depth gauges taken as the worst replica's reading.
    pub fn metrics(&self) -> ServeMetrics {
        let mut total = self.replicas[0].metrics();
        for engine in &self.replicas[1..] {
            total = total.merged(&engine.metrics());
        }
        total
    }

    /// Shuts every replica down, draining in-flight requests. Dropping
    /// the router does the same.
    pub fn shutdown(self) {
        for engine in self.replicas {
            engine.shutdown();
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("replicas", &self.replicas.len())
            .field("engine", &self.replicas.first())
            .finish()
    }
}
