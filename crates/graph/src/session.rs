//! The [`Session`] entry point: compile a network descriptor once, run it
//! many times.
//!
//! ```
//! use bconv_graph::Session;
//! use bconv_core::BlockingPattern;
//! use bconv_models::small::vgg16_small;
//! use bconv_tensor::{PadMode, Tensor};
//!
//! # fn main() -> Result<(), bconv_tensor::TensorError> {
//! let session = Session::builder()
//!     .network(vgg16_small(32))
//!     .pattern(BlockingPattern::hierarchical(2))
//!     .pad(PadMode::Zero)
//!     .build()?;
//! let report = session.run(&Tensor::filled([1, 3, 32, 32], 0.5))?;
//! assert_eq!(report.output.shape().dims(), [1, 10, 1, 1]);
//! # Ok(())
//! # }
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use bconv_core::blocking::BlockingPattern;
use bconv_core::plan::NetworkPlan;
use bconv_models::Network;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::pad::PadMode;
use bconv_tensor::{Tensor, TensorError};

use bconv_tensor::init::{seeded_rng, uniform_tensor};

use crate::cache::{PlanCache, PlanKey};
use crate::cost::CostModel;
use crate::exec::{BlockedExecutor, ExecScratch, Executor, ReferenceExecutor, RunReport};
use crate::ir::{Graph, LowerOptions, NodeOp};
use crate::plan::{ExecPlan, PlanProvenance, Planner, PlannerOptions, Segment};
use crate::quantize::{GraphQuantSpec, QuantizedExecutor};
use crate::serve::router::Router;
use crate::serve::{ServeConfig, ServeEngine};
use crate::tune::{self, TuneOptions};

/// Which executor backend a session compiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Dense layer-wise execution (numerical/memory baseline).
    Reference,
    /// Blocked, fused execution per the compiled plan (the default).
    #[default]
    Blocked,
    /// The blocked schedule with every convolution in calibrated integer
    /// arithmetic — the paper's deployment path (§III-C, Figure 7:
    /// `weight_bits: 8, act_bits: 16` for the VGG-16 accelerator,
    /// `weight_bits: 4, act_bits: 8` for VDSR). Building this backend runs
    /// a post-training calibration pass (see [`crate::quantize`]);
    /// [`RunReport`] traffic is reported at
    /// `act_bits` per feature-map element.
    Quantized {
        /// Convolution weight bitwidth (2..=16).
        weight_bits: u8,
        /// Activation bitwidth (2..=16); also the off-chip word width.
        act_bits: u8,
    },
}

/// Environment variable consulted for the worker-thread count when the
/// builder does not set one explicitly.
pub const THREADS_ENV: &str = "BCONV_THREADS";

/// Number of synthesised calibration batches when the quantized backend is
/// built without [`SessionBuilder::calibration`] data.
pub const DEFAULT_CALIBRATION_BATCHES: usize = 4;

/// Deterministic stand-in calibration set: seeded uniform batches over the
/// network's input shape. Real calibration data gives real activation
/// ranges; this keeps `Backend::Quantized` buildable out of the box with
/// the same reproducibility guarantees as weight binding.
fn default_calibration(graph: &Graph, seed: u64) -> Vec<Tensor> {
    let s = graph.input_shape();
    (0..DEFAULT_CALIBRATION_BATCHES)
        .map(|i| {
            let mut rng = seeded_rng(seed ^ 0x5143_414C ^ ((i as u64 + 1) << 32));
            uniform_tensor([1, s.c, s.h, s.w], -1.0, 1.0, &mut rng)
        })
        .collect()
}

/// Resolves the blocked backend's worker-thread count: an explicit
/// builder setting wins, then a [`THREADS_ENV`] override, then the
/// machine's available parallelism.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when the requested count is
/// zero or the environment variable does not parse as a positive integer.
fn resolve_threads(requested: Option<usize>) -> Result<usize, TensorError> {
    if let Some(n) = requested {
        if n == 0 {
            return Err(TensorError::invalid(
                "SessionBuilder::threads must be >= 1 (0 worker threads cannot execute)",
            ));
        }
        return Ok(n);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        return match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(TensorError::invalid(format!(
                "{THREADS_ENV}={raw:?} is not a valid thread count; expected an integer >= 1"
            ))),
        };
    }
    Ok(std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The cache-aware planning funnel: on a [`PlanKey`] hit the pinned plan is
/// rebuilt from its stored decisions and the planner walk never runs (its
/// provenance is already `CacheLoaded`); otherwise the planner runs, the
/// given provenance is stamped, and the plan is stored best-effort. Every
/// cache failure — missing file, corrupt JSON, stale key, incompatible
/// schema — falls back to fresh planning; none is fatal.
#[allow(clippy::too_many_arguments)]
fn plan_or_load(
    cache: Option<&PlanCache>,
    key: Option<&PlanKey>,
    planner: &Planner,
    graph: &Graph,
    pad: PadMode,
    kernel: KernelPolicy,
    quant: Option<&GraphQuantSpec>,
    provenance: PlanProvenance,
) -> Result<Arc<ExecPlan>, TensorError> {
    if let (Some(cache), Some(key)) = (cache, key) {
        if let Ok(plan) = cache.load(key, graph, pad, kernel, quant) {
            return Ok(Arc::new(plan));
        }
    }
    let mut plan = match quant {
        Some(spec) => planner.plan_quantized(graph, spec)?,
        None => planner.plan(graph)?,
    };
    plan.report_mut().provenance = provenance;
    if let (Some(cache), Some(key)) = (cache, key) {
        let _ = cache.store(key, &plan);
    }
    Ok(Arc::new(plan))
}

/// The planning configuration, as one value: everything that decides
/// *what plan* a session compiles (as opposed to which backend executes
/// it or how many worker threads run it). [`SessionBuilder::planner`]
/// consumes a spec wholesale; the builder's individual knobs
/// ([`SessionBuilder::pattern`], [`SessionBuilder::on_chip_budget`],
/// [`SessionBuilder::cost_model`], …) are thin conveniences writing into
/// the same spec, kept for compatibility.
///
/// ```
/// use bconv_graph::session::PlanSpec;
/// use bconv_core::BlockingPattern;
///
/// let spec = PlanSpec::new()
///     .pattern(BlockingPattern::hierarchical(2))
///     .on_chip_budget(1500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlanSpec {
    /// Blocking pattern (`None` = the `H2×2` default).
    pub pattern: Option<BlockingPattern>,
    /// Explicit per-conv-layer blocking decisions (`None` derives the
    /// paper's resolution rule).
    pub network_plan: Option<NetworkPlan>,
    /// Element budget for the default cost model; mutually exclusive with
    /// [`Self::cost_model`].
    pub budget_elems: Option<usize>,
    /// Fusion cost model (cuts and splices).
    pub cost_model: Option<Arc<dyn CostModel>>,
    /// Block-padding mode.
    pub pad: PadMode,
    /// Conv kernel policy for blocked convolutions.
    pub kernel: KernelPolicy,
    /// Plan-cache directory: when set, `build()` loads a pinned plan on a
    /// [`PlanKey`] hit (skipping the planner walk entirely) and stores
    /// freshly planned ones.
    pub cache_dir: Option<PathBuf>,
    /// Run the per-host autotuner ([`mod@crate::tune`]) and plan under its
    /// winner. Knobs the caller pinned explicitly keep their values; only
    /// unset ones take the winner's.
    pub tuned: bool,
}

impl PlanSpec {
    /// An empty spec (all defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the blocking pattern.
    pub fn pattern(mut self, pattern: BlockingPattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Sets explicit per-conv-layer blocking decisions.
    pub fn network_plan(mut self, plan: NetworkPlan) -> Self {
        self.network_plan = Some(plan);
        self
    }

    /// Caps the per-block on-chip working buffers, in elements.
    pub fn on_chip_budget(mut self, elems: usize) -> Self {
        self.budget_elems = Some(elems);
        self
    }

    /// Sets the fusion cost model.
    pub fn cost_model(mut self, model: impl CostModel + 'static) -> Self {
        self.cost_model = Some(Arc::new(model));
        self
    }

    /// Sets the block-padding mode.
    pub fn pad(mut self, pad: PadMode) -> Self {
        self.pad = pad;
        self
    }

    /// Sets the conv kernel policy.
    pub fn kernel(mut self, policy: KernelPolicy) -> Self {
        self.kernel = policy;
        self
    }

    /// Enables the plan cache under `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Enables per-host autotuning.
    pub fn tuned(mut self) -> Self {
        self.tuned = true;
        self
    }
}

/// Builder for [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    network: Option<Network>,
    spec: PlanSpec,
    backend: Backend,
    seed: Option<u64>,
    relu_after_conv: bool,
    threads: Option<usize>,
    calibration: Option<Vec<Tensor>>,
}

impl SessionBuilder {
    /// Sets the network descriptor to compile (required).
    pub fn network(mut self, net: Network) -> Self {
        self.network = Some(net);
        self
    }

    /// Replaces the whole planning configuration with `spec` — the
    /// documented way to configure planning. The per-knob builder methods
    /// below write into the same spec and remain as conveniences.
    pub fn planner(mut self, spec: PlanSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Enables the plan compilation cache under `dir`: a [`PlanKey`] hit
    /// loads the pinned plan (bitwise-identical execution, no planner
    /// walk); a miss plans fresh and stores the result. Equivalent to
    /// [`PlanSpec::cache_dir`].
    pub fn plan_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.cache_dir = Some(dir.into());
        self
    }

    /// Enables per-host autotuning: `build()` runs (or loads, when a
    /// plan cache directory is set, from its per-host winner cache) the
    /// bounded [`mod@crate::tune`] exploration and plans under the winning
    /// pattern / buffer split / kernel policy / thread count. Knobs set
    /// explicitly on the builder keep their values. Equivalent to
    /// [`PlanSpec::tuned`].
    pub fn tuned(mut self) -> Self {
        self.spec.tuned = true;
        self
    }

    /// Sets the blocking pattern (default `H2×2`).
    ///
    /// **Note:** convenience delegating to [`PlanSpec::pattern`]; prefer
    /// [`planner`](Self::planner) for new code.
    pub fn pattern(mut self, pattern: BlockingPattern) -> Self {
        self.spec.pattern = Some(pattern);
        self
    }

    /// Overrides the per-conv-layer blocking decisions (default: the
    /// paper's resolution rule under the session pattern). Use
    /// [`NetworkPlan::by_blocking_depth`] for the VDSR fusion-point
    /// schedule or [`NetworkPlan::unblocked`] for a pure dense baseline.
    ///
    /// **Note:** convenience delegating to [`PlanSpec::network_plan`];
    /// prefer [`planner`](Self::planner) for new code.
    pub fn plan(mut self, plan: NetworkPlan) -> Self {
        self.spec.network_plan = Some(plan);
        self
    }

    /// Sets the block-padding mode (default zero padding).
    ///
    /// **Note:** convenience delegating to [`PlanSpec::pad`]; prefer
    /// [`planner`](Self::planner) for new code.
    pub fn pad(mut self, pad: PadMode) -> Self {
        self.spec.pad = pad;
        self
    }

    /// Caps the per-block on-chip working buffers, in elements. Fusion
    /// groups are cut at the boundary where they would exceed the budget
    /// (the default [`crate::cost::ElementBudget`] model; mutually
    /// exclusive with [`cost_model`](Self::cost_model)).
    ///
    /// **Note:** convenience delegating to [`PlanSpec::on_chip_budget`];
    /// prefer [`planner`](Self::planner) for new code.
    pub fn on_chip_budget(mut self, elems: usize) -> Self {
        self.spec.budget_elems = Some(elems);
        self
    }

    /// Selects the fusion cost model deciding where the planner cuts
    /// fusion groups and whether adjacent groups splice into a
    /// `FusedPipeline` (see [`crate::cost`]). The default is
    /// [`crate::cost::ElementBudget`] over
    /// [`on_chip_budget`](Self::on_chip_budget); pass
    /// [`crate::cost::AccelCost`] to plan against the `bconv-accel`
    /// cycle/memory model. Setting both a cost model and an element budget
    /// is rejected at build time (ambiguous).
    ///
    /// **Note:** convenience delegating to [`PlanSpec::cost_model`];
    /// prefer [`planner`](Self::planner) for new code.
    pub fn cost_model(mut self, model: impl CostModel + 'static) -> Self {
        self.spec.cost_model = Some(Arc::new(model));
        self
    }

    /// Selects the executor backend (default [`Backend::Blocked`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Seed for deterministic weight binding (default 2018). Sessions
    /// built from the same network with the same seed share weights
    /// regardless of backend — the basis of cross-backend parity tests.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Inserts a ReLU after every convolution during lowering.
    pub fn relu_after_conv(mut self, yes: bool) -> Self {
        self.relu_after_conv = yes;
        self
    }

    /// Selects the conv kernel policy for blocked convolutions (default
    /// [`KernelPolicy::Auto`]: im2col+GEMM wherever the patch matrix pays
    /// for itself, the direct loop for degenerate single-tap layers).
    ///
    /// **Note:** convenience delegating to [`PlanSpec::kernel`]; prefer
    /// [`planner`](Self::planner) for new code.
    pub fn kernel(mut self, policy: KernelPolicy) -> Self {
        self.spec.kernel = policy;
        self
    }

    /// Sets the worker-thread count for block dispatch on the blocked
    /// backend. When unset, the `BCONV_THREADS` environment variable is
    /// consulted, then the machine's available parallelism. Outputs are
    /// bitwise-identical at any thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Calibration inputs for the quantized backend's post-training range
    /// calibration (ignored by the float backends). When unset, the build
    /// synthesises [`DEFAULT_CALIBRATION_BATCHES`] seeded uniform batches
    /// over the network's input shape — deterministic, like weight binding,
    /// but real data gives real activation ranges.
    pub fn calibration(mut self, inputs: Vec<Tensor>) -> Self {
        self.calibration = Some(inputs);
        self
    }

    /// Compiles the session: lowers the descriptor to a [`Graph`], plans
    /// fusion groups, and builds the selected executor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when no network was given, the descriptor
    /// fails to lower, or planning fails.
    pub fn build(self) -> Result<Session, TensorError> {
        let net = self
            .network
            .ok_or_else(|| TensorError::invalid("SessionBuilder::network is required"))?;
        let mut spec = self.spec;
        if spec.cost_model.is_some() && spec.budget_elems.is_some() {
            return Err(TensorError::invalid(
                "SessionBuilder::cost_model and ::on_chip_budget are mutually exclusive; \
                 encode the budget in the model (e.g. ElementBudget::with_budget)",
            ));
        }
        let lower_opts =
            LowerOptions { seed: self.seed.unwrap_or(2018), relu_after_conv: self.relu_after_conv };
        let graph = Arc::new(Graph::lower(&net, &lower_opts)?);

        let mut requested_threads = self.threads;
        let mut provenance = PlanProvenance::Fresh;
        if spec.tuned {
            let topts = TuneOptions {
                seed: lower_opts.seed,
                relu_after_conv: self.relu_after_conv,
                cache_dir: spec.cache_dir.clone(),
                ..TuneOptions::default()
            };
            let cached = spec.cache_dir.as_ref().and_then(|d| {
                tune::load_cached_winner(d, &graph, lower_opts.seed, &topts.platform, topts.npe)
            });
            let (winner, key) = match cached {
                Some(hit) => hit,
                None => {
                    let report = tune::tune_lowered(&graph, &topts)?;
                    if let Some(dir) = spec.cache_dir.as_ref() {
                        tune::store_winner(dir, &report.key, &report.winner);
                    }
                    (report.winner, report.key)
                }
            };
            // The winner only fills knobs the caller left at their
            // defaults — an explicit pattern/model/kernel/thread choice
            // on the builder always wins over the tuner.
            if spec.pattern.is_none() {
                spec.pattern = Some(winner.pattern);
            }
            if spec.cost_model.is_none() && spec.budget_elems.is_none() {
                spec.cost_model =
                    Some(Arc::new(winner.cost_model(topts.platform.clone(), topts.npe)));
            }
            if spec.kernel == KernelPolicy::default() {
                spec.kernel = winner.kernel;
            }
            if requested_threads.is_none() && std::env::var(THREADS_ENV).is_err() {
                requested_threads = Some(winner.threads);
            }
            provenance = PlanProvenance::TuneSelected { key };
        }

        let pattern = spec.pattern.unwrap_or(BlockingPattern::hierarchical(2));
        let kernel = spec.kernel;
        let pad = spec.pad;
        let planner_opts = PlannerOptions {
            pattern,
            plan: spec.network_plan.clone(),
            pad_mode: pad,
            budget_elems: spec.budget_elems,
            kernel,
            cost_model: spec.cost_model.clone(),
        };
        let planner = Planner::new(planner_opts);
        let cache = spec.cache_dir.as_ref().map(|d| PlanCache::new(d.clone()));
        let key = cache.as_ref().map(|_| {
            PlanKey::for_build(
                &graph,
                lower_opts.seed,
                pattern,
                spec.network_plan.as_ref(),
                self.backend,
                planner.cost_model(),
                kernel,
                pad,
            )
        });
        let threads = resolve_threads(requested_threads)?;
        let (exec_plan, executor): (Arc<ExecPlan>, Arc<dyn Executor>) = match self.backend {
            Backend::Reference => {
                let plan = plan_or_load(
                    cache.as_ref(),
                    key.as_ref(),
                    &planner,
                    &graph,
                    pad,
                    kernel,
                    None,
                    provenance,
                )?;
                (plan, Arc::new(ReferenceExecutor::new(Arc::clone(&graph))))
            }
            Backend::Blocked => {
                let plan = plan_or_load(
                    cache.as_ref(),
                    key.as_ref(),
                    &planner,
                    &graph,
                    pad,
                    kernel,
                    None,
                    provenance,
                )?;
                let exec =
                    BlockedExecutor::with_threads(Arc::clone(&graph), Arc::clone(&plan), threads);
                (plan, Arc::new(exec))
            }
            Backend::Quantized { weight_bits, act_bits } => {
                // Calibration always runs — a cached plan pins the fusion
                // decisions, not the activation ranges.
                let inputs = match self.calibration {
                    Some(inputs) => inputs,
                    None => default_calibration(&graph, lower_opts.seed),
                };
                let qspec =
                    Arc::new(GraphQuantSpec::calibrate(&graph, &inputs, weight_bits, act_bits)?);
                let plan = plan_or_load(
                    cache.as_ref(),
                    key.as_ref(),
                    &planner,
                    &graph,
                    pad,
                    kernel,
                    Some(&qspec),
                    provenance,
                )?;
                let exec = QuantizedExecutor::new(
                    Arc::clone(&graph),
                    Arc::clone(&plan),
                    qspec,
                    threads,
                    kernel,
                )?;
                (plan, Arc::new(exec))
            }
        };
        Ok(Session { graph, exec_plan, backend: self.backend, threads, kernel, executor })
    }
}

/// A compiled, executable network.
///
/// The executor behind a session is immutable and `Send + Sync`: `run`
/// takes `&self`, so one session can serve concurrent callers directly,
/// or be turned into a worker-pool serving engine with
/// [`into_engine`](Session::into_engine).
pub struct Session {
    graph: Arc<Graph>,
    exec_plan: Arc<ExecPlan>,
    backend: Backend,
    threads: usize,
    kernel: KernelPolicy,
    executor: Arc<dyn Executor>,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Runs the network on `input` (NCHW, any batch size).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on input-shape mismatch or operator failure.
    pub fn run(&self, input: &Tensor) -> Result<RunReport, TensorError> {
        self.executor.run(input)
    }

    /// [`run`](Session::run) reusing caller-owned scratch buffers across
    /// requests: outputs are bitwise-identical, but a warm scratch makes
    /// steady-state execution allocation-free apart from the output
    /// tensor returned in the [`RunReport`]. One scratch serves one
    /// caller at a time — clone nothing, just keep it between calls.
    ///
    /// # Errors
    ///
    /// See [`run`](Session::run).
    pub fn run_with(
        &self,
        input: &Tensor,
        scratch: &mut ExecScratch,
    ) -> Result<RunReport, TensorError> {
        self.executor.run_scratch(input, scratch)
    }

    /// Consumes the session and spins up a [`ServeEngine`]: a pool of
    /// worker threads sharing this session's compiled executor, each with
    /// its own reusable [`ExecScratch`], behind a bounded request queue
    /// with ticketed (`submit`/`wait`) and batched (`run_batch`) entry
    /// points. See [`crate::serve`] for the serving semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when `config` is invalid
    /// (zero workers, queue depth, or batch size).
    pub fn into_engine(self, config: ServeConfig) -> Result<ServeEngine, TensorError> {
        ServeEngine::new(self, config)
    }

    /// Consumes the session and builds a [`Router`]: `replicas` serving
    /// engines, each configured with `config`, sharing this session's
    /// graph, plan, executor (and, for the quantized backend, its one
    /// calibration pass) through [`fork`](Session::fork). See
    /// [`crate::serve::router`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when `replicas` is zero or
    /// `config` is invalid.
    pub fn into_router(self, replicas: usize, config: ServeConfig) -> Result<Router, TensorError> {
        Router::new(self, replicas, config)
    }

    /// A second handle to the same compiled session: the fork shares the
    /// lowered graph, the fusion plan, and the executor (including conv
    /// weights — `Arc<Conv2d>` everywhere — and the quantized backend's
    /// calibrated spec) with `self` by reference count, so forking is a
    /// few atomic increments. Nothing is re-lowered, re-planned, or
    /// re-calibrated. This is how [`Router`] stamps out engine replicas
    /// from one build.
    pub fn fork(&self) -> Session {
        Session {
            graph: Arc::clone(&self.graph),
            exec_plan: Arc::clone(&self.exec_plan),
            backend: self.backend,
            threads: self.threads,
            kernel: self.kernel,
            executor: Arc::clone(&self.executor),
        }
    }

    /// The shared executor and graph, for the serving engine.
    pub(crate) fn shared_parts(&self) -> (Arc<Graph>, Arc<dyn Executor>) {
        (Arc::clone(&self.graph), Arc::clone(&self.executor))
    }

    /// Test hook: swap the compiled executor (e.g. for one that panics on
    /// a marker input) so serve-layer failure paths can be driven
    /// deterministically.
    #[cfg(test)]
    pub(crate) fn swap_executor(&mut self, executor: Arc<dyn Executor>) {
        self.executor = executor;
    }

    /// The lowered graph (weights bound).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The compiled fusion plan (what the blocked backend executes).
    pub fn plan(&self) -> &ExecPlan {
        &self.exec_plan
    }

    /// The shared plan handle itself — [`fork`](Session::fork)s and
    /// [`Router`] replicas hold clones of this `Arc`, so plan identity
    /// across handles is checkable with [`Arc::ptr_eq`].
    pub fn plan_handle(&self) -> &Arc<ExecPlan> {
        &self.exec_plan
    }

    /// The selected backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Worker threads the blocked backend dispatches blocks across (the
    /// reference backend ignores this).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The conv kernel policy the session was compiled under.
    pub fn kernel(&self) -> KernelPolicy {
        self.kernel
    }

    /// Resolved convolution kernel per conv node, in execution order, as
    /// `(layer name, kernel name)` pairs. Fused and spliced convolutions
    /// report the kernel their compiled chain carries; whole-map singles
    /// report what the executor dispatches — the session policy's
    /// resolution for quantized convs, the direct loop for float ones.
    pub fn conv_kernels(&self) -> Vec<(String, &'static str)> {
        let nodes = self.graph.nodes();
        let conv_names = |ids: &[crate::ir::NodeId]| -> Vec<String> {
            ids.iter()
                .filter(|id| matches!(nodes[**id].op, NodeOp::Conv { .. }))
                .map(|id| nodes[*id].name.clone())
                .collect()
        };
        let mut out = Vec::new();
        for seg in self.exec_plan.segments() {
            match seg {
                Segment::Fused { nodes: ids, chain, .. } => {
                    out.extend(
                        conv_names(ids).into_iter().zip(chain.convs().map(|b| b.kernel().name())),
                    );
                }
                Segment::Spliced { nodes: ids, pipeline, .. } => {
                    let kinds =
                        pipeline.groups().iter().flat_map(|g| g.convs()).map(|b| b.kernel().name());
                    out.extend(conv_names(ids).into_iter().zip(kinds));
                }
                Segment::Single(id) => {
                    if let NodeOp::Conv { conv, .. } = &nodes[*id].op {
                        let kind = match self.backend {
                            Backend::Quantized { .. } => self.kernel.resolve(conv),
                            _ => bconv_tensor::kernel::KernelKind::Direct,
                        };
                        out.push((nodes[*id].name.clone(), kind.name()));
                    }
                }
            }
        }
        out
    }

    /// Human-readable summary of what this session will execute. The
    /// reference backend ignores the fused plan, so its description says
    /// so rather than listing segments it won't run.
    pub fn describe(&self) -> String {
        match self.backend {
            Backend::Reference => format!(
                "{} on reference backend: dense layer-wise over {} nodes (fused plan unused)\n",
                self.graph.name(),
                self.graph.nodes().len(),
            ),
            Backend::Blocked => format!(
                "{} on blocked backend: {} segments, {} fusion groups, blocking ratio {:.0}%, \
                 {} worker thread(s)\n{}",
                self.graph.name(),
                self.exec_plan.segments().len(),
                self.exec_plan.fusion_groups(),
                self.exec_plan.blocking_ratio() * 100.0,
                self.threads,
                self.exec_plan.describe(&self.graph),
            ),
            Backend::Quantized { weight_bits, act_bits } => format!(
                "{} on quantized backend (w{weight_bits}a{act_bits}): {} segments, {} fusion \
                 groups, blocking ratio {:.0}%, {} worker thread(s)\n{}",
                self.graph.name(),
                self.exec_plan.segments().len(),
                self.exec_plan.fusion_groups(),
                self.exec_plan.blocking_ratio() * 100.0,
                self.threads,
                self.exec_plan.describe(&self.graph),
            ),
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("network", &self.graph.name())
            .field("backend", &self.backend)
            .field("segments", &self.exec_plan.segments().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_models::small::vgg16_small;

    #[test]
    fn builder_requires_a_network() {
        assert!(Session::builder().build().is_err());
    }

    #[test]
    fn default_backend_is_blocked() {
        let s = Session::builder().network(vgg16_small(32)).build().unwrap();
        assert_eq!(s.backend(), Backend::Blocked);
        assert!(s.plan().fusion_groups() > 0);
    }

    #[test]
    fn run_rejects_wrong_input_shape() {
        let s = Session::builder().network(vgg16_small(32)).build().unwrap();
        assert!(s.run(&Tensor::zeros([1, 3, 16, 16])).is_err());
    }

    #[test]
    fn describe_mentions_backend_and_groups() {
        let s = Session::builder().network(vgg16_small(32)).build().unwrap();
        let d = s.describe();
        assert!(d.contains("blocked"), "{d}");
        assert!(d.contains("fusion groups"), "{d}");
    }

    #[test]
    fn quantized_backend_builds_and_describes_bitwidths() {
        let s = Session::builder()
            .network(vgg16_small(32))
            .backend(Backend::Quantized { weight_bits: 8, act_bits: 8 })
            .build()
            .unwrap();
        assert_eq!(s.backend(), Backend::Quantized { weight_bits: 8, act_bits: 8 });
        assert!(s.plan().fusion_groups() > 0, "quantized plan keeps the fused structure");
        let d = s.describe();
        assert!(d.contains("quantized") && d.contains("w8a8"), "{d}");
        let report = s.run(&Tensor::filled([1, 3, 32, 32], 0.5)).unwrap();
        assert_eq!(report.output.shape().dims(), [1, 10, 1, 1]);
        assert_eq!(report.stats.bits_per_elem, 8);
    }

    #[test]
    fn quantized_backend_rejects_bad_bitwidths() {
        for (w, a) in [(1, 8), (8, 32), (0, 0)] {
            let r = Session::builder()
                .network(vgg16_small(32))
                .backend(Backend::Quantized { weight_bits: w, act_bits: a })
                .build();
            assert!(r.is_err(), "w{w}a{a} should be rejected");
        }
    }

    #[test]
    fn quantized_backend_accepts_explicit_calibration_data() {
        let cal: Vec<Tensor> = (0..2).map(|i| Tensor::filled([1, 3, 32, 32], i as f32)).collect();
        let s = Session::builder()
            .network(vgg16_small(32))
            .backend(Backend::Quantized { weight_bits: 8, act_bits: 8 })
            .calibration(cal)
            .build()
            .unwrap();
        assert!(s.run(&Tensor::filled([1, 3, 32, 32], 0.5)).is_ok());
        // An empty calibration set is an error, not a silent default.
        let r = Session::builder()
            .network(vgg16_small(32))
            .backend(Backend::Quantized { weight_bits: 8, act_bits: 8 })
            .calibration(Vec::new())
            .build();
        assert!(r.is_err());
    }
}
