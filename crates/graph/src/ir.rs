//! Typed executable graph IR lowered from [`bconv_models`] descriptors.
//!
//! A [`bconv_models::Network`] is *architectural*: shapes and wiring, no
//! weights. Lowering turns it into a [`Graph`] of executable [`Node`]s,
//! binding deterministic weights through [`bconv_tensor::init`] so that
//! every executor compiled from the same graph (and every session built
//! with the same seed) computes on identical parameters.

use std::sync::Arc;

use bconv_models::{ActShape, LayerKind, Network};
use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::init::{he_conv2d, he_linear, seeded_rng};
use bconv_tensor::linear::Linear;
use bconv_tensor::TensorError;

/// Index of a node within its [`Graph`].
pub type NodeId = usize;

/// Where a node reads its (primary) input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// The graph input tensor.
    Input,
    /// The output of another node.
    Node(NodeId),
}

/// An executable operator with bound parameters.
#[derive(Debug, Clone)]
pub enum NodeOp {
    /// 2-D convolution with bound weights. `conv_ordinal` is the index of
    /// this convolution among the source network's conv layers — the index
    /// a [`bconv_core::plan::NetworkPlan`] decision list is keyed by.
    Conv {
        /// The dense convolution (weights bound at lowering). Shared: the
        /// planner hands the same allocation to every `FusedChain` stage
        /// built from this node, so blocked-conv weights exist once per
        /// session.
        conv: Arc<Conv2d>,
        /// Conv-layer ordinal in the source network.
        conv_ordinal: usize,
    },
    /// Element-wise ReLU.
    Relu,
    /// Max pooling (window `k`, stride `s`, symmetric padding `p`).
    MaxPool {
        /// Window.
        k: usize,
        /// Stride.
        s: usize,
        /// Padding (implemented as `-inf` border pixels).
        p: usize,
    },
    /// Global average pooling to `1 × 1`.
    GlobalAvgPool,
    /// Fully-connected layer with bound weights.
    Fc(Linear),
    /// Element-wise sum with another node's output (residual join).
    Add {
        /// The second summand.
        other: NodeRef,
    },
    /// Nearest-neighbour upsampling by an integer factor (lowered from
    /// `ResizeLike`).
    Upsample {
        /// Integer scale factor.
        factor: usize,
    },
}

impl NodeOp {
    /// Short operator mnemonic for plan/debug output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Self::Conv { .. } => "conv",
            Self::Relu => "relu",
            Self::MaxPool { .. } => "maxpool",
            Self::GlobalAvgPool => "gap",
            Self::Fc(_) => "fc",
            Self::Add { .. } => "add",
            Self::Upsample { .. } => "upsample",
        }
    }
}

/// One executable graph node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Name inherited from the source layer (synthesised for inserted ops).
    pub name: String,
    /// The operator.
    pub op: NodeOp,
    /// Primary input.
    pub input: NodeRef,
    /// Shape of the primary input.
    pub in_shape: ActShape,
    /// Output shape.
    pub out_shape: ActShape,
}

/// Options controlling lowering.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Seed for deterministic weight binding; two graphs lowered from the
    /// same network with the same seed carry identical weights.
    pub seed: u64,
    /// Insert a ReLU node after every convolution (descriptors carry no
    /// explicit activations). References to a conv layer then resolve to
    /// its post-activation output.
    pub relu_after_conv: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        Self { seed: 2018, relu_after_conv: false }
    }
}

/// Per-layer RNG seed derivation: a full avalanche mix of
/// `(seed, salt, index)`. The mix matters — seeding consecutive layers
/// with affine offsets of the generator's own increment would put their
/// streams on the same orbit (layer *i+1*'s draws equal layer *i*'s
/// shifted by one), silently correlating "independent" initialisations.
fn layer_seed(seed: u64, salt: u64, idx: usize) -> u64 {
    let mut z = seed ^ salt.rotate_left(32) ^ (idx as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 31)).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    z = (z ^ (z >> 27)).wrapping_mul(0x9E6C_63D0_176C_60DD);
    z ^ (z >> 33)
}

/// A typed, weight-bound, executable graph in topological order.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    input: ActShape,
    nodes: Vec<Node>,
    /// Number of graph nodes reading each node's output.
    consumers: Vec<usize>,
}

impl Graph {
    /// Lowers a network descriptor into an executable graph.
    ///
    /// Weights are bound deterministically: conv layer `i` draws from
    /// `seeded_rng(seed + i·φ)` (He initialisation), so weight identity
    /// depends only on `(network topology, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when the descriptor is inconsistent (via
    /// [`Network::trace`]) or uses a construct with no executable lowering
    /// (non-integer `ResizeLike` factors).
    pub fn lower(net: &Network, opts: &LowerOptions) -> Result<Self, TensorError> {
        let infos = net.trace()?;
        let mut nodes: Vec<Node> = Vec::with_capacity(net.layers.len());
        // Output node of each source layer (the ReLU when one is inserted).
        let mut layer_out: Vec<NodeId> = Vec::with_capacity(net.layers.len());
        let mut conv_ordinal = 0usize;

        for (idx, layer) in net.layers.iter().enumerate() {
            let resolve = |f: bconv_models::layer::From| -> NodeRef {
                match f {
                    bconv_models::layer::From::Input => NodeRef::Input,
                    bconv_models::layer::From::Prev => {
                        if idx == 0 {
                            NodeRef::Input
                        } else {
                            NodeRef::Node(layer_out[idx - 1])
                        }
                    }
                    bconv_models::layer::From::Layer(i) => NodeRef::Node(layer_out[i]),
                }
            };
            let input = resolve(layer.from);
            let info = &infos[idx];
            let op = match layer.kind {
                LayerKind::Conv { k, s, p, c_in, c_out, groups } => {
                    // Weight stream depends only on (seed, conv ordinal).
                    let mut rng = seeded_rng(layer_seed(opts.seed, 0x434F_4E56, conv_ordinal));
                    let conv = he_conv2d(c_in, c_out, ConvGeom::new(k, s, p), groups, &mut rng)?;
                    let op = NodeOp::Conv { conv: Arc::new(conv), conv_ordinal };
                    conv_ordinal += 1;
                    op
                }
                LayerKind::MaxPool { k, s, p } => NodeOp::MaxPool { k, s, p },
                LayerKind::GlobalAvgPool => NodeOp::GlobalAvgPool,
                LayerKind::Fc { in_f, out_f } => {
                    let mut rng = seeded_rng(layer_seed(opts.seed, 0x4643_4C59, idx));
                    NodeOp::Fc(he_linear(in_f, out_f, &mut rng)?)
                }
                LayerKind::Add { other } => NodeOp::Add { other: resolve(other) },
                LayerKind::ResizeLike { like } => {
                    let target = infos[like].out_shape;
                    let src = info.in_shape;
                    if src.h == 0
                        || src.w == 0
                        || target.h % src.h != 0
                        || target.w % src.w != 0
                        || target.h / src.h != target.w / src.w
                    {
                        return Err(TensorError::invalid(format!(
                            "{}: ResizeLike {}x{} -> {}x{} is not an integer upsample",
                            layer.name, src.h, src.w, target.h, target.w
                        )));
                    }
                    NodeOp::Upsample { factor: target.h / src.h }
                }
            };
            nodes.push(Node {
                name: layer.name.clone(),
                op,
                input,
                in_shape: info.in_shape,
                out_shape: info.out_shape,
            });
            let mut out_node = nodes.len() - 1;
            if opts.relu_after_conv && matches!(layer.kind, LayerKind::Conv { .. }) {
                nodes.push(Node {
                    name: format!("{}-relu", layer.name),
                    op: NodeOp::Relu,
                    input: NodeRef::Node(out_node),
                    in_shape: info.out_shape,
                    out_shape: info.out_shape,
                });
                out_node = nodes.len() - 1;
            }
            layer_out.push(out_node);
        }

        let mut consumers = vec![0usize; nodes.len()];
        for node in &nodes {
            if let NodeRef::Node(i) = node.input {
                consumers[i] += 1;
            }
            if let NodeOp::Add { other: NodeRef::Node(i) } = node.op {
                consumers[i] += 1;
            }
        }

        Ok(Self { name: net.name.clone(), input: net.input, nodes, consumers })
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Graph input shape (per batch element).
    pub fn input_shape(&self) -> ActShape {
        self.input
    }

    /// Nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of graph nodes consuming node `id`'s output.
    pub fn consumer_count(&self, id: NodeId) -> usize {
        self.consumers[id]
    }

    /// Id of the final (output) node.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph (lowering rejects empty networks upstream).
    pub fn output_id(&self) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty graph");
        self.nodes.len() - 1
    }

    /// Number of convolution nodes.
    pub fn conv_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.op, NodeOp::Conv { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_models::small::vgg16_small;
    use bconv_models::vdsr::vdsr_with_depth;

    #[test]
    fn lowering_binds_deterministic_weights() {
        let net = vgg16_small(32);
        let a = Graph::lower(&net, &LowerOptions::default()).unwrap();
        let b = Graph::lower(&net, &LowerOptions::default()).unwrap();
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            if let (NodeOp::Conv { conv: ca, .. }, NodeOp::Conv { conv: cb, .. }) = (&na.op, &nb.op)
            {
                assert_eq!(ca.weight().data(), cb.weight().data());
            }
        }
        let c = Graph::lower(&net, &LowerOptions { seed: 999, ..LowerOptions::default() }).unwrap();
        let wa = a.nodes().iter().find_map(|n| match &n.op {
            NodeOp::Conv { conv, .. } => Some(conv.weight().data().to_vec()),
            _ => None,
        });
        let wc = c.nodes().iter().find_map(|n| match &n.op {
            NodeOp::Conv { conv, .. } => Some(conv.weight().data().to_vec()),
            _ => None,
        });
        assert_ne!(wa, wc, "different seeds must bind different weights");
    }

    #[test]
    fn relu_insertion_rewires_layer_references() {
        // VDSR's residual add reads the *input*, and its `From::Layer`
        // reference to the last conv must point at the post-ReLU node.
        let net = vdsr_with_depth(8, 8, 3, 4);
        let g =
            Graph::lower(&net, &LowerOptions { relu_after_conv: true, ..LowerOptions::default() })
                .unwrap();
        let add = g.nodes().iter().find(|n| matches!(n.op, NodeOp::Add { .. })).unwrap();
        let NodeRef::Node(src) = add.input else {
            panic!("add should read a node");
        };
        assert!(matches!(g.nodes()[src].op, NodeOp::Relu));
    }

    #[test]
    fn consumer_counts_track_residual_fanout() {
        let net = bconv_models::small::resnet18_small(32);
        let g = Graph::lower(&net, &LowerOptions::default()).unwrap();
        // At least one node (a residual source) must have two consumers.
        let max_consumers = (0..g.nodes().len()).map(|i| g.consumer_count(i)).max().unwrap();
        assert!(max_consumers >= 2, "resnet graphs fan out at residuals");
    }

    #[test]
    fn layer_seeds_are_not_on_one_rng_orbit() {
        // SplitMix64 advances its state by a fixed gamma per draw, so two
        // seeds differing by exactly gamma yield shifted copies of the
        // same stream. Per-layer seeds must never be gamma-affine.
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        for base in [0u64, 2018, u64::MAX / 2] {
            for i in 0..16usize {
                let a = layer_seed(base, 0x434F_4E56, i);
                let b = layer_seed(base, 0x434F_4E56, i + 1);
                assert_ne!(b.wrapping_sub(a), GAMMA, "seed {base}, layer {i}");
                assert_ne!(a.wrapping_sub(b), GAMMA, "seed {base}, layer {i}");
            }
        }
    }

    #[test]
    fn conv_ordinals_are_dense_and_ordered() {
        let net = vgg16_small(32);
        let g = Graph::lower(&net, &LowerOptions::default()).unwrap();
        let ordinals: Vec<usize> = g
            .nodes()
            .iter()
            .filter_map(|n| match n.op {
                NodeOp::Conv { conv_ordinal, .. } => Some(conv_ordinal),
                _ => None,
            })
            .collect();
        assert_eq!(ordinals, (0..ordinals.len()).collect::<Vec<_>>());
    }
}
