//! The planner: partitions a [`Graph`] into fusion groups under a
//! network-level blocking plan and a pluggable fusion [`CostModel`].
//!
//! This is where [`bconv_core::plan::NetworkPlan`] decisions become actual
//! execution: each conv the plan marks `Blocked` runs as a block
//! convolution inside a [`FusedChain`] fusion group; `Normal` convs (the
//! information-fusion points of the VDSR blocking-depth scheme) and every
//! op the fused dataflow cannot express (strided conv, padded or
//! non-matching pooling, residual `Add`, FC, GAP, upsampling) become
//! whole-map segments with an off-chip boundary on either side.
//!
//! Group *depth* is the cost model's call: the default [`ElementBudget`]
//! cuts on a flat element budget, while [`crate::cost::AccelCost`] asks
//! the `bconv-accel` cycle/memory model and additionally **splices**
//! adjacent compatible groups into a [`FusedPipeline`] (Figure 10's
//! fixed-blocking splice), keeping the group-boundary map in the on-chip
//! extra buffer instead of a DRAM round trip. Every decision is recorded
//! in the plan's [`PlanReport`], so benches and tests can assert the
//! planner's choices, not just its outputs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::fusion::{FusedChain, FusedPipeline, PlannedOp};
use bconv_core::plan::{LayerBlocking, NetworkPlan};
use bconv_core::BlockConv2d;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::pad::PadMode;
use bconv_tensor::TensorError;

use crate::cost::{CostModel, ElementBudget, SpliceCost, StageCost};
use crate::ir::{Graph, NodeId, NodeOp, NodeRef};
use crate::quantize::GraphQuantSpec;

/// Process-wide count of full planner walks ([`Planner::plan`] /
/// [`Planner::plan_quantized`]). A [`crate::cache::PlanCache`] hit rebuilds
/// the plan from its serialized form without a walk, so tests assert this
/// counter stays flat across cache-loaded builds — the "skips planning
/// entirely" guarantee, counted rather than trusted.
static PLANNER_INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of full planner walks this process has run. Monotone; a
/// [`crate::cache::PlanCache`] hit leaves it untouched. Mirrors
/// [`crate::quantize::calibration_passes`].
pub fn planner_invocations() -> u64 {
    PLANNER_INVOCATIONS.load(Ordering::Relaxed)
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Blocking pattern applied to blocked convolutions.
    pub pattern: BlockingPattern,
    /// Per-conv-layer blocking decisions. `None` derives the paper's
    /// "block everything splittable" resolution rule from the graph.
    pub plan: Option<NetworkPlan>,
    /// Block-padding mode (paper §II-F evaluates zero/replicate/reflect).
    pub pad_mode: PadMode,
    /// On-chip working-buffer budget in **elements** for the default
    /// [`ElementBudget`] cost model: a fusion group is cut when extending
    /// it would push the per-block ping-pong buffer pair past the budget.
    /// `None` fuses maximal chains. Ignored when [`Self::cost_model`] is
    /// set. Like [`bconv_core::fusion::MemStats`], this models the
    /// accelerator's feature-map buffers; host-side kernel temporaries
    /// (e.g. the im2col patch matrix) are CPU execution details outside
    /// the budget.
    pub budget_elems: Option<usize>,
    /// Per-layer conv kernel selection for blocked convolutions (direct
    /// loop vs im2col+GEMM; see [`bconv_tensor::kernel`]).
    pub kernel: KernelPolicy,
    /// Fusion cost model deciding group cuts and splices. `None` uses
    /// [`ElementBudget`] over [`Self::budget_elems`] — the planner's
    /// historical behaviour, bitwise.
    pub cost_model: Option<Arc<dyn CostModel>>,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        Self {
            pattern: BlockingPattern::hierarchical(2),
            plan: None,
            pad_mode: PadMode::Zero,
            budget_elems: None,
            kernel: KernelPolicy::default(),
            cost_model: None,
        }
    }
}

/// One executable unit of the compiled plan.
#[derive(Debug, Clone)]
pub enum Segment {
    /// A fusion group executed block-by-block; only its input and output
    /// cross the off-chip boundary.
    Fused {
        /// Node ids covered by the group, in execution order.
        nodes: Vec<NodeId>,
        /// The planned chain.
        chain: FusedChain,
        /// What the group reads.
        input: NodeRef,
    },
    /// Adjacent fusion groups spliced into one pipeline (Figure 10's
    /// fixed-blocking splice): group-boundary maps stay in the on-chip
    /// extra buffer, so only the pipeline's input and final output cross
    /// the off-chip boundary. Numerically identical to running the groups
    /// as separate [`Segment::Fused`] segments — the splice is a schedule
    /// change only.
    Spliced {
        /// Node ids covered by all groups, in execution order.
        nodes: Vec<NodeId>,
        /// The spliced groups.
        pipeline: FusedPipeline,
        /// What the first group reads.
        input: NodeRef,
    },
    /// A single node executed on whole feature maps.
    Single(NodeId),
}

impl Segment {
    /// Id of the node whose output this segment produces. Fused segments
    /// always cover at least one node; an empty list would be a
    /// construction bug and falls back to node 0 rather than panicking.
    pub fn output_node(&self) -> NodeId {
        match self {
            Self::Fused { nodes, .. } | Self::Spliced { nodes, .. } => {
                nodes.last().copied().unwrap_or_default()
            }
            Self::Single(id) => *id,
        }
    }
}

/// One splice the planner took: the fused-group boundary whose feature map
/// now stays on chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceReport {
    /// Last node of the upstream group.
    pub from_node: NodeId,
    /// First node of the downstream group.
    pub to_node: NodeId,
    /// Off-chip elements the splice saves per batch element (the boundary
    /// map's write + read-back round trip).
    pub saved_offchip_elems: usize,
}

/// Where a compiled plan came from. Recorded in [`PlanReport`] so callers
/// (and `BENCH_serve.json` rows) can tell a freshly planned session from
/// one that loaded a pinned plan or a tuned winner.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PlanProvenance {
    /// The planner walked the graph in this build.
    #[default]
    Fresh,
    /// Deserialized from a [`crate::cache::PlanCache`] entry; no planner
    /// walk ran.
    CacheLoaded {
        /// Canonical form of the [`crate::cache::PlanKey`] that hit.
        key: String,
    },
    /// Planned under a [`mod@crate::tune`] winner's configuration (the walk
    /// ran, but its knobs came from the autotuner, not the caller).
    TuneSelected {
        /// Canonical form of the per-host tune key the winner was cached
        /// under.
        key: String,
    },
}

impl std::fmt::Display for PlanProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fresh => write!(f, "fresh"),
            Self::CacheLoaded { key } => write!(f, "cache-loaded:{key}"),
            Self::TuneSelected { key } => write!(f, "tune-selected:{key}"),
        }
    }
}

impl PlanProvenance {
    /// Short label without the key ("fresh" / "cache-loaded" /
    /// "tune-selected") for bench rows and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Fresh => "fresh",
            Self::CacheLoaded { .. } => "cache-loaded",
            Self::TuneSelected { .. } => "tune-selected",
        }
    }
}

/// The planner's decisions, segment structure aside: which cost model
/// ruled, where it cut, and which boundaries it spliced. Benches and
/// tests assert against this instead of reverse-engineering segments.
#[derive(Debug, Clone, Default)]
pub struct PlanReport {
    /// Name of the cost model that made the decisions.
    pub cost_model: String,
    /// Nodes the cost model refused to fuse into the running group (a
    /// group cut fell right before each). Structural cuts — fan-out,
    /// non-fusable ops, `Normal` plan entries — are not listed; they are
    /// not the model's choice.
    pub cost_cuts: Vec<NodeId>,
    /// Splices taken, in plan order.
    pub splices: Vec<SpliceReport>,
    /// How the plan reached this session: fresh walk, cache hit, or tuned
    /// configuration.
    pub provenance: PlanProvenance,
}

impl PlanReport {
    /// Total off-chip elements saved per batch element by the splices.
    pub fn spliced_offchip_elems_saved(&self) -> usize {
        self.splices.iter().map(|s| s.saved_offchip_elems).sum()
    }
}

/// A compiled execution plan: an ordered segment list plus the planner's
/// decision report.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    segments: Vec<Segment>,
    pattern: BlockingPattern,
    blocked_convs: usize,
    total_convs: usize,
    act_bits: Option<u8>,
    report: PlanReport,
}

impl ExecPlan {
    /// Reassembles a plan from parts — the deserialization path of
    /// [`crate::cache::PlanCache`], which rebuilds segments by re-solving
    /// block plans from stored grids rather than re-running the planner
    /// walk.
    pub(crate) fn from_parts(
        segments: Vec<Segment>,
        pattern: BlockingPattern,
        blocked_convs: usize,
        total_convs: usize,
        act_bits: Option<u8>,
        report: PlanReport,
    ) -> Self {
        Self { segments, pattern, blocked_convs, total_convs, act_bits, report }
    }

    /// Mutable decision report, for the build path to stamp provenance.
    pub(crate) fn report_mut(&mut self) -> &mut PlanReport {
        &mut self.report
    }

    /// Blocking pattern the plan was compiled under.
    pub fn pattern(&self) -> BlockingPattern {
        self.pattern
    }

    /// Total convolutions in the source graph (blocked or not).
    pub fn total_convs(&self) -> usize {
        self.total_convs
    }

    /// Activation bitwidth the plan was compiled for: `Some` for a
    /// [`Planner::plan_quantized`] plan (whose fused chains carry integer
    /// stages and whose whole-map convs expect quantized dispatch), `None`
    /// for a float plan. Executors must match — see
    /// [`crate::exec::BlockedExecutor`].
    pub fn act_bits(&self) -> Option<u8> {
        self.act_bits
    }

    /// Ordered segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The planner's decision report (cost model, cuts, splices).
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Number of fusion groups (spliced pipelines count each constituent
    /// group).
    pub fn fusion_groups(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Fused { .. } => 1,
                Segment::Spliced { pipeline, .. } => pipeline.groups().len(),
                Segment::Single(_) => 0,
            })
            .sum()
    }

    /// Number of convolutions executing as block convolutions.
    pub fn blocked_convs(&self) -> usize {
        self.blocked_convs
    }

    /// Fraction of convolutions that are blocked (Table I's metric, now
    /// measured on the *executable* plan).
    pub fn blocking_ratio(&self) -> f64 {
        if self.total_convs == 0 {
            return 0.0;
        }
        self.blocked_convs as f64 / self.total_convs as f64
    }

    /// Human-readable plan summary, one line per segment.
    pub fn describe(&self, graph: &Graph) -> String {
        let name = |n: NodeId| graph.nodes()[n].name.as_str();
        let mut out = String::new();
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                Segment::Fused { nodes, chain, .. } => {
                    let names: Vec<&str> = nodes.iter().map(|&n| name(n)).collect();
                    out.push_str(&format!(
                        "segment {i}: fused [{}] under {} ({} blocks)\n",
                        names.join(" -> "),
                        self.pattern,
                        chain.in_grid().num_blocks(),
                    ));
                }
                Segment::Spliced { nodes, pipeline, .. } => {
                    // Each chain stage covers exactly one node, so the flat
                    // node list splits back into groups by chain length.
                    let mut cursor = 0usize;
                    let groups: Vec<String> = pipeline
                        .groups()
                        .iter()
                        .map(|g| {
                            let span = &nodes[cursor..cursor + g.len()];
                            cursor += g.len();
                            let names: Vec<&str> = span.iter().map(|&n| name(n)).collect();
                            format!("[{}]", names.join(" -> "))
                        })
                        .collect();
                    out.push_str(&format!(
                        "segment {i}: spliced {} under {} ({} groups)\n",
                        groups.join(" => "),
                        self.pattern,
                        pipeline.groups().len(),
                    ));
                }
                Segment::Single(id) => {
                    let node = &graph.nodes()[*id];
                    out.push_str(&format!(
                        "segment {i}: {} ({}, whole-map)\n",
                        node.name,
                        node.op.mnemonic(),
                    ));
                }
            }
        }
        out
    }
}

/// Compiles [`Graph`]s into [`ExecPlan`]s.
#[derive(Debug, Clone)]
pub struct Planner {
    opts: PlannerOptions,
    model: Arc<dyn CostModel>,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new(PlannerOptions::default())
    }
}

/// In-progress fusion group during the greedy walk. `ops` holds the
/// already-solved [`BlockConv2d`] plans of the trial walk, so finalizing
/// the chain never re-solves a padding schedule; `costs` mirrors the
/// conv/pool stages in [`StageCost`] units for the cost model.
struct OpenChain {
    nodes: Vec<NodeId>,
    /// The id of the most recently joined node (always `nodes.last()`,
    /// tracked separately so the walk never unwraps an empty list).
    last_node: NodeId,
    ops: Vec<PlannedOp>,
    costs: Vec<StageCost>,
    input: NodeRef,
    start_grid: BlockGrid,
    cur_grid: BlockGrid,
    cur_channels: usize,
    has_blocked_conv: bool,
}

/// A walked segment paired with the stage costs of its fused group (used
/// by the splice pass; `None` for whole-map segments) and, for spliced
/// pipelines, the boundary-map sizes at its group joints (elements).
struct WalkedSegment {
    seg: Segment,
    costs: Option<Vec<StageCost>>,
    boundaries: Vec<usize>,
}

impl Planner {
    /// Planner with the given options. The effective cost model is
    /// [`PlannerOptions::cost_model`] when set, otherwise [`ElementBudget`]
    /// over [`PlannerOptions::budget_elems`].
    pub fn new(opts: PlannerOptions) -> Self {
        let model = opts
            .cost_model
            .clone()
            .unwrap_or_else(|| Arc::new(ElementBudget::from_option(opts.budget_elems)));
        Self { opts, model }
    }

    /// The effective fusion cost model.
    pub fn cost_model(&self) -> &dyn CostModel {
        self.model.as_ref()
    }

    /// Per-conv-ordinal decisions: the explicit plan when given, otherwise
    /// the resolution rule over the graph's conv nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when an explicit plan does
    /// not cover exactly the graph's conv layers — silently defaulting the
    /// tail would execute a different plan than the caller asked for.
    fn decisions(&self, graph: &Graph) -> Result<Vec<LayerBlocking>, TensorError> {
        if let Some(plan) = &self.opts.plan {
            if plan.len() != graph.conv_count() {
                return Err(TensorError::invalid(format!(
                    "NetworkPlan covers {} conv layers but {} has {}",
                    plan.len(),
                    graph.name(),
                    graph.conv_count()
                )));
            }
            return Ok(plan.per_layer().to_vec());
        }
        let spatial: Vec<bconv_core::analysis::ConvLayerSpatial> = graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, NodeOp::Conv { .. }))
            .map(|n| bconv_core::analysis::ConvLayerSpatial { h: n.in_shape.h, w: n.in_shape.w })
            .collect();
        Ok(NetworkPlan::by_resolution(&spatial, self.opts.pattern).per_layer().to_vec())
    }

    /// Compiles the graph into a segment plan.
    ///
    /// The walk is greedy: a fusion group opens at the first blocked,
    /// fusable conv and extends through consecutive single-consumer
    /// conv/relu/pool nodes while (a) the running [`BlockGrid`] stays
    /// valid (Equation 2 solvable, pooling aligned) and (b) the cost model
    /// accepts the extension. Anything else cuts the group — an off-chip
    /// boundary, exactly as the paper's normal-convolution fusion points
    /// do. A second pass then offers adjacent compatible groups to the
    /// cost model for splicing into [`FusedPipeline`] segments.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when an explicit [`NetworkPlan`] does not
    /// cover exactly the graph's conv layers, or if a planned chain fails
    /// to re-validate (cannot happen for grids the trial walk accepted).
    pub fn plan(&self, graph: &Graph) -> Result<ExecPlan, TensorError> {
        self.plan_inner(graph, None)
    }

    /// [`plan`](Self::plan) with every fused convolution compiled to the
    /// quantized integer path: the fusion-group walk (and therefore the
    /// segment structure) is identical to the float plan, but chains are
    /// built from the trial walk's solved block plans via
    /// [`FusedChain::from_planned_quantized`] with `spec`'s weight
    /// bitwidth and the calibrated per-node activation ranges. Splices are
    /// taken under the same rules — every group of a quantized plan shares
    /// the spec's activation bitwidth, so [`FusedPipeline`]'s
    /// single-precision rule always permits them.
    ///
    /// # Errors
    ///
    /// As [`plan`](Self::plan), plus [`TensorError::InvalidParameter`] when
    /// a fused conv node has no calibrated activation range in `spec`.
    pub fn plan_quantized(
        &self,
        graph: &Graph,
        spec: &GraphQuantSpec,
    ) -> Result<ExecPlan, TensorError> {
        self.plan_inner(graph, Some(spec))
    }

    fn plan_inner(
        &self,
        graph: &Graph,
        quant: Option<&GraphQuantSpec>,
    ) -> Result<ExecPlan, TensorError> {
        PLANNER_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
        let decisions = self.decisions(graph)?;
        let bits = quant.map_or(32, |spec| spec.act_bits);
        let mut report =
            PlanReport { cost_model: self.model.name().to_string(), ..PlanReport::default() };
        let mut walked: Vec<WalkedSegment> = Vec::new();
        let mut open: Option<OpenChain> = None;
        let mut blocked_convs = 0usize;

        for (id, node) in graph.nodes().iter().enumerate() {
            // Can this node extend the currently open chain?
            if let Some(mut chain) = open.take() {
                let prev = chain.last_node;
                let continues =
                    node.input == NodeRef::Node(prev) && graph.consumer_count(prev) == 1;
                if continues {
                    match self.try_extend(&mut chain, id, node, &decisions, bits) {
                        Extend::Extended => {
                            if let NodeOp::Conv { .. } = node.op {
                                blocked_convs += 1;
                            }
                            open = Some(chain);
                            continue;
                        }
                        Extend::CutByModel => report.cost_cuts.push(id),
                        Extend::Cut => {}
                    }
                }
                // The node did not join: close the group.
                walked.push(Self::finalize(chain, graph, quant)?);
            }

            // Try to open a new group at this node; otherwise run it whole.
            if let Some(chain) = self.try_open(id, node, &decisions, bits)? {
                blocked_convs += 1;
                open = Some(chain);
            } else {
                walked.push(WalkedSegment {
                    seg: Segment::Single(id),
                    costs: None,
                    boundaries: Vec::new(),
                });
            }
        }
        if let Some(chain) = open.take() {
            walked.push(Self::finalize(chain, graph, quant)?);
        }

        let segments = self.splice_pass(graph, walked, bits, &mut report)?;

        Ok(ExecPlan {
            segments,
            pattern: self.opts.pattern,
            blocked_convs,
            total_convs: graph.conv_count(),
            act_bits: quant.map(|spec| spec.act_bits),
            report,
        })
    }

    /// Offers every adjacent pair of fused groups to the cost model for
    /// splicing: the downstream group must read exactly the upstream
    /// group's (single-consumer) output, and the pipeline's precision and
    /// boundary-map validation must hold — then the boundary map stays on
    /// chip. A pipeline keeps growing while the model keeps accepting, so
    /// three or more groups can splice into one segment.
    fn splice_pass(
        &self,
        graph: &Graph,
        walked: Vec<WalkedSegment>,
        bits: u8,
        report: &mut PlanReport,
    ) -> Result<Vec<Segment>, TensorError> {
        /// Output grid of a fused/spliced segment's last group.
        fn last_chain(seg: &Segment) -> Option<&FusedChain> {
            match seg {
                Segment::Fused { chain, .. } => Some(chain),
                Segment::Spliced { pipeline, .. } => pipeline.groups().last(),
                Segment::Single(_) => None,
            }
        }
        let mut out: Vec<WalkedSegment> = Vec::with_capacity(walked.len());
        for cur in walked {
            let splice = match (out.last(), &cur) {
                (
                    Some(prev @ WalkedSegment { costs: Some(prev_costs), .. }),
                    WalkedSegment {
                        seg: Segment::Fused { input, nodes, chain },
                        costs: Some(cur_costs),
                        ..
                    },
                ) => last_chain(&prev.seg).and_then(|prev_chain| {
                    let prev_out = prev.seg.output_node();
                    // The downstream group must read exactly the upstream
                    // group's output, the boundary must have no other
                    // consumer, and the pipeline must be expressible (maps
                    // line up, one precision throughout) — the same
                    // conditions FusedPipeline::new validates.
                    let compatible = *input == NodeRef::Node(prev_out)
                        && graph.consumer_count(prev_out) == 1
                        && prev_chain.out_grid().h() == chain.in_grid().h()
                        && prev_chain.out_grid().w() == chain.in_grid().w()
                        && prev_chain.act_bits() == chain.act_bits();
                    let boundary_elems = {
                        let s = graph.nodes()[prev_out].out_shape;
                        s.c * s.h * s.w
                    };
                    // Peak extra-buffer occupancy of the prospective
                    // pipeline: while a middle group runs, its source and
                    // destination boundary maps are both resident, so the
                    // peak is the largest adjacent-boundary pair.
                    let peak_extra_elems =
                        prev.boundaries.last().map_or(boundary_elems, |&b| b + boundary_elems).max(
                            prev.boundaries.windows(2).map(|w| w[0] + w[1]).max().unwrap_or(0),
                        );
                    let boundary =
                        SpliceCost { boundary_elems, peak_extra_elems, bits_per_elem: bits };
                    (compatible && self.model.allow_splice(prev_costs, cur_costs, &boundary))
                        .then_some((prev_out, nodes[0], boundary.boundary_elems))
                }),
                _ => None,
            };
            let Some((from_node, to_node, boundary_elems)) = splice else {
                out.push(cur);
                continue;
            };
            // A splice decision implies `out.last()` matched above, so the
            // pop yields that same upstream segment; an empty stack would
            // be a walk bug and degrades to the no-splice path.
            let Some(prev) = out.pop() else {
                out.push(cur);
                continue;
            };
            let (mut groups, mut nodes_all, p_input) = match prev.seg {
                Segment::Fused { nodes, chain, input } => (vec![chain], nodes, input),
                Segment::Spliced { nodes, pipeline, input } => {
                    (pipeline.into_groups(), nodes, input)
                }
                Segment::Single(_) => unreachable!("spliceable segments are fused"),
            };
            let WalkedSegment {
                seg: Segment::Fused { nodes, chain, .. },
                costs: Some(cur_costs),
                ..
            } = cur
            else {
                unreachable!("splice candidates are fused segments");
            };
            groups.push(chain);
            // Compatibility was pre-checked above, so construction cannot
            // fail; propagate rather than panic if it ever does.
            let pipeline = FusedPipeline::new(groups)?;
            report.splices.push(SpliceReport {
                from_node,
                to_node,
                saved_offchip_elems: 2 * boundary_elems,
            });
            nodes_all.extend(nodes);
            // Splice candidates matched `costs: Some(..)` above; an absent
            // cost vector degrades to empty rather than panicking.
            let mut costs = prev.costs.unwrap_or_default();
            costs.extend(cur_costs);
            let mut boundaries = prev.boundaries;
            boundaries.push(boundary_elems);
            out.push(WalkedSegment {
                seg: Segment::Spliced { nodes: nodes_all, pipeline, input: p_input },
                costs: Some(costs),
                boundaries,
            });
        }
        Ok(out.into_iter().map(|w| w.seg).collect())
    }

    /// Opens a fusion group if `node` is a blocked, fusable convolution.
    fn try_open(
        &self,
        id: NodeId,
        node: &crate::ir::Node,
        decisions: &[LayerBlocking],
        bits: u8,
    ) -> Result<Option<OpenChain>, TensorError> {
        let NodeOp::Conv { conv, conv_ordinal } = &node.op else {
            return Ok(None);
        };
        if conv.geom().stride != 1 {
            return Ok(None); // strided convs run whole-map (paper §II-F
                             // rewrites them to conv + pool instead)
        }
        let Some(LayerBlocking::Blocked(pattern)) = decisions.get(*conv_ordinal).copied() else {
            return Ok(None);
        };
        if pattern != self.opts.pattern {
            // Mixed-pattern plans: only the session pattern fuses; other
            // patterns fall back to whole-map execution.
            return Ok(None);
        }
        let Ok(grid) = BlockGrid::from_pattern(node.in_shape.h, node.in_shape.w, pattern) else {
            return Ok(None); // resolution too small to split
        };
        // Weights are shared, not cloned: the chain stage and the graph
        // node hold the same Arc<Conv2d> allocation.
        let Ok(bconv) = BlockConv2d::plan_with_kernel(
            Arc::clone(conv),
            grid.clone(),
            self.opts.pad_mode,
            self.opts.kernel,
        ) else {
            return Ok(None); // Equation 2 unsolvable for this geometry
        };
        let out_grid = bconv.output_grid()?;
        // Note: the cost model governs fusion-group *depth*, not blocking
        // itself — a blocked conv whose own buffers exceed the model's
        // capacity still opens a (single-op) group so plan semantics stay
        // numerically invariant under any model.
        let cost = StageCost {
            in_block_elems: grid.max_block_area() * conv.c_in(),
            out_block_elems: out_grid.max_block_area() * conv.c_out(),
            in_map_elems: node.in_shape.c * node.in_shape.h * node.in_shape.w,
            out_map_elems: node.out_shape.c * node.out_shape.h * node.out_shape.w,
            macs: bconv.macs(),
            bits_per_elem: bits,
        };
        Ok(Some(OpenChain {
            nodes: vec![id],
            last_node: id,
            ops: vec![PlannedOp::Conv(bconv)],
            costs: vec![cost],
            input: node.input,
            start_grid: grid,
            cur_grid: out_grid,
            cur_channels: conv.c_out(),
            has_blocked_conv: true,
        }))
    }

    /// Attempts to extend an open chain with `node`.
    fn try_extend(
        &self,
        chain: &mut OpenChain,
        id: NodeId,
        node: &crate::ir::Node,
        decisions: &[LayerBlocking],
        bits: u8,
    ) -> Extend {
        match &node.op {
            NodeOp::Relu => {
                chain.nodes.push(id);
                chain.last_node = id;
                chain.ops.push(PlannedOp::Relu);
                Extend::Extended
            }
            NodeOp::MaxPool { k, s, p } => {
                if k != s || *p != 0 {
                    return Extend::Cut; // fused pooling is k×k/stride-k only
                }
                let Ok(next) = chain.cur_grid.downscale(*k) else {
                    return Extend::Cut; // block boundaries misaligned
                };
                let cost = StageCost {
                    in_block_elems: chain.cur_grid.max_block_area() * chain.cur_channels,
                    out_block_elems: next.max_block_area() * chain.cur_channels,
                    in_map_elems: node.in_shape.c * node.in_shape.h * node.in_shape.w,
                    out_map_elems: node.out_shape.c * node.out_shape.h * node.out_shape.w,
                    macs: 0,
                    bits_per_elem: bits,
                };
                if !self.model.allow_extend(&chain.costs, &cost) {
                    return Extend::CutByModel;
                }
                chain.cur_grid = next;
                chain.nodes.push(id);
                chain.last_node = id;
                chain.ops.push(PlannedOp::MaxPool { k: *k });
                chain.costs.push(cost);
                Extend::Extended
            }
            NodeOp::Conv { conv, conv_ordinal } => {
                if conv.geom().stride != 1 {
                    return Extend::Cut;
                }
                let Some(LayerBlocking::Blocked(pattern)) = decisions.get(*conv_ordinal).copied()
                else {
                    return Extend::Cut; // Normal conv = fusion point
                };
                if pattern != self.opts.pattern {
                    return Extend::Cut;
                }
                let Ok(bconv) = BlockConv2d::plan_with_kernel(
                    Arc::clone(conv),
                    chain.cur_grid.clone(),
                    self.opts.pad_mode,
                    self.opts.kernel,
                ) else {
                    return Extend::Cut;
                };
                let Ok(out_grid) = bconv.output_grid() else {
                    return Extend::Cut;
                };
                let cost = StageCost {
                    in_block_elems: chain.cur_grid.max_block_area() * conv.c_in(),
                    out_block_elems: out_grid.max_block_area() * conv.c_out(),
                    in_map_elems: node.in_shape.c * node.in_shape.h * node.in_shape.w,
                    out_map_elems: node.out_shape.c * node.out_shape.h * node.out_shape.w,
                    macs: bconv.macs(),
                    bits_per_elem: bits,
                };
                if !self.model.allow_extend(&chain.costs, &cost) {
                    return Extend::CutByModel;
                }
                chain.cur_grid = out_grid;
                chain.cur_channels = conv.c_out();
                chain.nodes.push(id);
                chain.last_node = id;
                chain.ops.push(PlannedOp::Conv(bconv));
                chain.costs.push(cost);
                Extend::Extended
            }
            _ => Extend::Cut,
        }
    }

    /// Converts an open chain into a fused segment, assembling the chain
    /// from the trial walk's already-solved [`BlockConv2d`] stages (no
    /// re-solving of Equation 2 padding schedules). Chains always contain
    /// at least one blocked conv (groups only open at one), so even a
    /// single-op chain must execute through the blocked path to preserve
    /// the plan's numerics. With a quantization spec, the chain is built
    /// on the integer path, each conv stage carrying the calibrated
    /// activation range of its graph node.
    fn finalize(
        chain: OpenChain,
        graph: &Graph,
        quant: Option<&GraphQuantSpec>,
    ) -> Result<WalkedSegment, TensorError> {
        debug_assert!(chain.has_blocked_conv);
        let fused = match quant {
            None => FusedChain::from_planned(chain.ops, chain.start_grid)?,
            Some(spec) => {
                let mut params = Vec::new();
                for (&node_id, op) in chain.nodes.iter().zip(&chain.ops) {
                    if matches!(op, PlannedOp::Conv(_)) {
                        params.push(spec.act_params(node_id).ok_or_else(|| {
                            TensorError::invalid(format!(
                                "no calibrated activation range for conv node {}",
                                graph.nodes()[node_id].name
                            ))
                        })?);
                    }
                }
                FusedChain::from_planned_quantized(
                    chain.ops,
                    chain.start_grid,
                    spec.weight_bits,
                    &params,
                )?
            }
        };
        Ok(WalkedSegment {
            seg: Segment::Fused { nodes: chain.nodes, chain: fused, input: chain.input },
            costs: Some(chain.costs),
            boundaries: Vec::new(),
        })
    }
}

enum Extend {
    Extended,
    /// Structural cut: the node cannot join any fused group here.
    Cut,
    /// The cost model refused the extension (recorded in the report).
    CutByModel,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AccelCost;
    use crate::ir::{Graph, LowerOptions};
    use bconv_accel::platform::zc706;
    use bconv_models::small::{resnet18_small, vgg16_small};
    use bconv_models::vdsr::vdsr_with_depth;

    fn lower(net: &bconv_models::Network) -> Graph {
        Graph::lower(net, &LowerOptions::default()).unwrap()
    }

    #[test]
    fn vgg_plan_fuses_conv_pool_stages() {
        let g = lower(&vgg16_small(32));
        let plan = Planner::new(PlannerOptions::default()).plan(&g).unwrap();
        assert!(plan.fusion_groups() >= 1, "{}", plan.describe(&g));
        // Every conv in VGG-small is stride-1 and splittable at 32x32 under
        // H2x2, so the executable blocking ratio is 1.
        assert!((plan.blocking_ratio() - 1.0).abs() < 1e-9);
        // FC / GAP segments stay whole-map.
        assert!(plan.segments().iter().any(|s| matches!(s, Segment::Single(_))));
        // The default model is the element budget, and with no budget it
        // neither cuts nor splices.
        assert_eq!(plan.report().cost_model, "element-budget");
        assert!(plan.report().cost_cuts.is_empty());
        assert!(plan.report().splices.is_empty());
    }

    #[test]
    fn unblocked_plan_has_no_fusion_groups() {
        let g = lower(&vgg16_small(32));
        let opts = PlannerOptions {
            plan: Some(NetworkPlan::unblocked(g.conv_count())),
            ..PlannerOptions::default()
        };
        let plan = Planner::new(opts).plan(&g).unwrap();
        assert_eq!(plan.fusion_groups(), 0);
        assert_eq!(plan.blocking_ratio(), 0.0);
        assert_eq!(plan.segments().len(), g.nodes().len());
    }

    #[test]
    fn residual_sources_cut_fusion_groups() {
        let g = lower(&resnet18_small(32));
        let plan = Planner::new(PlannerOptions::default()).plan(&g).unwrap();
        // No fused group may contain a node with fan-out except as its last
        // node (its output is materialised at the segment boundary).
        for seg in plan.segments() {
            if let Segment::Fused { nodes, .. } = seg {
                for &n in &nodes[..nodes.len() - 1] {
                    assert_eq!(g.consumer_count(n), 1, "fused interior node {n} fans out");
                }
            }
        }
    }

    #[test]
    fn blocking_depth_plan_places_fusion_points() {
        // VDSR with blocking depth 2: every third conv is a whole-map
        // fusion point, so the 6-conv net splits into 2-conv fused groups.
        let net = vdsr_with_depth(24, 24, 6, 8);
        let g = lower(&net);
        let opts = PlannerOptions {
            plan: Some(NetworkPlan::by_blocking_depth(6, BlockingPattern::hierarchical(2), 2)),
            ..PlannerOptions::default()
        };
        let plan = Planner::new(opts).plan(&g).unwrap();
        assert_eq!(plan.fusion_groups(), 2, "{}", plan.describe(&g));
        assert_eq!(plan.blocked_convs(), 4);
    }

    #[test]
    fn mismatched_plan_length_is_rejected() {
        // A plan covering the wrong number of conv layers must error, not
        // silently default the tail to Normal.
        let g = lower(&vgg16_small(32)); // 13 convs
        for wrong in [12, 14, 1] {
            let opts = PlannerOptions {
                plan: Some(NetworkPlan::unblocked(wrong)),
                ..PlannerOptions::default()
            };
            assert!(Planner::new(opts).plan(&g).is_err(), "plan of length {wrong} accepted");
        }
    }

    #[test]
    fn budget_limits_group_depth() {
        let net = vdsr_with_depth(24, 24, 6, 8);
        let g = lower(&net);
        let unlimited = Planner::new(PlannerOptions::default()).plan(&g).unwrap();
        // 12x12 blocks, 8 channels: one conv stage pair needs
        // 12*12*1 + 12*12*8 elements; a budget below two wide stages forces
        // cuts after the first conv.
        let tight = Planner::new(PlannerOptions {
            budget_elems: Some(12 * 12 * 8 + 12 * 12 * 2),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        assert!(tight.fusion_groups() >= unlimited.fusion_groups());
        // Each cut the budget forces is recorded in the report.
        assert!(!tight.report().cost_cuts.is_empty());
        let max_group = |p: &ExecPlan| {
            p.segments()
                .iter()
                .filter_map(|s| match s {
                    Segment::Fused { nodes, .. } => Some(nodes.len()),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(max_group(&tight) < max_group(&unlimited));
    }

    /// An AccelCost model whose intermediate capacity matches an element
    /// budget of `elems` at 32-bit words, with a generous extra buffer.
    fn accel_like_budget(elems: usize) -> Arc<dyn CostModel> {
        Arc::new(AccelCost::with_buffers(zc706(), (elems as u64) * 32 / 2, 1 << 24))
    }

    #[test]
    fn accel_cost_splices_adjacent_groups() {
        // A budget that cuts VGG-small after conv1-1 leaves two adjacent
        // fused groups; the accel model takes the Figure 10 splice, the
        // element budget does not.
        let g = lower(&vgg16_small(32));
        let budget = 1500usize;
        let element = Planner::new(PlannerOptions {
            budget_elems: Some(budget),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        let accel = Planner::new(PlannerOptions {
            cost_model: Some(accel_like_budget(budget)),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        assert!(element.report().splices.is_empty());
        assert!(
            !accel.report().splices.is_empty(),
            "accel model took no splice:\n{}",
            accel.describe(&g)
        );
        assert!(accel.segments().iter().any(|s| matches!(s, Segment::Spliced { .. })));
        assert_eq!(accel.report().cost_model, "accel-cost");
        // Both models cut somewhere; the splice re-fuses the boundary.
        assert!(!accel.report().cost_cuts.is_empty());
        assert!(accel.report().spliced_offchip_elems_saved() > 0);
        // Splicing merges segments but keeps every fusion group.
        assert_eq!(accel.fusion_groups(), element.fusion_groups());
        assert!(accel.segments().len() < element.segments().len());
    }

    #[test]
    fn splice_pass_gates_on_adjacent_boundary_pairs() {
        // VDSR under a cut-per-conv budget has 5 fused groups with 4
        // equal boundaries (8ch x 24x24 = 4608 elems). An extra buffer
        // that holds one boundary but not two must stop every pipeline at
        // 2 groups — a middle group would keep both its boundaries
        // resident at once.
        let g = lower(&vdsr_with_depth(24, 24, 6, 8));
        let budget = 12 * 12 * 8 + 12 * 12 * 2;
        let one_boundary_bits = 4608u64 * 32;
        let model = Arc::new(AccelCost::with_buffers(
            zc706(),
            budget as u64 * 32 / 2,
            one_boundary_bits, // < 2 boundaries
        ));
        let plan =
            Planner::new(PlannerOptions { cost_model: Some(model), ..PlannerOptions::default() })
                .plan(&g)
                .unwrap();
        assert!(!plan.report().splices.is_empty(), "{}", plan.describe(&g));
        for seg in plan.segments() {
            if let Segment::Spliced { pipeline, .. } = seg {
                assert_eq!(
                    pipeline.groups().len(),
                    2,
                    "pair-limited extra buffer must cap pipelines at 2 groups:\n{}",
                    plan.describe(&g)
                );
            }
        }
        // A roomy extra buffer splices deeper on the same cuts.
        let deep = Planner::new(PlannerOptions {
            cost_model: Some(Arc::new(AccelCost::with_buffers(
                zc706(),
                budget as u64 * 32 / 2,
                1 << 24,
            ))),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        let max_groups = deep
            .segments()
            .iter()
            .filter_map(|s| match s {
                Segment::Spliced { pipeline, .. } => Some(pipeline.groups().len()),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert!(max_groups > 2, "{}", deep.describe(&g));
    }

    #[test]
    fn describe_prints_spliced_pipelines() {
        let g = lower(&vgg16_small(32));
        let plan = Planner::new(PlannerOptions {
            cost_model: Some(accel_like_budget(1500)),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        let d = plan.describe(&g);
        assert!(d.contains("spliced"), "{d}");
        assert!(d.contains("=>"), "{d}");
    }

    #[test]
    fn splice_pass_respects_boundary_fanout() {
        // ResNet residual sources fan out: even a splice-everything model
        // must never splice across a boundary another node still reads.
        let g = lower(&resnet18_small(32));
        let plan = Planner::new(PlannerOptions {
            cost_model: Some(Arc::new(AccelCost::for_platform(zc706()))),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        for seg in plan.segments() {
            let Segment::Spliced { nodes, pipeline, .. } = seg else { continue };
            let mut cursor = 0usize;
            for group in &pipeline.groups()[..pipeline.groups().len() - 1] {
                cursor += group.len();
                let boundary = nodes[cursor - 1];
                assert_eq!(g.consumer_count(boundary), 1, "spliced boundary {boundary} fans out");
            }
        }
    }

    #[test]
    fn cost_model_and_budget_resolution() {
        // An explicit cost model wins over budget_elems; without one the
        // budget is wrapped in ElementBudget.
        let p = Planner::new(PlannerOptions {
            budget_elems: Some(10),
            cost_model: Some(Arc::new(ElementBudget::unbounded())),
            ..PlannerOptions::default()
        });
        assert_eq!(p.cost_model().name(), "element-budget");
        let g = lower(&vdsr_with_depth(24, 24, 6, 8));
        // Unbounded explicit model: one fused group despite the budget.
        let plan = p.plan(&g).unwrap();
        assert!(plan.report().cost_cuts.is_empty(), "{}", plan.describe(&g));
    }
}
