//! The planner: partitions a [`Graph`] into fusion groups under a
//! network-level blocking plan and an on-chip buffer budget.
//!
//! This is where [`bconv_core::plan::NetworkPlan`] decisions become actual
//! execution: each conv the plan marks `Blocked` runs as a block
//! convolution inside a [`FusedChain`] fusion group; `Normal` convs (the
//! information-fusion points of the VDSR blocking-depth scheme) and every
//! op the fused dataflow cannot express (strided conv, padded or
//! non-matching pooling, residual `Add`, FC, GAP, upsampling) become
//! whole-map segments with an off-chip boundary on either side.

use std::sync::Arc;

use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_core::fusion::{ChainOp, FusedChain};
use bconv_core::plan::{LayerBlocking, NetworkPlan};
use bconv_core::BlockConv2d;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::pad::PadMode;
use bconv_tensor::TensorError;

use crate::ir::{Graph, NodeId, NodeOp, NodeRef};
use crate::quantize::GraphQuantSpec;

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Blocking pattern applied to blocked convolutions.
    pub pattern: BlockingPattern,
    /// Per-conv-layer blocking decisions. `None` derives the paper's
    /// "block everything splittable" resolution rule from the graph.
    pub plan: Option<NetworkPlan>,
    /// Block-padding mode (paper §II-F evaluates zero/replicate/reflect).
    pub pad_mode: PadMode,
    /// On-chip working-buffer budget in **elements**: a fusion group is cut
    /// when extending it would push the per-block ping-pong buffer pair
    /// past the budget. `None` fuses maximal chains. Like
    /// [`bconv_core::fusion::MemStats`], this models the accelerator's
    /// feature-map buffers; host-side kernel temporaries (e.g. the im2col
    /// patch matrix) are CPU execution details outside the budget.
    pub budget_elems: Option<usize>,
    /// Per-layer conv kernel selection for blocked convolutions (direct
    /// loop vs im2col+GEMM; see [`bconv_tensor::kernel`]).
    pub kernel: KernelPolicy,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        Self {
            pattern: BlockingPattern::hierarchical(2),
            plan: None,
            pad_mode: PadMode::Zero,
            budget_elems: None,
            kernel: KernelPolicy::default(),
        }
    }
}

/// One executable unit of the compiled plan.
#[derive(Debug, Clone)]
pub enum Segment {
    /// A fusion group executed block-by-block; only its input and output
    /// cross the off-chip boundary.
    Fused {
        /// Node ids covered by the group, in execution order.
        nodes: Vec<NodeId>,
        /// The planned chain.
        chain: FusedChain,
        /// What the group reads.
        input: NodeRef,
    },
    /// A single node executed on whole feature maps.
    Single(NodeId),
}

impl Segment {
    /// Id of the node whose output this segment produces.
    ///
    /// # Panics
    ///
    /// Never: fused segments always cover at least one node.
    pub fn output_node(&self) -> NodeId {
        match self {
            Self::Fused { nodes, .. } => *nodes.last().expect("non-empty group"),
            Self::Single(id) => *id,
        }
    }
}

/// A compiled execution plan: an ordered segment list.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    segments: Vec<Segment>,
    pattern: BlockingPattern,
    blocked_convs: usize,
    total_convs: usize,
    act_bits: Option<u8>,
}

impl ExecPlan {
    /// Activation bitwidth the plan was compiled for: `Some` for a
    /// [`Planner::plan_quantized`] plan (whose fused chains carry integer
    /// stages and whose whole-map convs expect quantized dispatch), `None`
    /// for a float plan. Executors must match — see
    /// [`crate::exec::BlockedExecutor`].
    pub fn act_bits(&self) -> Option<u8> {
        self.act_bits
    }

    /// Ordered segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of fusion groups.
    pub fn fusion_groups(&self) -> usize {
        self.segments.iter().filter(|s| matches!(s, Segment::Fused { .. })).count()
    }

    /// Number of convolutions executing as block convolutions.
    pub fn blocked_convs(&self) -> usize {
        self.blocked_convs
    }

    /// Fraction of convolutions that are blocked (Table I's metric, now
    /// measured on the *executable* plan).
    pub fn blocking_ratio(&self) -> f64 {
        if self.total_convs == 0 {
            return 0.0;
        }
        self.blocked_convs as f64 / self.total_convs as f64
    }

    /// Human-readable plan summary, one line per segment.
    pub fn describe(&self, graph: &Graph) -> String {
        let mut out = String::new();
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                Segment::Fused { nodes, chain, .. } => {
                    let names: Vec<&str> =
                        nodes.iter().map(|&n| graph.nodes()[n].name.as_str()).collect();
                    out.push_str(&format!(
                        "segment {i}: fused [{}] under {} ({} blocks)\n",
                        names.join(" -> "),
                        self.pattern,
                        chain.in_grid().num_blocks(),
                    ));
                }
                Segment::Single(id) => {
                    let node = &graph.nodes()[*id];
                    out.push_str(&format!(
                        "segment {i}: {} ({}, whole-map)\n",
                        node.name,
                        node.op.mnemonic(),
                    ));
                }
            }
        }
        out
    }
}

/// Compiles [`Graph`]s into [`ExecPlan`]s.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    opts: PlannerOptions,
}

/// In-progress fusion group during the greedy walk.
struct OpenChain {
    nodes: Vec<NodeId>,
    ops: Vec<ChainOp>,
    input: NodeRef,
    start_grid: BlockGrid,
    cur_grid: BlockGrid,
    cur_channels: usize,
    has_blocked_conv: bool,
}

impl Planner {
    /// Planner with the given options.
    pub fn new(opts: PlannerOptions) -> Self {
        Self { opts }
    }

    /// Per-conv-ordinal decisions: the explicit plan when given, otherwise
    /// the resolution rule over the graph's conv nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when an explicit plan does
    /// not cover exactly the graph's conv layers — silently defaulting the
    /// tail would execute a different plan than the caller asked for.
    fn decisions(&self, graph: &Graph) -> Result<Vec<LayerBlocking>, TensorError> {
        if let Some(plan) = &self.opts.plan {
            if plan.len() != graph.conv_count() {
                return Err(TensorError::invalid(format!(
                    "NetworkPlan covers {} conv layers but {} has {}",
                    plan.len(),
                    graph.name(),
                    graph.conv_count()
                )));
            }
            return Ok(plan.per_layer().to_vec());
        }
        let spatial: Vec<bconv_core::analysis::ConvLayerSpatial> = graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, NodeOp::Conv { .. }))
            .map(|n| bconv_core::analysis::ConvLayerSpatial { h: n.in_shape.h, w: n.in_shape.w })
            .collect();
        Ok(NetworkPlan::by_resolution(&spatial, self.opts.pattern).per_layer().to_vec())
    }

    /// Compiles the graph into a segment plan.
    ///
    /// The walk is greedy: a fusion group opens at the first blocked,
    /// fusable conv and extends through consecutive single-consumer
    /// conv/relu/pool nodes while (a) the running [`BlockGrid`] stays
    /// valid (Equation 2 solvable, pooling aligned) and (b) the estimated
    /// per-block ping-pong buffers stay within the budget. Anything else
    /// cuts the group — an off-chip boundary, exactly as the paper's
    /// normal-convolution fusion points do.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when an explicit [`NetworkPlan`] does not
    /// cover exactly the graph's conv layers, or if a planned chain fails
    /// to re-validate (cannot happen for grids the trial walk accepted).
    pub fn plan(&self, graph: &Graph) -> Result<ExecPlan, TensorError> {
        self.plan_inner(graph, None)
    }

    /// [`plan`](Self::plan) with every fused convolution compiled to the
    /// quantized integer path: the fusion-group walk (and therefore the
    /// segment structure) is identical to the float plan, but chains are
    /// built through [`FusedChain::plan_quantized`] with `spec`'s weight
    /// bitwidth and the calibrated per-node activation ranges.
    ///
    /// # Errors
    ///
    /// As [`plan`](Self::plan), plus [`TensorError::InvalidParameter`] when
    /// a fused conv node has no calibrated activation range in `spec`.
    pub fn plan_quantized(
        &self,
        graph: &Graph,
        spec: &GraphQuantSpec,
    ) -> Result<ExecPlan, TensorError> {
        self.plan_inner(graph, Some(spec))
    }

    fn plan_inner(
        &self,
        graph: &Graph,
        quant: Option<&GraphQuantSpec>,
    ) -> Result<ExecPlan, TensorError> {
        let decisions = self.decisions(graph)?;
        let mut segments: Vec<Segment> = Vec::new();
        let mut open: Option<OpenChain> = None;
        let mut blocked_convs = 0usize;

        for (id, node) in graph.nodes().iter().enumerate() {
            // Can this node extend the currently open chain?
            if let Some(chain) = open.as_mut() {
                let prev = *chain.nodes.last().expect("open chains are non-empty");
                let continues =
                    node.input == NodeRef::Node(prev) && graph.consumer_count(prev) == 1;
                if continues {
                    match self.try_extend(chain, id, node, &decisions) {
                        Extend::Extended => {
                            if let NodeOp::Conv { .. } = node.op {
                                blocked_convs += 1;
                            }
                            continue;
                        }
                        Extend::Cut => {}
                    }
                }
                // The node did not join: close the group.
                let closed = open.take().expect("checked above");
                segments.push(Self::finalize(closed, graph, &self.opts, quant)?);
            }

            // Try to open a new group at this node; otherwise run it whole.
            if let Some(chain) = self.try_open(id, node, &decisions)? {
                blocked_convs += 1;
                open = Some(chain);
            } else {
                segments.push(Segment::Single(id));
            }
        }
        if let Some(chain) = open.take() {
            segments.push(Self::finalize(chain, graph, &self.opts, quant)?);
        }

        Ok(ExecPlan {
            segments,
            pattern: self.opts.pattern,
            blocked_convs,
            total_convs: graph.conv_count(),
            act_bits: quant.map(|spec| spec.act_bits),
        })
    }

    /// Opens a fusion group if `node` is a blocked, fusable convolution.
    fn try_open(
        &self,
        id: NodeId,
        node: &crate::ir::Node,
        decisions: &[LayerBlocking],
    ) -> Result<Option<OpenChain>, TensorError> {
        let NodeOp::Conv { conv, conv_ordinal } = &node.op else {
            return Ok(None);
        };
        if conv.geom().stride != 1 {
            return Ok(None); // strided convs run whole-map (paper §II-F
                             // rewrites them to conv + pool instead)
        }
        let Some(LayerBlocking::Blocked(pattern)) = decisions.get(*conv_ordinal).copied() else {
            return Ok(None);
        };
        if pattern != self.opts.pattern {
            // Mixed-pattern plans: only the session pattern fuses; other
            // patterns fall back to whole-map execution.
            return Ok(None);
        }
        let Ok(grid) = BlockGrid::from_pattern(node.in_shape.h, node.in_shape.w, pattern) else {
            return Ok(None); // resolution too small to split
        };
        // Weights are shared, not cloned: the chain stage and the graph
        // node hold the same Arc<Conv2d> allocation.
        let Ok(bconv) = BlockConv2d::plan_with_kernel(
            Arc::clone(conv),
            grid.clone(),
            self.opts.pad_mode,
            self.opts.kernel,
        ) else {
            return Ok(None); // Equation 2 unsolvable for this geometry
        };
        let out_grid = bconv.output_grid()?;
        // Note: the budget governs fusion-group *depth*, not blocking
        // itself — a blocked conv whose own buffers exceed the budget still
        // opens a (single-op) group so plan semantics stay numerically
        // invariant under any budget.
        Ok(Some(OpenChain {
            nodes: vec![id],
            ops: vec![ChainOp::Conv(Arc::clone(conv))],
            input: node.input,
            start_grid: grid,
            cur_grid: out_grid,
            cur_channels: conv.c_out(),
            has_blocked_conv: true,
        }))
    }

    /// Attempts to extend an open chain with `node`.
    fn try_extend(
        &self,
        chain: &mut OpenChain,
        id: NodeId,
        node: &crate::ir::Node,
        decisions: &[LayerBlocking],
    ) -> Extend {
        match &node.op {
            NodeOp::Relu => {
                chain.nodes.push(id);
                chain.ops.push(ChainOp::Relu);
                Extend::Extended
            }
            NodeOp::MaxPool { k, s, p } => {
                if k != s || *p != 0 {
                    return Extend::Cut; // fused pooling is k×k/stride-k only
                }
                let Ok(next) = chain.cur_grid.downscale(*k) else {
                    return Extend::Cut; // block boundaries misaligned
                };
                if self.over_budget(&chain.cur_grid, chain.cur_channels, &next, chain.cur_channels)
                {
                    return Extend::Cut;
                }
                chain.cur_grid = next;
                chain.nodes.push(id);
                chain.ops.push(ChainOp::MaxPool { k: *k });
                Extend::Extended
            }
            NodeOp::Conv { conv, conv_ordinal } => {
                if conv.geom().stride != 1 {
                    return Extend::Cut;
                }
                let Some(LayerBlocking::Blocked(pattern)) = decisions.get(*conv_ordinal).copied()
                else {
                    return Extend::Cut; // Normal conv = fusion point
                };
                if pattern != self.opts.pattern {
                    return Extend::Cut;
                }
                let Ok(bconv) = BlockConv2d::plan_with_kernel(
                    Arc::clone(conv),
                    chain.cur_grid.clone(),
                    self.opts.pad_mode,
                    self.opts.kernel,
                ) else {
                    return Extend::Cut;
                };
                let Ok(out_grid) = bconv.output_grid() else {
                    return Extend::Cut;
                };
                if self.over_budget(&chain.cur_grid, conv.c_in(), &out_grid, conv.c_out()) {
                    return Extend::Cut;
                }
                chain.cur_grid = out_grid;
                chain.cur_channels = conv.c_out();
                chain.nodes.push(id);
                chain.ops.push(ChainOp::Conv(Arc::clone(conv)));
                Extend::Extended
            }
            _ => Extend::Cut,
        }
    }

    /// True when a stage's ping-pong block buffers exceed the budget:
    /// the input block and output block of one stage are alive together
    /// (Figure 10's intermediate buffers).
    fn over_budget(
        &self,
        in_grid: &BlockGrid,
        c_in: usize,
        out_grid: &BlockGrid,
        c_out: usize,
    ) -> bool {
        let Some(budget) = self.opts.budget_elems else {
            return false;
        };
        in_grid.max_block_area() * c_in + out_grid.max_block_area() * c_out > budget
    }

    /// Converts an open chain into a fused segment. Chains always contain
    /// at least one blocked conv (groups only open at one), so even a
    /// single-op chain must execute through the blocked path to preserve
    /// the plan's numerics. With a quantization spec, the chain is built
    /// on the integer path, each conv stage carrying the calibrated
    /// activation range of its graph node.
    fn finalize(
        chain: OpenChain,
        graph: &Graph,
        opts: &PlannerOptions,
        quant: Option<&GraphQuantSpec>,
    ) -> Result<Segment, TensorError> {
        debug_assert!(chain.has_blocked_conv);
        let fused = match quant {
            None => FusedChain::plan_with_kernel(
                chain.ops,
                chain.start_grid,
                opts.pad_mode,
                opts.kernel,
            )?,
            Some(spec) => {
                let mut params = Vec::new();
                for (&node_id, op) in chain.nodes.iter().zip(&chain.ops) {
                    if matches!(op, ChainOp::Conv(_)) {
                        params.push(spec.act_params(node_id).ok_or_else(|| {
                            TensorError::invalid(format!(
                                "no calibrated activation range for conv node {}",
                                graph.nodes()[node_id].name
                            ))
                        })?);
                    }
                }
                FusedChain::plan_quantized(
                    chain.ops,
                    chain.start_grid,
                    opts.pad_mode,
                    spec.weight_bits,
                    &params,
                )?
            }
        };
        Ok(Segment::Fused { nodes: chain.nodes, chain: fused, input: chain.input })
    }
}

enum Extend {
    Extended,
    Cut,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Graph, LowerOptions};
    use bconv_models::small::{resnet18_small, vgg16_small};
    use bconv_models::vdsr::vdsr_with_depth;

    fn lower(net: &bconv_models::Network) -> Graph {
        Graph::lower(net, &LowerOptions::default()).unwrap()
    }

    #[test]
    fn vgg_plan_fuses_conv_pool_stages() {
        let g = lower(&vgg16_small(32));
        let plan = Planner::new(PlannerOptions::default()).plan(&g).unwrap();
        assert!(plan.fusion_groups() >= 1, "{}", plan.describe(&g));
        // Every conv in VGG-small is stride-1 and splittable at 32x32 under
        // H2x2, so the executable blocking ratio is 1.
        assert!((plan.blocking_ratio() - 1.0).abs() < 1e-9);
        // FC / GAP segments stay whole-map.
        assert!(plan.segments().iter().any(|s| matches!(s, Segment::Single(_))));
    }

    #[test]
    fn unblocked_plan_has_no_fusion_groups() {
        let g = lower(&vgg16_small(32));
        let opts = PlannerOptions {
            plan: Some(NetworkPlan::unblocked(g.conv_count())),
            ..PlannerOptions::default()
        };
        let plan = Planner::new(opts).plan(&g).unwrap();
        assert_eq!(plan.fusion_groups(), 0);
        assert_eq!(plan.blocking_ratio(), 0.0);
        assert_eq!(plan.segments().len(), g.nodes().len());
    }

    #[test]
    fn residual_sources_cut_fusion_groups() {
        let g = lower(&resnet18_small(32));
        let plan = Planner::new(PlannerOptions::default()).plan(&g).unwrap();
        // No fused group may contain a node with fan-out except as its last
        // node (its output is materialised at the segment boundary).
        for seg in plan.segments() {
            if let Segment::Fused { nodes, .. } = seg {
                for &n in &nodes[..nodes.len() - 1] {
                    assert_eq!(g.consumer_count(n), 1, "fused interior node {n} fans out");
                }
            }
        }
    }

    #[test]
    fn blocking_depth_plan_places_fusion_points() {
        // VDSR with blocking depth 2: every third conv is a whole-map
        // fusion point, so the 6-conv net splits into 2-conv fused groups.
        let net = vdsr_with_depth(24, 24, 6, 8);
        let g = lower(&net);
        let opts = PlannerOptions {
            plan: Some(NetworkPlan::by_blocking_depth(6, BlockingPattern::hierarchical(2), 2)),
            ..PlannerOptions::default()
        };
        let plan = Planner::new(opts).plan(&g).unwrap();
        assert_eq!(plan.fusion_groups(), 2, "{}", plan.describe(&g));
        assert_eq!(plan.blocked_convs(), 4);
    }

    #[test]
    fn mismatched_plan_length_is_rejected() {
        // A plan covering the wrong number of conv layers must error, not
        // silently default the tail to Normal.
        let g = lower(&vgg16_small(32)); // 13 convs
        for wrong in [12, 14, 1] {
            let opts = PlannerOptions {
                plan: Some(NetworkPlan::unblocked(wrong)),
                ..PlannerOptions::default()
            };
            assert!(Planner::new(opts).plan(&g).is_err(), "plan of length {wrong} accepted");
        }
    }

    #[test]
    fn budget_limits_group_depth() {
        let net = vdsr_with_depth(24, 24, 6, 8);
        let g = lower(&net);
        let unlimited = Planner::new(PlannerOptions::default()).plan(&g).unwrap();
        // 12x12 blocks, 8 channels: one conv stage pair needs
        // 12*12*1 + 12*12*8 elements; a budget below two wide stages forces
        // cuts after the first conv.
        let tight = Planner::new(PlannerOptions {
            budget_elems: Some(12 * 12 * 8 + 12 * 12 * 2),
            ..PlannerOptions::default()
        })
        .plan(&g)
        .unwrap();
        assert!(tight.fusion_groups() >= unlimited.fusion_groups());
        let max_group = |p: &ExecPlan| {
            p.segments()
                .iter()
                .filter_map(|s| match s {
                    Segment::Fused { nodes, .. } => Some(nodes.len()),
                    Segment::Single(_) => None,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(max_group(&tight) < max_group(&unlimited));
    }
}
