//! Pluggable fusion cost models: the policy that decides where the
//! planner cuts fusion groups and whether adjacent groups splice into a
//! [`bconv_core::fusion::FusedPipeline`].
//!
//! Two models ship with the crate:
//!
//! * [`ElementBudget`] — the element-count heuristic the planner has
//!   always used: cut when a stage's ping-pong block buffers exceed a flat
//!   element budget; never splice. The default, reproducing historical
//!   plans bitwise.
//! * [`AccelCost`] — the `bconv-accel` cycle/memory model (Equation 3's
//!   MAC cycles, [`bconv_accel::platform::FpgaPlatform::dram_cycles`]
//!   DRAM transfer cycles, the §III-B3 buffer plan): candidate cut points
//!   are evaluated by comparing the cycles of extending (buffers permit)
//!   against the DRAM round trip a cut would add, and compatible group
//!   boundaries splice whenever the boundary map fits the extra buffer —
//!   the Figure 10 CONV4 case.
//!
//! Cost models see fusion groups as [`StageCost`] lists — pure geometry in
//! elements and MACs, at the plan's precision — so a model never touches
//! tensors and the planner never depends on a specific model's internals.

use bconv_accel::memory::BufferPlan;
use bconv_accel::platform::FpgaPlatform;
use bconv_accel::schedule::{fused_group_cost, StageFootprint};

/// One stage of a (prospective) fusion group, in the units cost models
/// reason about. Element counts follow the [`bconv_core::fusion::MemStats`]
/// conventions: feature-map data only, per batch element, with
/// `bits_per_elem` carrying the plan's precision (32 float, the activation
/// bitwidth quantized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCost {
    /// Elements of the largest input block (block area × input channels).
    pub in_block_elems: usize,
    /// Elements of the largest output block (block area × output channels).
    pub out_block_elems: usize,
    /// Elements of the stage's whole input map (c·h·w) — what a cut right
    /// before this stage would send on an off-chip round trip.
    pub in_map_elems: usize,
    /// Elements of the stage's whole output map (c·h·w).
    pub out_map_elems: usize,
    /// Multiply–accumulates of the stage across the whole map (zero for
    /// element-wise and pooling stages).
    pub macs: u64,
    /// Bits per feature-map element at the plan's precision.
    pub bits_per_elem: u8,
}

impl StageCost {
    fn footprint(&self) -> StageFootprint {
        let bits = self.bits_per_elem as u64;
        StageFootprint {
            in_block_bits: self.in_block_elems as u64 * bits,
            out_block_bits: self.out_block_elems as u64 * bits,
            macs: self.macs,
        }
    }

    /// Bits of the stage's whole input map.
    pub fn in_map_bits(&self) -> u64 {
        self.in_map_elems as u64 * self.bits_per_elem as u64
    }
}

/// A candidate splice between two adjacent fusion groups, as cost models
/// see it: the group-boundary feature map that would stay on chip (in the
/// extra buffer) instead of making a DRAM round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceCost {
    /// Elements of the new boundary map (c·h·w, per batch element) — the
    /// off-chip round trip this splice saves.
    pub boundary_elems: usize,
    /// Peak elements simultaneously resident in the extra buffer if the
    /// splice is taken: while a *middle* group of a 3+-group pipeline
    /// executes, both its source and destination boundary maps are alive,
    /// so this is the largest adjacent-boundary pair of the prospective
    /// pipeline (equal to `boundary_elems` for a 2-group pipeline).
    pub peak_extra_elems: usize,
    /// Bits per feature-map element at the plan's precision.
    pub bits_per_elem: u8,
}

impl SpliceCost {
    /// Bits of the new boundary map.
    pub fn boundary_bits(&self) -> u64 {
        self.boundary_elems as u64 * self.bits_per_elem as u64
    }

    /// Peak bits resident in the extra buffer if the splice is taken.
    pub fn peak_extra_bits(&self) -> u64 {
        self.peak_extra_elems as u64 * self.bits_per_elem as u64
    }
}

/// The fusion-partitioning policy consulted by the planner's walk. The
/// model never changes *what* is computed — cuts and splices are schedule
/// decisions, and every plan over the same blocking decisions produces
/// bitwise-identical outputs — only how much off-chip traffic and on-chip
/// buffering the schedule needs.
pub trait CostModel: std::fmt::Debug + Send + Sync {
    /// Model name, echoed in [`crate::plan::PlanReport`].
    fn name(&self) -> &'static str;

    /// Deterministic identity string for [`crate::cache::PlanKey`]: the
    /// model name plus every parameter that changes its decisions, so two
    /// models that could plan differently never share a cache entry. The
    /// default is the bare name — correct only for parameter-free models;
    /// parameterised models must override.
    fn cache_param_key(&self) -> String {
        self.name().to_string()
    }

    /// Whether the open group (`group`, possibly empty) should extend
    /// through `candidate`, or cut right before it. Consulted for conv and
    /// pool stages; ReLU is free and always fuses.
    fn allow_extend(&self, group: &[StageCost], candidate: &StageCost) -> bool;

    /// Whether two adjacent fusion groups should splice into one pipeline,
    /// keeping `boundary` on chip. Default: never splice.
    fn allow_splice(
        &self,
        first: &[StageCost],
        second: &[StageCost],
        boundary: &SpliceCost,
    ) -> bool {
        let (_, _, _) = (first, second, boundary);
        false
    }
}

/// The flat element-count budget: cut when a candidate stage's ping-pong
/// block-buffer pair would exceed `budget_elems`; never splice. With no
/// budget, fuse maximally. This reproduces the planner's historical
/// behaviour bitwise and is the default model.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElementBudget {
    budget_elems: Option<usize>,
}

impl ElementBudget {
    /// Unbounded: fuse maximal chains (the planner's default).
    pub fn unbounded() -> Self {
        Self { budget_elems: None }
    }

    /// Cut when a stage's input + output block buffers exceed `elems`.
    pub fn with_budget(elems: usize) -> Self {
        Self { budget_elems: Some(elems) }
    }

    /// The historical `PlannerOptions::budget_elems` encoding.
    pub fn from_option(budget_elems: Option<usize>) -> Self {
        Self { budget_elems }
    }
}

impl CostModel for ElementBudget {
    fn name(&self) -> &'static str {
        "element-budget"
    }

    fn cache_param_key(&self) -> String {
        match self.budget_elems {
            None => "element-budget(unbounded)".to_string(),
            Some(b) => format!("element-budget(b{b})"),
        }
    }

    fn allow_extend(&self, _group: &[StageCost], candidate: &StageCost) -> bool {
        match self.budget_elems {
            None => true,
            Some(budget) => candidate.in_block_elems + candidate.out_block_elems <= budget,
        }
    }
}

/// The accelerator cost model: group cuts and splices decided on
/// `bconv-accel`'s cycle and memory estimates instead of a flat element
/// count.
///
/// * **Extension** — the prospective group's intermediate-buffer peak
///   ([`fused_group_cost`]) must fit the two ping-pong block buffers;
///   within capacity, extending wins whenever its cycle estimate does not
///   exceed cutting's (cut = same compute plus the DRAM round trip of the
///   boundary map at the platform's bandwidth — so extending always wins
///   on a bandwidth-positive platform, making capacity the binding
///   constraint, exactly the paper's argument for fusing as deep as the
///   buffers allow).
/// * **Splice** — taken when the boundary map fits the extra buffer and
///   the whole buffer plan fits the platform's BRAM
///   ([`BufferPlan::fits_bram18`]); the splice then strictly removes the
///   boundary's off-chip round trip (Figure 10's CONV4 extra buffer).
#[derive(Debug, Clone)]
pub struct AccelCost {
    platform: FpgaPlatform,
    /// Capacity in bits of **one** intermediate (block) buffer; the
    /// ping-pong pair provides twice this.
    intermediate_buffer_bits: u64,
    /// Capacity in bits of the extra (splice) buffer.
    extra_buffer_bits: u64,
    /// PE parallelism for the cycle estimates.
    npe: usize,
}

impl AccelCost {
    /// Buffer capacities derived from the platform's BRAM following the
    /// §III-B3 organisation: one eighth of the BRAM bits to each of the
    /// two intermediate buffers, one quarter to the extra buffer, the
    /// remaining half left for weights.
    pub fn for_platform(platform: FpgaPlatform) -> Self {
        let total = (platform.bram18_blocks * platform.bram18_bits) as u64;
        Self::with_buffers(platform, total / 8, total / 4)
    }

    /// Explicit buffer capacities (bits of one intermediate buffer, bits
    /// of the extra buffer) — how tests and benches model small on-chip
    /// memories against the toy networks.
    pub fn with_buffers(
        platform: FpgaPlatform,
        intermediate_buffer_bits: u64,
        extra_buffer_bits: u64,
    ) -> Self {
        Self { platform, intermediate_buffer_bits, extra_buffer_bits, npe: 1 }
    }

    /// Overrides the PE parallelism used for cycle estimates (default 1).
    pub fn npe(mut self, npe: usize) -> Self {
        self.npe = npe.max(1);
        self
    }

    fn footprints(stages: &[StageCost]) -> Vec<StageFootprint> {
        stages.iter().map(StageCost::footprint).collect()
    }
}

impl CostModel for AccelCost {
    fn name(&self) -> &'static str {
        "accel-cost"
    }

    fn cache_param_key(&self) -> String {
        // Everything the extend/splice decisions read: the platform's
        // DRAM model and BRAM capacity, both buffer capacities, and the
        // PE parallelism. `{}` on f64 prints shortest-roundtrip digits,
        // so equal platforms always format identically.
        format!(
            "accel-cost({},bram{}x{},f{},dram{},ib{},eb{},npe{})",
            self.platform.name,
            self.platform.bram18_blocks,
            self.platform.bram18_bits,
            self.platform.freq_mhz,
            self.platform.dram_gbps,
            self.intermediate_buffer_bits,
            self.extra_buffer_bits,
            self.npe
        )
    }

    fn allow_extend(&self, _group: &[StageCost], candidate: &StageCost) -> bool {
        // Capacity gate on the candidate's *marginal* requirement: the
        // stages already in the group are sunk (the planner grandfathers
        // an over-capacity opening conv so plan semantics stay invariant),
        // so only the new ping-pong pair can refuse the extension.
        let cand = fused_group_cost(&[candidate.footprint()], self.npe);
        if cand.peak_intermediate_bits > 2 * self.intermediate_buffer_bits {
            return false; // the ping-pong pair cannot hold the stage
        }
        // Candidate cut point, evaluated on the cycle model. The group's
        // already-accepted stages run under either schedule, so they
        // cancel out of the comparison: extending costs the candidate's
        // compute; cutting costs the same compute plus a write + read
        // round trip of the boundary map across the DRAM interface.
        let extend_cycles = cand.compute_cycles;
        let cut_cycles =
            cand.compute_cycles + self.platform.dram_cycles(2 * candidate.in_map_bits());
        extend_cycles <= cut_cycles
    }

    fn allow_splice(
        &self,
        first: &[StageCost],
        second: &[StageCost],
        boundary: &SpliceCost,
    ) -> bool {
        // The extra buffer must hold every boundary map alive at once —
        // for a 3+-group pipeline, a middle group's source and destination
        // boundaries coexist, so the gate is the peak adjacent pair, not
        // just the new boundary.
        if boundary.peak_extra_bits() > self.extra_buffer_bits {
            return false; // the boundary maps cannot stay on chip
        }
        // The spliced pipeline's full buffer plan must still fit the
        // device: the (already-accepted) ping-pong pair plus the extra
        // buffer at its peak occupancy.
        let mut stages = Self::footprints(first);
        stages.extend(Self::footprints(second));
        let cost = fused_group_cost(&stages, self.npe);
        let plan = BufferPlan {
            intermediate_bits: cost.peak_intermediate_bits / 2,
            extra_bits: boundary.peak_extra_bits(),
            weight_bits: 0,
            double_buffered: false,
        };
        if !plan.fits_bram18(self.platform.bram18_blocks) {
            return false;
        }
        // Splicing saves the boundary's DRAM round trip and costs nothing
        // in cycles; take it whenever the saving is real.
        self.platform.dram_cycles(2 * boundary.boundary_bits()) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_accel::platform::zc706;

    fn stage(in_block: usize, out_block: usize, macs: u64) -> StageCost {
        StageCost {
            in_block_elems: in_block,
            out_block_elems: out_block,
            in_map_elems: 4 * in_block,
            out_map_elems: 4 * out_block,
            macs,
            bits_per_elem: 32,
        }
    }

    fn splice(boundary_elems: usize, bits: u8) -> SpliceCost {
        SpliceCost { boundary_elems, peak_extra_elems: boundary_elems, bits_per_elem: bits }
    }

    #[test]
    fn element_budget_matches_the_historical_rule() {
        let cand = stage(768, 1024, 1000);
        assert!(ElementBudget::unbounded().allow_extend(&[], &cand));
        assert!(ElementBudget::with_budget(1792).allow_extend(&[], &cand));
        assert!(!ElementBudget::with_budget(1791).allow_extend(&[], &cand));
        // The historical model never splices.
        assert!(!ElementBudget::unbounded().allow_splice(&[], &[], &splice(1, 32)));
    }

    #[test]
    fn accel_cost_cuts_at_intermediate_capacity() {
        // Pair capacity 2 * 1024 * 32 bits = 2048 elements.
        let model = AccelCost::with_buffers(zc706(), 1024 * 32, 1 << 20);
        assert!(model.allow_extend(&[], &stage(1024, 1024, 1000)));
        assert!(!model.allow_extend(&[], &stage(1024, 1025, 1000)));
        // The gate is marginal: an over-capacity stage already in the
        // group (a grandfathered opening conv) is sunk and must not block
        // later stages that fit.
        assert!(model.allow_extend(&[stage(4096, 4096, 10)], &stage(64, 64, 1000)));
    }

    #[test]
    fn accel_cost_splices_when_the_boundary_fits_the_extra_buffer() {
        let model = AccelCost::with_buffers(zc706(), 1 << 20, 4096 * 32);
        let g = [stage(256, 256, 1000)];
        assert!(model.allow_splice(&g, &g, &splice(4096, 32)));
        assert!(!model.allow_splice(&g, &g, &splice(4097, 32)));
    }

    #[test]
    fn accel_cost_gates_on_peak_boundary_pair() {
        // Extending a pipeline to 3+ groups keeps two boundary maps alive
        // while the middle group runs: a new boundary that fits alone must
        // still be refused when the adjacent pair exceeds the extra
        // buffer.
        let model = AccelCost::with_buffers(zc706(), 1 << 20, 4096 * 32);
        let g = [stage(256, 256, 1000)];
        let pair_too_big =
            SpliceCost { boundary_elems: 2100, peak_extra_elems: 2100 + 2100, bits_per_elem: 32 };
        assert!(!model.allow_splice(&g, &g, &pair_too_big));
        let pair_fits =
            SpliceCost { boundary_elems: 2000, peak_extra_elems: 2000 + 2000, bits_per_elem: 32 };
        assert!(model.allow_splice(&g, &g, &pair_fits));
    }

    #[test]
    fn accel_cost_respects_plan_precision() {
        // At 8-bit activations the same boundary needs a quarter of the
        // extra buffer: quantized plans splice deeper.
        let model = AccelCost::with_buffers(zc706(), 1 << 20, 4096 * 8);
        let g = [stage(256, 256, 1000)];
        assert!(!model.allow_splice(&g, &g, &splice(4096, 32)));
        assert!(model.allow_splice(&g, &g, &splice(4096, 8)));
    }
}
