//! Per-host design-space exploration over the planning knobs
//! [`crate::cost::AccelCost`] otherwise fixes a priori — the paper's §IV
//! DSE (Figure 12), run against the *engine's own planner* instead of the
//! standalone VGG-16 enumeration in `bconv_accel::dse`.
//!
//! The bounded joint space covers:
//!
//! * **buffer splits** — how the platform's BRAM bits divide between the
//!   intermediate ping-pong pair and the extra (splice) buffer
//!   (§III-B3's organisation and two skewed alternatives);
//! * **blocking pattern** — hierarchical and fixed grids valid for the
//!   input resolution, the Fig. 4(a) re-grid axis;
//! * **kernel policy** and **thread count** — host execution knobs that
//!   never change numerics, only time.
//!
//! Every candidate is planned with the real [`crate::plan::Planner`] under
//! an [`AccelCost`] built from its buffer split, then scored on the accel
//! model's queries: modeled off-chip bits (every segment boundary's
//! write + read-back) and predicted cycles (MAC cycles at the PE count
//! plus [`FpgaPlatform::dram_cycles`] for the traffic). Splice
//! boundaries whose pooled grids can re-merge under
//! [`BlockGrid::merge`] — the pooling-aware Fig. 4(a) case — are counted
//! per point. Optional short measured trials time real sessions for the
//! Pareto-front finalists, so the report records predicted *and*
//! measured.
//!
//! The winner (lexicographically smallest `(off-chip bits, predicted
//! cycles)`; the §III-B3 default split is always candidate 0, so the
//! winner is never worse than the default) can be cached per host under
//! the same fingerprint as [`crate::cache::PlanKey`], which is how
//! [`crate::session::SessionBuilder::tuned`] skips re-exploration on warm
//! start-up.

use std::path::{Path, PathBuf};
use std::time::Instant;

use bconv_accel::platform::{zc706, FpgaPlatform};
use bconv_core::blocking::{BlockGrid, BlockingPattern};
use bconv_models::Network;
use bconv_tensor::kernel::KernelPolicy;
use bconv_tensor::{Tensor, TensorError};

use crate::cache::{escape_json, fnv1a, graph_content_hash, host_fingerprint, parse_json, Json};
use crate::cost::AccelCost;
use crate::ir::{Graph, LowerOptions, NodeOp};
use crate::plan::{ExecPlan, Planner, PlannerOptions, Segment};
use crate::session::{Backend, Session};

/// Schema version of cached tune winners.
const WINNER_SCHEMA_VERSION: u64 = 1;

/// Cap on measured finalists, keeping trial time bounded no matter how
/// wide the Pareto front is.
const MAX_MEASURED: usize = 6;

/// Tuning configuration.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Target platform supplying BRAM capacity and the DRAM model.
    pub platform: FpgaPlatform,
    /// PE parallelism for the cycle estimates.
    pub npe: usize,
    /// Weight-binding seed (must match the session the winner will serve).
    pub seed: u64,
    /// Whether lowering inserts a ReLU after every conv.
    pub relu_after_conv: bool,
    /// Timed repetitions per measured finalist; `0` skips measurement and
    /// scores on the model alone (the build-path default — measuring
    /// inside `Session::build` would make start-up time depend on it).
    pub trials: usize,
    /// Directory for the per-host winner cache (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            platform: zc706(),
            npe: 1,
            seed: 2018,
            relu_after_conv: false,
            trials: 0,
            cache_dir: None,
        }
    }
}

/// One explored design point and its scores.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// Blocking pattern (`Display` form).
    pub pattern: String,
    /// Bits of one intermediate (ping-pong) buffer.
    pub intermediate_buffer_bits: u64,
    /// Bits of the extra (splice) buffer.
    pub extra_buffer_bits: u64,
    /// Kernel policy name.
    pub kernel: String,
    /// Worker threads the candidate would run with.
    pub threads: usize,
    /// Modeled off-chip traffic of the candidate's plan, in bits.
    pub offchip_bits: u64,
    /// Predicted cycles: MACs over the PE count plus the DRAM transfer
    /// cycles of the off-chip traffic.
    pub predicted_cycles: u64,
    /// Fusion groups in the candidate's plan.
    pub fusion_groups: usize,
    /// Splices the candidate's plan took.
    pub splices: usize,
    /// Splice boundaries whose pooled grid re-merges cleanly under
    /// [`BlockGrid::merge`] (the pooling-aware Fig. 4(a) re-grid).
    pub merge_ready_splices: usize,
    /// Best wall time of the measured trials, if this point was a
    /// finalist and trials ran.
    pub measured_ms: Option<f64>,
}

/// The winning configuration, in applicable (typed) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneWinner {
    /// Blocking pattern to plan under.
    pub pattern: BlockingPattern,
    /// Bits of one intermediate buffer for [`AccelCost::with_buffers`].
    pub intermediate_buffer_bits: u64,
    /// Bits of the extra buffer for [`AccelCost::with_buffers`].
    pub extra_buffer_bits: u64,
    /// Kernel policy.
    pub kernel: KernelPolicy,
    /// Worker threads.
    pub threads: usize,
}

impl TuneWinner {
    /// The cost model this winner plans with.
    pub fn cost_model(&self, platform: FpgaPlatform, npe: usize) -> AccelCost {
        AccelCost::with_buffers(platform, self.intermediate_buffer_bits, self.extra_buffer_bits)
            .npe(npe)
    }
}

/// Everything the exploration found: every point, the Pareto front, the
/// winner, and what the winner saves over the §III-B3 default.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Network name.
    pub network: String,
    /// Content hash of the tuned graph.
    pub net_hash: u64,
    /// Host fingerprint the winner is valid for.
    pub host: String,
    /// Per-host cache key the winner is stored under.
    pub key: String,
    /// Every explored point, in exploration order. Index 0 is always the
    /// default configuration ([`AccelCost::for_platform`] split, `H2x2`,
    /// auto kernel, 1 thread).
    pub points: Vec<TunePoint>,
    /// Indices into [`Self::points`] of the Pareto front on
    /// `(offchip_bits, predicted_cycles)` — the §IV dominance rule.
    pub pareto: Vec<usize>,
    /// Index into [`Self::points`] of the winner.
    pub winner_index: usize,
    /// The winner in applicable form.
    pub winner: TuneWinner,
}

impl TuneReport {
    /// The default configuration's point (always index 0).
    pub fn default_point(&self) -> &TunePoint {
        &self.points[0]
    }

    /// The winning point.
    pub fn winner_point(&self) -> &TunePoint {
        &self.points[self.winner_index]
    }

    /// Serializes the report as a JSON document (the CI artifact format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"network\": \"{}\",\n", escape_json(&self.network)));
        out.push_str(&format!("  \"net_hash\": \"{:016x}\",\n", self.net_hash));
        out.push_str(&format!("  \"host\": \"{}\",\n", escape_json(&self.host)));
        out.push_str(&format!("  \"key\": \"{}\",\n", escape_json(&self.key)));
        out.push_str(&format!("  \"points_explored\": {},\n", self.points.len()));
        out.push_str(&format!("  \"winner_index\": {},\n", self.winner_index));
        let pareto: Vec<String> = self.pareto.iter().map(|i| i.to_string()).collect();
        out.push_str(&format!("  \"pareto\": [{}],\n", pareto.join(",")));
        out.push_str("  \"points\": [\n");
        let lines: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let measured = match p.measured_ms {
                    Some(ms) => format!("{ms:.3}"),
                    None => "null".to_string(),
                };
                format!(
                    "    {{\"pattern\": \"{}\", \"intermediate_buffer_bits\": {}, \
                     \"extra_buffer_bits\": {}, \"kernel\": \"{}\", \"threads\": {}, \
                     \"offchip_bits\": {}, \"predicted_cycles\": {}, \"fusion_groups\": {}, \
                     \"splices\": {}, \"merge_ready_splices\": {}, \"measured_ms\": {}}}",
                    p.pattern,
                    p.intermediate_buffer_bits,
                    p.extra_buffer_bits,
                    p.kernel,
                    p.threads,
                    p.offchip_bits,
                    p.predicted_cycles,
                    p.fusion_groups,
                    p.splices,
                    p.merge_ready_splices,
                    measured
                )
            })
            .collect();
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Modeled off-chip feature-map traffic of a plan, in elements: every
/// segment reads its input map from DRAM and writes its output map back,
/// so each inter-segment boundary counts a write plus a read-back —
/// the same convention as [`crate::plan::SpliceReport`]'s savings.
pub fn modeled_offchip_elems(graph: &Graph, plan: &ExecPlan) -> u64 {
    let map_elems = |id: usize| -> u64 {
        graph.nodes().get(id).map_or(0, |n| (n.out_shape.c * n.out_shape.h * n.out_shape.w) as u64)
    };
    let in_elems = |id: usize| -> u64 {
        graph.nodes().get(id).map_or(0, |n| (n.in_shape.c * n.in_shape.h * n.in_shape.w) as u64)
    };
    let mut total = 0u64;
    for seg in plan.segments() {
        match seg {
            Segment::Single(id) => total += in_elems(*id) + map_elems(*id),
            Segment::Fused { nodes, .. } | Segment::Spliced { nodes, .. } => {
                let first = nodes.first().copied().unwrap_or_default();
                let last = nodes.last().copied().unwrap_or_default();
                total += in_elems(first) + map_elems(last);
            }
        }
    }
    total
}

/// Total conv MACs of the graph (whole maps) — constant across candidates,
/// the compute term of the predicted-cycle score.
fn graph_macs(graph: &Graph) -> u64 {
    let mut macs = 0u64;
    for node in graph.nodes() {
        if let NodeOp::Conv { conv, .. } = &node.op {
            let g = conv.geom();
            let out = node.out_shape;
            let per_out = (g.kernel * g.kernel * conv.c_in() / conv.groups()) as u64;
            macs += (out.c * out.h * out.w) as u64 * per_out;
        }
    }
    macs
}

/// Splice boundaries whose upstream group's *output* grid — possibly
/// pooled down to more, smaller blocks than the downstream pattern wants —
/// re-merges in 2×2 clusters under [`BlockGrid::merge`]: the Fig. 4(a)
/// pooling-aware re-grid at a splice joint.
fn merge_ready_splices(plan: &ExecPlan) -> usize {
    let mut ready = 0usize;
    for seg in plan.segments() {
        let Segment::Spliced { pipeline, .. } = seg else { continue };
        for pair in pipeline.groups().windows(2) {
            if pair[0].out_grid().merge(2).is_ok() {
                ready += 1;
            }
        }
    }
    ready
}

/// One candidate configuration of the joint space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    pattern: BlockingPattern,
    ib_bits: u64,
    eb_bits: u64,
    kernel: KernelPolicy,
    threads: usize,
}

/// Enumerates the bounded joint space, with the §III-B3 default first.
fn candidates(graph: &Graph, platform: &FpgaPlatform) -> Vec<Candidate> {
    let total = (platform.bram18_blocks * platform.bram18_bits) as u64;
    let default = Candidate {
        pattern: BlockingPattern::hierarchical(2),
        ib_bits: total / 8,
        eb_bits: total / 4,
        kernel: KernelPolicy::Auto,
        threads: 1,
    };
    let s = graph.input_shape();
    let patterns: Vec<BlockingPattern> = [
        BlockingPattern::hierarchical(2),
        BlockingPattern::hierarchical(4),
        BlockingPattern::fixed(8),
        BlockingPattern::fixed(16),
    ]
    .into_iter()
    .filter(|p| BlockGrid::from_pattern(s.h, s.w, *p).is_ok())
    .collect();
    // Buffer splits of the BRAM bits: the §III-B3 default (1/8 + 1/8
    // intermediate, 1/4 extra), a splice-heavy skew, and a depth-heavy
    // skew. The remainder is always left for weights.
    let splits: [(u64, u64); 3] =
        [(total / 8, total / 4), (total / 16, total * 3 / 8), (total * 3 / 16, total / 8)];
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_cands = vec![1usize];
    if host_threads > 1 {
        thread_cands.push(host_threads);
    }
    let mut out = vec![default];
    for &pattern in &patterns {
        for &(ib_bits, eb_bits) in &splits {
            for kernel in [KernelPolicy::Auto, KernelPolicy::Direct] {
                for &threads in &thread_cands {
                    let c = Candidate { pattern, ib_bits, eb_bits, kernel, threads };
                    if c != default {
                        out.push(c);
                    }
                }
            }
        }
    }
    out
}

/// Plans and scores one candidate.
fn score(
    graph: &Graph,
    platform: &FpgaPlatform,
    npe: usize,
    macs: u64,
    c: &Candidate,
) -> Result<TunePoint, TensorError> {
    let model = AccelCost::with_buffers(platform.clone(), c.ib_bits, c.eb_bits).npe(npe);
    let planner = Planner::new(PlannerOptions {
        pattern: c.pattern,
        cost_model: Some(std::sync::Arc::new(model)),
        kernel: c.kernel,
        ..PlannerOptions::default()
    });
    let plan = planner.plan(graph)?;
    let offchip_bits = modeled_offchip_elems(graph, &plan) * 32;
    let predicted_cycles = macs / npe.max(1) as u64 + platform.dram_cycles(offchip_bits);
    Ok(TunePoint {
        pattern: c.pattern.to_string(),
        intermediate_buffer_bits: c.ib_bits,
        extra_buffer_bits: c.eb_bits,
        kernel: c.kernel.name().to_string(),
        threads: c.threads,
        offchip_bits,
        predicted_cycles,
        fusion_groups: plan.fusion_groups(),
        splices: plan.report().splices.len(),
        merge_ready_splices: merge_ready_splices(&plan),
        measured_ms: None,
    })
}

/// Pareto front on `(offchip_bits, predicted_cycles)` — the §IV dominance
/// rule of `bconv_accel::dse::pareto_front`, applied to the planner's own
/// points.
fn pareto_indices(points: &[TunePoint]) -> Vec<usize> {
    let mut front = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let dominated = points.iter().any(|q| {
            (q.offchip_bits < p.offchip_bits && q.predicted_cycles <= p.predicted_cycles)
                || (q.offchip_bits <= p.offchip_bits && q.predicted_cycles < p.predicted_cycles)
        });
        if !dominated {
            front.push(i);
        }
    }
    front
}

/// The per-host winner-cache key.
fn tune_key(net_hash: u64, host: &str, platform: &FpgaPlatform, npe: usize) -> String {
    format!("tune|{net_hash:016x}|{host}|{}|npe{npe}", platform.name)
}

/// Explores the joint space for `graph` and returns the scored report
/// (prediction only — no sessions are built). Winner caching and measured
/// trials live in [`tune`].
pub fn tune_lowered(graph: &Graph, opts: &TuneOptions) -> Result<TuneReport, TensorError> {
    let macs = graph_macs(graph);
    let cands = candidates(graph, &opts.platform);
    let mut points = Vec::with_capacity(cands.len());
    for c in &cands {
        points.push(score(graph, &opts.platform, opts.npe, macs, c)?);
    }
    let pareto = pareto_indices(&points);
    // Winner: lexicographically least (off-chip bits, predicted cycles,
    // index). The default is candidate 0, so the winner's modeled
    // off-chip bits never exceed the default's.
    let mut winner_index = 0usize;
    for (i, p) in points.iter().enumerate() {
        let best = &points[winner_index];
        if (p.offchip_bits, p.predicted_cycles, i)
            < (best.offchip_bits, best.predicted_cycles, winner_index)
        {
            winner_index = i;
        }
    }
    let w = &cands[winner_index.min(cands.len() - 1)];
    let net_hash = graph_content_hash(graph, opts.seed);
    let host = host_fingerprint();
    Ok(TuneReport {
        network: graph.name().to_string(),
        net_hash,
        host: host.clone(),
        key: tune_key(net_hash, &host, &opts.platform, opts.npe),
        points,
        pareto,
        winner_index,
        winner: TuneWinner {
            pattern: w.pattern,
            intermediate_buffer_bits: w.ib_bits,
            extra_buffer_bits: w.eb_bits,
            kernel: w.kernel,
            threads: w.threads,
        },
    })
}

/// Full tuning entry point: lowers `net`, explores the space, optionally
/// times the Pareto-front finalists on real sessions
/// ([`TuneOptions::trials`] best-of repetitions each), and caches the
/// winner per host when [`TuneOptions::cache_dir`] is set.
///
/// # Errors
///
/// Returns [`TensorError`] when lowering, planning, or a measured trial
/// fails. Winner-cache I/O failures are swallowed — caching is an
/// optimisation, never a correctness input.
pub fn tune(net: &Network, opts: &TuneOptions) -> Result<TuneReport, TensorError> {
    let graph = Graph::lower(
        net,
        &LowerOptions { seed: opts.seed, relu_after_conv: opts.relu_after_conv },
    )?;
    let mut report = tune_lowered(&graph, opts)?;
    if opts.trials > 0 {
        let s = graph.input_shape();
        let input = Tensor::filled([1, s.c, s.h, s.w], 0.5);
        let mut finalists: Vec<usize> = report.pareto.clone();
        if !finalists.contains(&report.winner_index) {
            finalists.push(report.winner_index);
        }
        if !finalists.contains(&0) {
            finalists.push(0); // always measure the default for comparison
        }
        finalists.truncate(MAX_MEASURED);
        for idx in finalists {
            let p = &report.points[idx];
            let model = AccelCost::with_buffers(
                opts.platform.clone(),
                p.intermediate_buffer_bits,
                p.extra_buffer_bits,
            )
            .npe(opts.npe);
            let pattern = pattern_from_name(&p.pattern).ok_or_else(|| {
                TensorError::invalid(format!("unparseable pattern {:?}", p.pattern))
            })?;
            let kernel = kernel_from_name(&p.kernel).ok_or_else(|| {
                TensorError::invalid(format!("unparseable kernel {:?}", p.kernel))
            })?;
            let session = Session::builder()
                .network(net.clone())
                .backend(Backend::Blocked)
                .pattern(pattern)
                .cost_model(model)
                .kernel(kernel)
                .threads(p.threads)
                .seed(opts.seed)
                .relu_after_conv(opts.relu_after_conv)
                .build()?;
            let mut best_ms = f64::INFINITY;
            for _ in 0..opts.trials {
                let t = Instant::now();
                std::hint::black_box(session.run(&input)?);
                let ms = t.elapsed().as_secs_f64() * 1e3;
                best_ms = best_ms.min(ms);
            }
            report.points[idx].measured_ms = Some(best_ms);
        }
    }
    if let Some(dir) = &opts.cache_dir {
        store_winner(dir, &report.key, &report.winner);
    }
    Ok(report)
}

/// Loads a previously cached winner for `(graph, host, platform)`, or
/// `None` when there is no valid entry. Any read/parse/key failure is a
/// miss, never an error — the caller re-tunes.
pub fn load_cached_winner(
    dir: &Path,
    graph: &Graph,
    seed: u64,
    platform: &FpgaPlatform,
    npe: usize,
) -> Option<(TuneWinner, String)> {
    let net_hash = graph_content_hash(graph, seed);
    let key = tune_key(net_hash, &host_fingerprint(), platform, npe);
    let path = dir.join(format!("{}.json", winner_file_stem(&key)));
    let text = std::fs::read_to_string(path).ok()?;
    let doc = parse_json(&text).ok()?;
    if doc.get("version").and_then(Json::as_u64) != Some(WINNER_SCHEMA_VERSION) {
        return None;
    }
    if doc.get("key").and_then(Json::as_str) != Some(key.as_str()) {
        return None;
    }
    let pattern = pattern_from_name(doc.get("pattern").and_then(Json::as_str)?)?;
    let kernel = kernel_from_name(doc.get("kernel").and_then(Json::as_str)?)?;
    Some((
        TuneWinner {
            pattern,
            intermediate_buffer_bits: doc.get("intermediate_buffer_bits").and_then(Json::as_u64)?,
            extra_buffer_bits: doc.get("extra_buffer_bits").and_then(Json::as_u64)?,
            kernel,
            threads: doc.get("threads").and_then(Json::as_usize)?,
        },
        key,
    ))
}

fn winner_file_stem(key: &str) -> String {
    format!("tune-{:016x}", fnv1a(key.as_bytes()))
}

/// Writes the winner cache entry; failures are swallowed (see [`tune`]).
pub(crate) fn store_winner(dir: &Path, key: &str, winner: &TuneWinner) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let text = format!(
        "{{\"version\": {WINNER_SCHEMA_VERSION}, \"key\": \"{}\", \"pattern\": \"{}\", \
         \"intermediate_buffer_bits\": {}, \"extra_buffer_bits\": {}, \"kernel\": \"{}\", \
         \"threads\": {}}}\n",
        escape_json(key),
        winner.pattern,
        winner.intermediate_buffer_bits,
        winner.extra_buffer_bits,
        winner.kernel.name(),
        winner.threads
    );
    let path = dir.join(format!("{}.json", winner_file_stem(key)));
    let _ = std::fs::write(path, text);
}

/// Parses a pattern back from its `Display` form (`F8`, `F28x14`,
/// `H2x2`).
pub(crate) fn pattern_from_name(name: &str) -> Option<BlockingPattern> {
    let (kind, rest) = name.split_at(name.len().min(1));
    let parse_pair = |s: &str| -> Option<(usize, usize)> {
        match s.split_once('x') {
            Some((a, b)) => Some((a.parse().ok()?, b.parse().ok()?)),
            None => {
                let v: usize = s.parse().ok()?;
                Some((v, v))
            }
        }
    };
    let (a, b) = parse_pair(rest)?;
    match kind {
        "F" => Some(BlockingPattern::Fixed { th: a, tw: b }),
        "H" => Some(BlockingPattern::Hierarchical { gh: a, gw: b }),
        _ => None,
    }
}

/// Parses a kernel policy back from its name.
pub(crate) fn kernel_from_name(name: &str) -> Option<KernelPolicy> {
    match name {
        "auto" => Some(KernelPolicy::Auto),
        "direct" => Some(KernelPolicy::Direct),
        "im2col-gemm" => Some(KernelPolicy::Im2colGemm),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_models::small::vgg16_small;

    #[test]
    fn pattern_names_round_trip() {
        for p in [
            BlockingPattern::hierarchical(2),
            BlockingPattern::hierarchical(4),
            BlockingPattern::fixed(8),
            BlockingPattern::Fixed { th: 28, tw: 14 },
        ] {
            assert_eq!(pattern_from_name(&p.to_string()), Some(p));
        }
        assert_eq!(pattern_from_name(""), None);
        assert_eq!(pattern_from_name("Q4"), None);
    }

    #[test]
    fn default_candidate_is_first_and_unique() {
        let graph = Graph::lower(&vgg16_small(32), &LowerOptions::default()).unwrap();
        let cands = candidates(&graph, &zc706());
        assert!(cands.len() > 10, "space too small: {}", cands.len());
        let d = cands[0];
        assert_eq!(d.pattern, BlockingPattern::hierarchical(2));
        assert_eq!(d.kernel, KernelPolicy::Auto);
        assert_eq!(d.threads, 1);
        assert_eq!(cands.iter().filter(|c| **c == d).count(), 1);
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let graph = Graph::lower(&vgg16_small(32), &LowerOptions::default()).unwrap();
        let report = tune_lowered(&graph, &TuneOptions::default()).unwrap();
        assert!(!report.pareto.is_empty());
        for &i in &report.pareto {
            let p = &report.points[i];
            for q in &report.points {
                let dominates =
                    q.offchip_bits < p.offchip_bits && q.predicted_cycles <= p.predicted_cycles;
                assert!(!dominates, "pareto point {i} dominated");
            }
        }
        // The winner never regresses the default's modeled traffic.
        assert!(report.winner_point().offchip_bits <= report.default_point().offchip_bits);
    }
}
