//! Property-based parity between the two conv kernels.
//!
//! The im2col+GEMM kernel must agree with the direct loop across the
//! whole geometry space the paper's networks exercise: arbitrary
//! stride/padding, grouped convolution including the depthwise extreme,
//! and 1×1 pointwise layers. The tolerance is 1e-4 *relative* — in
//! practice the kernels agree bitwise (same accumulation order), and the
//! suite asserts that too on the drawn cases so a regression in either
//! property is caught.

use bconv_tensor::conv::{Conv2d, ConvGeom};
use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};
use bconv_tensor::kernel::{ConvScratch, KernelKind};
use bconv_tensor::pad::{pad2d, PadMode};
use bconv_tensor::Tensor;
use proptest::prelude::*;

/// Runs `conv` on `input` through one kernel implementation.
fn run_kernel(kind: KernelKind, conv: &Conv2d, input: &Tensor) -> Tensor {
    let p = conv.geom().padding;
    let padded = pad2d(input, p, p, PadMode::Zero).unwrap();
    let mut out = Tensor::default();
    let mut scratch = ConvScratch::new();
    conv.forward_prepadded_into(&padded, kind, &mut out, &mut scratch).unwrap();
    out
}

/// Max relative deviation of `a` from `b` (scaled by `b`'s magnitude).
fn rel_err(a: &Tensor, b: &Tensor) -> f32 {
    let mag = b.data().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    a.max_abs_diff(b).unwrap() / mag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense convolution, arbitrary stride/padding/kernel geometry.
    #[test]
    fn gemm_matches_direct_dense(
        h in 4usize..20,
        w in 4usize..20,
        c_in in 1usize..5,
        c_out in 1usize..7,
        k in 1usize..5,
        s in 1usize..3,
        p in 0usize..3,
        seed in 0u64..10_000,
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let mut rng = seeded_rng(seed);
        let conv = he_conv2d(c_in, c_out, ConvGeom::new(k, s, p), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, c_in, h, w], -1.0, 1.0, &mut rng);
        let direct = run_kernel(KernelKind::Direct, &conv, &input);
        let gemm = run_kernel(KernelKind::Im2colGemm, &conv, &input);
        prop_assert_eq!(direct.shape(), gemm.shape());
        let err = rel_err(&gemm, &direct);
        prop_assert!(err < 1e-4, "kernels diverged: rel err {err}");
        // Stronger implementation property: same accumulation order.
        prop_assert_eq!(direct.data(), gemm.data());
    }

    /// Grouped convolution, including the depthwise extreme
    /// (`groups == c_in`) of MobileNet-V1.
    #[test]
    fn gemm_matches_direct_grouped(
        h in 4usize..16,
        w in 4usize..16,
        cpg in 1usize..3,     // input channels per group
        mpg in 1usize..4,     // output channels per group
        groups in 1usize..5,
        k in 1usize..4,
        s in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let p = k / 2;
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let (c_in, c_out) = (cpg * groups, mpg * groups);
        let mut rng = seeded_rng(seed ^ 0x9E37);
        let conv = he_conv2d(c_in, c_out, ConvGeom::new(k, s, p), groups, &mut rng).unwrap();
        let input = uniform_tensor([1, c_in, h, w], -1.0, 1.0, &mut rng);
        let direct = run_kernel(KernelKind::Direct, &conv, &input);
        let gemm = run_kernel(KernelKind::Im2colGemm, &conv, &input);
        let err = rel_err(&gemm, &direct);
        prop_assert!(err < 1e-4, "grouped kernels diverged: rel err {err}");
    }

    /// 1×1 pointwise convolution (paper §II-C: blocking-invariant) over a
    /// batch, where im2col degenerates to a plain channel matmul.
    #[test]
    fn gemm_matches_direct_pointwise(
        n in 1usize..3,
        h in 1usize..12,
        w in 1usize..12,
        c_in in 1usize..9,
        c_out in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded_rng(seed ^ 0x5D1E);
        let conv = he_conv2d(c_in, c_out, ConvGeom::new(1, 1, 0), 1, &mut rng).unwrap();
        let input = uniform_tensor([n, c_in, h, w], -1.0, 1.0, &mut rng);
        let direct = run_kernel(KernelKind::Direct, &conv, &input);
        let gemm = run_kernel(KernelKind::Im2colGemm, &conv, &input);
        let err = rel_err(&gemm, &direct);
        prop_assert!(err < 1e-4, "pointwise kernels diverged: rel err {err}");
        prop_assert_eq!(direct.data(), gemm.data());
    }

    /// A reused scratch carries no state between calls: convolving two
    /// different layers back-to-back through one scratch matches fresh
    /// runs.
    #[test]
    fn scratch_reuse_is_stateless(
        h in 4usize..12,
        w in 4usize..12,
        c1 in 1usize..4,
        c2 in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded_rng(seed ^ 0xC0DE);
        let conv_a = he_conv2d(c1, c2, ConvGeom::same(3), 1, &mut rng).unwrap();
        let conv_b = he_conv2d(c2, c1, ConvGeom::same(1), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, c1, h, w], -1.0, 1.0, &mut rng);

        let fresh_a = run_kernel(KernelKind::Im2colGemm, &conv_a, &input);
        let fresh_b = run_kernel(KernelKind::Im2colGemm, &conv_b, &fresh_a);

        let mut scratch = ConvScratch::new();
        let mut out = Tensor::default();
        let pa = pad2d(&input, 1, 1, PadMode::Zero).unwrap();
        conv_a.forward_prepadded_into(&pa, KernelKind::Im2colGemm, &mut out, &mut scratch).unwrap();
        prop_assert_eq!(out.data(), fresh_a.data());
        let reused_a = out.clone();
        conv_b
            .forward_prepadded_into(&reused_a, KernelKind::Im2colGemm, &mut out, &mut scratch)
            .unwrap();
        prop_assert_eq!(out.data(), fresh_b.data());
    }
}
