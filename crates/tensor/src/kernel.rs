//! Pluggable convolution kernels: the *how* of a [`Conv2d`], separated
//! from the *what*.
//!
//! The layer definition ([`Conv2d`]) fixes the mathematics; a
//! [`ConvKernel`] chooses the loop structure that evaluates it:
//!
//! * [`DirectKernel`] — the naive seven-loop direct convolution. Minimal
//!   working memory, competitive for depthwise and tiny reductions.
//! * [`Im2colGemmKernel`] — lowers each (batch, group) to a `K×N` patch
//!   matrix (im2col) and multiplies it with the `M×K` weight matrix
//!   through a small register-blocked sgemm. Much better locality for
//!   dense convolutions: the weight row is streamed once per output tile
//!   instead of once per output pixel.
//!
//! Both kernels accumulate each output element in the same order
//! (bias first, then taps in `(c_in, kh, kw)` order), so for a given
//! layer they produce bitwise-identical results — [`KernelPolicy::Auto`]
//! can therefore pick per layer without perturbing numerics. This is an
//! implementation property, not an API guarantee; parity tests assert a
//! 1e-4 relative tolerance.
//!
//! Two performance layers sit behind the GEMM:
//!
//! * [`PackedWeights`] — a panel-major (BLIS-style "A-packing") copy of
//!   the weight matrix, built **once** at plan/build time so the sgemm
//!   inner loop reads `MR` weights contiguously instead of striding `K`
//!   apart. Packing never happens per run.
//! * An 8-wide manual lane type (`F32x8`) used by the sgemm microkernels:
//!   explicit unrolled lanes the auto-vectorizer maps onto SIMD registers.
//!   With the `simd` cargo feature (nightly) the lanes are
//!   `core::simd::Simd<f32, 8>` instead. Lane arithmetic is separate
//!   multiply-then-add — never fused — so both implementations keep the
//!   bitwise accumulation contract above.
//!
//! Kernels write into caller-provided output tensors and draw temporary
//! storage from a [`ConvScratch`], so a blocked executor can run thousands
//! of per-block convolutions with zero steady-state allocation.

use crate::conv::Conv2d;
use crate::shape::conv_out_dim;
use crate::{Tensor, TensorError};

/// How to choose the kernel implementation for a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Choose per layer: im2col+GEMM wherever the patch matrix pays for
    /// itself (measured: everything except degenerate single-tap
    /// per-channel layers, which stay on the direct loop).
    #[default]
    Auto,
    /// Always the direct loop.
    Direct,
    /// Always im2col+GEMM.
    Im2colGemm,
}

impl KernelPolicy {
    /// Resolves the policy for one layer.
    ///
    /// The same resolution governs the integer path: a quantized layer
    /// shares its float twin's geometry, so `QConv2d` resolves through
    /// this policy at construction and picks its integer im2col+GEMM
    /// exactly where the float layer would pick [`KernelKind::Im2colGemm`]
    /// (the patch-matrix economics are identical — only the element type
    /// changes).
    pub fn resolve(self, conv: &Conv2d) -> KernelKind {
        match self {
            Self::Direct => KernelKind::Direct,
            Self::Im2colGemm => KernelKind::Im2colGemm,
            Self::Auto => {
                let g = conv.geom();
                let m = conv.c_out() / conv.groups();
                let k = g.kernel * g.kernel * (conv.c_in() / conv.groups());
                // Measured across dense, grouped, depthwise and pointwise
                // shapes at both whole-map and per-block sizes, the patch
                // matrix pays for itself essentially always — even at
                // m = 1 (depthwise) the contiguous columns beat the direct
                // loop's strided reads. Only a fully degenerate GEMM
                // (scalar per-channel scaling: one output channel per
                // group, single-tap reduction) stays direct.
                if m == 1 && k == 1 {
                    KernelKind::Direct
                } else {
                    KernelKind::Im2colGemm
                }
            }
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Direct => "direct",
            Self::Im2colGemm => "im2col-gemm",
        }
    }
}

/// A resolved kernel choice for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// The direct loop.
    #[default]
    Direct,
    /// im2col + GEMM.
    Im2colGemm,
}

impl KernelKind {
    /// The kernel implementation behind this choice.
    pub fn kernel(self) -> &'static dyn ConvKernel {
        match self {
            Self::Direct => &DirectKernel,
            Self::Im2colGemm => &Im2colGemmKernel,
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Direct => "direct",
            Self::Im2colGemm => "im2col-gemm",
        }
    }
}

/// Reusable temporary storage for kernel execution. One scratch per
/// worker thread; buffers grow to the largest layer seen and stay there.
#[derive(Debug, Default)]
pub struct ConvScratch {
    /// im2col patch matrix (`K × N`, reused across calls).
    cols: Vec<f32>,
}

impl ConvScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A convolution evaluation strategy.
///
/// `padded` must already carry the layer's spatial padding (kernels never
/// pad); `out` is shaped by the caller to `[n, c_out, oh, ow]` and every
/// element is overwritten.
pub trait ConvKernel: Sync {
    /// Kernel name for reports and plan dumps.
    fn name(&self) -> &'static str;

    /// Evaluates `conv` on a pre-padded input, writing into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on channel/shape mismatch.
    fn forward_prepadded_into(
        &self,
        conv: &Conv2d,
        padded: &Tensor,
        out: &mut Tensor,
        scratch: &mut ConvScratch,
    ) -> Result<(), TensorError>;
}

/// Validates the padded input against `conv` and shapes `out`; returns
/// `(n, oh, ow)`.
fn prepare_out(
    conv: &Conv2d,
    padded: &Tensor,
    out: &mut Tensor,
) -> Result<(usize, usize, usize), TensorError> {
    let [n, c_in, ph, pw] = padded.shape().dims();
    if c_in != conv.c_in() {
        return Err(TensorError::shape_mismatch(
            "Conv2d input channels",
            format!("{}", conv.c_in()),
            format!("{c_in}"),
        ));
    }
    let g = conv.geom();
    let oh = conv_out_dim(ph, g.kernel, g.stride, 0)?;
    let ow = conv_out_dim(pw, g.kernel, g.stride, 0)?;
    out.reset([n, conv.c_out(), oh, ow]);
    Ok((n, oh, ow))
}

/// The naive direct convolution: seven nested loops, one accumulator per
/// output element.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectKernel;

impl ConvKernel for DirectKernel {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn forward_prepadded_into(
        &self,
        conv: &Conv2d,
        padded: &Tensor,
        out: &mut Tensor,
        _scratch: &mut ConvScratch,
    ) -> Result<(), TensorError> {
        let (n, oh, ow) = prepare_out(conv, padded, out)?;
        let g = conv.geom();
        let (k, s) = (g.kernel, g.stride);
        let c_in = conv.c_in();
        let c_out = conv.c_out();
        let groups = conv.groups();
        let cin_per_group = c_in / groups;
        let cout_per_group = c_out / groups;
        let wshape = conv.weight().shape();
        let wdata = conv.weight().data();
        let idata = padded.data();
        let ishape = padded.shape();
        let oshape = out.shape();
        let odata = out.data_mut();

        for ni in 0..n {
            for grp in 0..groups {
                for mo in 0..cout_per_group {
                    let m = grp * cout_per_group + mo;
                    let bias = conv.bias()[m];
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let mut acc = bias;
                            for ci in 0..cin_per_group {
                                let c = grp * cin_per_group + ci;
                                for khi in 0..k {
                                    let ih = ohi * s + khi;
                                    let w_row = wshape.index(m, ci, khi, 0);
                                    let i_row = ishape.index(ni, c, ih, owi * s);
                                    // Inner product over the kernel row.
                                    for kwi in 0..k {
                                        acc += wdata[w_row + kwi] * idata[i_row + kwi];
                                    }
                                }
                            }
                            odata[oshape.index(ni, m, ohi, owi)] = acc;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// im2col + GEMM: lower each (batch, group) to a patch matrix and run a
/// register-blocked matrix multiply against the weight matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct Im2colGemmKernel;

impl ConvKernel for Im2colGemmKernel {
    fn name(&self) -> &'static str {
        "im2col-gemm"
    }

    fn forward_prepadded_into(
        &self,
        conv: &Conv2d,
        padded: &Tensor,
        out: &mut Tensor,
        scratch: &mut ConvScratch,
    ) -> Result<(), TensorError> {
        im2col_gemm(conv, None, padded, out, scratch)
    }
}

/// The layer's weight matrix repacked panel-major for the sgemm: per
/// group, `ceil(M/MR)` panels of `MR × K` laid out `panel[l*MR + i]`, so
/// the microkernel's step over `l` reads `MR` weights contiguously
/// (tail panels are zero-padded). Built **once** — at session build or via
/// `BlockConv2d::with_packed_weights` — and shared by every run; the hot
/// path never repacks.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    data: Vec<f32>,
    per_group: usize,
}

impl PackedWeights {
    /// Packs `conv`'s weights. Allocation happens here, at build time.
    pub fn pack(conv: &Conv2d) -> Self {
        let g = conv.geom();
        let groups = conv.groups();
        let mg = conv.c_out() / groups;
        let kk = (conv.c_in() / groups) * g.kernel * g.kernel;
        let per_group = mg.div_ceil(MR) * MR * kk;
        let mut data = vec![0.0f32; groups * per_group];
        let wdata = conv.weight().data();
        for grp in 0..groups {
            let a = &wdata[grp * mg * kk..(grp + 1) * mg * kk];
            let dst = &mut data[grp * per_group..(grp + 1) * per_group];
            for (p, panel) in dst.chunks_exact_mut(MR * kk).enumerate() {
                let it = p * MR;
                for i in 0..MR.min(mg - it) {
                    for l in 0..kk {
                        panel[l * MR + i] = a[(it + i) * kk + l];
                    }
                }
            }
        }
        Self { data, per_group }
    }

    /// The packed panels of one group.
    pub(crate) fn group_panels(&self, grp: usize) -> &[f32] {
        &self.data[grp * self.per_group..(grp + 1) * self.per_group]
    }

    /// Packed element count (includes zero-padded tail rows).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no weights are packed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Evaluates `conv` on a pre-padded input through the im2col+GEMM
    /// kernel using these packed panels — bitwise identical to
    /// [`Im2colGemmKernel`], faster weight streaming. Hot path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on channel/shape mismatch.
    pub fn forward_prepadded_into(
        &self,
        conv: &Conv2d,
        padded: &Tensor,
        out: &mut Tensor,
        scratch: &mut ConvScratch,
    ) -> Result<(), TensorError> {
        im2col_gemm(conv, Some(self), padded, out, scratch)
    }
}

/// Shared im2col+GEMM driver: lower each (batch, group) to a patch matrix
/// and multiply with the weight matrix — packed panels when available,
/// the layer's row-major weights otherwise. Hot path — no allocation once
/// `scratch` has grown.
fn im2col_gemm(
    conv: &Conv2d,
    packed: Option<&PackedWeights>,
    padded: &Tensor,
    out: &mut Tensor,
    scratch: &mut ConvScratch,
) -> Result<(), TensorError> {
    let (n, oh, ow) = prepare_out(conv, padded, out)?;
    let g = conv.geom();
    let (k, s) = (g.kernel, g.stride);
    let groups = conv.groups();
    let cin_per_group = conv.c_in() / groups;
    let cout_per_group = conv.c_out() / groups;
    let kk = cin_per_group * k * k; // GEMM reduction length K
    let nn = oh * ow; // GEMM width N

    // 1×1 stride-1 (pointwise): the patch matrix would be bit-for-bit
    // the input's channel planes, so skip im2col and feed the input
    // slice to the GEMM directly (same layout, same result).
    let pointwise = k == 1 && s == 1;
    if !pointwise {
        scratch.cols.resize(kk * nn, 0.0);
    }
    let ishape = padded.shape();
    let idata = padded.data();
    let wdata = conv.weight().data();
    let oshape = out.shape();
    let odata = out.data_mut();

    for ni in 0..n {
        for grp in 0..groups {
            let b: &[f32] = if pointwise {
                let i0 = ishape.index(ni, grp * cin_per_group, 0, 0);
                &idata[i0..i0 + kk * nn]
            } else {
                // im2col: row l = (ci, khi, kwi) of the patch at each
                // output position, matching the direct loop's tap order
                // so the sequential GEMM accumulation reproduces it
                // exactly.
                for ci in 0..cin_per_group {
                    let c = grp * cin_per_group + ci;
                    for khi in 0..k {
                        for kwi in 0..k {
                            let row = (ci * k + khi) * k + kwi;
                            let dst = &mut scratch.cols[row * nn..(row + 1) * nn];
                            for ohi in 0..oh {
                                let src = &idata[ishape.index(ni, c, ohi * s + khi, 0)..];
                                let drow = &mut dst[ohi * ow..(ohi + 1) * ow];
                                if s == 1 {
                                    drow.copy_from_slice(&src[kwi..kwi + ow]);
                                } else {
                                    for (owi, d) in drow.iter_mut().enumerate() {
                                        *d = src[owi * s + kwi];
                                    }
                                }
                            }
                        }
                    }
                }
                &scratch.cols
            };
            // GEMM: out[g] = bias[g] + W[g] (M×K) · B (K×N).
            let bias = &conv.bias()[grp * cout_per_group..(grp + 1) * cout_per_group];
            let c0 = oshape.index(ni, grp * cout_per_group, 0, 0);
            let cdst = &mut odata[c0..c0 + cout_per_group * nn];
            match packed {
                Some(p) => {
                    gemm_bias_packed(p.group_panels(grp), b, bias, cdst, cout_per_group, kk, nn);
                }
                None => {
                    let a = &wdata[grp * cout_per_group * kk..(grp + 1) * cout_per_group * kk];
                    gemm_bias(a, b, bias, cdst, cout_per_group, kk, nn);
                }
            }
        }
    }
    Ok(())
}

/// Microkernel tile height (output channels per register block).
const MR: usize = 4;
/// Microkernel tile width (output positions per register block).
const NR: usize = 8;

/// Manual 8-wide f32 lanes for the sgemm microkernels.
///
/// The default implementation is a plain `[f32; 8]` with fully unrolled
/// element-wise ops — the shape LLVM reliably auto-vectorizes into one
/// 256-bit (or two 128-bit) register per lane. With the `simd` cargo
/// feature (nightly only) the same API is backed by
/// `core::simd::Simd<f32, 8>`.
///
/// `add_scaled` is deliberately a separate multiply then add — **never**
/// `mul_add`/FMA — because fusing the rounding step would break the
/// bitwise parity between [`DirectKernel`] and the GEMM kernels.
mod lanes {
    #[cfg(not(feature = "simd"))]
    #[derive(Debug, Clone, Copy)]
    pub(super) struct F32x8([f32; 8]);

    #[cfg(not(feature = "simd"))]
    impl F32x8 {
        /// All eight lanes set to `v`.
        #[inline]
        pub(super) fn splat(v: f32) -> Self {
            Self([v; 8])
        }

        /// Loads the first eight elements of `s`.
        #[inline]
        pub(super) fn load(s: &[f32]) -> Self {
            let mut a = [0.0f32; 8];
            a.copy_from_slice(&s[..8]);
            Self(a)
        }

        /// `self + a * b`, lane-wise, as separate multiply then add.
        #[inline]
        pub(super) fn add_scaled(self, a: Self, b: Self) -> Self {
            let mut out = self.0;
            for (o, (&x, &y)) in out.iter_mut().zip(a.0.iter().zip(&b.0)) {
                *o += x * y;
            }
            Self(out)
        }

        /// Stores the lanes into the first eight elements of `d`.
        #[inline]
        pub(super) fn store(self, d: &mut [f32]) {
            d[..8].copy_from_slice(&self.0);
        }
    }

    #[cfg(feature = "simd")]
    #[derive(Debug, Clone, Copy)]
    pub(super) struct F32x8(core::simd::Simd<f32, 8>);

    #[cfg(feature = "simd")]
    impl F32x8 {
        /// All eight lanes set to `v`.
        #[inline]
        pub(super) fn splat(v: f32) -> Self {
            Self(core::simd::Simd::splat(v))
        }

        /// Loads the first eight elements of `s`.
        #[inline]
        pub(super) fn load(s: &[f32]) -> Self {
            Self(core::simd::Simd::from_slice(s))
        }

        /// `self + a * b`, lane-wise (separate `Simd` mul and add — no
        /// FMA contraction).
        #[inline]
        pub(super) fn add_scaled(self, a: Self, b: Self) -> Self {
            Self(self.0 + a.0 * b.0)
        }

        /// Stores the lanes into the first eight elements of `d`.
        #[inline]
        pub(super) fn store(self, d: &mut [f32]) {
            self.0.copy_to_slice(&mut d[..8]);
        }
    }
}

use lanes::F32x8;

/// `c[i][j] = bias[i] + Σ_l a[i][l]·b[l][j]` with an `MR×NR` register
/// tile. Each output element uses one accumulator updated sequentially
/// over `l`, so the summation order matches the direct kernel's.
fn gemm_bias(a: &[f32], b: &[f32], bias: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    let mut jt = 0;
    while jt < n {
        let nr = NR.min(n - jt);
        let mut it = 0;
        while it < m {
            let mr = MR.min(m - it);
            if mr == MR && nr == NR {
                // Full tile: one 8-wide lane accumulator per row, kept in
                // registers; the b-row lane is reused by all MR rows.
                let mut acc = [F32x8::splat(0.0); MR];
                for (i, row) in acc.iter_mut().enumerate() {
                    *row = F32x8::splat(bias[it + i]);
                }
                for l in 0..k {
                    let brow = F32x8::load(&b[l * n + jt..]);
                    for (i, row) in acc.iter_mut().enumerate() {
                        *row = row.add_scaled(F32x8::splat(a[(it + i) * k + l]), brow);
                    }
                }
                for (i, row) in acc.iter().enumerate() {
                    row.store(&mut c[(it + i) * n + jt..]);
                }
            } else {
                // Remainder tile: same accumulation order, variable size.
                for i in 0..mr {
                    let arow = &a[(it + i) * k..(it + i + 1) * k];
                    let mut acc = [0.0f32; NR];
                    acc[..nr].fill(bias[it + i]);
                    for (l, &a_il) in arow.iter().enumerate() {
                        let brow = &b[l * n + jt..l * n + jt + nr];
                        for (j, &b_lj) in brow.iter().enumerate() {
                            acc[j] += a_il * b_lj;
                        }
                    }
                    c[(it + i) * n + jt..(it + i) * n + jt + nr].copy_from_slice(&acc[..nr]);
                }
            }
            it += MR;
        }
        jt += NR;
    }
}

/// [`gemm_bias`] over panel-major packed weights: `A(i, l)` lives at
/// `panel[l*MR + i]`, so the lane step over `l` reads `MR` contiguous
/// weights. Identical accumulation order (and therefore identical f32
/// bits) to the unpacked GEMM — tail panels carry zero rows that are
/// computed in lanes but never stored.
fn gemm_bias_packed(
    ap: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(ap.len(), m.div_ceil(MR) * MR * k);
    debug_assert_eq!(c.len(), m * n);
    let mut jt = 0;
    while jt < n {
        let nr = NR.min(n - jt);
        for (p, panel) in ap.chunks_exact(MR * k).enumerate() {
            let it = p * MR;
            let mr = MR.min(m - it);
            if nr == NR {
                // Full-width tile: lane accumulators for all MR panel rows
                // (zero-padded tail rows cost lanes but no stores).
                let mut acc = [F32x8::splat(0.0); MR];
                for (i, row) in acc.iter_mut().take(mr).enumerate() {
                    *row = F32x8::splat(bias[it + i]);
                }
                for l in 0..k {
                    let brow = F32x8::load(&b[l * n + jt..]);
                    let al = &panel[l * MR..(l + 1) * MR];
                    for (i, row) in acc.iter_mut().enumerate() {
                        *row = row.add_scaled(F32x8::splat(al[i]), brow);
                    }
                }
                for (i, row) in acc.iter().take(mr).enumerate() {
                    row.store(&mut c[(it + i) * n + jt..]);
                }
            } else {
                // Remainder columns: same accumulation order, narrow tile.
                for i in 0..mr {
                    let mut acc = [0.0f32; NR];
                    acc[..nr].fill(bias[it + i]);
                    for l in 0..k {
                        let a_il = panel[l * MR + i];
                        let brow = &b[l * n + jt..l * n + jt + nr];
                        for (j, &b_lj) in brow.iter().enumerate() {
                            acc[j] += a_il * b_lj;
                        }
                    }
                    c[(it + i) * n + jt..(it + i) * n + jt + nr].copy_from_slice(&acc[..nr]);
                }
            }
        }
        jt += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvGeom;
    use crate::init::{he_conv2d, seeded_rng, uniform_tensor};
    use crate::pad::{pad2d, PadMode};

    fn run(kind: KernelKind, conv: &Conv2d, input: &Tensor) -> Tensor {
        let padded = pad2d(input, conv.geom().padding, conv.geom().padding, PadMode::Zero).unwrap();
        let mut out = Tensor::zeros([1, 1, 1, 1]);
        let mut scratch = ConvScratch::new();
        kind.kernel().forward_prepadded_into(conv, &padded, &mut out, &mut scratch).unwrap();
        out
    }

    #[test]
    fn gemm_matches_direct_bitwise_on_dense_conv() {
        let mut rng = seeded_rng(3);
        let conv = he_conv2d(3, 8, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([2, 3, 11, 9], -1.0, 1.0, &mut rng);
        let d = run(KernelKind::Direct, &conv, &input);
        let g = run(KernelKind::Im2colGemm, &conv, &input);
        assert_eq!(d.shape(), g.shape());
        assert_eq!(d.data(), g.data(), "same accumulation order must be bit-exact");
    }

    #[test]
    fn gemm_handles_stride_groups_and_bias() {
        let mut rng = seeded_rng(7);
        let mut conv = he_conv2d(4, 6, ConvGeom::new(3, 2, 1), 2, &mut rng).unwrap();
        for (i, b) in conv.bias_mut().iter_mut().enumerate() {
            *b = i as f32 * 0.25 - 0.5;
        }
        let input = uniform_tensor([1, 4, 13, 10], -1.0, 1.0, &mut rng);
        let d = run(KernelKind::Direct, &conv, &input);
        let g = run(KernelKind::Im2colGemm, &conv, &input);
        assert_eq!(d.data(), g.data());
    }

    #[test]
    fn gemm_handles_depthwise_and_pointwise() {
        let mut rng = seeded_rng(11);
        let dw = he_conv2d(5, 5, ConvGeom::same(3), 5, &mut rng).unwrap();
        let pw = he_conv2d(5, 7, ConvGeom::new(1, 1, 0), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 5, 9, 9], -1.0, 1.0, &mut rng);
        for conv in [&dw, &pw] {
            let d = run(KernelKind::Direct, conv, &input);
            let g = run(KernelKind::Im2colGemm, conv, &input);
            assert_eq!(d.data(), g.data());
        }
    }

    #[test]
    fn auto_policy_resolution() {
        let mut rng = seeded_rng(13);
        let dense = he_conv2d(16, 16, ConvGeom::same(3), 1, &mut rng).unwrap();
        let depthwise = he_conv2d(16, 16, ConvGeom::same(3), 16, &mut rng).unwrap();
        let scale = he_conv2d(16, 16, ConvGeom::new(1, 1, 0), 16, &mut rng).unwrap();
        assert_eq!(KernelPolicy::Auto.resolve(&dense), KernelKind::Im2colGemm);
        assert_eq!(KernelPolicy::Auto.resolve(&depthwise), KernelKind::Im2colGemm);
        // 1x1 depthwise is a per-channel scale: a degenerate GEMM.
        assert_eq!(KernelPolicy::Auto.resolve(&scale), KernelKind::Direct);
        assert_eq!(KernelPolicy::Direct.resolve(&dense), KernelKind::Direct);
        assert_eq!(KernelPolicy::Im2colGemm.resolve(&depthwise), KernelKind::Im2colGemm);
    }

    #[test]
    fn kernels_reject_channel_mismatch() {
        let conv = Conv2d::zeros(3, 4, ConvGeom::same(3)).unwrap();
        let bad = Tensor::zeros([1, 2, 8, 8]);
        let mut out = Tensor::zeros([1, 1, 1, 1]);
        let mut scratch = ConvScratch::new();
        for kind in [KernelKind::Direct, KernelKind::Im2colGemm] {
            assert!(kind
                .kernel()
                .forward_prepadded_into(&conv, &bad, &mut out, &mut scratch)
                .is_err());
        }
    }

    #[test]
    fn packed_weights_match_unpacked_bitwise() {
        let mut rng = seeded_rng(17);
        let cases = [
            he_conv2d(3, 8, ConvGeom::same(3), 1, &mut rng).unwrap(),
            he_conv2d(4, 6, ConvGeom::new(3, 2, 1), 2, &mut rng).unwrap(),
            he_conv2d(5, 5, ConvGeom::same(3), 5, &mut rng).unwrap(),
            he_conv2d(5, 7, ConvGeom::new(1, 1, 0), 1, &mut rng).unwrap(),
        ];
        for conv in &cases {
            let input = uniform_tensor([1, conv.c_in(), 9, 9], -1.0, 1.0, &mut rng);
            let padded =
                pad2d(&input, conv.geom().padding, conv.geom().padding, PadMode::Zero).unwrap();
            let mut scratch = ConvScratch::new();
            let mut plain = Tensor::default();
            Im2colGemmKernel
                .forward_prepadded_into(conv, &padded, &mut plain, &mut scratch)
                .unwrap();
            let packed = PackedWeights::pack(conv);
            let mut fast = Tensor::default();
            packed.forward_prepadded_into(conv, &padded, &mut fast, &mut scratch).unwrap();
            assert_eq!(plain.data(), fast.data(), "packing must not change a single bit");
        }
    }

    #[test]
    fn packed_panels_zero_pad_the_tail() {
        let mut rng = seeded_rng(19);
        // c_out = 6 with MR = 4: one full panel + a 2-row tail panel.
        let conv = he_conv2d(2, 6, ConvGeom::same(3), 1, &mut rng).unwrap();
        let packed = PackedWeights::pack(&conv);
        let kk = 2 * 9;
        assert_eq!(packed.len(), 8 * kk);
        assert!(!packed.is_empty());
        let tail = &packed.group_panels(0)[MR * kk..];
        for l in 0..kk {
            assert_eq!(tail[l * MR + 2], 0.0);
            assert_eq!(tail[l * MR + 3], 0.0);
        }
    }

    #[test]
    fn gemm_bias_packed_remainder_tiles() {
        // m=5, n=9, k=3: full 4x8 tile, tail panel, and column remainder.
        let (m, k, n) = (5usize, 3usize, 9usize);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 2.0).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32).collect();
        let mut plain = vec![0.0f32; m * n];
        gemm_bias(&a, &b, &bias, &mut plain, m, k, n);
        // Pack `a` panel-major by hand.
        let mut ap = vec![0.0f32; m.div_ceil(MR) * MR * k];
        for i in 0..m {
            for l in 0..k {
                ap[(i / MR) * MR * k + l * MR + i % MR] = a[i * k + l];
            }
        }
        let mut fast = vec![0.0f32; m * n];
        gemm_bias_packed(&ap, &b, &bias, &mut fast, m, k, n);
        assert_eq!(plain, fast);
    }

    #[test]
    fn gemm_bias_remainder_tiles() {
        // m=5, n=9, k=3 exercises both the full 4x8 tile and all remainders.
        let (m, k, n) = (5usize, 3usize, 9usize);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 2.0).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_bias(&a, &b, &bias, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut want = bias[i];
                for l in 0..k {
                    want += a[i * k + l] * b[l * n + j];
                }
                assert_eq!(c[i * n + j], want, "({i},{j})");
            }
        }
    }
}
