//! NCHW shape arithmetic, including the output-size rule of the paper's
//! Equation 1.

use std::fmt;

use crate::TensorError;

/// Shape of a 4-D NCHW tensor: `(batch, channels, height, width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
}

impl Shape {
    /// Creates a shape from `[n, c, h, w]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bconv_tensor::Shape;
    /// let s = Shape::new([1, 64, 224, 224]);
    /// assert_eq!(s.numel(), 64 * 224 * 224);
    /// ```
    pub fn new(dims: [usize; 4]) -> Self {
        Self { n: dims[0], c: dims[1], h: dims[2], w: dims[3] }
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Spatial height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Spatial width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Dimensions as `[n, c, h, w]`.
    pub fn dims(&self) -> [usize; 4] {
        [self.n, self.c, self.h, self.w]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Flat index of `(n, c, h, w)` in row-major NCHW order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline(always)]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{},{},{}]", self.n, self.c, self.h, self.w)
    }
}

impl From<[usize; 4]> for Shape {
    fn from(dims: [usize; 4]) -> Self {
        Self::new(dims)
    }
}

/// Output spatial size of a convolution / pooling window, the paper's
/// Equation 1:
///
/// `out = floor((in + 2p - k) / s) + 1`
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `stride == 0` or the padded
/// input is smaller than the kernel.
///
/// # Examples
///
/// ```
/// use bconv_tensor::shape::conv_out_dim;
/// // 8x8 input, 3x3 kernel, stride 1, padding 1 -> 8x8 output.
/// assert_eq!(conv_out_dim(8, 3, 1, 1)?, 8);
/// # Ok::<(), bconv_tensor::TensorError>(())
/// ```
pub fn conv_out_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::invalid("convolution stride must be non-zero"));
    }
    if kernel == 0 {
        return Err(TensorError::invalid("kernel size must be non-zero"));
    }
    let padded = input + 2 * padding;
    if padded < kernel {
        return Err(TensorError::invalid(format!(
            "padded input {padded} smaller than kernel {kernel}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major() {
        let s = Shape::new([2, 3, 4, 5]);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), s.numel() - 1);
    }

    #[test]
    fn eq1_matches_paper_examples() {
        // Paper §II-C: 8x8 input, k=3, s=1, p=1 -> 8x8.
        assert_eq!(conv_out_dim(8, 3, 1, 1).unwrap(), 8);
        // VGG conv: 224, k=3, s=1, p=1 -> 224.
        assert_eq!(conv_out_dim(224, 3, 1, 1).unwrap(), 224);
        // ResNet stem: 224, k=7, s=2, p=3 -> 112.
        assert_eq!(conv_out_dim(224, 7, 2, 3).unwrap(), 112);
        // 2x2 pooling: 224, k=2, s=2, p=0 -> 112.
        assert_eq!(conv_out_dim(224, 2, 2, 0).unwrap(), 112);
    }

    #[test]
    fn eq1_rejects_degenerate_parameters() {
        assert!(conv_out_dim(8, 3, 0, 1).is_err());
        assert!(conv_out_dim(1, 3, 1, 0).is_err());
        assert!(conv_out_dim(8, 0, 1, 0).is_err());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new([1, 2, 3, 4]).to_string(), "[1,2,3,4]");
    }
}
