//! Max / average / global-average pooling.
//!
//! Pooling is central to the paper twice over: the §II-F baselines replace
//! strided convolutions with stride-1 convolution + max pooling, and fixed
//! blocking merges adjacent blocks after every pooling layer (Figure 4a).

use crate::shape::conv_out_dim;
use crate::{Tensor, TensorError};

/// Max pooling with window `k`, stride `s` and zero implicit padding.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for degenerate geometry.
///
/// # Examples
///
/// ```
/// use bconv_tensor::{Tensor, pool::max_pool2d};
/// let t = Tensor::from_fn(1, 4, 4, |_, h, w| (h * 4 + w) as f32);
/// let p = max_pool2d(&t, 2, 2)?;
/// assert_eq!(p.shape().dims(), [1, 1, 2, 2]);
/// assert_eq!(p.at(0, 0, 0, 0), 5.0);
/// # Ok::<(), bconv_tensor::TensorError>(())
/// ```
pub fn max_pool2d(input: &Tensor, k: usize, s: usize) -> Result<Tensor, TensorError> {
    let mut out = Tensor::zeros([0, 0, 0, 0]);
    max_pool2d_into(input, k, s, &mut out)?;
    Ok(out)
}

/// [`max_pool2d`] into a caller-provided tensor, reusing its allocation
/// (`out` is reshaped to fit). The scratch-buffer variant block executors
/// call once per block.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for degenerate geometry.
pub fn max_pool2d_into(
    input: &Tensor,
    k: usize,
    s: usize,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    pool2d_into(input, k, s, PoolKind::Max, out)
}

/// Average pooling with window `k` and stride `s`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for degenerate geometry.
pub fn avg_pool2d(input: &Tensor, k: usize, s: usize) -> Result<Tensor, TensorError> {
    pool2d(input, k, s, PoolKind::Avg)
}

#[derive(Clone, Copy)]
enum PoolKind {
    Max,
    Avg,
}

fn pool2d(input: &Tensor, k: usize, s: usize, kind: PoolKind) -> Result<Tensor, TensorError> {
    let mut out = Tensor::zeros([0, 0, 0, 0]);
    pool2d_into(input, k, s, kind, &mut out)?;
    Ok(out)
}

fn pool2d_into(
    input: &Tensor,
    k: usize,
    s: usize,
    kind: PoolKind,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let [n, c, h, w] = input.shape().dims();
    let oh = conv_out_dim(h, k, s, 0)?;
    let ow = conv_out_dim(w, k, s, 0)?;
    out.reset([n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = match kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    for khi in 0..k {
                        for kwi in 0..k {
                            let v = input.at(ni, ci, ohi * s + khi, owi * s + kwi);
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                        }
                    }
                    if let PoolKind::Avg = kind {
                        acc /= (k * k) as f32;
                    }
                    *out.at_mut(ni, ci, ohi, owi) = acc;
                }
            }
        }
    }
    Ok(())
}

/// Global average pooling: collapses each channel map to a single value,
/// producing a `[n, c, 1, 1]` tensor (MobileNet-V1 / ResNet heads).
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    global_avg_pool_into(input, &mut out);
    out
}

/// [`global_avg_pool`] into a caller-provided output tensor (reshaped to
/// `[n, c, 1, 1]`, every element overwritten) — the allocation-free
/// variant for executors that pool buffers.
pub fn global_avg_pool_into(input: &Tensor, out: &mut Tensor) {
    let [n, c, h, w] = input.shape().dims();
    out.reset([n, c, 1, 1]);
    let denom = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let mut sum = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    sum += input.at(ni, ci, hi, wi);
                }
            }
            *out.at_mut(ni, ci, 0, 0) = sum / denom;
        }
    }
}

/// Argmax indices of a max-pool, needed by the training crate's backward
/// pass. Returns `(pooled, argmax)` where `argmax[i]` is the flat input
/// index that produced output element `i`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for degenerate geometry.
pub fn max_pool2d_with_argmax(
    input: &Tensor,
    k: usize,
    s: usize,
) -> Result<(Tensor, Vec<usize>), TensorError> {
    let [n, c, h, w] = input.shape().dims();
    let oh = conv_out_dim(h, k, s, 0)?;
    let ow = conv_out_dim(w, k, s, 0)?;
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let ishape = input.shape();
    let mut flat = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for khi in 0..k {
                        for kwi in 0..k {
                            let hh = ohi * s + khi;
                            let ww = owi * s + kwi;
                            let v = input.at(ni, ci, hh, ww);
                            if v > best {
                                best = v;
                                best_idx = ishape.index(ni, ci, hh, ww);
                            }
                        }
                    }
                    *out.at_mut(ni, ci, ohi, owi) = best;
                    argmax[flat] = best_idx;
                    flat += 1;
                }
            }
        }
    }
    Ok((out, argmax))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maximum() {
        let t = Tensor::from_fn(1, 4, 4, |_, h, w| (h * 4 + w) as f32);
        let p = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.at(0, 0, 0, 0), 5.0);
        assert_eq!(p.at(0, 0, 1, 1), 15.0);
    }

    #[test]
    fn avg_pool_averages_window() {
        let t = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32);
        let p = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.at(0, 0, 0, 0), 1.5);
    }

    #[test]
    fn global_avg_pool_collapses_spatial_dims() {
        let t = Tensor::from_fn(2, 3, 3, |c, _, _| c as f32);
        let p = global_avg_pool(&t);
        assert_eq!(p.shape().dims(), [1, 2, 1, 1]);
        assert_eq!(p.at(0, 0, 0, 0), 0.0);
        assert_eq!(p.at(0, 1, 0, 0), 1.0);
    }

    #[test]
    fn argmax_points_at_the_maximum() {
        let t = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32);
        let (p, idx) = max_pool2d_with_argmax(&t, 2, 2).unwrap();
        assert_eq!(p.at(0, 0, 0, 0), 3.0);
        assert_eq!(idx, vec![3]);
    }

    #[test]
    fn pooling_commutes_with_block_split() {
        // 2x2 pooling of an 8x8 map equals pooling each 4x4 quadrant and
        // concatenating — the property that makes pooling "naturally
        // splittable" (paper §II-E).
        let t = Tensor::from_fn(1, 8, 8, |_, h, w| ((h * 8 + w) % 7) as f32);
        let full = max_pool2d(&t, 2, 2).unwrap();
        let mut stitched = Tensor::zeros([1, 1, 4, 4]);
        for bh in 0..2 {
            for bw in 0..2 {
                let block = t.crop(bh * 4, bw * 4, 4, 4).unwrap();
                let pooled = max_pool2d(&block, 2, 2).unwrap();
                stitched.paste(&pooled, bh * 2, bw * 2).unwrap();
            }
        }
        assert_eq!(full, stitched);
    }
}
