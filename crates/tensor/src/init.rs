//! Seeded, deterministic weight initialisation.
//!
//! Every experiment binary in this reproduction uses fixed seeds so tables
//! and figures are bit-for-bit reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::conv::{Conv2d, ConvGeom};
use crate::linear::Linear;
use crate::{Tensor, TensorError};

/// Returns a normally-distributed sample via Box–Muller from two uniforms,
/// avoiding a dependency on `rand_distr`.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills a tensor with `N(0, std^2)` samples.
pub fn fill_normal(t: &mut Tensor, std: f32, rng: &mut StdRng) {
    for v in t.data_mut() {
        *v = normal(rng) * std;
    }
}

/// He (Kaiming) normal initialisation for a convolution:
/// `std = sqrt(2 / fan_in)` with `fan_in = k*k*c_in/groups`.
///
/// # Errors
///
/// Propagates constructor errors from [`Conv2d::new`].
pub fn he_conv2d(
    c_in: usize,
    c_out: usize,
    geom: ConvGeom,
    groups: usize,
    rng: &mut StdRng,
) -> Result<Conv2d, TensorError> {
    let cin_per_group = c_in / groups.max(1);
    let fan_in = (geom.kernel * geom.kernel * cin_per_group).max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    let mut weight = Tensor::zeros([c_out, cin_per_group, geom.kernel, geom.kernel]);
    fill_normal(&mut weight, std, rng);
    Conv2d::new(weight, vec![0.0; c_out], geom, groups)
}

/// He normal initialisation for a linear layer.
///
/// # Errors
///
/// Propagates constructor errors from [`Linear::new`].
pub fn he_linear(
    in_features: usize,
    out_features: usize,
    rng: &mut StdRng,
) -> Result<Linear, TensorError> {
    let std = (2.0 / in_features.max(1) as f32).sqrt();
    let weight = (0..in_features * out_features).map(|_| normal(rng) * std).collect();
    Linear::new(in_features, out_features, weight, vec![0.0; out_features])
}

/// Uniform random tensor in `[lo, hi)`, for synthetic inputs.
pub fn uniform_tensor(dims: [usize; 4], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// Convenience: a deterministically-seeded RNG.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let c1 = he_conv2d(3, 8, ConvGeom::same(3), 1, &mut r1).unwrap();
        let c2 = he_conv2d(3, 8, ConvGeom::same(3), 1, &mut r2).unwrap();
        assert_eq!(c1.weight().data(), c2.weight().data());
    }

    #[test]
    fn different_seed_different_weights() {
        let mut r1 = seeded_rng(1);
        let mut r2 = seeded_rng(2);
        let c1 = he_conv2d(3, 8, ConvGeom::same(3), 1, &mut r1).unwrap();
        let c2 = he_conv2d(3, 8, ConvGeom::same(3), 1, &mut r2).unwrap();
        assert_ne!(c1.weight().data(), c2.weight().data());
    }

    #[test]
    fn he_std_is_plausible() {
        let mut rng = seeded_rng(7);
        let conv = he_conv2d(64, 64, ConvGeom::same(3), 1, &mut rng).unwrap();
        let data = conv.weight().data();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        let expected = 2.0 / (3.0 * 3.0 * 64.0);
        assert!((var - expected).abs() / expected < 0.15, "var={var}");
    }

    #[test]
    fn uniform_tensor_respects_bounds() {
        let mut rng = seeded_rng(3);
        let t = uniform_tensor([1, 2, 4, 4], -1.0, 1.0, &mut rng);
        assert!(t.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }
}
