//! Spatial padding in the three modes the paper evaluates as *block padding*
//! (§II-F, Figure 6): zero, replicate and reflect.

use crate::{Tensor, TensorError};

/// How out-of-bounds pixels are synthesised when padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PadMode {
    /// Pad with zeros (the paper's default block padding).
    #[default]
    Zero,
    /// Copy the boundary pixel outwards.
    Replicate,
    /// Mirror around the boundary pixel (the boundary itself is the axis and
    /// is not repeated), matching PyTorch `ReflectionPad2d`.
    Reflect,
}

impl PadMode {
    /// All modes, in the order Figure 6 reports them.
    pub const ALL: [PadMode; 3] = [PadMode::Zero, PadMode::Replicate, PadMode::Reflect];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PadMode::Zero => "zero",
            PadMode::Replicate => "replicate",
            PadMode::Reflect => "reflect",
        }
    }
}

/// Maps a possibly out-of-range coordinate to a source coordinate, or `None`
/// when the mode synthesises a zero.
#[inline]
fn resolve(coord: isize, len: usize, mode: PadMode) -> Option<usize> {
    if coord >= 0 && (coord as usize) < len {
        return Some(coord as usize);
    }
    match mode {
        PadMode::Zero => None,
        PadMode::Replicate => Some(coord.clamp(0, len as isize - 1) as usize),
        PadMode::Reflect => {
            if len == 1 {
                return Some(0);
            }
            // Reflect with period 2*(len-1), boundary not repeated.
            let period = 2 * (len as isize - 1);
            let mut c = coord.rem_euclid(period);
            if c >= len as isize {
                c = period - c;
            }
            Some(c as usize)
        }
    }
}

/// Pads a tensor spatially by `(ph_top, ph_bottom, pw_left, pw_right)`.
///
/// Asymmetric padding is required by block convolution when the paper's
/// Equation 2 yields asymmetric block padding (e.g. strided layers).
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when reflect padding exceeds
/// what the input size supports (`pad >= len` has no defined reflection).
///
/// # Examples
///
/// ```
/// use bconv_tensor::{Tensor, pad::{pad2d_asym, PadMode}};
/// let t = Tensor::filled([1, 1, 2, 2], 3.0);
/// let p = pad2d_asym(&t, 1, 1, 1, 1, PadMode::Zero)?;
/// assert_eq!(p.shape().dims(), [1, 1, 4, 4]);
/// assert_eq!(p.at(0, 0, 0, 0), 0.0);
/// assert_eq!(p.at(0, 0, 1, 1), 3.0);
/// # Ok::<(), bconv_tensor::TensorError>(())
/// ```
pub fn pad2d_asym(
    input: &Tensor,
    ph_top: usize,
    ph_bottom: usize,
    pw_left: usize,
    pw_right: usize,
    mode: PadMode,
) -> Result<Tensor, TensorError> {
    let mut out = Tensor::zeros([0, 0, 0, 0]);
    pad2d_asym_into(input, ph_top, ph_bottom, pw_left, pw_right, mode, &mut out)?;
    Ok(out)
}

/// [`pad2d_asym`] into a caller-provided tensor, reusing its allocation
/// (`out` is reshaped to fit). The scratch-buffer variant block executors
/// call once per block.
///
/// # Errors
///
/// See [`pad2d_asym`].
pub fn pad2d_asym_into(
    input: &Tensor,
    ph_top: usize,
    ph_bottom: usize,
    pw_left: usize,
    pw_right: usize,
    mode: PadMode,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let [n, c, h, w] = input.shape().dims();
    if mode == PadMode::Reflect {
        let max_h = ph_top.max(ph_bottom);
        let max_w = pw_left.max(pw_right);
        if (h > 0 && max_h >= h) || (w > 0 && max_w >= w) {
            return Err(TensorError::invalid(format!(
                "reflect padding ({max_h},{max_w}) must be smaller than spatial dims ({h},{w})"
            )));
        }
    }
    let oh = h + ph_top + ph_bottom;
    let ow = w + pw_left + pw_right;
    out.reset([n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..oh {
                let src_h = resolve(hi as isize - ph_top as isize, h, mode);
                for wi in 0..ow {
                    let src_w = resolve(wi as isize - pw_left as isize, w, mode);
                    let v = match (src_h, src_w) {
                        (Some(sh), Some(sw)) => input.at(ni, ci, sh, sw),
                        _ => 0.0,
                    };
                    *out.at_mut(ni, ci, hi, wi) = v;
                }
            }
        }
    }
    Ok(())
}

/// Symmetric spatial padding by `(ph, pw)` on each side.
///
/// # Errors
///
/// See [`pad2d_asym`].
pub fn pad2d(input: &Tensor, ph: usize, pw: usize, mode: PadMode) -> Result<Tensor, TensorError> {
    pad2d_asym(input, ph, ph, pw, pw, mode)
}

/// Backward pass of [`pad2d_asym`]: scatter-adds a gradient w.r.t. the
/// padded tensor back onto the unpadded input.
///
/// Padding is linear, so its adjoint routes each padded-pixel gradient to
/// the source pixel that produced it (zero padding drops it, replicate and
/// reflect accumulate onto boundary pixels). Used by the training crate to
/// backpropagate through *block padding* in all three modes of Figure 6.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `grad_padded` is not the
/// padded shape of `[n, c, h, w]` = `input_dims`.
pub fn pad2d_backward(
    grad_padded: &Tensor,
    input_dims: [usize; 4],
    ph_top: usize,
    ph_bottom: usize,
    pw_left: usize,
    pw_right: usize,
    mode: PadMode,
) -> Result<Tensor, TensorError> {
    let [n, c, h, w] = input_dims;
    let [gn, gc, gh, gw] = grad_padded.shape().dims();
    if gn != n || gc != c || gh != h + ph_top + ph_bottom || gw != w + pw_left + pw_right {
        return Err(TensorError::shape_mismatch(
            "pad2d_backward",
            format!("[{n},{c},{},{}]", h + ph_top + ph_bottom, w + pw_left + pw_right),
            format!("[{gn},{gc},{gh},{gw}]"),
        ));
    }
    let mut grad = Tensor::zeros(input_dims);
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..gh {
                let src_h = resolve(hi as isize - ph_top as isize, h, mode);
                for wi in 0..gw {
                    let src_w = resolve(wi as isize - pw_left as isize, w, mode);
                    if let (Some(sh), Some(sw)) = (src_h, src_w) {
                        *grad.at_mut(ni, ci, sh, sw) += grad_padded.at(ni, ci, hi, wi);
                    }
                }
            }
        }
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq3() -> Tensor {
        // 1x1x3x3 with values 0..9.
        Tensor::from_fn(1, 3, 3, |_, h, w| (h * 3 + w) as f32)
    }

    #[test]
    fn zero_padding_surrounds_with_zeros() {
        let p = pad2d(&seq3(), 1, 1, PadMode::Zero).unwrap();
        assert_eq!(p.shape().dims(), [1, 1, 5, 5]);
        for i in 0..5 {
            assert_eq!(p.at(0, 0, 0, i), 0.0);
            assert_eq!(p.at(0, 0, 4, i), 0.0);
            assert_eq!(p.at(0, 0, i, 0), 0.0);
            assert_eq!(p.at(0, 0, i, 4), 0.0);
        }
        assert_eq!(p.at(0, 0, 1, 1), 0.0 + 0.0); // original (0,0)
        assert_eq!(p.at(0, 0, 3, 3), 8.0);
    }

    #[test]
    fn replicate_padding_copies_boundary() {
        let p = pad2d(&seq3(), 1, 1, PadMode::Replicate).unwrap();
        assert_eq!(p.at(0, 0, 0, 0), 0.0); // corner copies (0,0)
        assert_eq!(p.at(0, 0, 0, 2), 1.0); // top copies row 0
        assert_eq!(p.at(0, 0, 4, 4), 8.0); // corner copies (2,2)
        assert_eq!(p.at(0, 0, 2, 0), 3.0); // left copies column 0
    }

    #[test]
    fn reflect_padding_mirrors_without_repeating_boundary() {
        // Row values 0 1 2 reflect-padded by 1 -> 1 0 1 2 1.
        let p = pad2d(&seq3(), 1, 1, PadMode::Reflect).unwrap();
        assert_eq!(p.at(0, 0, 1, 0), 1.0);
        assert_eq!(p.at(0, 0, 1, 4), 1.0);
        // Column direction: rows 0,3,6 -> padded col values 3,0,3,6,3.
        assert_eq!(p.at(0, 0, 0, 1), 3.0);
        assert_eq!(p.at(0, 0, 4, 1), 3.0);
    }

    #[test]
    fn reflect_rejects_padding_wider_than_input() {
        let t = Tensor::filled([1, 1, 2, 2], 1.0);
        assert!(pad2d(&t, 2, 0, PadMode::Reflect).is_err());
        assert!(pad2d(&t, 1, 1, PadMode::Reflect).is_ok());
    }

    #[test]
    fn asymmetric_padding_shapes() {
        let p = pad2d_asym(&seq3(), 0, 2, 1, 0, PadMode::Zero).unwrap();
        assert_eq!(p.shape().dims(), [1, 1, 5, 4]);
        // Top row is original row 0 shifted right by 1.
        assert_eq!(p.at(0, 0, 0, 1), 0.0);
        assert_eq!(p.at(0, 0, 0, 2), 1.0);
    }

    #[test]
    fn single_pixel_reflect_degenerates_to_replicate() {
        let t = Tensor::filled([1, 1, 1, 1], 5.0);
        // len == 1: reflection is defined as the pixel itself.
        let p = pad2d(&t, 0, 0, PadMode::Reflect).unwrap();
        assert_eq!(p.at(0, 0, 0, 0), 5.0);
    }

    #[test]
    fn pad_backward_zero_crops_the_gradient() {
        let grad_padded = Tensor::filled([1, 1, 5, 5], 1.0);
        let g = pad2d_backward(&grad_padded, [1, 1, 3, 3], 1, 1, 1, 1, PadMode::Zero).unwrap();
        // Every interior pixel receives exactly its own gradient.
        assert_eq!(g.data(), &[1.0; 9]);
    }

    #[test]
    fn pad_backward_replicate_accumulates_on_boundary() {
        let grad_padded = Tensor::filled([1, 1, 5, 5], 1.0);
        let g = pad2d_backward(&grad_padded, [1, 1, 3, 3], 1, 1, 1, 1, PadMode::Replicate).unwrap();
        // Corner pixels receive their own + 3 replicated gradients.
        assert_eq!(g.at(0, 0, 0, 0), 4.0);
        assert_eq!(g.at(0, 0, 0, 1), 2.0);
        assert_eq!(g.at(0, 0, 1, 1), 1.0);
        // Total gradient is conserved.
        assert_eq!(g.data().iter().sum::<f32>(), 25.0);
    }

    #[test]
    fn pad_backward_reflect_conserves_gradient_mass() {
        let grad_padded = Tensor::filled([1, 1, 5, 5], 1.0);
        let g = pad2d_backward(&grad_padded, [1, 1, 3, 3], 1, 1, 1, 1, PadMode::Reflect).unwrap();
        assert_eq!(g.data().iter().sum::<f32>(), 25.0);
        // Reflection maps each padded row/col onto interior index 1, so the
        // centre pixel accumulates 3x3 contributions while corners keep 1.
        assert_eq!(g.at(0, 0, 1, 1), 9.0);
        assert_eq!(g.at(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn pad_backward_shape_mismatch_errors() {
        let grad = Tensor::zeros([1, 1, 4, 4]);
        assert!(pad2d_backward(&grad, [1, 1, 3, 3], 1, 1, 1, 1, PadMode::Zero).is_err());
    }

    #[test]
    fn pad_mode_names() {
        assert_eq!(PadMode::ALL.map(|m| m.name()), ["zero", "replicate", "reflect"]);
    }
}
