//! Direct 2-D convolution with stride, padding and groups.
//!
//! Grouped convolution with `groups == channels` is depthwise convolution
//! (MobileNet-V1); a 1×1 kernel is pointwise convolution. Both are required
//! by the paper's §II-E evaluation.

use crate::kernel::{ConvScratch, KernelKind};
use crate::pad::{pad2d, PadMode};
use crate::shape::conv_out_dim;
use crate::{Tensor, TensorError};

/// Convolution geometry: square kernel, uniform stride and symmetric padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeom {
    /// Square kernel size `k`.
    pub kernel: usize,
    /// Stride `s` in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero-padding `p` on each spatial side.
    pub padding: usize,
}

impl ConvGeom {
    /// Creates a geometry from `(k, s, p)`.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Self { kernel, stride, padding }
    }

    /// "Same" geometry for odd `k`: stride 1, padding `k/2`, preserving the
    /// spatial size.
    pub fn same(kernel: usize) -> Self {
        Self::new(kernel, 1, kernel / 2)
    }

    /// Output spatial size for an input of `(h, w)` (paper Equation 1).
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError::InvalidParameter`] from [`conv_out_dim`].
    pub fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        Ok((
            conv_out_dim(h, self.kernel, self.stride, self.padding)?,
            conv_out_dim(w, self.kernel, self.stride, self.padding)?,
        ))
    }
}

/// A 2-D convolution layer: weights `[c_out, c_in/groups, k, k]`, per-output
/// channel bias, geometry and group count.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    weight: Tensor,
    bias: Vec<f32>,
    geom: ConvGeom,
    groups: usize,
}

impl Conv2d {
    /// Creates a convolution from explicit weights and bias.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if the weight kernel does
    /// not match `geom.kernel`, the bias length does not match the output
    /// channel count, or the groups do not divide the channel counts.
    pub fn new(
        weight: Tensor,
        bias: Vec<f32>,
        geom: ConvGeom,
        groups: usize,
    ) -> Result<Self, TensorError> {
        let [c_out, _c_in_per_group, kh, kw] = weight.shape().dims();
        if kh != geom.kernel || kw != geom.kernel {
            return Err(TensorError::invalid(format!(
                "weight kernel ({kh},{kw}) does not match geometry kernel {}",
                geom.kernel
            )));
        }
        if bias.len() != c_out {
            return Err(TensorError::shape_mismatch(
                "Conv2d bias",
                format!("{c_out}"),
                format!("{}", bias.len()),
            ));
        }
        if groups == 0 || c_out % groups != 0 {
            return Err(TensorError::invalid(format!(
                "groups {groups} must divide output channels {c_out}"
            )));
        }
        Ok(Self { weight, bias, geom, groups })
    }

    /// Zero-initialised convolution with `c_in -> c_out` channels.
    ///
    /// # Errors
    ///
    /// See [`Conv2d::new`].
    pub fn zeros(c_in: usize, c_out: usize, geom: ConvGeom) -> Result<Self, TensorError> {
        Self::new(Tensor::zeros([c_out, c_in, geom.kernel, geom.kernel]), vec![0.0; c_out], geom, 1)
    }

    /// A convolution whose centre tap is 1 so that (with "same" geometry) it
    /// reproduces its input; useful in tests and doc examples.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if `c_in != c_out` or the
    /// kernel is even.
    pub fn identity_like(c_in: usize, c_out: usize, geom: ConvGeom) -> Result<Self, TensorError> {
        if c_in != c_out {
            return Err(TensorError::invalid("identity convolution needs c_in == c_out"));
        }
        if geom.kernel.is_multiple_of(2) {
            return Err(TensorError::invalid("identity convolution needs an odd kernel"));
        }
        let mut conv = Self::zeros(c_in, c_out, geom)?;
        let centre = geom.kernel / 2;
        for c in 0..c_out {
            *conv.weight.at_mut(c, c, centre, centre) = 1.0;
        }
        Ok(conv)
    }

    /// The weight tensor `[c_out, c_in/groups, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight tensor (used by the training crate).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Per-output-channel bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias (used by the training crate).
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// The convolution geometry.
    pub fn geom(&self) -> ConvGeom {
        self.geom
    }

    /// Group count (`1` = dense, `c_in` = depthwise).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.weight.shape().dims()[0]
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.weight.shape().dims()[1] * self.groups
    }

    /// Applies the convolution with its own symmetric zero padding.
    ///
    /// # Errors
    ///
    /// Returns an error if the input channel count does not match or the
    /// geometry is infeasible for the input size.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let padded = pad2d(input, self.geom.padding, self.geom.padding, PadMode::Zero)?;
        self.forward_prepadded(&padded)
    }

    /// Applies the convolution to an input that has **already been padded**
    /// by the caller (no internal padding is added).
    ///
    /// This is the entry point used by block convolution, which performs its
    /// own per-block padding in an arbitrary [`PadMode`] before convolving.
    ///
    /// # Errors
    ///
    /// Returns an error if the input channel count does not match or the
    /// input is smaller than the kernel.
    pub fn forward_prepadded(&self, padded: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_prepadded_with(padded, KernelKind::Direct)
    }

    /// [`forward_prepadded`](Self::forward_prepadded) through an explicit
    /// [`KernelKind`] (see [`crate::kernel`] for the implementations).
    ///
    /// # Errors
    ///
    /// See [`forward_prepadded`](Self::forward_prepadded).
    pub fn forward_prepadded_with(
        &self,
        padded: &Tensor,
        kind: KernelKind,
    ) -> Result<Tensor, TensorError> {
        let mut out = Tensor::zeros([0, 0, 0, 0]);
        let mut scratch = ConvScratch::new();
        self.forward_prepadded_into(padded, kind, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Scratch-buffer variant of
    /// [`forward_prepadded_with`](Self::forward_prepadded_with): writes
    /// into `out` (reshaped to fit) and reuses `scratch` across calls —
    /// the entry point for per-block executors that must not allocate in
    /// steady state.
    ///
    /// # Errors
    ///
    /// See [`forward_prepadded`](Self::forward_prepadded).
    pub fn forward_prepadded_into(
        &self,
        padded: &Tensor,
        kind: KernelKind,
        out: &mut Tensor,
        scratch: &mut ConvScratch,
    ) -> Result<(), TensorError> {
        kind.kernel().forward_prepadded_into(self, padded, out, scratch)
    }

    /// Multiply–accumulate count (FLOPs/2) for an input of `(h, w)`,
    /// counting only the convolution arithmetic (paper §II-C notes block
    /// convolution leaves this unchanged).
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from [`ConvGeom::out_hw`].
    pub fn macs(&self, h: usize, w: usize) -> Result<u64, TensorError> {
        let (oh, ow) = self.geom.out_hw(h, w)?;
        let k = self.geom.kernel as u64;
        let per_out = k * k * (self.c_in() / self.groups) as u64;
        Ok(per_out * (oh * ow) as u64 * self.c_out() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_convolution_reproduces_input() {
        let input = Tensor::from_fn(3, 5, 5, |c, h, w| (c * 25 + h * 5 + w) as f32);
        let conv = Conv2d::identity_like(3, 3, ConvGeom::same(3)).unwrap();
        let out = conv.forward(&input).unwrap();
        assert!(out.approx_eq(&input, 1e-6).unwrap());
    }

    #[test]
    fn known_3x3_convolution() {
        // 1-channel 3x3 input of ones, 3x3 kernel of ones, padding 1:
        // corners see 4 taps, edges 6, centre 9.
        let input = Tensor::filled([1, 1, 3, 3], 1.0);
        let conv = Conv2d::new(Tensor::filled([1, 1, 3, 3], 1.0), vec![0.0], ConvGeom::same(3), 1)
            .unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.at(0, 0, 0, 0), 4.0);
        assert_eq!(out.at(0, 0, 0, 1), 6.0);
        assert_eq!(out.at(0, 0, 1, 1), 9.0);
    }

    #[test]
    fn bias_is_added_once_per_output() {
        let input = Tensor::zeros([1, 1, 4, 4]);
        let conv =
            Conv2d::new(Tensor::zeros([2, 1, 1, 1]), vec![1.5, -2.0], ConvGeom::new(1, 1, 0), 1)
                .unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.at(0, 0, 2, 2), 1.5);
        assert_eq!(out.at(0, 1, 2, 2), -2.0);
    }

    #[test]
    fn stride_2_halves_resolution() {
        let input = Tensor::filled([1, 1, 8, 8], 1.0);
        let conv =
            Conv2d::new(Tensor::filled([1, 1, 3, 3], 1.0), vec![0.0], ConvGeom::new(3, 2, 1), 1)
                .unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), [1, 1, 4, 4]);
    }

    #[test]
    fn depthwise_keeps_channels_independent() {
        // Depthwise conv: channel 0 scaled by 2, channel 1 scaled by 3.
        let input = Tensor::from_fn(2, 2, 2, |c, _, _| (c + 1) as f32);
        let mut weight = Tensor::zeros([2, 1, 1, 1]);
        *weight.at_mut(0, 0, 0, 0) = 2.0;
        *weight.at_mut(1, 0, 0, 0) = 3.0;
        let conv = Conv2d::new(weight, vec![0.0; 2], ConvGeom::new(1, 1, 0), 2).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.at(0, 0, 0, 0), 2.0);
        assert_eq!(out.at(0, 1, 0, 0), 6.0);
    }

    #[test]
    fn pointwise_mixes_channels() {
        let input = Tensor::from_fn(2, 1, 1, |c, _, _| (c + 1) as f32); // [1, 2]
        let mut weight = Tensor::zeros([1, 2, 1, 1]);
        *weight.at_mut(0, 0, 0, 0) = 10.0;
        *weight.at_mut(0, 1, 0, 0) = 100.0;
        let conv = Conv2d::new(weight, vec![0.0], ConvGeom::new(1, 1, 0), 1).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.at(0, 0, 0, 0), 10.0 + 200.0);
    }

    #[test]
    fn macs_matches_hand_count() {
        // Figure 3 example: 8x8x3 input, 3x3x3 filter, same conv ->
        // 64 spatial positions x 27 taps x 1 output channel.
        let conv = Conv2d::zeros(3, 1, ConvGeom::same(3)).unwrap();
        assert_eq!(conv.macs(8, 8).unwrap(), 64 * 27);
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let conv = Conv2d::zeros(3, 4, ConvGeom::same(3)).unwrap();
        let input = Tensor::zeros([1, 2, 8, 8]);
        assert!(conv.forward(&input).is_err());
    }

    #[test]
    fn constructor_validations() {
        // Kernel mismatch between weight and geometry.
        assert!(
            Conv2d::new(Tensor::zeros([1, 1, 3, 3]), vec![0.0], ConvGeom::new(5, 1, 2), 1).is_err()
        );
        // Bias length mismatch.
        assert!(Conv2d::new(Tensor::zeros([2, 1, 3, 3]), vec![0.0], ConvGeom::same(3), 1).is_err());
        // Groups must divide channels.
        assert!(
            Conv2d::new(Tensor::zeros([3, 1, 3, 3]), vec![0.0; 3], ConvGeom::same(3), 2).is_err()
        );
    }
}
