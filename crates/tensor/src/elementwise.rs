//! Element-wise tensor arithmetic.
//!
//! Element-wise summation is one of the operations the paper lists as
//! "naturally splittable in the spatial dimension" (§II-E) — the residual
//! add of ResNet works unchanged under block convolution.

use crate::{Tensor, TensorError};

/// Element-wise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
///
/// # Examples
///
/// ```
/// use bconv_tensor::{Tensor, elementwise::add};
/// let a = Tensor::filled([1, 1, 2, 2], 1.0);
/// let b = Tensor::filled([1, 1, 2, 2], 2.0);
/// assert_eq!(add(&a, &b)?.data(), &[3.0; 4]);
/// # Ok::<(), bconv_tensor::TensorError>(())
/// ```
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    add_into(a, b, &mut out)?;
    Ok(out)
}

/// [`add`] into a caller-provided output tensor (reshaped to match,
/// every element overwritten) — the allocation-free variant for
/// executors that pool buffers.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::shape_mismatch(
            "elementwise::add",
            a.shape().to_string(),
            b.shape().to_string(),
        ));
    }
    out.reset(a.shape());
    for ((o, av), bv) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = av + bv;
    }
    Ok(())
}

/// In-place element-wise accumulate `a += b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add_inplace(a: &mut Tensor, b: &Tensor) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::shape_mismatch(
            "elementwise::add_inplace",
            a.shape().to_string(),
            b.shape().to_string(),
        ));
    }
    for (o, v) in a.data_mut().iter_mut().zip(b.data()) {
        *o += v;
    }
    Ok(())
}

/// Element-wise difference `a - b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::shape_mismatch(
            "elementwise::sub",
            a.shape().to_string(),
            b.shape().to_string(),
        ));
    }
    let mut out = a.clone();
    for (o, v) in out.data_mut().iter_mut().zip(b.data()) {
        *o -= v;
    }
    Ok(out)
}

/// Scales every element by `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|v| v * s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_are_inverse() {
        let a = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32);
        let b = Tensor::filled([1, 1, 2, 2], 3.0);
        let roundtrip = sub(&add(&a, &b).unwrap(), &b).unwrap();
        assert!(roundtrip.approx_eq(&a, 1e-6).unwrap());
    }

    #[test]
    fn add_inplace_matches_add() {
        let a = Tensor::from_fn(1, 2, 2, |_, h, w| (h + w) as f32);
        let b = Tensor::filled([1, 1, 2, 2], 0.5);
        let expected = add(&a, &b).unwrap();
        let mut inplace = a.clone();
        add_inplace(&mut inplace, &b).unwrap();
        assert_eq!(inplace, expected);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros([1, 1, 2, 2]);
        let b = Tensor::zeros([1, 1, 2, 3]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
    }

    #[test]
    fn scale_multiplies_every_element() {
        let a = Tensor::filled([1, 1, 2, 2], 2.0);
        assert_eq!(scale(&a, 2.5).data(), &[5.0; 4]);
    }

    #[test]
    fn residual_add_commutes_with_block_split() {
        // Element-wise sum is naturally splittable (paper §II-E): summing
        // then cropping equals cropping then summing.
        let a = Tensor::from_fn(1, 6, 6, |_, h, w| (h * 6 + w) as f32);
        let b = Tensor::from_fn(1, 6, 6, |_, h, w| ((h + w) % 3) as f32);
        let whole = add(&a, &b).unwrap().crop(0, 3, 3, 3).unwrap();
        let split = add(&a.crop(0, 3, 3, 3).unwrap(), &b.crop(0, 3, 3, 3).unwrap()).unwrap();
        assert_eq!(whole, split);
    }
}
