//! Error type shared by all tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// The shape that was expected.
        expected: String,
        /// The shape that was provided.
        actual: String,
    },
    /// A parameter value is invalid (zero stride, kernel larger than padded
    /// input, channel count not divisible by groups, ...).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        context: String,
    },
    /// A spatial region (crop/paste) falls outside the tensor bounds.
    OutOfBounds {
        /// Human-readable description of the offending access.
        context: String,
    },
    /// A serving request's deadline expired before it was executed; the
    /// request was shed without reaching a worker. Typed (rather than a
    /// generic parameter error) so load-shedding callers can match on it
    /// and retry or degrade without string inspection.
    DeadlineExpired,
}

impl TensorError {
    /// Convenience constructor for [`TensorError::ShapeMismatch`].
    pub fn shape_mismatch(
        context: impl Into<String>,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Self {
        Self::ShapeMismatch {
            context: context.into(),
            expected: expected.into(),
            actual: actual.into(),
        }
    }

    /// Convenience constructor for [`TensorError::InvalidParameter`].
    pub fn invalid(context: impl Into<String>) -> Self {
        Self::InvalidParameter { context: context.into() }
    }

    /// Convenience constructor for [`TensorError::OutOfBounds`].
    pub fn out_of_bounds(context: impl Into<String>) -> Self {
        Self::OutOfBounds { context: context.into() }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { context, expected, actual } => {
                write!(f, "shape mismatch in {context}: expected {expected}, got {actual}")
            }
            Self::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
            Self::OutOfBounds { context } => write!(f, "out of bounds: {context}"),
            Self::DeadlineExpired => {
                write!(f, "deadline expired: request shed before execution")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::shape_mismatch("conv2d input", "[1,3,8,8]", "[1,4,8,8]");
        let text = err.to_string();
        assert!(text.contains("conv2d input"));
        assert!(text.contains("[1,3,8,8]"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
