//! The dense NCHW [`Tensor`] type and its spatial crop/paste primitives.
//!
//! Block convolution (paper §II-C) is a *split–pad–conv–concat* mechanism;
//! [`Tensor::crop`] and [`Tensor::paste`] are the split and concat halves.

use std::fmt;

use crate::{Shape, TensorError};

/// A dense, owned, `f32`, 4-D tensor in NCHW layout.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use bconv_tensor::Tensor;
    /// let t = Tensor::zeros([1, 3, 8, 8]);
    /// assert_eq!(t.data().iter().sum::<f32>(), 0.0);
    /// ```
    pub fn zeros(dims: impl Into<Shape>) -> Self {
        let shape = dims.into();
        Self { data: vec![0.0; shape.numel()], shape }
    }

    /// Creates a tensor with every element set to `value`.
    pub fn filled(dims: impl Into<Shape>, value: f32) -> Self {
        let shape = dims.into();
        Self { data: vec![value; shape.numel()], shape }
    }

    /// Creates a tensor from a flat row-major NCHW vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the number of elements implied by `dims`.
    pub fn from_vec(dims: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = dims.into();
        if data.len() != shape.numel() {
            return Err(TensorError::shape_mismatch(
                "Tensor::from_vec",
                format!("{} elements", shape.numel()),
                format!("{} elements", data.len()),
            ));
        }
        Ok(Self { shape, data })
    }

    /// Creates a single-batch tensor whose element at `(0, c, h, w)` is
    /// `f(c, h, w)`. Handy for constructing test fixtures.
    pub fn from_fn(
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut t = Self::zeros([1, c, h, w]);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    *t.at_mut(0, ci, hi, wi) = f(ci, hi, wi);
                }
            }
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Borrow of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor in place, reusing its allocation. Element
    /// values after a reset are unspecified — this is a scratch-buffer
    /// primitive for writers that overwrite every element (conv kernels,
    /// pad, crop, pool).
    pub fn reset(&mut self, dims: impl Into<Shape>) {
        self.shape = dims.into();
        self.data.resize(self.shape.numel(), 0.0);
    }

    /// Element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline(always)]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Mutable reference to the element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline(always)]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let idx = self.shape.index(n, c, h, w);
        &mut self.data[idx]
    }

    /// Extracts the spatial region `[h0, h0+bh) x [w0, w0+bw)` across all
    /// batches and channels — the *split* half of block convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the region does not fit.
    ///
    /// # Examples
    ///
    /// ```
    /// use bconv_tensor::Tensor;
    /// let t = Tensor::from_fn(1, 4, 4, |_, h, w| (h * 4 + w) as f32);
    /// let block = t.crop(2, 2, 2, 2)?;
    /// assert_eq!(block.at(0, 0, 0, 0), 10.0);
    /// # Ok::<(), bconv_tensor::TensorError>(())
    /// ```
    pub fn crop(&self, h0: usize, w0: usize, bh: usize, bw: usize) -> Result<Self, TensorError> {
        let mut out = Self::zeros([0, 0, 0, 0]);
        self.crop_into(h0, w0, bh, bw, &mut out)?;
        Ok(out)
    }

    /// [`crop`](Self::crop) into a caller-provided tensor, reusing its
    /// allocation (`out` is reshaped to fit).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the region does not fit.
    pub fn crop_into(
        &self,
        h0: usize,
        w0: usize,
        bh: usize,
        bw: usize,
        out: &mut Self,
    ) -> Result<(), TensorError> {
        let [n, c, h, w] = self.shape.dims();
        if h0 + bh > h || w0 + bw > w {
            return Err(TensorError::out_of_bounds(format!(
                "crop [{h0}..{},{w0}..{}) from {}",
                h0 + bh,
                w0 + bw,
                self.shape
            )));
        }
        out.reset([n, c, bh, bw]);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..bh {
                    let src = self.shape.index(ni, ci, h0 + hi, w0);
                    let dst = out.shape.index(ni, ci, hi, 0);
                    out.data[dst..dst + bw].copy_from_slice(&self.data[src..src + bw]);
                }
            }
        }
        Ok(())
    }

    /// Writes `block` into the spatial region starting at `(h0, w0)` — the
    /// *concat* half of block convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if batch/channel counts differ
    /// and [`TensorError::OutOfBounds`] if the region does not fit.
    pub fn paste(&mut self, block: &Tensor, h0: usize, w0: usize) -> Result<(), TensorError> {
        let [n, c, h, w] = self.shape.dims();
        let [bn, bc, bh, bw] = block.shape.dims();
        if bn != n || bc != c {
            return Err(TensorError::shape_mismatch(
                "Tensor::paste batch/channels",
                format!("n={n}, c={c}"),
                format!("n={bn}, c={bc}"),
            ));
        }
        if h0 + bh > h || w0 + bw > w {
            return Err(TensorError::out_of_bounds(format!(
                "paste {} at ({h0},{w0}) into {}",
                block.shape, self.shape
            )));
        }
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..bh {
                    let dst = self.shape.index(ni, ci, h0 + hi, w0);
                    let src = block.shape.index(ni, ci, hi, 0);
                    self.data[dst..dst + bw].copy_from_slice(&block.data[src..src + bw]);
                }
            }
        }
        Ok(())
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Extracts batch `n` as a single-batch tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `n` is out of range.
    pub fn batch(&self, n: usize) -> Result<Self, TensorError> {
        let [bn, c, h, w] = self.shape.dims();
        if n >= bn {
            return Err(TensorError::out_of_bounds(format!("batch {n} of {}", self.shape)));
        }
        let per = c * h * w;
        Ok(Self {
            shape: Shape::new([1, c, h, w]),
            data: self.data[n * per..(n + 1) * per].to_vec(),
        })
    }

    /// Maximum absolute difference against `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::shape_mismatch(
                "Tensor::max_abs_diff",
                self.shape.to_string(),
                other.shape.to_string(),
            ));
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max))
    }

    /// Returns true if every element is within `tol` of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }
}

impl Default for Tensor {
    /// An empty (zero-element) tensor — the natural seed for scratch
    /// buffers that are [`reset`](Tensor::reset) before first use.
    fn default() -> Self {
        Self::zeros([0, 0, 0, 0])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, {} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(h: usize, w: usize) -> Tensor {
        Tensor::from_fn(2, h, w, |c, hi, wi| (c * 100 + hi * w + wi) as f32)
    }

    #[test]
    fn crop_then_paste_roundtrips() {
        let t = ramp(6, 8);
        let block = t.crop(2, 3, 3, 4).unwrap();
        let mut out = Tensor::zeros(t.shape());
        out.paste(&block, 2, 3).unwrap();
        // Pasted region matches the original.
        for c in 0..2 {
            for h in 2..5 {
                for w in 3..7 {
                    assert_eq!(out.at(0, c, h, w), t.at(0, c, h, w));
                }
            }
        }
        // Outside the region stays zero.
        assert_eq!(out.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn four_quadrant_split_concat_is_identity() {
        // The split/concat mechanism of Figure 3: 2x2 blocking of an 8x8 map.
        let t = ramp(8, 8);
        let mut rebuilt = Tensor::zeros(t.shape());
        for bh in 0..2 {
            for bw in 0..2 {
                let block = t.crop(bh * 4, bw * 4, 4, 4).unwrap();
                rebuilt.paste(&block, bh * 4, bw * 4).unwrap();
            }
        }
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn crop_out_of_bounds_errors() {
        let t = ramp(4, 4);
        assert!(t.crop(2, 2, 3, 2).is_err());
        assert!(t.crop(0, 3, 1, 2).is_err());
    }

    #[test]
    fn paste_shape_mismatch_errors() {
        let mut t = Tensor::zeros([1, 2, 4, 4]);
        let block = Tensor::zeros([1, 3, 2, 2]);
        assert!(t.paste(&block, 0, 0).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([1, 1, 2, 2], vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec([1, 1, 2, 2], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn batch_extraction() {
        let mut t = Tensor::zeros([2, 1, 2, 2]);
        *t.at_mut(1, 0, 1, 1) = 7.0;
        let b1 = t.batch(1).unwrap();
        assert_eq!(b1.at(0, 0, 1, 1), 7.0);
        assert!(t.batch(2).is_err());
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Tensor::filled([1, 1, 2, 2], 1.0);
        let mut b = a.clone();
        *b.at_mut(0, 0, 0, 1) = 1.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.5).unwrap());
        assert!(!a.approx_eq(&b, 0.4).unwrap());
    }
}
