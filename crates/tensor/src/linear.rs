//! Fully-connected (linear) layer for classifier heads.

use crate::{Tensor, TensorError};

/// A fully-connected layer `y = W x + b` with `W: [out, in]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Vec<f32>,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a linear layer from a row-major `[out, in]` weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `weight.len()` is not
    /// `out_features * in_features` or `bias.len() != out_features`.
    pub fn new(
        in_features: usize,
        out_features: usize,
        weight: Vec<f32>,
        bias: Vec<f32>,
    ) -> Result<Self, TensorError> {
        if weight.len() != in_features * out_features {
            return Err(TensorError::shape_mismatch(
                "Linear weight",
                format!("{} elements", in_features * out_features),
                format!("{} elements", weight.len()),
            ));
        }
        if bias.len() != out_features {
            return Err(TensorError::shape_mismatch(
                "Linear bias",
                format!("{out_features}"),
                format!("{}", bias.len()),
            ));
        }
        Ok(Self { weight, bias, in_features, out_features })
    }

    /// Zero-initialised layer.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for constructor uniformity.
    pub fn zeros(in_features: usize, out_features: usize) -> Result<Self, TensorError> {
        Self::new(
            in_features,
            out_features,
            vec![0.0; in_features * out_features],
            vec![0.0; out_features],
        )
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Row-major `[out, in]` weights.
    pub fn weight(&self) -> &[f32] {
        &self.weight
    }

    /// Mutable weights (used by the training crate).
    pub fn weight_mut(&mut self) -> &mut [f32] {
        &mut self.weight
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias (used by the training crate).
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Applies the layer to a flattened input: the `(c, h, w)` dims of each
    /// batch element are flattened to `in_features`; output is
    /// `[n, out_features, 1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `c*h*w != in_features`.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = Tensor::default();
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// [`forward`](Self::forward) into a caller-provided output tensor
    /// (reshaped to `[n, out_features, 1, 1]`, every element overwritten)
    /// — the allocation-free variant for executors that pool buffers.
    ///
    /// # Errors
    ///
    /// See [`forward`](Self::forward).
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
        let [n, c, h, w] = input.shape().dims();
        let flat = c * h * w;
        if flat != self.in_features {
            return Err(TensorError::shape_mismatch(
                "Linear input",
                format!("{} features", self.in_features),
                format!("{flat} features"),
            ));
        }
        out.reset([n, self.out_features, 1, 1]);
        for ni in 0..n {
            let x = &input.data()[ni * flat..(ni + 1) * flat];
            for o in 0..self.out_features {
                let row = &self.weight[o * flat..(o + 1) * flat];
                let mut acc = self.bias[o];
                for (wv, xv) in row.iter().zip(x) {
                    acc += wv * xv;
                }
                *out.at_mut(ni, o, 0, 0) = acc;
            }
        }
        Ok(())
    }

    /// Multiply–accumulate count per batch element.
    pub fn macs(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_matrix_vector_product() {
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5], x = [1, 1].
        let lin = Linear::new(2, 2, vec![1.0, 2.0, 3.0, 4.0], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec([1, 2, 1, 1], vec![1.0, 1.0]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.at(0, 0, 0, 0), 3.5);
        assert_eq!(y.at(0, 1, 0, 0), 6.5);
    }

    #[test]
    fn batched_forward() {
        let lin = Linear::new(1, 1, vec![2.0], vec![0.0]).unwrap();
        let x = Tensor::from_vec([3, 1, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.at(0, 0, 0, 0), 2.0);
        assert_eq!(y.at(1, 0, 0, 0), 4.0);
        assert_eq!(y.at(2, 0, 0, 0), 6.0);
    }

    #[test]
    fn input_size_mismatch_errors() {
        let lin = Linear::zeros(4, 2).unwrap();
        let x = Tensor::zeros([1, 1, 1, 3]);
        assert!(lin.forward(&x).is_err());
    }

    #[test]
    fn constructor_validates_lengths() {
        assert!(Linear::new(2, 2, vec![0.0; 3], vec![0.0; 2]).is_err());
        assert!(Linear::new(2, 2, vec![0.0; 4], vec![0.0; 1]).is_err());
    }

    #[test]
    fn macs_counts_products() {
        assert_eq!(Linear::zeros(25088, 4096).unwrap().macs(), 25088 * 4096);
    }
}
