//! Dense NCHW tensor substrate and reference CNN operators.
//!
//! This crate is the numerical foundation of the block-convolution
//! reproduction. It provides:
//!
//! * [`Tensor`] — a dense, owned, `f32`, NCHW 4-D tensor with spatial
//!   crop/paste views (the primitives block convolution is built from);
//! * [`pad`] — zero / replicate / reflect spatial padding (paper §II-F
//!   evaluates all three as *block padding* modes);
//! * [`conv`] — 2-D convolution with stride, padding and groups
//!   (grouped convolution covers the depthwise case of MobileNet-V1);
//! * [`kernel`] — pluggable conv kernels behind the [`ConvKernel`] trait:
//!   the direct loop and an im2col+GEMM path with a register-blocked
//!   sgemm, selected per layer by a [`KernelPolicy`];
//! * [`pool`] — max / average / global-average pooling;
//! * [`activation`], [`elementwise`], [`upsample`], [`linear`] — the rest of
//!   the operators required by the seven networks evaluated in the paper;
//! * [`init`] — seeded weight initialisation so every experiment is
//!   deterministic.
//!
//! # Example
//!
//! ```
//! use bconv_tensor::{Tensor, conv::{Conv2d, ConvGeom}};
//!
//! # fn main() -> Result<(), bconv_tensor::TensorError> {
//! let input = Tensor::filled([1, 3, 8, 8], 1.0);
//! let conv = Conv2d::identity_like(3, 3, ConvGeom::same(3))?;
//! let output = conv.forward(&input)?;
//! assert_eq!(output.shape().dims(), [1, 3, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod activation;
pub mod conv;
pub mod elementwise;
pub mod error;
pub mod init;
pub mod kernel;
pub mod linear;
pub mod pad;
pub mod pool;
pub mod shape;
pub mod tensor;
pub mod upsample;

pub use error::TensorError;
pub use kernel::{ConvKernel, ConvScratch, KernelKind, KernelPolicy};
pub use pad::PadMode;
pub use shape::Shape;
pub use tensor::Tensor;
