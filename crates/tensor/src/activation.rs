//! Element-wise activation functions.

use crate::Tensor;

/// Rectified linear unit, `max(0, x)`.
///
/// # Examples
///
/// ```
/// use bconv_tensor::{Tensor, activation::relu};
/// let t = Tensor::from_fn(1, 1, 2, |_, _, w| if w == 0 { -1.0 } else { 2.0 });
/// let r = relu(&t);
/// assert_eq!(r.data(), &[0.0, 2.0]);
/// ```
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|v| v.max(0.0))
}

/// In-place ReLU, avoiding an allocation on hot paths.
pub fn relu_inplace(input: &mut Tensor) {
    for v in input.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Leaky ReLU with negative slope `alpha`.
pub fn leaky_relu(input: &Tensor, alpha: f32) -> Tensor {
    input.map(|v| if v >= 0.0 { v } else { alpha * v })
}

/// Sigmoid, `1 / (1 + e^-x)`, used by detection-head confidence outputs.
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|v| 1.0 / (1.0 + (-v).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        let t = Tensor::from_fn(1, 1, 3, |_, _, w| w as f32 - 1.0);
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_inplace_matches_relu() {
        let t = Tensor::from_fn(1, 2, 2, |c, h, w| (c + h + w) as f32 - 1.5);
        let mut inplace = t.clone();
        relu_inplace(&mut inplace);
        assert_eq!(inplace, relu(&t));
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_fn(1, 1, 2, |_, _, w| if w == 0 { -2.0 } else { 2.0 });
        assert_eq!(leaky_relu(&t, 0.1).data(), &[-0.2, 2.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let t = Tensor::from_fn(1, 1, 3, |_, _, w| (w as f32 - 1.0) * 10.0);
        let s = sigmoid(&t);
        assert!(s.data()[0] < 0.01);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 0.99);
    }
}
