//! Nearest-neighbour and bilinear upsampling (FPN top-down pathway, VDSR
//! input preparation).

use crate::{Tensor, TensorError};

/// Nearest-neighbour upsampling by an integer `factor`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `factor == 0`.
///
/// # Examples
///
/// ```
/// use bconv_tensor::{Tensor, upsample::upsample_nearest};
/// let t = Tensor::from_fn(1, 1, 1, |_, _, _| 4.0);
/// let u = upsample_nearest(&t, 2)?;
/// assert_eq!(u.shape().dims(), [1, 1, 2, 2]);
/// # Ok::<(), bconv_tensor::TensorError>(())
/// ```
pub fn upsample_nearest(input: &Tensor, factor: usize) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    upsample_nearest_into(input, factor, &mut out)?;
    Ok(out)
}

/// [`upsample_nearest`] into a caller-provided output tensor (reshaped to
/// the upsampled dims, every element overwritten) — the allocation-free
/// variant for executors that pool buffers.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `factor == 0`.
pub fn upsample_nearest_into(
    input: &Tensor,
    factor: usize,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    if factor == 0 {
        return Err(TensorError::invalid("upsample factor must be non-zero"));
    }
    let [n, c, h, w] = input.shape().dims();
    out.reset([n, c, h * factor, w * factor]);
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h * factor {
                for wi in 0..w * factor {
                    *out.at_mut(ni, ci, hi, wi) = input.at(ni, ci, hi / factor, wi / factor);
                }
            }
        }
    }
    Ok(())
}

/// Bilinear upsampling by an integer `factor` with half-pixel alignment,
/// used to build low-resolution/high-resolution super-resolution pairs.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `factor == 0`.
pub fn upsample_bilinear(input: &Tensor, factor: usize) -> Result<Tensor, TensorError> {
    if factor == 0 {
        return Err(TensorError::invalid("upsample factor must be non-zero"));
    }
    let [n, c, h, w] = input.shape().dims();
    let (oh, ow) = (h * factor, w * factor);
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let scale = 1.0 / factor as f32;
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..oh {
                // Half-pixel-centres convention.
                let src_h = ((hi as f32 + 0.5) * scale - 0.5).max(0.0);
                let h0 = (src_h.floor() as usize).min(h - 1);
                let h1 = (h0 + 1).min(h - 1);
                let th = src_h - h0 as f32;
                for wi in 0..ow {
                    let src_w = ((wi as f32 + 0.5) * scale - 0.5).max(0.0);
                    let w0 = (src_w.floor() as usize).min(w - 1);
                    let w1 = (w0 + 1).min(w - 1);
                    let tw = src_w - w0 as f32;
                    let a = input.at(ni, ci, h0, w0);
                    let b = input.at(ni, ci, h0, w1);
                    let cc = input.at(ni, ci, h1, w0);
                    let d = input.at(ni, ci, h1, w1);
                    let top = a + (b - a) * tw;
                    let bottom = cc + (d - cc) * tw;
                    *out.at_mut(ni, ci, hi, wi) = top + (bottom - top) * th;
                }
            }
        }
    }
    Ok(out)
}

/// Box-filter downsampling by an integer `factor` (average of each
/// `factor x factor` cell). Used to produce the low-resolution input of the
/// super-resolution task.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `factor == 0` or the spatial
/// dimensions are not divisible by `factor`.
pub fn downsample_box(input: &Tensor, factor: usize) -> Result<Tensor, TensorError> {
    if factor == 0 {
        return Err(TensorError::invalid("downsample factor must be non-zero"));
    }
    let [n, c, h, w] = input.shape().dims();
    if h % factor != 0 || w % factor != 0 {
        return Err(TensorError::invalid(format!(
            "spatial dims ({h},{w}) not divisible by factor {factor}"
        )));
    }
    let (oh, ow) = (h / factor, w / factor);
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let denom = (factor * factor) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..oh {
                for wi in 0..ow {
                    let mut sum = 0.0;
                    for dh in 0..factor {
                        for dw in 0..factor {
                            sum += input.at(ni, ci, hi * factor + dh, wi * factor + dw);
                        }
                    }
                    *out.at_mut(ni, ci, hi, wi) = sum / denom;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_repeats_pixels() {
        let t = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32);
        let u = upsample_nearest(&t, 2).unwrap();
        assert_eq!(u.shape().dims(), [1, 1, 4, 4]);
        assert_eq!(u.at(0, 0, 0, 0), 0.0);
        assert_eq!(u.at(0, 0, 0, 1), 0.0);
        assert_eq!(u.at(0, 0, 1, 1), 0.0);
        assert_eq!(u.at(0, 0, 2, 2), 3.0);
    }

    #[test]
    fn bilinear_preserves_constant_images() {
        let t = Tensor::filled([1, 1, 3, 3], 2.5);
        let u = upsample_bilinear(&t, 3).unwrap();
        assert_eq!(u.shape().dims(), [1, 1, 9, 9]);
        for &v in u.data() {
            assert!((v - 2.5).abs() < 1e-6);
        }
    }

    #[test]
    fn box_downsample_averages() {
        let t = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32);
        let d = downsample_box(&t, 2).unwrap();
        assert_eq!(d.shape().dims(), [1, 1, 1, 1]);
        assert_eq!(d.at(0, 0, 0, 0), 1.5);
    }

    #[test]
    fn downsample_rejects_indivisible_dims() {
        let t = Tensor::zeros([1, 1, 3, 4]);
        assert!(downsample_box(&t, 2).is_err());
    }

    #[test]
    fn up_then_down_roundtrips_for_nearest() {
        let t = Tensor::from_fn(1, 4, 4, |_, h, w| ((h * 4 + w) % 5) as f32);
        let u = upsample_nearest(&t, 2).unwrap();
        let d = downsample_box(&u, 2).unwrap();
        assert!(d.approx_eq(&t, 1e-6).unwrap());
    }

    #[test]
    fn factor_zero_is_an_error() {
        let t = Tensor::zeros([1, 1, 2, 2]);
        assert!(upsample_nearest(&t, 0).is_err());
        assert!(upsample_bilinear(&t, 0).is_err());
        assert!(downsample_box(&t, 0).is_err());
    }
}
