//! Depth-first block scheduling of a fusion group (Figure 10's computing
//! flow): an explicit event trace — block loads, per-layer computes,
//! splice-buffer writes, result stores — with live buffer-occupancy
//! accounting. This is the dynamic counterpart of the static BRAM estimate
//! in [`crate::fusion::FusedDesign::bram18`]: the trace proves that the
//! schedule never holds more than two block buffers plus the extra buffer.

use crate::baseline::ConvShape;

/// One event of the block schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Load an input block from DRAM (first group only).
    LoadBlock {
        /// Spatial block index.
        block: usize,
        /// Bits moved.
        bits: u64,
    },
    /// Compute one layer for one block, ping-ponging the two intermediate
    /// buffers.
    Compute {
        /// Layer index within the network.
        layer: usize,
        /// Spatial block index.
        block: usize,
        /// Output bits produced into the destination buffer.
        out_bits: u64,
    },
    /// Append a finished block to the extra (splice) buffer at a group
    /// boundary.
    Splice {
        /// Spatial block index.
        block: usize,
        /// Bits appended.
        bits: u64,
    },
    /// Store a final output block to DRAM (last group only).
    StoreBlock {
        /// Spatial block index.
        block: usize,
        /// Bits moved.
        bits: u64,
    },
}

/// Result of scheduling: the event trace plus occupancy statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Ordered events.
    pub events: Vec<Event>,
    /// Peak bits simultaneously alive in the two intermediate buffers.
    pub peak_intermediate_bits: u64,
    /// Peak bits in the extra (splice) buffer.
    pub peak_extra_bits: u64,
    /// Total DRAM feature traffic in bits.
    pub dram_bits: u64,
}

/// Schedules one fusion group of stride-1 layers over `blocks` spatial
/// blocks, each block carrying `block_px` output pixels per layer.
/// `first_group`/`last_group` control whether block I/O hits DRAM or the
/// neighbouring groups' extra buffers.
pub fn schedule_group(
    layers: &[ConvShape],
    blocks: usize,
    block_px: usize,
    bits: usize,
    first_group: bool,
    last_group: bool,
) -> ScheduleTrace {
    let mut events = Vec::new();
    let mut peak_inter = 0u64;
    let mut extra = 0u64;
    let mut peak_extra = 0u64;
    let mut dram = 0u64;
    for b in 0..blocks {
        let in_bits = (layers[0].n * block_px * bits) as u64;
        if first_group {
            events.push(Event::LoadBlock { block: b, bits: in_bits });
            dram += in_bits;
        }
        let mut live = in_bits;
        for (li, layer) in layers.iter().enumerate() {
            let out_bits = (layer.m * block_px * bits) as u64;
            // Input and output buffers alive simultaneously (ping-pong).
            peak_inter = peak_inter.max(live + out_bits);
            events.push(Event::Compute { layer: li, block: b, out_bits });
            live = out_bits;
        }
        if last_group {
            events.push(Event::StoreBlock { block: b, bits: live });
            dram += live;
        } else {
            events.push(Event::Splice { block: b, bits: live });
            extra += live;
            peak_extra = peak_extra.max(extra);
        }
    }
    ScheduleTrace {
        events,
        peak_intermediate_bits: peak_inter,
        peak_extra_bits: peak_extra,
        dram_bits: dram,
    }
}

/// Per-stage buffer/compute footprint for cost queries over a prospective
/// fusion group whose block sizes vary stage to stage (pooling shrinks
/// blocks, hierarchical grids are uneven) — the generalisation of
/// [`schedule_group`]'s uniform-block trace that a planner can evaluate
/// incrementally while it walks candidate cut points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFootprint {
    /// Bits of the largest input block the stage reads.
    pub in_block_bits: u64,
    /// Bits of the largest output block the stage writes.
    pub out_block_bits: u64,
    /// Multiply–accumulates of the stage across the whole feature map
    /// (zero for element-wise and pooling stages).
    pub macs: u64,
}

/// Aggregate cost of executing a stage list as one fused group under the
/// Figure 10 dataflow: blocks ping-pong through two intermediate buffers,
/// so the binding memory constraint is the largest in+out stage pair, and
/// compute is the MAC total spread over the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCost {
    /// Peak bits simultaneously alive in the two intermediate buffers
    /// (largest input-block + output-block pair over the stages).
    pub peak_intermediate_bits: u64,
    /// Estimated compute cycles (one MAC per PE per cycle).
    pub compute_cycles: u64,
}

/// Evaluates the fused execution of `stages` on an `npe`-PE array.
/// Extending a group never changes its compute total — fusion is a
/// schedule change — so the interesting outputs are the intermediate
/// buffer peak (capacity gate) and the cycle count (for comparing against
/// the DRAM cycles a cut would add).
pub fn fused_group_cost(stages: &[StageFootprint], npe: usize) -> GroupCost {
    let peak = stages.iter().map(|s| s.in_block_bits + s.out_block_bits).max().unwrap_or(0);
    let macs: u64 = stages.iter().map(|s| s.macs).sum();
    GroupCost { peak_intermediate_bits: peak, compute_cycles: macs / npe.max(1) as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layers() -> Vec<ConvShape> {
        vec![
            ConvShape { m: 64, n: 3, r: 224, c: 224, k: 3, s: 1 },
            ConvShape { m: 64, n: 64, r: 224, c: 224, k: 3, s: 1 },
        ]
    }

    #[test]
    fn first_group_loads_and_splices() {
        let t = schedule_group(&layers(), 4, 28 * 28, 8, true, false);
        let loads = t.events.iter().filter(|e| matches!(e, Event::LoadBlock { .. })).count();
        let splices = t.events.iter().filter(|e| matches!(e, Event::Splice { .. })).count();
        assert_eq!(loads, 4);
        assert_eq!(splices, 4);
        // DRAM traffic = input blocks only.
        assert_eq!(t.dram_bits, 4 * (3 * 28 * 28 * 8) as u64);
    }

    #[test]
    fn middle_group_touches_no_dram() {
        let t = schedule_group(&layers(), 4, 14 * 14, 8, false, false);
        assert_eq!(t.dram_bits, 0);
        assert!(t.events.iter().all(|e| !matches!(e, Event::LoadBlock { .. })));
    }

    #[test]
    fn peak_intermediate_is_two_block_buffers() {
        let t = schedule_group(&layers(), 4, 28 * 28, 8, true, false);
        // Largest adjacent pair: 64ch in + 64ch out.
        assert_eq!(t.peak_intermediate_bits, (2 * 64 * 28 * 28 * 8) as u64);
    }

    #[test]
    fn extra_buffer_accumulates_all_blocks() {
        let t = schedule_group(&layers(), 4, 28 * 28, 8, true, false);
        assert_eq!(t.peak_extra_bits, (4 * 64 * 28 * 28 * 8) as u64);
    }

    #[test]
    fn last_group_stores_to_dram() {
        let t = schedule_group(&layers(), 2, 14 * 14, 8, false, true);
        assert_eq!(t.dram_bits, 2 * (64 * 14 * 14 * 8) as u64);
        assert_eq!(t.peak_extra_bits, 0);
    }

    #[test]
    fn fused_group_cost_tracks_largest_stage_pair_and_mac_total() {
        let stages = [
            StageFootprint { in_block_bits: 100, out_block_bits: 400, macs: 1_000 },
            StageFootprint { in_block_bits: 400, out_block_bits: 400, macs: 8_000 },
            StageFootprint { in_block_bits: 400, out_block_bits: 100, macs: 0 },
        ];
        let c = fused_group_cost(&stages, 2);
        assert_eq!(c.peak_intermediate_bits, 800);
        assert_eq!(c.compute_cycles, 9_000 / 2);
        // Extending the group grows the peak only if the new pair is
        // larger, and never shrinks the cycle total.
        let extended = [
            stages[0],
            stages[1],
            stages[2],
            StageFootprint { in_block_bits: 100, out_block_bits: 200, macs: 500 },
        ];
        let e = fused_group_cost(&extended, 2);
        assert_eq!(e.peak_intermediate_bits, 800);
        assert!(e.compute_cycles > c.compute_cycles);
        // Degenerate cases: empty group, zero PEs clamped to one.
        assert_eq!(fused_group_cost(&[], 4).peak_intermediate_bits, 0);
        assert_eq!(fused_group_cost(&stages, 0).compute_cycles, 9_000);
    }

    #[test]
    fn event_order_is_depth_first() {
        // All of block 0's computes precede any of block 1's.
        let t = schedule_group(&layers(), 2, 14 * 14, 8, true, true);
        let pos = |pred: &dyn Fn(&Event) -> bool| t.events.iter().position(pred).unwrap();
        let b0_last = pos(&|e| matches!(e, Event::StoreBlock { block: 0, .. }));
        let b1_first = pos(&|e| matches!(e, Event::LoadBlock { block: 1, .. }));
        assert!(b0_last < b1_first);
    }
}
