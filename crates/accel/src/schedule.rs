//! Depth-first block scheduling of a fusion group (Figure 10's computing
//! flow): an explicit event trace — block loads, per-layer computes,
//! splice-buffer writes, result stores — with live buffer-occupancy
//! accounting. This is the dynamic counterpart of the static BRAM estimate
//! in [`crate::fusion::FusedDesign::bram18`]: the trace proves that the
//! schedule never holds more than two block buffers plus the extra buffer.

use crate::baseline::ConvShape;

/// One event of the block schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Load an input block from DRAM (first group only).
    LoadBlock {
        /// Spatial block index.
        block: usize,
        /// Bits moved.
        bits: u64,
    },
    /// Compute one layer for one block, ping-ponging the two intermediate
    /// buffers.
    Compute {
        /// Layer index within the network.
        layer: usize,
        /// Spatial block index.
        block: usize,
        /// Output bits produced into the destination buffer.
        out_bits: u64,
    },
    /// Append a finished block to the extra (splice) buffer at a group
    /// boundary.
    Splice {
        /// Spatial block index.
        block: usize,
        /// Bits appended.
        bits: u64,
    },
    /// Store a final output block to DRAM (last group only).
    StoreBlock {
        /// Spatial block index.
        block: usize,
        /// Bits moved.
        bits: u64,
    },
}

/// Result of scheduling: the event trace plus occupancy statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Ordered events.
    pub events: Vec<Event>,
    /// Peak bits simultaneously alive in the two intermediate buffers.
    pub peak_intermediate_bits: u64,
    /// Peak bits in the extra (splice) buffer.
    pub peak_extra_bits: u64,
    /// Total DRAM feature traffic in bits.
    pub dram_bits: u64,
}

/// Schedules one fusion group of stride-1 layers over `blocks` spatial
/// blocks, each block carrying `block_px` output pixels per layer.
/// `first_group`/`last_group` control whether block I/O hits DRAM or the
/// neighbouring groups' extra buffers.
pub fn schedule_group(
    layers: &[ConvShape],
    blocks: usize,
    block_px: usize,
    bits: usize,
    first_group: bool,
    last_group: bool,
) -> ScheduleTrace {
    let mut events = Vec::new();
    let mut peak_inter = 0u64;
    let mut extra = 0u64;
    let mut peak_extra = 0u64;
    let mut dram = 0u64;
    for b in 0..blocks {
        let in_bits = (layers[0].n * block_px * bits) as u64;
        if first_group {
            events.push(Event::LoadBlock { block: b, bits: in_bits });
            dram += in_bits;
        }
        let mut live = in_bits;
        for (li, layer) in layers.iter().enumerate() {
            let out_bits = (layer.m * block_px * bits) as u64;
            // Input and output buffers alive simultaneously (ping-pong).
            peak_inter = peak_inter.max(live + out_bits);
            events.push(Event::Compute { layer: li, block: b, out_bits });
            live = out_bits;
        }
        if last_group {
            events.push(Event::StoreBlock { block: b, bits: live });
            dram += live;
        } else {
            events.push(Event::Splice { block: b, bits: live });
            extra += live;
            peak_extra = peak_extra.max(extra);
        }
    }
    ScheduleTrace {
        events,
        peak_intermediate_bits: peak_inter,
        peak_extra_bits: peak_extra,
        dram_bits: dram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layers() -> Vec<ConvShape> {
        vec![
            ConvShape { m: 64, n: 3, r: 224, c: 224, k: 3, s: 1 },
            ConvShape { m: 64, n: 64, r: 224, c: 224, k: 3, s: 1 },
        ]
    }

    #[test]
    fn first_group_loads_and_splices() {
        let t = schedule_group(&layers(), 4, 28 * 28, 8, true, false);
        let loads = t.events.iter().filter(|e| matches!(e, Event::LoadBlock { .. })).count();
        let splices = t.events.iter().filter(|e| matches!(e, Event::Splice { .. })).count();
        assert_eq!(loads, 4);
        assert_eq!(splices, 4);
        // DRAM traffic = input blocks only.
        assert_eq!(t.dram_bits, 4 * (3 * 28 * 28 * 8) as u64);
    }

    #[test]
    fn middle_group_touches_no_dram() {
        let t = schedule_group(&layers(), 4, 14 * 14, 8, false, false);
        assert_eq!(t.dram_bits, 0);
        assert!(t.events.iter().all(|e| !matches!(e, Event::LoadBlock { .. })));
    }

    #[test]
    fn peak_intermediate_is_two_block_buffers() {
        let t = schedule_group(&layers(), 4, 28 * 28, 8, true, false);
        // Largest adjacent pair: 64ch in + 64ch out.
        assert_eq!(t.peak_intermediate_bits, (2 * 64 * 28 * 28 * 8) as u64);
    }

    #[test]
    fn extra_buffer_accumulates_all_blocks() {
        let t = schedule_group(&layers(), 4, 28 * 28, 8, true, false);
        assert_eq!(t.peak_extra_bits, (4 * 64 * 28 * 28 * 8) as u64);
    }

    #[test]
    fn last_group_stores_to_dram() {
        let t = schedule_group(&layers(), 2, 14 * 14, 8, false, true);
        assert_eq!(t.dram_bits, 2 * (64 * 14 * 14 * 8) as u64);
        assert_eq!(t.peak_extra_bits, 0);
    }

    #[test]
    fn event_order_is_depth_first() {
        // All of block 0's computes precede any of block 1's.
        let t = schedule_group(&layers(), 2, 14 * 14, 8, true, true);
        let pos = |pred: &dyn Fn(&Event) -> bool| t.events.iter().position(pred).unwrap();
        let b0_last = pos(&|e| matches!(e, Event::StoreBlock { block: 0, .. }));
        let b1_first = pos(&|e| matches!(e, Event::LoadBlock { block: 1, .. }));
        assert!(b0_last < b1_first);
    }
}
