//! FPGA platform descriptors: the two boards the paper targets plus the
//! comparison platforms of Table VII.

/// An FPGA platform: on-chip memory, arithmetic resources, clock and DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaPlatform {
    /// Board / device name.
    pub name: &'static str,
    /// Number of BRAM18 blocks (a BRAM36 counts as two).
    pub bram18_blocks: usize,
    /// Bits per BRAM18 block (18 kib = 18 × 1024).
    pub bram18_bits: usize,
    /// DSP slices.
    pub dsp: usize,
    /// Logic LUTs.
    pub lut: usize,
    /// Flip-flops.
    pub ff: usize,
    /// Accelerator clock in MHz (as implemented in the paper, not the
    /// device maximum).
    pub freq_mhz: f64,
    /// Effective DRAM bandwidth in Gbit/s available to the accelerator.
    pub dram_gbps: f64,
}

impl FpgaPlatform {
    /// Total BRAM capacity in megabits (decimal, as Figure 1 plots it).
    pub fn bram_mbits(&self) -> f64 {
        (self.bram18_blocks * self.bram18_bits) as f64 / 1.0e6
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1000.0 / self.freq_mhz
    }

    /// Cycles needed to move `bits` across the DRAM interface.
    pub fn dram_cycles(&self, bits: u64) -> u64 {
        let bits_per_cycle = self.dram_gbps * 1e9 / (self.freq_mhz * 1e6);
        (bits as f64 / bits_per_cycle).ceil() as u64
    }
}

/// Xilinx Zynq ZC706 (XC7Z045): the paper's VGG-16 platform.
/// 1090 × 18 kb BRAM, 900 DSP, accelerator at 150 MHz.
pub fn zc706() -> FpgaPlatform {
    FpgaPlatform {
        name: "Zynq ZC706",
        bram18_blocks: 1090,
        bram18_bits: 18 * 1024,
        dsp: 900,
        lut: 218_600,
        ff: 437_200,
        freq_mhz: 150.0,
        dram_gbps: 34.0, // 64-bit DDR3-1066 effective
    }
}

/// Xilinx Ultra96 (ZU3EG MPSoC): the paper's VDSR platform.
/// 216 × 36 kb BRAM (= 432 BRAM18 ≈ 7.6 Mb), 360 DSP, 200 MHz.
pub fn ultra96() -> FpgaPlatform {
    FpgaPlatform {
        name: "Ultra96 (ZU3EG)",
        bram18_blocks: 432,
        bram18_bits: 18 * 1024,
        dsp: 360,
        lut: 70_560,
        ff: 141_120,
        freq_mhz: 200.0,
        dram_gbps: 17.0, // 32-bit LPDDR4 effective
    }
}

/// Energy cost model: off-chip DRAM access is orders of magnitude more
/// expensive per bit than on-chip SRAM (the paper's §II-A motivation,
/// citing Han et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Picojoules per bit for DRAM access.
    pub dram_pj_per_bit: f64,
    /// Picojoules per bit for on-chip SRAM access.
    pub sram_pj_per_bit: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 640 pJ / 32-bit DRAM word vs 5 pJ / 32-bit SRAM word
        // (Horowitz ISSCC'14, the numbers Han et al. cite).
        Self { dram_pj_per_bit: 20.0, sram_pj_per_bit: 0.15625 }
    }
}

impl EnergyModel {
    /// Energy in millijoules for moving `bits` to/from DRAM.
    pub fn dram_mj(&self, bits: u64) -> f64 {
        bits as f64 * self.dram_pj_per_bit / 1e9
    }

    /// Energy in millijoules for moving `bits` within on-chip SRAM.
    pub fn sram_mj(&self, bits: u64) -> f64 {
        bits as f64 * self.sram_pj_per_bit / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc706_bram_matches_figure1() {
        // 1090 x 18 kb = 20.09 Mbit (decimal; the paper quotes 19.1 Mib).
        let p = zc706();
        assert!((p.bram_mbits() - 20.09).abs() < 0.01);
        let mib = (p.bram18_blocks * p.bram18_bits) as f64 / (1024.0 * 1024.0);
        assert!((mib - 19.16).abs() < 0.05, "got {mib}");
    }

    #[test]
    fn ultra96_bram_is_7_6_mbit() {
        // §III-A quotes 7.6 Mb for the ZU3EG.
        let p = ultra96();
        let mib = (p.bram18_blocks * p.bram18_bits) as f64 / (1024.0 * 1024.0);
        assert!((mib - 7.59).abs() < 0.05, "got {mib}");
    }

    #[test]
    fn dram_cycles_scale_with_bits() {
        let p = zc706();
        assert!(p.dram_cycles(2_000_000) >= 2 * p.dram_cycles(1_000_000) - 1);
        assert_eq!(p.dram_cycles(0), 0);
    }

    #[test]
    fn dram_energy_dwarfs_sram_energy() {
        let e = EnergyModel::default();
        assert!(e.dram_pj_per_bit / e.sram_pj_per_bit > 100.0);
        assert!(e.dram_mj(1_000_000) > e.sram_mj(1_000_000));
    }
}
