//! On-chip buffer sizing and BRAM estimation (§III-B3's intermediate/extra
//! buffer organisation, and the §III-B2 memory-utilisation argument for
//! rectangular blocking).

/// Estimated BRAM18 blocks for a buffer of `bits`, assuming the standard
/// 18 kib block with a packing efficiency factor (Vivado rarely packs BRAM
/// to 100%; 0.9 matches the reports the paper's estimates are based on).
pub fn bram18_for_bits(bits: u64) -> usize {
    const BRAM18_BITS: f64 = 18.0 * 1024.0;
    const PACKING: f64 = 0.9;
    (bits as f64 / (BRAM18_BITS * PACKING)).ceil() as usize
}

/// The data-buffer plan of the block-convolution VGG accelerator
/// (§III-B3): two ping-pong *intermediate* buffers holding one block's
/// activations each, plus *extra* buffers that cache the spliced group
/// boundaries, plus a weight buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPlan {
    /// Bits of one intermediate (block-sized) buffer.
    pub intermediate_bits: u64,
    /// Bits of the extra (group-boundary) buffer.
    pub extra_bits: u64,
    /// Bits of the on-chip weight buffer.
    pub weight_bits: u64,
    /// Whether the intermediate buffers are double-buffered (ping-pong);
    /// block convolution needs only the two alternating buffers, while the
    /// off-chip baseline needs input+output ping-pong pairs.
    pub double_buffered: bool,
}

impl BufferPlan {
    /// Total on-chip bits.
    pub fn total_bits(&self) -> u64 {
        let factor = if self.double_buffered { 2 } else { 1 };
        factor * 2 * self.intermediate_bits + self.extra_bits + self.weight_bits
    }

    /// Estimated BRAM18 blocks.
    pub fn bram18(&self) -> usize {
        let factor = if self.double_buffered { 2 } else { 1 };
        factor * 2 * bram18_for_bits(self.intermediate_bits)
            + bram18_for_bits(self.extra_bits)
            + bram18_for_bits(self.weight_bits)
    }

    /// Whether the plan fits a device with `blocks` BRAM18 blocks — the
    /// capacity gate a cost-model-driven planner asks before fusing or
    /// splicing deeper (§III-B3's feasibility constraint).
    pub fn fits_bram18(&self, blocks: usize) -> bool {
        self.bram18() <= blocks
    }
}

/// Memory utilisation of storing the largest feasible block of an
/// `fh × fw` feature map in an `mh × mw` on-chip buffer (§III-B2):
/// with square power-of-two blocking the largest block that fits may waste
/// most of the buffer; rectangular blocking recovers it.
///
/// Returns `(block_h, block_w, utilisation)`.
pub fn square_blocking_utilisation(
    fh: usize,
    fw: usize,
    mh: usize,
    mw: usize,
) -> (usize, usize, f64) {
    // Largest power-of-two-divided square block that fits.
    let mut bh = fh;
    let mut bw = fw;
    while bh > mh || bw > mw {
        bh /= 2;
        bw /= 2;
        if bh == 0 || bw == 0 {
            return (0, 0, 0.0);
        }
    }
    (bh, bw, (bh * bw) as f64 / (mh * mw) as f64)
}

/// Rectangular variant: halve only the dimension that does not fit.
pub fn rect_blocking_utilisation(
    fh: usize,
    fw: usize,
    mh: usize,
    mw: usize,
) -> (usize, usize, f64) {
    let mut bh = fh;
    let mut bw = fw;
    loop {
        if bh == 0 || bw == 0 {
            return (0, 0, 0.0);
        }
        if bh <= mh && bw <= mw {
            return (bh, bw, (bh * bw) as f64 / (mh * mw) as f64);
        }
        // Halve the dimension with the worse overflow ratio.
        if bh as f64 / mh as f64 >= bw as f64 / mw as f64 {
            bh /= 2;
        } else {
            bw /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_square_vs_rect() {
        // §III-B2: 128x128 map, 128x100 buffer. Square blocking fits only
        // 64x64 -> 40.96% x (128*100=12800; 64*64=4096 -> 32%)...
        // The paper computes 64*64/(128*100) = 40.96%? 4096/12800 = 32%.
        // The paper's 40.96% corresponds to 64*80? We reproduce the paper's
        // *qualitative* claim: rectangular at least doubles utilisation.
        let (sh, sw, su) = square_blocking_utilisation(128, 128, 128, 100);
        assert_eq!((sh, sw), (64, 64));
        let (rh, rw, ru) = rect_blocking_utilisation(128, 128, 128, 100);
        assert_eq!((rh, rw), (128, 64));
        assert!(ru >= 2.0 * su, "rect {ru} vs square {su}");
        assert!((ru - 0.64).abs() < 0.01);
    }

    #[test]
    fn utilisation_is_one_when_map_fits() {
        let (_, _, u) = square_blocking_utilisation(64, 64, 64, 64);
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bram_estimation_rounds_up() {
        assert_eq!(bram18_for_bits(1), 1);
        assert_eq!(bram18_for_bits(0), 0);
        // 18 kib at 90% packing needs 2 blocks once above ~16.6 kib.
        assert_eq!(bram18_for_bits(18 * 1024), 2);
    }

    #[test]
    fn fits_bram18_is_the_capacity_gate() {
        let plan = BufferPlan {
            intermediate_bits: 100_000,
            extra_bits: 50_000,
            weight_bits: 0,
            double_buffered: false,
        };
        let need = plan.bram18();
        assert!(plan.fits_bram18(need));
        assert!(!plan.fits_bram18(need - 1));
    }

    #[test]
    fn double_buffering_doubles_intermediate_brams() {
        let single = BufferPlan {
            intermediate_bits: 100_000,
            extra_bits: 50_000,
            weight_bits: 200_000,
            double_buffered: false,
        };
        let double = BufferPlan { double_buffered: true, ..single };
        let diff = double.bram18() - single.bram18();
        assert_eq!(diff, 2 * bram18_for_bits(100_000));
    }
}
