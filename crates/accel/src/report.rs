//! Table VII: comparison rows against published VGG-16 FPGA accelerators
//! (literature values as printed in the paper) plus our simulated row.

/// One row of Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorRow {
    /// Citation tag as printed.
    pub work: &'static str,
    /// FPGA platform.
    pub platform: &'static str,
    /// Arithmetic precision.
    pub precision: &'static str,
    /// Process node.
    pub technology: &'static str,
    /// Clock in MHz.
    pub freq_mhz: u32,
    /// BRAM count string as printed.
    pub brams: &'static str,
    /// DSP count.
    pub dsps: u32,
    /// Throughput in GOP/s.
    pub gops: f64,
    /// Latency per image in ms.
    pub latency_ms: f64,
    /// Whether intermediate layers are transferred off-chip.
    pub intermediate_transfer: bool,
}

/// The seven published comparison rows of Table VII (our row is produced
/// by the simulator; see the `table7` harness).
pub fn table7_published_rows() -> Vec<AcceleratorRow> {
    vec![
        AcceleratorRow {
            work: "[4] Qiu et al.",
            platform: "Zynq ZC706",
            precision: "16b fixed",
            technology: "28nm",
            freq_mhz: 150,
            brams: "1090x18k",
            dsps: 900,
            gops: 136.97,
            latency_ms: 224.6,
            intermediate_transfer: true,
        },
        AcceleratorRow {
            work: "[16] Suda et al.",
            platform: "Stratix-V GSD8",
            precision: "8-16b fixed",
            technology: "28nm",
            freq_mhz: 120,
            brams: "2567x20k",
            dsps: 1963,
            gops: 117.8,
            latency_ms: 262.9,
            intermediate_transfer: true,
        },
        AcceleratorRow {
            work: "[17] Caffeine",
            platform: "Virtex-7 VX690t",
            precision: "16b fixed",
            technology: "28nm",
            freq_mhz: 150,
            brams: "2940x18k",
            dsps: 3600,
            gops: 354.0,
            latency_ms: 87.29,
            intermediate_transfer: true,
        },
        AcceleratorRow {
            work: "[18] Zhang & Prasanna",
            platform: "Intel QPI FPGA",
            precision: "32b float",
            technology: "28nm",
            freq_mhz: 200,
            brams: "2560x20k",
            dsps: 512,
            gops: 123.48,
            latency_ms: 263.27,
            intermediate_transfer: true,
        },
        AcceleratorRow {
            work: "[19] Ma et al.",
            platform: "Arria-10 GX1150",
            precision: "8-16b fixed",
            technology: "20nm",
            freq_mhz: 150,
            brams: "2713x20k",
            dsps: 1518,
            gops: 645.25,
            latency_ms: 47.97,
            intermediate_transfer: true,
        },
        AcceleratorRow {
            work: "[20] Zhang et al.",
            platform: "Virtex-7 VX690t",
            precision: "16b fixed",
            technology: "28nm",
            freq_mhz: 150,
            brams: "2940x18k",
            dsps: 3600,
            gops: 203.9,
            latency_ms: 151.8,
            intermediate_transfer: true,
        },
        AcceleratorRow {
            work: "[21] OPU",
            platform: "Zynq XC7Z100",
            precision: "8b fixed",
            technology: "28nm",
            freq_mhz: 200,
            brams: "1510x18k",
            dsps: 2020,
            gops: 354.0,
            latency_ms: 88.65,
            intermediate_transfer: true,
        },
    ]
}

/// The paper's own reported row (for paper-vs-measured comparison).
pub fn table7_paper_ours() -> AcceleratorRow {
    AcceleratorRow {
        work: "Ours (paper)",
        platform: "Zynq ZC706",
        precision: "8b fixed",
        technology: "28nm",
        freq_mhz: 150,
        brams: "1090x18k",
        dsps: 900,
        gops: 374.98,
        latency_ms: 82.03,
        intermediate_transfer: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_published_rows() {
        assert_eq!(table7_published_rows().len(), 7);
    }

    #[test]
    fn only_ours_avoids_intermediate_transfer() {
        assert!(table7_published_rows().iter().all(|r| r.intermediate_transfer));
        assert!(!table7_paper_ours().intermediate_transfer);
    }

    #[test]
    fn ours_is_fastest_28nm_row() {
        // The paper's claim: highest performance among 28nm FPGAs.
        let best_28nm = table7_published_rows()
            .iter()
            .filter(|r| r.technology == "28nm")
            .map(|r| r.gops)
            .fold(0.0, f64::max);
        assert!(table7_paper_ours().gops > best_28nm);
    }

    #[test]
    fn gops_and_latency_are_consistent() {
        // ~30.8 GOP VGG-16: GOP/s x latency should recover the workload.
        let ours = table7_paper_ours();
        let gop = ours.gops * ours.latency_ms / 1e3;
        assert!((gop - 30.76).abs() < 0.1, "got {gop}");
    }
}
