//! Analytic FPGA accelerator models for the block-convolution paper's
//! hardware evaluation (§III).
//!
//! The paper's hardware results are loop-nest cycle counts (its Equations
//! 3–4), Vivado resource reports and DRAM traffic accounting; this crate
//! implements the same cost models so every hardware table and figure can
//! be regenerated:
//!
//! * [`platform`] — ZC706 / Ultra96 descriptors, DRAM bandwidth and the
//!   DRAM-vs-SRAM energy model;
//! * [`baseline`] — the Qiu-style loop-tiled accelerator (Listing 1) with
//!   Eq 3/4 cycle counts, halo'd DRAM traffic and host-interrupt overhead;
//! * [`memory`] — BRAM estimation, buffer plans, and the §III-B2
//!   rectangular-blocking memory-utilisation argument;
//! * [`fusion`] — fused block-convolution designs, Table VI's A–G;
//! * [`dse`] — brute-force design-space exploration (Figure 12);
//! * [`vdsr_accel`] — the DaDianNao-like VDSR baseline and its
//!   block-convolution variant (Table IX);
//! * [`report`] — Table VII's published comparison rows.
//!
//! # Example
//!
//! ```
//! use bconv_accel::{fusion::{table6_configs, vgg16_shapes}, platform::zc706};
//!
//! let shapes = vgg16_shapes();
//! let platform = zc706();
//! let g = &table6_configs()[6]; // design G, the paper's headline config
//! let eval = g.evaluate(&shapes, &platform);
//! assert!(eval.bram18 <= platform.bram18_blocks); // fits on-chip
//! assert!(eval.gops(&platform) > 100.0);
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod dse;
pub mod fusion;
pub mod memory;
pub mod platform;
pub mod report;
pub mod schedule;
pub mod vdsr_accel;

pub use baseline::{ConvShape, TileConfig};
pub use fusion::FusedDesign;
pub use platform::FpgaPlatform;
pub use schedule::{fused_group_cost, GroupCost, StageFootprint};
