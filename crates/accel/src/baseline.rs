//! The loop-tiled baseline accelerator of Qiu et al. (FPGA'16), the design
//! the paper builds on (§III-B1, Listing 1) — and its cycle model,
//! Equations 3 and 4:
//!
//! ```text
//! N_phases = ceil(M/Tm) * ceil(N/Tn) * ceil(R/Tr) * ceil(C/Tc)       (Eq 4)
//! Cycles   = N_phases * (Tr + 2) * (Tc + 2) * Tm / Npe               (Eq 3)
//! ```
//!
//! plus a DRAM-traffic model (inputs with halo, weights per phase, outputs
//! with partial-sum round trips) and the CPU-interrupt overhead that the
//! paper identifies as the gap between theoretical and real performance
//! (§III-B5).

use crate::platform::FpgaPlatform;

/// Shape of one convolutional layer as the accelerator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Output channels `M`.
    pub m: usize,
    /// Input channels `N`.
    pub n: usize,
    /// Output rows `R`.
    pub r: usize,
    /// Output columns `C`.
    pub c: usize,
    /// Kernel size `K`.
    pub k: usize,
    /// Stride `S`.
    pub s: usize,
}

impl ConvShape {
    /// Multiply–accumulate count of the layer.
    pub fn macs(&self) -> u64 {
        (self.k * self.k * self.n) as u64 * (self.r * self.c) as u64 * self.m as u64
    }

    /// Operation count (2 × MACs), the paper's GOP unit.
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }
}

/// Loop-tiling configuration of Listing 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Output-row tile `Tr`.
    pub tr: usize,
    /// Output-column tile `Tc`.
    pub tc: usize,
    /// Output-channel tile `Tm`.
    pub tm: usize,
    /// Input-channel tile `Tn`.
    pub tn: usize,
    /// Number of parallel PEs `Npe`.
    pub npe: usize,
}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Equation 4: the number of computational phases of a layer.
pub fn num_phases(shape: &ConvShape, tile: &TileConfig) -> u64 {
    (ceil_div(shape.m, tile.tm)
        * ceil_div(shape.n, tile.tn)
        * ceil_div(shape.r, tile.tr)
        * ceil_div(shape.c, tile.tc)) as u64
}

/// Equation 3: computational cycles of a layer.
pub fn compute_cycles(shape: &ConvShape, tile: &TileConfig) -> u64 {
    num_phases(shape, tile) * ((tile.tr + 2) * (tile.tc + 2) * tile.tm / tile.npe) as u64
}

/// DRAM traffic of one layer in bits, at `bits`-bit activations/weights.
///
/// * inputs: every phase loads a `Tn × (S·Tr+K−S) × (S·Tc+K−S)` halo tile;
/// * weights: every phase loads `Tm × Tn × K × K` filters;
/// * outputs: written once, plus a write+read round trip for every extra
///   input-channel pass (partial sums when `Tn < N`).
pub fn dram_traffic_bits(shape: &ConvShape, tile: &TileConfig, bits: usize) -> u64 {
    let phases = num_phases(shape, tile);
    let in_tile_h = tile.tr * shape.s + shape.k - shape.s;
    let in_tile_w = tile.tc * shape.s + shape.k - shape.s;
    let input_bits = phases * (tile.tn * in_tile_h * in_tile_w * bits) as u64;
    let weight_bits = phases * (tile.tm * tile.tn * shape.k * shape.k * bits) as u64;
    let out_map = (shape.m * shape.r * shape.c * bits) as u64;
    let n_passes = ceil_div(shape.n, tile.tn) as u64;
    // One final write + (passes-1) partial-sum write+read round trips.
    let output_bits = out_map + (n_passes - 1) * 2 * out_map;
    input_bits + weight_bits + output_bits
}

/// Latency model of one layer on a platform: compute overlapped with DRAM
/// transfer (double buffering), plus a per-phase host-interrupt overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerLatency {
    /// Compute cycles (Eq 3).
    pub compute_cycles: u64,
    /// DRAM transfer cycles.
    pub dram_cycles: u64,
    /// Host CPU interrupt cycles (filter-transfer interrupts, §III-B5).
    pub interrupt_cycles: u64,
}

impl LayerLatency {
    /// Effective cycles with double buffering: compute and transfer
    /// overlap, interrupts serialise.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles) + self.interrupt_cycles
    }

    /// Wall-clock milliseconds at the platform clock.
    pub fn total_ms(&self, platform: &FpgaPlatform) -> f64 {
        self.total_cycles() as f64 * platform.clock_ns() / 1e6
    }
}

/// Per-phase CPU interrupt cost in cycles (DMA descriptor setup and
/// completion handling by the ARM host). Calibrated so the baseline's
/// real-vs-theoretical gap matches the paper's Figure 13.
pub const INTERRUPT_CYCLES_PER_PHASE: u64 = 2_000;

/// Evaluates one layer on a platform.
pub fn layer_latency(
    shape: &ConvShape,
    tile: &TileConfig,
    platform: &FpgaPlatform,
    bits: usize,
    count_interrupts: bool,
) -> LayerLatency {
    let phases = num_phases(shape, tile);
    LayerLatency {
        compute_cycles: compute_cycles(shape, tile),
        dram_cycles: platform.dram_cycles(dram_traffic_bits(shape, tile, bits)),
        interrupt_cycles: if count_interrupts { phases * INTERRUPT_CYCLES_PER_PHASE } else { 0 },
    }
}

/// Runs a whole network layer-by-layer (the baseline dataflow), returning
/// per-layer latencies and total off-chip feature-map traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Per-layer latency breakdown.
    pub layers: Vec<LayerLatency>,
    /// Total cycles.
    pub total_cycles: u64,
    /// Total feature-map DRAM traffic in bits (weights excluded).
    pub feature_traffic_bits: u64,
    /// Total operations.
    pub total_ops: u64,
}

impl BaselineReport {
    /// Total latency in milliseconds.
    pub fn latency_ms(&self, platform: &FpgaPlatform) -> f64 {
        self.total_cycles as f64 * platform.clock_ns() / 1e6
    }

    /// Achieved GOP/s.
    pub fn gops(&self, platform: &FpgaPlatform) -> f64 {
        self.total_ops as f64 / 1e9 / (self.latency_ms(platform) / 1e3)
    }
}

/// Evaluates the baseline accelerator over a conv-layer list.
pub fn run_baseline(
    shapes: &[ConvShape],
    tile: &TileConfig,
    platform: &FpgaPlatform,
    bits: usize,
) -> BaselineReport {
    let mut layers = Vec::with_capacity(shapes.len());
    let mut total_cycles = 0;
    let mut feature_traffic = 0u64;
    let mut total_ops = 0;
    for shape in shapes {
        let mut lat = layer_latency(shape, tile, platform, bits, true);
        // The baseline fields two DMA interrupts per phase (input tile in,
        // output tile out) where the fused design only transfers filters.
        lat.interrupt_cycles *= 2;
        total_cycles += lat.total_cycles();
        // Feature traffic: input read + output write round trips
        // (intermediate maps cross the boundary twice; approximate with the
        // same halo model as dram_traffic_bits minus weights).
        let phases = num_phases(shape, tile);
        let in_tile_h = tile.tr * shape.s + shape.k - shape.s;
        let in_tile_w = tile.tc * shape.s + shape.k - shape.s;
        feature_traffic += phases * (tile.tn * in_tile_h * in_tile_w * bits) as u64
            + (shape.m * shape.r * shape.c * bits) as u64;
        total_ops += shape.ops();
        layers.push(lat);
    }
    BaselineReport { layers, total_cycles, feature_traffic_bits: feature_traffic, total_ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::zc706;

    fn vgg_conv11() -> ConvShape {
        ConvShape { m: 64, n: 3, r: 224, c: 224, k: 3, s: 1 }
    }

    #[test]
    fn eq4_phase_count() {
        let tile = TileConfig { tr: 28, tc: 28, tm: 64, tn: 64, npe: 2 };
        // ceil(64/64)*ceil(3/64)*ceil(224/28)^2 = 1*1*8*8.
        assert_eq!(num_phases(&vgg_conv11(), &tile), 64);
    }

    #[test]
    fn eq3_cycle_count() {
        let tile = TileConfig { tr: 28, tc: 28, tm: 64, tn: 64, npe: 2 };
        // 64 phases * 30*30*64/2.
        assert_eq!(compute_cycles(&vgg_conv11(), &tile), 64 * 30 * 30 * 32);
    }

    #[test]
    fn more_pes_cut_cycles_proportionally() {
        let shape = vgg_conv11();
        let t2 = TileConfig { tr: 28, tc: 28, tm: 64, tn: 64, npe: 2 };
        let t4 = TileConfig { npe: 4, ..t2 };
        assert_eq!(compute_cycles(&shape, &t2), 2 * compute_cycles(&shape, &t4));
    }

    #[test]
    fn traffic_includes_halo_and_partial_sums() {
        let shape = ConvShape { m: 128, n: 128, r: 56, c: 56, k: 3, s: 1 };
        let tile = TileConfig { tr: 28, tc: 28, tm: 64, tn: 64, npe: 2 };
        let traffic = dram_traffic_bits(&shape, &tile, 16);
        // 2 output-channel passes x 2 input passes x 4 spatial = 16 phases.
        assert_eq!(num_phases(&shape, &tile), 16);
        // Partial sums force one extra write+read of the output map.
        let out_map = (128 * 56 * 56 * 16) as u64;
        assert!(traffic > 3 * out_map);
    }

    #[test]
    fn latency_overlaps_compute_and_dram() {
        let lat = LayerLatency { compute_cycles: 1000, dram_cycles: 600, interrupt_cycles: 50 };
        assert_eq!(lat.total_cycles(), 1050);
    }

    #[test]
    fn baseline_report_aggregates() {
        let shapes = [vgg_conv11(), ConvShape { m: 64, n: 64, r: 224, c: 224, k: 3, s: 1 }];
        let tile = TileConfig { tr: 28, tc: 28, tm: 64, tn: 64, npe: 2 };
        let p = zc706();
        let report = run_baseline(&shapes, &tile, &p, 16);
        assert_eq!(report.layers.len(), 2);
        assert!(report.gops(&p) > 1.0);
        assert!(report.latency_ms(&p) > 0.0);
        assert_eq!(report.total_ops, shapes.iter().map(|s| s.ops()).sum::<u64>());
    }

    #[test]
    fn interrupts_worsen_real_vs_theoretical() {
        let shape = vgg_conv11();
        let tile = TileConfig { tr: 14, tc: 14, tm: 64, tn: 64, npe: 2 };
        let p = zc706();
        let real = layer_latency(&shape, &tile, &p, 16, true);
        let theo = layer_latency(&shape, &tile, &p, 16, false);
        assert!(real.total_cycles() > theo.total_cycles());
    }
}
