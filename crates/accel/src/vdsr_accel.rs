//! The VDSR accelerator study (§III-C, Table IX): a DaDianNao-like
//! baseline that tiles every layer through DRAM, versus the block-conv
//! variant that fuses all 20 layers end-to-end so off-chip feature traffic
//! collapses from tens of gigabits to two image transfers.

use crate::memory::bram18_for_bits;
use crate::platform::{EnergyModel, FpgaPlatform};

/// Configuration of the VDSR accelerator (both variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VdsrConfig {
    /// Input height (1080 in the paper).
    pub h: usize,
    /// Input width (1920).
    pub w: usize,
    /// Spatial tile height (27).
    pub tile_h: usize,
    /// Spatial tile width (48).
    pub tile_w: usize,
    /// Network depth (20 conv layers).
    pub depth: usize,
    /// Hidden width (64 channels).
    pub channels: usize,
    /// Activation bitwidth (8).
    pub act_bits: usize,
    /// Weight bitwidth (4).
    pub weight_bits: usize,
    /// PE count (8, one output channel each).
    pub pes: usize,
    /// MACs per PE (64, dot product along channels).
    pub macs_per_pe: usize,
}

impl VdsrConfig {
    /// The paper's configuration (§III-C1).
    pub fn paper() -> Self {
        Self {
            h: 1080,
            w: 1920,
            tile_h: 27,
            tile_w: 48,
            depth: 20,
            channels: 64,
            act_bits: 8,
            weight_bits: 4,
            pes: 8,
            macs_per_pe: 64,
        }
    }

    /// Number of spatial tiles.
    pub fn num_tiles(&self) -> usize {
        self.h.div_ceil(self.tile_h) * self.w.div_ceil(self.tile_w)
    }

    /// Bits of one full 64-channel intermediate feature map.
    pub fn intermediate_map_bits(&self) -> u64 {
        (self.channels * self.h * self.w * self.act_bits) as u64
    }

    /// Total network weight bits (held on-chip in both variants).
    pub fn weight_bits_total(&self) -> u64 {
        // conv1: 3x3x1x64; 18 middle convs: 3x3x64x64; conv20: 3x3x64x1.
        let mid = (self.depth - 2) as u64 * (9 * self.channels * self.channels) as u64;
        let ends = 2 * (9 * self.channels) as u64;
        (mid + ends) * self.weight_bits as u64
    }
}

/// Evaluation of one VDSR accelerator variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdsrEval {
    /// Off-chip feature-map transfer in bits.
    pub transfer_bits: u64,
    /// Estimated BRAM18 blocks.
    pub bram18: usize,
    /// Estimated DSP slices.
    pub dsp: usize,
    /// Estimated LUTs.
    pub lut: usize,
    /// Estimated flip-flops.
    pub ff: usize,
    /// Compute cycles for the full image.
    pub compute_cycles: u64,
    /// DRAM cycles for the transfers.
    pub dram_cycles: u64,
}

impl VdsrEval {
    /// Transfer size in megabits (the unit of Table IX).
    pub fn transfer_mbits(&self) -> f64 {
        self.transfer_bits as f64 / 1.0e6
    }

    /// DRAM energy for the feature-map transfers, in millijoules.
    pub fn dram_energy_mj(&self, energy: &EnergyModel) -> f64 {
        energy.dram_mj(self.transfer_bits)
    }
}

/// Shared compute model: cycles = MACs / (PEs × MACs-per-PE). Identical
/// for both variants (block convolution does not change arithmetic).
fn compute_cycles(cfg: &VdsrConfig) -> u64 {
    let macs_mid =
        (cfg.depth - 2) as u64 * 9 * (cfg.channels * cfg.channels) as u64 * (cfg.h * cfg.w) as u64;
    let macs_ends = 2u64 * 9 * cfg.channels as u64 * (cfg.h * cfg.w) as u64;
    (macs_mid + macs_ends) / (cfg.pes * cfg.macs_per_pe) as u64
}

/// Resource model shared by both variants, calibrated against the paper's
/// Vivado reports: the MAC array dominates DSP, control and the DMA engine
/// dominate LUT/FF, and the data buffers dominate BRAM.
fn resources(
    cfg: &VdsrConfig,
    data_buffer_bits: u64,
    ping_pong: bool,
) -> (usize, usize, usize, usize) {
    let weight_brams = bram18_for_bits(cfg.weight_bits_total());
    let factor = if ping_pong { 2 } else { 1 };
    let data_brams = factor * bram18_for_bits(data_buffer_bits);
    let bram = weight_brams + data_brams;
    // 8 PEs x 64 4x8-bit MACs: two MACs share a DSP48 plus a LUT tail,
    // with a handful of DSPs in the address/control path.
    let dsp = cfg.pes * cfg.macs_per_pe / 2 + 9;
    let lut = 62_000 + cfg.pes * 900 + if ping_pong { 148 } else { 0 };
    let ff = 4_000 + cfg.pes * 110 + if ping_pong { 0 } else { 22 };
    (bram, dsp, lut, ff)
}

/// The DaDianNao-like baseline (§III-C1): every layer's tiles round-trip
/// through DRAM, with halo re-reads, and all data buffers are ping-pong
/// pairs to hide the transfer latency.
pub fn evaluate_baseline(cfg: &VdsrConfig, platform: &FpgaPlatform) -> VdsrEval {
    let tiles = cfg.num_tiles() as u64;
    let halo_tile_px = ((cfg.tile_h + 2) * (cfg.tile_w + 2)) as u64;
    let tile_px = (cfg.tile_h * cfg.tile_w) as u64;

    // Per intermediate boundary (outputs of conv1..conv_{depth-1}):
    // write the map once, read it back with halo.
    let boundaries = (cfg.depth - 1) as u64;
    let write_bits = boundaries * cfg.channels as u64 * tiles * tile_px * cfg.act_bits as u64;
    let read_bits = boundaries * cfg.channels as u64 * tiles * halo_tile_px * cfg.act_bits as u64;
    // Plus the 1-channel input read (with halo) and output write.
    let io_bits = tiles * (halo_tile_px + tile_px) * cfg.act_bits as u64;
    let transfer = write_bits + read_bits + io_bits;

    // Data buffers: input tile (64ch, halo) + output tile, ping-ponged.
    let buffer_bits =
        (cfg.channels as u64 * halo_tile_px + cfg.channels as u64 * tile_px) * cfg.act_bits as u64;
    let (bram, dsp, lut, ff) = resources(cfg, buffer_bits, true);
    VdsrEval {
        transfer_bits: transfer,
        bram18: bram,
        dsp,
        lut,
        ff,
        compute_cycles: compute_cycles(cfg),
        dram_cycles: platform.dram_cycles(transfer),
    }
}

/// The block-convolution variant (§III-C2): all 20 layers fuse end to end
/// per tile; off-chip transfer happens only for the input image and the
/// final output, and ping-pong buffering becomes unnecessary because the
/// bandwidth requirement collapses.
pub fn evaluate_blockconv(cfg: &VdsrConfig, platform: &FpgaPlatform) -> VdsrEval {
    let tiles = cfg.num_tiles() as u64;
    let tile_px = (cfg.tile_h * cfg.tile_w) as u64;
    // Input read + output write, both single-channel, no halo (blocks are
    // independent).
    let transfer = 2 * tiles * tile_px * cfg.act_bits as u64;

    // Data buffers: two alternating 64-channel block buffers (no
    // ping-pong pairs on top — transfers are no longer latency-critical).
    let buffer_bits = 2 * cfg.channels as u64 * tile_px * cfg.act_bits as u64;
    let (bram, dsp, lut, ff) = resources(cfg, buffer_bits, false);
    VdsrEval {
        transfer_bits: transfer,
        bram18: bram,
        dsp,
        lut,
        ff,
        compute_cycles: compute_cycles(cfg),
        dram_cycles: platform.dram_cycles(transfer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ultra96;

    #[test]
    fn paper_config_tile_count() {
        let cfg = VdsrConfig::paper();
        assert_eq!(cfg.num_tiles(), 40 * 40);
    }

    #[test]
    fn intermediate_map_is_126_mib() {
        // §III-C1: 126.6 MB per intermediate layer.
        let cfg = VdsrConfig::paper();
        let mib = cfg.intermediate_map_bits() as f64 / 8.0 / (1024.0 * 1024.0);
        assert!((mib - 126.6).abs() < 0.1, "got {mib}");
    }

    #[test]
    fn baseline_transfer_is_tens_of_gigabits() {
        // Table IX baseline: 36 481.64 Mbits. Our halo model lands in the
        // same range (the exact figure depends on unstated halo details).
        let eval = evaluate_baseline(&VdsrConfig::paper(), &ultra96());
        let mbits = eval.transfer_mbits();
        assert!((30_000.0..50_000.0).contains(&mbits), "baseline transfer {mbits} Mbits");
    }

    #[test]
    fn blockconv_transfer_is_two_images() {
        // Table IX: 31.64 Mbits — input + output only (our exact model
        // gives 2 x 1080x1920x8 = 33.18 Mbits).
        let eval = evaluate_blockconv(&VdsrConfig::paper(), &ultra96());
        let mbits = eval.transfer_mbits();
        assert!((mbits - 33.18).abs() < 0.1, "got {mbits}");
    }

    #[test]
    fn transfer_reduction_exceeds_99_9_percent() {
        // §III-C3: "the amount of off-chip feature map transfer is
        // drastically reduced by over 99.9%".
        let cfg = VdsrConfig::paper();
        let p = ultra96();
        let base = evaluate_baseline(&cfg, &p);
        let bconv = evaluate_blockconv(&cfg, &p);
        let reduction = 1.0 - bconv.transfer_bits as f64 / base.transfer_bits as f64;
        assert!(reduction > 0.999, "reduction {reduction}");
    }

    #[test]
    fn blockconv_uses_less_bram_than_baseline() {
        // Table IX: 352 -> 264 BRAMs (ping-pong removal).
        let cfg = VdsrConfig::paper();
        let p = ultra96();
        let base = evaluate_baseline(&cfg, &p);
        let bconv = evaluate_blockconv(&cfg, &p);
        assert!(bconv.bram18 < base.bram18);
        // Both fit the Ultra96.
        assert!(base.bram18 <= p.bram18_blocks, "baseline {}", base.bram18);
        assert!(bconv.bram18 <= p.bram18_blocks);
    }

    #[test]
    fn dsp_count_matches_table9_scale() {
        // Table IX reports 265/360 DSPs for both variants.
        let eval = evaluate_blockconv(&VdsrConfig::paper(), &ultra96());
        assert!((200..=360).contains(&eval.dsp), "dsp {}", eval.dsp);
        let base = evaluate_baseline(&VdsrConfig::paper(), &ultra96());
        assert_eq!(base.dsp, eval.dsp, "same PE array in both variants");
    }

    #[test]
    fn compute_cycles_identical_across_variants() {
        // Block convolution preserves FLOPs (§II-C).
        let cfg = VdsrConfig::paper();
        let p = ultra96();
        assert_eq!(
            evaluate_baseline(&cfg, &p).compute_cycles,
            evaluate_blockconv(&cfg, &p).compute_cycles
        );
    }

    #[test]
    fn baseline_dram_cycles_dominate_blockconv() {
        let cfg = VdsrConfig::paper();
        let p = ultra96();
        let base = evaluate_baseline(&cfg, &p);
        let bconv = evaluate_blockconv(&cfg, &p);
        assert!(base.dram_cycles > 100 * bconv.dram_cycles);
    }

    #[test]
    fn energy_savings_track_transfer_savings() {
        let cfg = VdsrConfig::paper();
        let p = ultra96();
        let e = EnergyModel::default();
        let base = evaluate_baseline(&cfg, &p).dram_energy_mj(&e);
        let bconv = evaluate_blockconv(&cfg, &p).dram_energy_mj(&e);
        assert!(base / bconv > 1000.0);
    }
}
