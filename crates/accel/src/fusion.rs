//! Multi-layer fusion designs for the block-convolution VGG-16 accelerator
//! (§III-B2/B3): fusion groups, per-layer blocking sizes `[Tr, Tc]`, the
//! buffer plan, and the Table VI configurations A–G.
//!
//! With block convolution the accelerator schedules blocks depth-first
//! through a fusion group: a block flows conv→conv→pool entirely in two
//! ping-pong *intermediate buffers*; at a group boundary, pooled sibling
//! blocks are spliced in an *extra buffer* into the next group's larger
//! block (Figure 10). Off-chip traffic is then the input image, the final
//! activations and the filters — no intermediate feature maps.

use crate::baseline::{
    compute_cycles, num_phases, ConvShape, TileConfig, INTERRUPT_CYCLES_PER_PHASE,
};
use crate::memory::{bram18_for_bits, BufferPlan};
use crate::platform::FpgaPlatform;

/// A per-layer blocking assignment for a network of conv layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedDesign {
    /// Design name (Table VI's A–G, or DSE-generated).
    pub name: String,
    /// Per-layer `[Tr, Tc]` blocking sizes.
    pub tiles: Vec<(usize, usize)>,
    /// Group sizes (consecutive layers fused per group).
    pub group_sizes: Vec<usize>,
    /// Fixed-point bitwidth of activations and weights.
    pub bits: usize,
    /// PE count.
    pub npe: usize,
}

/// Architecture constants of the PE array (channel tiles of Listing 1).
pub const TM: usize = 64;
/// Input-channel tile.
pub const TN: usize = 64;

/// Evaluation result of a fused design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedEval {
    /// Theoretical compute cycles (Eq 3 summed over layers).
    pub compute_cycles: u64,
    /// DRAM cycles (weights + input + output; no intermediate features).
    pub dram_cycles: u64,
    /// CPU-interrupt cycles (filter transfers).
    pub interrupt_cycles: u64,
    /// Estimated BRAM18 blocks.
    pub bram18: usize,
    /// Off-chip feature-map traffic in bits (input + output only).
    pub feature_traffic_bits: u64,
    /// Total operations.
    pub total_ops: u64,
}

impl FusedEval {
    /// Real (interrupt-laden) total cycles.
    pub fn real_cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles) + self.interrupt_cycles
    }

    /// Theoretical cycles (perfect host, overlapped transfers).
    pub fn theoretical_cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles)
    }

    /// Real latency in milliseconds.
    pub fn latency_ms(&self, platform: &FpgaPlatform) -> f64 {
        self.real_cycles() as f64 * platform.clock_ns() / 1e6
    }

    /// Real GOP/s.
    pub fn gops(&self, platform: &FpgaPlatform) -> f64 {
        self.total_ops as f64 / 1e9 / (self.latency_ms(platform) / 1e3)
    }

    /// Theoretical GOP/s.
    pub fn theoretical_gops(&self, platform: &FpgaPlatform) -> f64 {
        let ms = self.theoretical_cycles() as f64 * platform.clock_ns() / 1e6;
        self.total_ops as f64 / 1e9 / (ms / 1e3)
    }
}

impl FusedDesign {
    /// Evaluates the design over the network's conv shapes.
    ///
    /// # Panics
    ///
    /// Panics if `tiles.len() != shapes.len()` or group sizes do not sum
    /// to the layer count.
    pub fn evaluate(&self, shapes: &[ConvShape], platform: &FpgaPlatform) -> FusedEval {
        assert_eq!(self.tiles.len(), shapes.len(), "tile list length");
        assert_eq!(
            self.group_sizes.iter().sum::<usize>(),
            shapes.len(),
            "group sizes must cover all layers"
        );
        let mut compute = 0u64;
        let mut weight_bits = 0u64;
        let mut interrupts = 0u64;
        let mut total_ops = 0u64;
        for (shape, &(tr, tc)) in shapes.iter().zip(&self.tiles) {
            let tile = TileConfig { tr, tc, tm: TM, tn: TN, npe: self.npe };
            compute += compute_cycles(shape, &tile);
            let phases = num_phases(shape, &tile);
            weight_bits += phases * (TM * TN * shape.k * shape.k * self.bits) as u64;
            interrupts += phases * INTERRUPT_CYCLES_PER_PHASE;
            total_ops += shape.ops();
        }
        // Feature traffic: input image + final conv output only.
        let first = &shapes[0];
        let last = shapes.last().expect("non-empty network");
        let input_bits = (first.n * (first.r * first.s) * (first.c * first.s) * self.bits) as u64;
        let output_bits = (last.m * last.r * last.c * self.bits) as u64;
        let feature_traffic = input_bits + output_bits;

        let eval_bits = weight_bits + feature_traffic;
        let dram_cycles = platform.dram_cycles(eval_bits);

        FusedEval {
            compute_cycles: compute,
            dram_cycles,
            interrupt_cycles: interrupts,
            bram18: self.bram18(shapes),
            feature_traffic_bits: feature_traffic,
            total_ops,
        }
    }

    /// BRAM estimate (the Figure 10 memory organisation): two ping-pong
    /// intermediate buffers sized to the largest in-flight block across
    /// **all** of its channels, one extra buffer holding the largest
    /// group-boundary feature map (the spliced CONV3 output of Figure 10f;
    /// the next group's pooled output overwrites it in place), and a
    /// double-buffered filter tile.
    pub fn bram18(&self, shapes: &[ConvShape]) -> usize {
        // Largest block's activations (all output channels x Tr x Tc).
        let max_block_bits = shapes
            .iter()
            .zip(&self.tiles)
            .map(|(s, &(tr, tc))| (s.m * tr * tc * self.bits) as u64)
            .max()
            .unwrap_or(0);
        // Extra buffer: the largest full feature map at a group boundary
        // (the input map of each group after the first).
        let mut extra_bits = 0u64;
        let mut idx = 0usize;
        for (gi, &gs) in self.group_sizes.iter().enumerate() {
            idx += gs;
            if gi + 1 < self.group_sizes.len() {
                let next = &shapes[idx];
                let map_bits = (next.n * next.r * next.c * self.bits) as u64;
                extra_bits = extra_bits.max(map_bits);
            }
        }
        let weight_bits = 2 * (TM * TN * 9 * self.bits) as u64; // ping-pong filter tile
        let plan = BufferPlan {
            intermediate_bits: max_block_bits,
            extra_bits,
            weight_bits,
            double_buffered: false,
        };
        plan.bram18()
    }
}

/// VGG-16 conv shapes at 224² input (13 layers), in accelerator order.
pub fn vgg16_shapes() -> Vec<ConvShape> {
    let spec: [(usize, usize, usize); 13] = [
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    spec.iter().map(|&(n, m, r)| ConvShape { m, n, r, c: r, k: 3, s: 1 }).collect()
}

/// The Table VI configurations. A–C are 16-bit / 2 PE; D–G are 8-bit /
/// 4 PE (Figure 12's two panels).
///
/// Note: the printed group row for G ("2, 2, 3, 5") sums to 12 of 13
/// layers; we use `[2, 2, 3, 6]`, consistent with its per-layer tile list.
pub fn table6_configs() -> Vec<FusedDesign> {
    let t14 = vec![(14, 14); 13];
    let mut b = vec![(28, 28); 4];
    b.extend(vec![(14, 14); 9]);
    let mut c = vec![(28, 28); 4];
    c.extend(vec![(28, 14); 3]);
    c.extend(vec![(14, 14); 6]);
    let mut f = vec![(28, 28); 7];
    f.extend(vec![(28, 14); 3]);
    f.extend(vec![(14, 14); 3]);
    let mut g = vec![(28, 28); 10];
    g.extend(vec![(14, 14); 3]);
    vec![
        FusedDesign {
            name: "A".into(),
            tiles: t14.clone(),
            group_sizes: vec![2, 2, 3, 3, 3],
            bits: 16,
            npe: 2,
        },
        FusedDesign { name: "B".into(), tiles: b, group_sizes: vec![2, 5, 3, 3], bits: 16, npe: 2 },
        FusedDesign {
            name: "C".into(),
            tiles: c.clone(),
            group_sizes: vec![2, 2, 3, 3, 3],
            bits: 16,
            npe: 2,
        },
        FusedDesign {
            name: "D".into(),
            tiles: t14,
            group_sizes: vec![2, 2, 3, 3, 3],
            bits: 8,
            npe: 4,
        },
        FusedDesign {
            name: "E".into(),
            tiles: c,
            group_sizes: vec![2, 2, 3, 3, 3],
            bits: 8,
            npe: 4,
        },
        FusedDesign {
            name: "F".into(),
            tiles: f,
            group_sizes: vec![2, 2, 3, 3, 3],
            bits: 8,
            npe: 4,
        },
        FusedDesign { name: "G".into(), tiles: g, group_sizes: vec![2, 2, 3, 6], bits: 8, npe: 4 },
    ]
}

/// BRAM utilisation of the published baseline implementation (Qiu et al.
/// FPGA'16 report 486 of 545 BRAM36 on the ZC706 = 972 BRAM18) — the
/// reference for the paper's "~10% BRAM increase" claim in §III-B5.
pub const QIU_PUBLISHED_BRAM18: usize = 972;

/// BRAM of the off-chip baseline at the same bitwidth: double-buffered
/// input/output tile pairs plus the filter tile.
pub fn baseline_bram18(shapes: &[ConvShape], tr: usize, tc: usize, bits: usize) -> usize {
    let max_in_tile = shapes
        .iter()
        .map(|s| (TN * (tr * s.s + s.k - s.s) * (tc * s.s + s.k - s.s) * bits) as u64)
        .max()
        .unwrap_or(0);
    let out_tile = (TM * tr * tc * bits) as u64;
    let weight_bits = 2 * (TM * TN * 9 * bits) as u64;
    // Ping-pong on both input and output tiles.
    2 * bram18_for_bits(max_in_tile) + 2 * bram18_for_bits(out_tile) + bram18_for_bits(weight_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::zc706;

    #[test]
    fn table6_configs_are_well_formed() {
        let shapes = vgg16_shapes();
        for design in table6_configs() {
            assert_eq!(design.tiles.len(), 13, "{}", design.name);
            assert_eq!(design.group_sizes.iter().sum::<usize>(), 13, "{}", design.name);
            // Block sizes never exceed the layer resolution.
            for (shape, &(tr, tc)) in shapes.iter().zip(&design.tiles) {
                assert!(tr <= shape.r && tc <= shape.c, "{}", design.name);
            }
        }
    }

    #[test]
    fn all_table6_designs_fit_zc706() {
        // Figure 12: points A-G lie left of the ZC706 BRAM line.
        let shapes = vgg16_shapes();
        let p = zc706();
        for design in table6_configs() {
            let eval = design.evaluate(&shapes, &p);
            assert!(
                eval.bram18 <= p.bram18_blocks,
                "{} uses {} of {} BRAMs",
                design.name,
                eval.bram18,
                p.bram18_blocks
            );
        }
    }

    #[test]
    fn fused_feature_traffic_is_input_plus_output_only() {
        let shapes = vgg16_shapes();
        let design = &table6_configs()[0];
        let eval = design.evaluate(&shapes, &zc706());
        let expected = (3 * 224 * 224 * 16 + 512 * 14 * 14 * 16) as u64;
        assert_eq!(eval.feature_traffic_bits, expected);
    }

    #[test]
    fn eight_bit_designs_are_faster_than_16_bit() {
        // Figure 13: D-G (8-bit, 4 PE) outperform A-C (16-bit, 2 PE).
        let shapes = vgg16_shapes();
        let p = zc706();
        let configs = table6_configs();
        let a = configs[0].evaluate(&shapes, &p);
        let g = configs[6].evaluate(&shapes, &p);
        assert!(g.gops(&p) > a.gops(&p));
    }

    #[test]
    fn bigger_blocks_reduce_interrupts() {
        // Rectangular/large blocking reduces phase count and with it the
        // CPU-interrupt overhead (§III-B5 point 2).
        let shapes = vgg16_shapes();
        let p = zc706();
        let configs = table6_configs();
        let d = configs[3].evaluate(&shapes, &p); // all 14x14
        let g = configs[6].evaluate(&shapes, &p); // mostly 28x28
        assert!(g.interrupt_cycles < d.interrupt_cycles);
    }

    #[test]
    fn real_is_slower_than_theoretical() {
        let shapes = vgg16_shapes();
        let p = zc706();
        let eval = table6_configs()[6].evaluate(&shapes, &p);
        assert!(eval.gops(&p) < eval.theoretical_gops(&p));
    }

    #[test]
    fn vgg_shapes_total_30_8_gop() {
        let total: u64 = vgg16_shapes().iter().map(|s| s.ops()).sum();
        let gop = total as f64 / 1e9;
        assert!((gop - 30.7).abs() < 0.3, "got {gop}");
    }
}
