//! Brute-force design-space exploration (§III-B4, Figure 12): enumerate
//! stage-aligned fusion groupings of VGG-16 and per-group blocking sizes,
//! evaluating inference latency and BRAM consumption for each point.

use crate::baseline::ConvShape;
use crate::fusion::{FusedDesign, FusedEval};
use crate::platform::FpgaPlatform;

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// The design.
    pub design: FusedDesign,
    /// Its evaluation.
    pub eval: FusedEval,
}

/// VGG-16's five conv stages as (start layer index, layer count,
/// resolution).
const VGG_STAGES: [(usize, usize, usize); 5] =
    [(0, 2, 224), (2, 2, 112), (4, 3, 56), (7, 3, 28), (10, 3, 14)];

/// Candidate `[Tr, Tc]` block sizes per group (square and rectangular, the
/// sizes Table VI draws from).
const BLOCK_OPTIONS: [(usize, usize); 5] = [(14, 14), (28, 14), (28, 28), (56, 28), (56, 56)];

/// Enumerates contiguous partitions of the five stages into fusion groups,
/// assigns every group each feasible block option, and evaluates all
/// resulting designs.
///
/// `bits`/`npe` select Figure 12's panel (16-bit/2 PE or 8-bit/4 PE).
pub fn explore_vgg16(
    shapes: &[ConvShape],
    platform: &FpgaPlatform,
    bits: usize,
    npe: usize,
) -> Vec<DsePoint> {
    let mut points = Vec::new();
    // 2^(5-1) contiguous partitions of the 5 stages.
    for mask in 0u32..16 {
        // Group boundaries after stage i when bit i is set.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new()];
        for (si, stage) in VGG_STAGES.iter().enumerate() {
            groups.last_mut().expect("non-empty").push(si);
            let _ = stage;
            if si < 4 && mask & (1 << si) != 0 {
                groups.push(Vec::new());
            }
        }
        // Assign each group one of the block options (cartesian product).
        let g = groups.len();
        let combos = BLOCK_OPTIONS.len().pow(g as u32);
        'combo: for combo in 0..combos {
            let mut tiles = vec![(0usize, 0usize); 13];
            let mut group_sizes = Vec::with_capacity(g);
            let mut rem = combo;
            for stages in &groups {
                let (tr, tc) = BLOCK_OPTIONS[rem % BLOCK_OPTIONS.len()];
                rem /= BLOCK_OPTIONS.len();
                let mut layer_count = 0;
                for &si in stages {
                    let (start, count, res) = VGG_STAGES[si];
                    if tr > res || tc > res {
                        continue 'combo; // block larger than the map
                    }
                    for tile in &mut tiles[start..start + count] {
                        *tile = (tr, tc);
                    }
                    layer_count += count;
                }
                group_sizes.push(layer_count);
            }
            let design = FusedDesign {
                name: format!("dse-{mask:02}-{combo:03}"),
                tiles,
                group_sizes,
                bits,
                npe,
            };
            let eval = design.evaluate(shapes, platform);
            points.push(DsePoint { design, eval });
        }
    }
    points
}

/// Filters points that fit the platform's BRAM (left of Figure 12's dotted
/// line).
pub fn feasible<'a>(points: &'a [DsePoint], platform: &FpgaPlatform) -> Vec<&'a DsePoint> {
    points.iter().filter(|p| p.eval.bram18 <= platform.bram18_blocks).collect()
}

/// Pareto front by (BRAM, real cycles): points not dominated by any other.
pub fn pareto_front(points: &[DsePoint]) -> Vec<&DsePoint> {
    let mut front: Vec<&DsePoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.eval.bram18 < p.eval.bram18 && q.eval.real_cycles() <= p.eval.real_cycles())
                || (q.eval.bram18 <= p.eval.bram18 && q.eval.real_cycles() < p.eval.real_cycles())
        });
        if !dominated {
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::vgg16_shapes;
    use crate::platform::zc706;

    #[test]
    fn exploration_yields_many_points() {
        let shapes = vgg16_shapes();
        let points = explore_vgg16(&shapes, &zc706(), 16, 2);
        assert!(points.len() > 100, "only {} points", points.len());
    }

    #[test]
    fn some_points_are_feasible_on_zc706() {
        // Figure 12's message: many configurations fit on-chip.
        let shapes = vgg16_shapes();
        let p = zc706();
        for (bits, npe) in [(16, 2), (8, 4)] {
            let points = explore_vgg16(&shapes, &p, bits, npe);
            let feas = feasible(&points, &p);
            assert!(!feas.is_empty(), "{bits}-bit should have feasible points");
            assert!(feas.len() < points.len(), "some must be infeasible");
        }
    }

    #[test]
    fn eight_bit_designs_need_less_bram() {
        let shapes = vgg16_shapes();
        let p = zc706();
        let min16 =
            explore_vgg16(&shapes, &p, 16, 2).iter().map(|pt| pt.eval.bram18).min().unwrap();
        let min8 = explore_vgg16(&shapes, &p, 8, 4).iter().map(|pt| pt.eval.bram18).min().unwrap();
        assert!(min8 < min16);
    }

    #[test]
    fn pareto_front_is_nonempty_and_nondominated() {
        let shapes = vgg16_shapes();
        let p = zc706();
        let points = explore_vgg16(&shapes, &p, 8, 4);
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for a in &front {
            for b in &points {
                let dominates =
                    b.eval.bram18 < a.eval.bram18 && b.eval.real_cycles() <= a.eval.real_cycles();
                assert!(!dominates, "front point dominated");
            }
        }
    }

    #[test]
    fn blocks_never_exceed_stage_resolution() {
        let shapes = vgg16_shapes();
        let points = explore_vgg16(&shapes, &zc706(), 8, 4);
        for pt in &points {
            for (shape, &(tr, tc)) in shapes.iter().zip(&pt.design.tiles) {
                assert!(tr <= shape.r && tc <= shape.c);
            }
        }
    }
}
