//! ResNet-18 and ResNet-50 (He et al.) with the paper's optional
//! stride-to-pooling baseline rewrite (§II-F: "we modify the convolutional
//! layers with stride s to those with stride 1 followed by an s×s max
//! pooling layer").

use crate::builder::{conv, maxpool, NetBuilder};
use crate::layer::{From, LayerKind, Network};
use crate::ActShape;

/// Pushes a possibly-strided conv; under the rewrite, emits a stride-1 conv
/// followed by an `s×s` max pool. Returns the index of the layer producing
/// the conv's output.
#[allow(clippy::too_many_arguments)]
fn push_conv(
    b: &mut NetBuilder,
    name: &str,
    k: usize,
    s: usize,
    p: usize,
    c_in: usize,
    c_out: usize,
    stride_as_pool: bool,
) -> usize {
    if s > 1 && stride_as_pool {
        b.push(name.to_string(), conv(k, 1, p, c_in, c_out));
        b.push(format!("{name}-pool"), maxpool(s, s, 0))
    } else {
        b.push(name.to_string(), conv(k, s, p, c_in, c_out))
    }
}

/// A ResNet *basic* block (two 3×3 convs), returning the index of its
/// output (the residual sum).
#[allow(clippy::too_many_arguments)]
fn basic_block(
    b: &mut NetBuilder,
    name: &str,
    c_in: usize,
    c_out: usize,
    stride: usize,
    input: usize,
    stride_as_pool: bool,
) -> usize {
    let conv1 = push_conv(b, &format!("{name}-conv1"), 3, stride, 1, c_in, c_out, stride_as_pool);
    // Figure 9 marks the first conv of each residual block.
    let first_idx = if stride > 1 && stride_as_pool { conv1 - 1 } else { conv1 };
    let _ = first_idx;
    let conv2 = b.push(format!("{name}-conv2"), conv(3, 1, 1, c_out, c_out));
    let shortcut = if stride != 1 || c_in != c_out {
        let ds =
            push_conv(b, &format!("{name}-downsample"), 1, stride, 0, c_in, c_out, stride_as_pool);
        // The downsample branch reads the block input, not the main path.
        let wire_target = if stride > 1 && stride_as_pool { ds - 1 } else { ds };
        rewire(b, wire_target, input);
        ds
    } else {
        input
    };
    let add = b.push_from(
        format!("{name}-add"),
        LayerKind::Add { other: From::Layer(conv2) },
        From::Layer(shortcut),
    );
    add
}

/// A ResNet *bottleneck* block (1×1 → 3×3 → 1×1, expansion 4), stride on
/// the 3×3 (the torchvision v1.5 convention). Returns the output index.
#[allow(clippy::too_many_arguments)]
fn bottleneck_block(
    b: &mut NetBuilder,
    name: &str,
    c_in: usize,
    c_mid: usize,
    stride: usize,
    input: usize,
    stride_as_pool: bool,
) -> usize {
    let c_out = 4 * c_mid;
    b.push(format!("{name}-conv1"), conv(1, 1, 0, c_in, c_mid));
    push_conv(b, &format!("{name}-conv2"), 3, stride, 1, c_mid, c_mid, stride_as_pool);
    let conv3 = b.push(format!("{name}-conv3"), conv(1, 1, 0, c_mid, c_out));
    let shortcut = if stride != 1 || c_in != c_out {
        let ds =
            push_conv(b, &format!("{name}-downsample"), 1, stride, 0, c_in, c_out, stride_as_pool);
        let wire_target = if stride > 1 && stride_as_pool { ds - 1 } else { ds };
        rewire(b, wire_target, input);
        ds
    } else {
        input
    };
    b.push_from(
        format!("{name}-add"),
        LayerKind::Add { other: From::Layer(conv3) },
        From::Layer(shortcut),
    )
}

/// Rewires layer `idx` to read from layer `from` (builder-internal surgery
/// for shortcut branches).
fn rewire(b: &mut NetBuilder, idx: usize, from: usize) {
    // NetBuilder has no random-access mutator; emulate with a rebuild of
    // the `from` field via the public API would be clumsy, so we expose a
    // tiny crate-internal hook instead.
    b.set_from(idx, From::Layer(from));
}

fn stem(b: &mut NetBuilder, stride_as_pool: bool) -> usize {
    push_conv(b, "conv1", 7, 2, 3, 3, 64, stride_as_pool);
    b.push("maxpool", maxpool(3, 2, 1))
}

/// ResNet-18 for `resolution²` RGB inputs.
///
/// `stride_as_pool` applies the paper's baseline rewrite.
pub fn resnet18(resolution: usize, stride_as_pool: bool) -> Network {
    let mut b = NetBuilder::new("ResNet-18", ActShape { c: 3, h: resolution, w: resolution });
    let mut cur = stem(&mut b, stride_as_pool);
    let mut c_in = 64;
    for (stage, (c_out, blocks)) in
        [(64usize, 2usize), (128, 2), (256, 2), (512, 2)].into_iter().enumerate()
    {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let name = format!("layer{}-{}", stage + 1, blk + 1);
            let start = b.next_index();
            cur = basic_block(&mut b, &name, c_in, c_out, stride, cur, stride_as_pool);
            b.mark_residual_first_at(start);
            c_in = c_out;
        }
    }
    b.push_from("gap", LayerKind::GlobalAvgPool, From::Layer(cur));
    b.push("fc", LayerKind::Fc { in_f: 512, out_f: 1000 });
    b.build()
}

/// ResNet-50 for `resolution²` RGB inputs.
///
/// `stride_as_pool` applies the paper's baseline rewrite.
pub fn resnet50(resolution: usize, stride_as_pool: bool) -> Network {
    let mut b = NetBuilder::new("ResNet-50", ActShape { c: 3, h: resolution, w: resolution });
    let mut cur = stem(&mut b, stride_as_pool);
    let mut c_in = 64;
    for (stage, (c_mid, blocks)) in
        [(64usize, 3usize), (128, 4), (256, 6), (512, 3)].into_iter().enumerate()
    {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let name = format!("layer{}-{}", stage + 1, blk + 1);
            let start = b.next_index();
            cur = bottleneck_block(&mut b, &name, c_in, c_mid, stride, cur, stride_as_pool);
            b.mark_residual_first_at(start);
            c_in = 4 * c_mid;
        }
    }
    b.push_from("gap", LayerKind::GlobalAvgPool, From::Layer(cur));
    b.push("fc", LayerKind::Fc { in_f: 2048, out_f: 1000 });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_conv_count() {
        // conv1 + 8 basic blocks x 2 convs + 3 downsample 1x1 convs = 20.
        let info = resnet18(224, false).trace().unwrap();
        assert_eq!(info.iter().filter(|l| l.is_conv).count(), 20);
        assert_eq!(info.last().unwrap().out_shape.c, 1000);
    }

    #[test]
    fn resnet18_macs_are_1_8g() {
        let gmacs = resnet18(224, false).total_macs().unwrap() as f64 / 1e9;
        assert!((gmacs - 1.82).abs() < 0.1, "got {gmacs}");
    }

    #[test]
    fn resnet50_conv_count_and_macs() {
        // conv1 + 16 bottlenecks x 3 + 4 downsamples = 53.
        let info = resnet50(224, false).trace().unwrap();
        assert_eq!(info.iter().filter(|l| l.is_conv).count(), 53);
        let gmacs = resnet50(224, false).total_macs().unwrap() as f64 / 1e9;
        assert!((gmacs - 4.1).abs() < 0.3, "got {gmacs}");
    }

    #[test]
    fn stride_as_pool_rewrite_preserves_final_shape() {
        for (a, b) in [
            (resnet18(224, false), resnet18(224, true)),
            (resnet50(224, false), resnet50(224, true)),
        ] {
            let ia = a.trace().unwrap();
            let ib = b.trace().unwrap();
            assert_eq!(ia.last().unwrap().out_shape, ib.last().unwrap().out_shape);
            // The rewrite strictly increases compute (convs at higher res).
            assert!(b.total_macs().unwrap() > a.total_macs().unwrap());
        }
    }

    #[test]
    fn rewrite_raises_conv_compute_resolution() {
        let info = resnet18(224, true).trace().unwrap();
        // conv1 now computes at 224 instead of 112.
        let conv1 = info.iter().find(|l| l.name == "conv1").unwrap();
        assert_eq!(conv1.out_shape.h, 224);
    }

    #[test]
    fn residual_first_layers_are_marked() {
        let info = resnet18(224, false).trace().unwrap();
        let marked = info.iter().filter(|l| l.residual_first).count();
        assert_eq!(marked, 8); // 8 basic blocks
    }

    #[test]
    fn stage_resolutions() {
        let info = resnet18(224, false).trace().unwrap();
        let l1 = info.iter().find(|l| l.name == "layer1-1-conv1").unwrap();
        assert_eq!(l1.in_shape.h, 56);
        let l4 = info.iter().find(|l| l.name == "layer4-2-conv1").unwrap();
        assert_eq!(l4.in_shape.h, 7);
    }
}
