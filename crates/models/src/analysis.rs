//! Feature-map volume analysis — the data behind Figures 1 and 9 and the
//! blocking-ratio column of Table I.

use bconv_core::analysis::ConvLayerSpatial;
use bconv_core::plan::NetworkPlan;
use bconv_core::BlockingPattern;
use bconv_tensor::TensorError;

use crate::layer::{LayerInfo, Network};

/// One point of a Figure 1 / Figure 9 series.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMapPoint {
    /// Layer name.
    pub name: String,
    /// Output feature-map volume in megabits at the chosen bitwidth.
    pub mbits: f64,
    /// True for the first conv of a residual block (Figure 9's marking).
    pub residual_first: bool,
}

/// Per-layer output feature-map volumes for conv layers (the series plotted
/// in Figures 1 and 9), at `bitwidth`-bit activations.
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn feature_map_series(
    net: &Network,
    bitwidth: usize,
) -> Result<Vec<FeatureMapPoint>, TensorError> {
    Ok(net
        .trace()?
        .iter()
        .filter(|l| l.is_conv)
        .map(|l| FeatureMapPoint {
            name: l.name.clone(),
            mbits: l.out_shape.mbits(bitwidth),
            residual_first: l.residual_first,
        })
        .collect())
}

/// Peak single-layer output volume in megabits (what must fit on-chip to
/// hold one whole feature map).
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn peak_feature_map_mbits(net: &Network, bitwidth: usize) -> Result<f64, TensorError> {
    Ok(feature_map_series(net, bitwidth)?.iter().map(|p| p.mbits).fold(0.0, f64::max))
}

/// Total volume of all conv-layer outputs in megabits — the "volume of
/// intermediate feature maps" bars of Figure 1.
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn total_feature_map_mbits(net: &Network, bitwidth: usize) -> Result<f64, TensorError> {
    Ok(feature_map_series(net, bitwidth)?.iter().map(|p| p.mbits).sum())
}

/// Spatial compute resolutions of all conv layers, the input to blocking
/// ratio accounting ([`bconv_core::analysis::blocking_ratio`]).
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn conv_spatial(net: &Network) -> Result<Vec<ConvLayerSpatial>, TensorError> {
    Ok(net
        .trace()?
        .iter()
        .filter(|l| l.is_conv)
        .map(|l| ConvLayerSpatial { h: l.in_shape.h, w: l.in_shape.w })
        .collect())
}

/// Blocking plan for a network under the paper's resolution rule.
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn plan_for(net: &Network, pattern: BlockingPattern) -> Result<NetworkPlan, TensorError> {
    Ok(NetworkPlan::by_resolution(&conv_spatial(net)?, pattern))
}

/// Index of the earliest conv layer after which every subsequent layer's
/// whole output fits within `budget_mbits` — the paper's §III-A fusion
/// depth rule ("fuse multiple layers until a layer's entire output feature
/// maps can be accommodated on-chip").
///
/// Returns `None` when no prefix fusion ever brings the tail under budget.
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn fusion_depth(
    net: &Network,
    bitwidth: usize,
    budget_mbits: f64,
) -> Result<Option<usize>, TensorError> {
    let series = feature_map_series(net, bitwidth)?;
    for (idx, _) in series.iter().enumerate() {
        if series[idx..].iter().all(|p| p.mbits <= budget_mbits) {
            return Ok(Some(idx));
        }
    }
    Ok(None)
}

/// Layer facts restricted to conv layers, convenience for the harnesses.
///
/// # Errors
///
/// Propagates [`Network::trace`] errors.
pub fn conv_layers(net: &Network) -> Result<Vec<LayerInfo>, TensorError> {
    Ok(net.trace()?.into_iter().filter(|l| l.is_conv).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobilenet::mobilenet_v1;
    use crate::vdsr::vdsr;
    use crate::vgg::vgg16;

    #[test]
    fn vgg_volume_decreases_with_depth() {
        // Figure 1 / §II-A: VGG-16's intermediate volume shrinks as the
        // network deepens.
        let series = feature_map_series(&vgg16(224), 16).unwrap();
        assert!(series.first().unwrap().mbits > 50.0);
        assert!(series.last().unwrap().mbits < 2.0);
    }

    #[test]
    fn vdsr_volume_is_constant_and_huge() {
        // Figure 1: VDSR keeps full resolution everywhere; every 64-channel
        // layer at 256x256 @16-bit is 67.1 Mbits.
        let series = feature_map_series(&vdsr(256, 256), 16).unwrap();
        for p in &series[..series.len() - 1] {
            assert!((p.mbits - 67.108864).abs() < 1e-6, "{}: {}", p.name, p.mbits);
        }
    }

    #[test]
    fn neither_model_fits_zc706_bram() {
        // Figure 1's point: ZC706 has 19.62 Mbits of BRAM; single layers
        // exceed it for both models.
        let zc706_mbits = 1090.0 * 18.0 * 1024.0 / 1e6;
        assert!(peak_feature_map_mbits(&vgg16(224), 16).unwrap() > zc706_mbits);
        assert!(peak_feature_map_mbits(&vdsr(256, 256), 16).unwrap() > zc706_mbits);
    }

    #[test]
    fn fusion_depth_finds_mobilenet_cutover() {
        // §III-A: with the ZU3EG's 7.6 Mb budget, fusing the first four
        // layers of MobileNet-V1 lets conv2_1's output stay on-chip.
        let net = mobilenet_v1(224, false);
        let depth = fusion_depth(&net, 16, 7.6).unwrap().unwrap();
        let series = feature_map_series(&net, 16).unwrap();
        // Everything from the fusion point on fits.
        assert!(series[depth..].iter().all(|p| p.mbits <= 7.6));
        // Something before it did not.
        assert!(series[..depth].iter().any(|p| p.mbits > 7.6));
        // The cut happens within the first few layers.
        assert!(depth <= 5, "depth {depth}");
    }

    #[test]
    fn vgg_blocking_ratio_under_f28() {
        let plan = plan_for(&vgg16(224), BlockingPattern::fixed(28)).unwrap();
        assert!((plan.blocking_ratio() * 100.0 - 76.92).abs() < 0.01);
    }

    #[test]
    fn fusion_depth_none_when_budget_tiny() {
        let net = vdsr(256, 256);
        // VDSR's tail never fits a 1-Mbit budget (last conv output is 1 map
        // but the 19th layer's output is 67 Mbits; prefix must cover all).
        assert_eq!(fusion_depth(&net, 16, 1.0).unwrap(), None);
    }
}
