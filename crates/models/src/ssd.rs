//! SSD300 with a VGG-16 backbone (Liu et al.) — the paper's first object
//! detection workload (Tables III and V).
//!
//! The descriptor follows the standard SSD300 layout: VGG-16 through
//! `conv5_3` (with ceil-mode `pool3` expressed as padding 1 and `pool5`
//! as 3×3 stride-1), `fc6`/`fc7` converted to convolutions, four extra
//! feature stages, and per-source localisation/confidence heads. The
//! atrous convolution of `fc6` is modelled as a plain 3×3 (identical
//! shapes and within 1% of the MAC count, which is what the analyses use).

use crate::builder::{conv, maxpool, NetBuilder};
use crate::layer::{From, Network};
use crate::ActShape;

/// Number of COCO classes (80 + background) used by the conf heads.
pub const COCO_CLASSES: usize = 81;

/// SSD300-VGG16 for `300 × 300` RGB inputs.
pub fn ssd300_vgg16() -> Network {
    let mut b = NetBuilder::new("SSD300-VGG16", ActShape { c: 3, h: 300, w: 300 });

    // VGG-16 backbone through conv4_3 / conv5_3.
    b.push("conv1_1", conv(3, 1, 1, 3, 64));
    b.push("conv1_2", conv(3, 1, 1, 64, 64));
    b.push("pool1", maxpool(2, 2, 0)); // 150
    b.push("conv2_1", conv(3, 1, 1, 64, 128));
    b.push("conv2_2", conv(3, 1, 1, 128, 128));
    b.push("pool2", maxpool(2, 2, 0)); // 75
    b.push("conv3_1", conv(3, 1, 1, 128, 256));
    b.push("conv3_2", conv(3, 1, 1, 256, 256));
    b.push("conv3_3", conv(3, 1, 1, 256, 256));
    b.push("pool3", maxpool(2, 2, 1)); // ceil-mode: 75 -> 38
    b.push("conv4_1", conv(3, 1, 1, 256, 512));
    b.push("conv4_2", conv(3, 1, 1, 512, 512));
    let conv4_3 = b.push("conv4_3", conv(3, 1, 1, 512, 512)); // 38x38 source
    b.push("pool4", maxpool(2, 2, 0)); // 19
    b.push("conv5_1", conv(3, 1, 1, 512, 512));
    b.push("conv5_2", conv(3, 1, 1, 512, 512));
    b.push("conv5_3", conv(3, 1, 1, 512, 512));
    b.push("pool5", maxpool(3, 1, 1)); // 19, stride 1
    b.push("fc6", conv(3, 1, 1, 512, 1024)); // atrous in the original
    let fc7 = b.push("fc7", conv(1, 1, 0, 1024, 1024)); // 19x19 source

    // Extra feature layers.
    b.push("conv8_1", conv(1, 1, 0, 1024, 256));
    let conv8_2 = b.push("conv8_2", conv(3, 2, 1, 256, 512)); // 10x10
    b.push("conv9_1", conv(1, 1, 0, 512, 128));
    let conv9_2 = b.push("conv9_2", conv(3, 2, 1, 128, 256)); // 5x5
    b.push("conv10_1", conv(1, 1, 0, 256, 128));
    let conv10_2 = b.push("conv10_2", conv(3, 1, 0, 128, 256)); // 3x3
    b.push("conv11_1", conv(1, 1, 0, 256, 128));
    let conv11_2 = b.push("conv11_2", conv(3, 1, 0, 128, 256)); // 1x1

    // Detection heads: (source layer index, channels, anchors per cell).
    let sources = [
        (conv4_3, 512usize, 4usize),
        (fc7, 1024, 6),
        (conv8_2, 512, 6),
        (conv9_2, 256, 6),
        (conv10_2, 256, 4),
        (conv11_2, 256, 4),
    ];
    for (i, (src, c, anchors)) in sources.into_iter().enumerate() {
        b.push_from(format!("loc_head{i}"), conv(3, 1, 1, c, 4 * anchors), From::Layer(src));
        b.push_from(
            format!("conf_head{i}"),
            conv(3, 1, 1, c, COCO_CLASSES * anchors),
            From::Layer(src),
        );
    }
    b.build()
}

/// Names of the detection-head layers (used when computing the
/// "backbone-only" vs "backbone+heads" blocking split of Figure 8).
pub fn is_head_layer(name: &str) -> bool {
    name.starts_with("loc_head") || name.starts_with("conf_head")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_resolutions_match_ssd300() {
        let net = ssd300_vgg16();
        let info = net.trace().unwrap();
        let find = |n: &str| info.iter().find(|l| l.name == n).unwrap().out_shape;
        assert_eq!((find("conv4_3").h, find("conv4_3").w), (38, 38));
        assert_eq!(find("fc7").h, 19);
        assert_eq!(find("conv8_2").h, 10);
        assert_eq!(find("conv9_2").h, 5);
        assert_eq!(find("conv10_2").h, 3);
        assert_eq!(find("conv11_2").h, 1);
    }

    #[test]
    fn heads_read_their_sources() {
        let info = ssd300_vgg16().trace().unwrap();
        let loc0 = info.iter().find(|l| l.name == "loc_head0").unwrap();
        assert_eq!(loc0.in_shape.c, 512);
        assert_eq!(loc0.out_shape.c, 16); // 4 coords x 4 anchors
        let conf1 = info.iter().find(|l| l.name == "conf_head1").unwrap();
        assert_eq!(conf1.out_shape.c, COCO_CLASSES * 6);
    }

    #[test]
    fn head_resolution_is_much_smaller_than_input() {
        // §II-F: "the resolution of the detection heads is much smaller
        // than the input resolution" — largest head source is 38x38 vs 300.
        let info = ssd300_vgg16().trace().unwrap();
        let max_head_res =
            info.iter().filter(|l| is_head_layer(&l.name)).map(|l| l.in_shape.h).max().unwrap();
        assert_eq!(max_head_res, 38);
    }

    #[test]
    fn macs_are_around_31g() {
        // SSD300-VGG16 is ~31 GMACs on COCO (81 classes).
        let gmacs = ssd300_vgg16().total_macs().unwrap() as f64 / 1e9;
        assert!((15.0..40.0).contains(&gmacs), "got {gmacs}");
    }
}
