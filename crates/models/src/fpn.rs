//! Feature Pyramid Network on ResNet-50 (Lin et al.) — the paper's second
//! detection workload (Tables III and V, Figure 8), at the paper's
//! 1333 × 800 input resolution.
//!
//! The descriptor follows the standard FPN layout: backbone stages C2–C5,
//! 1×1 lateral convolutions to 256 channels, nearest top-down merging
//! (modelled with [`LayerKind::ResizeLike`] so odd sizes line up exactly as
//! interpolation does), 3×3 smoothing convolutions producing P2–P5, and a
//! shared RPN-style head (3×3 conv + 1×1 objectness + 1×1 regression) on
//! every level.

use crate::builder::{conv, maxpool, NetBuilder};
use crate::layer::{From, LayerKind, Network};
use crate::ActShape;

fn bottleneck(
    b: &mut NetBuilder,
    name: &str,
    c_in: usize,
    c_mid: usize,
    stride: usize,
    input: usize,
) -> usize {
    let c_out = 4 * c_mid;
    let c1 = b.push_from(format!("{name}-conv1"), conv(1, 1, 0, c_in, c_mid), From::Layer(input));
    b.mark_residual_first_at(c1);
    b.push(format!("{name}-conv2"), conv(3, stride, 1, c_mid, c_mid));
    let c3 = b.push(format!("{name}-conv3"), conv(1, 1, 0, c_mid, c_out));
    let shortcut = if stride != 1 || c_in != c_out {
        b.push_from(
            format!("{name}-downsample"),
            conv(1, stride, 0, c_in, c_out),
            From::Layer(input),
        )
    } else {
        input
    };
    b.push_from(
        format!("{name}-add"),
        LayerKind::Add { other: From::Layer(c3) },
        From::Layer(shortcut),
    )
}

/// FPN-ResNet-50 for `h × w` RGB inputs (the paper uses 1333 × 800,
/// i.e. `h = 800`, `w = 1333`).
pub fn fpn_resnet50(h: usize, w: usize) -> Network {
    let mut b = NetBuilder::new("FPN-ResNet-50", ActShape { c: 3, h, w });
    b.push("conv1", conv(7, 2, 3, 3, 64));
    let mut cur = b.push("maxpool", maxpool(3, 2, 1));
    let mut c_in = 64;
    let mut stage_outputs = Vec::new();
    for (stage, (c_mid, blocks)) in
        [(64usize, 3usize), (128, 4), (256, 6), (512, 3)].into_iter().enumerate()
    {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            cur = bottleneck(
                &mut b,
                &format!("layer{}-{}", stage + 1, blk + 1),
                c_in,
                c_mid,
                stride,
                cur,
            );
            c_in = 4 * c_mid;
        }
        stage_outputs.push(cur); // C2, C3, C4, C5
    }

    // Lateral 1x1 convolutions to 256 channels.
    let lat_channels = [256usize, 512, 1024, 2048];
    let laterals: Vec<usize> = stage_outputs
        .iter()
        .zip(lat_channels)
        .enumerate()
        .map(|(i, (&src, c))| {
            b.push_from(format!("lateral{}", i + 2), conv(1, 1, 0, c, 256), From::Layer(src))
        })
        .collect();

    // Top-down pathway: P5 = lateral5; P_i = lateral_i + resize(P_{i+1}).
    let mut merged = [0usize; 4];
    merged[3] = laterals[3];
    for i in (0..3).rev() {
        let resized = b.push_from(
            format!("topdown{}", i + 2),
            LayerKind::ResizeLike { like: laterals[i] },
            From::Layer(merged[i + 1]),
        );
        merged[i] = b.push_from(
            format!("merge{}", i + 2),
            LayerKind::Add { other: From::Layer(laterals[i]) },
            From::Layer(resized),
        );
    }

    // 3x3 smoothing producing P2..P5, plus the shared head per level.
    for (i, &m) in merged.iter().enumerate() {
        let p = b.push_from(format!("p{}", i + 2), conv(3, 1, 1, 256, 256), From::Layer(m));
        let rpn =
            b.push_from(format!("rpn_conv_p{}", i + 2), conv(3, 1, 1, 256, 256), From::Layer(p));
        b.push_from(format!("rpn_cls_p{}", i + 2), conv(1, 1, 0, 256, 3), From::Layer(rpn));
        b.push_from(format!("rpn_reg_p{}", i + 2), conv(1, 1, 0, 256, 12), From::Layer(rpn));
    }
    b.build()
}

/// True for FPN head layers (the smoothing convs and RPN head), used by
/// Figure 8's backbone-only vs backbone+heads comparison.
pub fn is_head_layer(name: &str) -> bool {
    name.starts_with("rpn_") || name.starts_with('p') && name[1..].chars().all(char::is_numeric)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_traces_at_paper_resolution() {
        let net = fpn_resnet50(800, 1333);
        let info = net.trace().unwrap();
        assert!(!info.is_empty());
    }

    #[test]
    fn pyramid_levels_have_expected_strides() {
        let info = fpn_resnet50(800, 1333).trace().unwrap();
        let find = |n: &str| info.iter().find(|l| l.name == n).unwrap().out_shape;
        // C2 at stride 4: 800/4 = 200.
        assert_eq!(find("lateral2").h, 200);
        // C5 at stride 32: 800/32 = 25.
        assert_eq!(find("lateral5").h, 25);
        // All pyramid maps are 256-channel.
        for p in ["p2", "p3", "p4", "p5"] {
            assert_eq!(find(p).c, 256);
        }
    }

    #[test]
    fn topdown_resize_handles_odd_sizes() {
        // 1333-wide input produces odd widths (334, 167, 84, 42); nearest
        // x2 upsampling would mismatch (167*2 != 334 is fine, but 42*2 = 84
        // and 84*2 = 168 != 167). ResizeLike must line them up.
        let info = fpn_resnet50(800, 1333).trace().unwrap();
        let find = |n: &str| info.iter().find(|l| l.name == n).unwrap().out_shape;
        assert_eq!(find("topdown4").w, find("lateral4").w);
        assert_eq!(find("topdown2").w, find("lateral2").w);
    }

    #[test]
    fn heads_exist_on_every_level() {
        let info = fpn_resnet50(800, 1333).trace().unwrap();
        for lvl in 2..=5 {
            assert!(info.iter().any(|l| l.name == format!("rpn_cls_p{lvl}")));
        }
    }

    #[test]
    fn head_classifier_detects_head_layers() {
        assert!(is_head_layer("rpn_conv_p3"));
        assert!(is_head_layer("p2"));
        assert!(!is_head_layer("layer2-1-conv1"));
        assert!(!is_head_layer("lateral3"));
    }
}
