//! VDSR (Kim et al.) — the paper's super-resolution workload (Table IV,
//! Table VIII, Table IX). Twenty 3×3 stride-1 convolutions at constant
//! resolution plus a global residual connection to the input.

use crate::builder::{conv, NetBuilder};
use crate::layer::{From, LayerKind, Network};
use crate::ActShape;

/// Depth of the standard VDSR (Table VIII).
pub const VDSR_DEPTH: usize = 20;

/// VDSR for a single-channel `h × w` input (Table VIII: 1080×1920 for the
/// accelerator study; 256×256 for Figure 1; 41×41 for Set5 training).
pub fn vdsr(h: usize, w: usize) -> Network {
    vdsr_with_depth(h, w, VDSR_DEPTH, 64)
}

/// VDSR variant with configurable depth and width (the reduced nets used by
/// the synthetic training experiments keep the same topology).
///
/// # Panics
///
/// Panics if `depth < 2` (VDSR needs at least an input and output conv).
pub fn vdsr_with_depth(h: usize, w: usize, depth: usize, width: usize) -> Network {
    assert!(depth >= 2, "VDSR needs at least 2 layers");
    let mut b = NetBuilder::new("VDSR", ActShape { c: 1, h, w });
    b.push("conv1", conv(3, 1, 1, 1, width));
    for i in 1..depth - 1 {
        b.push(format!("conv{}", i + 1), conv(3, 1, 1, width, width));
    }
    let last = b.push(format!("conv{depth}"), conv(3, 1, 1, width, 1));
    b.push_from("residual-add", LayerKind::Add { other: From::Input }, From::Layer(last));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdsr_matches_table8_architecture() {
        // Table VIII: conv 3x3x1x64, 18x conv 3x3x64x64, conv 3x3x64x1,
        // eltwise sum; input 1080x1920x1.
        let info = vdsr(1080, 1920).trace().unwrap();
        let convs: Vec<_> = info.iter().filter(|l| l.is_conv).collect();
        assert_eq!(convs.len(), 20);
        assert_eq!(convs[0].in_shape.c, 1);
        assert_eq!(convs[0].out_shape.c, 64);
        assert_eq!(convs[19].out_shape.c, 1);
        for c in &convs[1..19] {
            assert_eq!((c.in_shape.c, c.out_shape.c), (64, 64));
        }
        // Resolution never drops.
        assert!(info.iter().all(|l| l.out_shape.h == 1080 && l.out_shape.w == 1920));
    }

    #[test]
    fn intermediate_maps_are_126mb_each() {
        // §III-C1: "the volume of intermediate feature maps in each layer
        // is 126.6 MB" — 64 maps of 1080x1920 bytes at 8-bit activations.
        let info = vdsr(1080, 1920).trace().unwrap();
        let bytes = info[0].out_shape.bits(8) as f64 / 8.0 / 1e6;
        assert!((bytes - 132.7).abs() < 1.0, "got {bytes} MB (decimal)");
        // In binary mebibytes, 126.6 MiB as the paper counts it:
        let mib = info[0].out_shape.bits(8) as f64 / 8.0 / (1024.0 * 1024.0);
        assert!((mib - 126.6).abs() < 0.1, "got {mib} MiB");
    }

    #[test]
    fn residual_add_checks_shapes() {
        let net = vdsr(64, 64);
        assert!(net.trace().is_ok());
    }

    #[test]
    fn reduced_depth_variant() {
        let net = vdsr_with_depth(41, 41, 8, 16);
        let info = net.trace().unwrap();
        assert_eq!(info.iter().filter(|l| l.is_conv).count(), 8);
        assert_eq!(info.last().unwrap().out_shape.c, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 layers")]
    fn depth_one_panics() {
        let _ = vdsr_with_depth(8, 8, 1, 8);
    }
}
