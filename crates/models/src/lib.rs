//! Architecture descriptors of every network the block-convolution paper
//! evaluates, plus the feature-map analyses behind Figures 1 and 9.
//!
//! | Network | Constructor | Paper role |
//! |---|---|---|
//! | VGG-16 | [`vgg::vgg16`] | Figure 1, Tables I/VI/VII, Figures 12–13 |
//! | ResNet-18 | [`resnet::resnet18`] | Tables I/II, Figures 5–7, 9 |
//! | ResNet-50 | [`resnet::resnet50`] | Table I, Figures 6–7, 9 |
//! | MobileNet-V1 | [`mobilenet::mobilenet_v1`] | Table I, Figures 5–7, 9 |
//! | VDSR | [`vdsr::vdsr`] | Figure 1, Tables IV/VIII/IX |
//! | SSD300-VGG16 | [`ssd::ssd300_vgg16`] | Tables III/V |
//! | FPN-ResNet-50 | [`fpn::fpn_resnet50`] | Tables III/V, Figure 8 |
//!
//! These are *architectural* models (shapes, MACs, parameters, wiring); the
//! executable small-scale variants used for accuracy experiments live in
//! `bconv-train`.
//!
//! # Example
//!
//! ```
//! use bconv_models::{vgg::vgg16, analysis::peak_feature_map_mbits};
//!
//! # fn main() -> Result<(), bconv_tensor::TensorError> {
//! // Figure 1's headline: VGG-16's first layer alone exceeds ZC706 BRAM.
//! let peak = peak_feature_map_mbits(&vgg16(224), 16)?;
//! assert!(peak > 50.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod fpn;
pub mod layer;
pub mod mobilenet;
pub mod resnet;
pub mod small;
pub mod ssd;
pub mod vdsr;
pub mod vgg;

pub use layer::{ActShape, Layer, LayerInfo, LayerKind, Network};
