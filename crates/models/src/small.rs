//! Scaled-down executable variants of the paper's networks.
//!
//! The full descriptors ([`crate::vgg::vgg16`], [`crate::resnet::resnet18`])
//! are faithful to the paper's workloads but far too large to *execute* in
//! CPU tests. These variants keep the exact topology — layer counts, pool
//! placement, residual wiring, stride-to-pooling rewrite — at widths small
//! enough that a full forward pass on both session backends runs in
//! milliseconds. They are the workloads of the `Session` parity tests and
//! examples.

use crate::builder::{conv, maxpool, NetBuilder};
use crate::layer::{From, LayerKind, Network};
use crate::vdsr::vdsr_with_depth;
use crate::ActShape;

/// VGG-16-small: the 13-conv / 5-pool / 3-FC VGG-16 topology at toy
/// widths, classifying into 10 classes.
///
/// `resolution` must be divisible by 32 (five 2×2 pools), e.g. 32 or 64.
/// Every convolution is stride-1 and 3×3, so the whole feature extractor is
/// fusable under block convolution — the same property the paper exploits
/// on the full network.
///
/// # Panics
///
/// Panics if `resolution` is not a positive multiple of 32.
pub fn vgg16_small(resolution: usize) -> Network {
    assert!(
        resolution > 0 && resolution.is_multiple_of(32),
        "vgg16_small resolution must be a positive multiple of 32"
    );
    let mut b = NetBuilder::new("VGG-16-small", ActShape { c: 3, h: resolution, w: resolution });
    let groups: [(usize, usize); 5] = [(2, 4), (2, 8), (3, 16), (3, 16), (3, 16)];
    let mut c_in = 3;
    for (gi, (n_convs, c_out)) in groups.into_iter().enumerate() {
        for ci in 0..n_convs {
            b.push(format!("conv{}-{}", gi + 1, ci + 1), conv(3, 1, 1, c_in, c_out));
            c_in = c_out;
        }
        b.push(format!("pool{}", gi + 1), maxpool(2, 2, 0));
    }
    let spatial = resolution / 32;
    b.push("fc6", LayerKind::Fc { in_f: 16 * spatial * spatial, out_f: 32 });
    b.push("fc7", LayerKind::Fc { in_f: 32, out_f: 32 });
    b.push("fc8", LayerKind::Fc { in_f: 32, out_f: 10 });
    b.build()
}

/// One small basic block under the paper's stride-to-pooling rewrite:
/// every conv is stride-1, spatial reduction is a fusable 2×2 max pool.
/// Returns the index of the block output (the residual sum).
fn small_basic_block(
    b: &mut NetBuilder,
    name: &str,
    c_in: usize,
    c_out: usize,
    stride: usize,
    input: usize,
) -> usize {
    let start = b.next_index();
    b.push(format!("{name}-conv1"), conv(3, 1, 1, c_in, c_out));
    b.mark_residual_first_at(start);
    if stride > 1 {
        b.push(format!("{name}-conv1-pool"), maxpool(stride, stride, 0));
    }
    let conv2 = b.push(format!("{name}-conv2"), conv(3, 1, 1, c_out, c_out));
    let shortcut = if stride != 1 || c_in != c_out {
        let ds = b.push(format!("{name}-downsample"), conv(1, 1, 0, c_in, c_out));
        b.set_from(ds, From::Layer(input));
        if stride > 1 {
            b.push(format!("{name}-downsample-pool"), maxpool(stride, stride, 0))
        } else {
            ds
        }
    } else {
        input
    };
    b.push_from(
        format!("{name}-add"),
        LayerKind::Add { other: From::Layer(conv2) },
        From::Layer(shortcut),
    )
}

/// ResNet-18-small: the 8-basic-block ResNet-18 topology (residual `Add`
/// wiring, downsample shortcuts) at toy widths, with the paper's §II-F
/// stride-to-pooling rewrite applied throughout so every convolution is
/// stride-1 and blockable. Classifies into 10 classes.
///
/// The 7×7/2 ImageNet stem is replaced by a 3×3/1 conv + 2×2 pool so the
/// small input resolutions stay meaningful. `resolution` must be divisible
/// by 16 (stem pool + three strided stages).
///
/// # Panics
///
/// Panics if `resolution` is not a positive multiple of 16.
pub fn resnet18_small(resolution: usize) -> Network {
    assert!(
        resolution > 0 && resolution.is_multiple_of(16),
        "resnet18_small resolution must be a positive multiple of 16"
    );
    let mut b = NetBuilder::new("ResNet-18-small", ActShape { c: 3, h: resolution, w: resolution });
    b.push("conv1", conv(3, 1, 1, 3, 4));
    let mut cur = b.push("maxpool", maxpool(2, 2, 0));
    let mut c_in = 4;
    for (stage, (c_out, blocks)) in
        [(4usize, 2usize), (8, 2), (8, 2), (16, 2)].into_iter().enumerate()
    {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let name = format!("layer{}-{}", stage + 1, blk + 1);
            cur = small_basic_block(&mut b, &name, c_in, c_out, stride, cur);
            c_in = c_out;
        }
    }
    b.push_from("gap", LayerKind::GlobalAvgPool, From::Layer(cur));
    b.push("fc", LayerKind::Fc { in_f: 16, out_f: 10 });
    b.build()
}

/// VDSR-small: the VDSR topology (constant-resolution 3×3 convs plus the
/// global residual to the input) at configurable depth and width — a thin
/// alias of [`vdsr_with_depth`] under the naming convention of this module.
///
/// # Panics
///
/// Panics if `depth < 2`.
pub fn vdsr_small(resolution: usize, depth: usize, width: usize) -> Network {
    vdsr_with_depth(resolution, resolution, depth, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_small_keeps_the_topology() {
        let info = vgg16_small(32).trace().unwrap();
        assert_eq!(info.iter().filter(|l| l.is_conv).count(), 13);
        assert_eq!(info.last().unwrap().out_shape.c, 10);
        // Conv resolutions follow the same five stages as the full net.
        let res: Vec<usize> = info.iter().filter(|l| l.is_conv).map(|l| l.in_shape.h).collect();
        assert_eq!(res, vec![32, 32, 16, 16, 8, 8, 8, 4, 4, 4, 2, 2, 2]);
    }

    #[test]
    fn vgg16_small_is_executable_scale() {
        // Small enough for debug-mode execution in tests.
        let macs = vgg16_small(32).total_macs().unwrap();
        assert!(macs < 3_000_000, "vgg16_small too large: {macs} MACs");
    }

    #[test]
    fn resnet18_small_has_8_blocks_and_residuals() {
        let net = resnet18_small(32);
        let info = net.trace().unwrap();
        let adds = net.layers.iter().filter(|l| matches!(l.kind, LayerKind::Add { .. })).count();
        assert_eq!(adds, 8);
        assert_eq!(info.iter().filter(|l| l.residual_first).count(), 8);
        assert_eq!(info.last().unwrap().out_shape.c, 10);
        // The rewrite leaves no strided convolution behind.
        assert!(net.layers.iter().all(|l| match l.kind {
            LayerKind::Conv { s, .. } => s == 1,
            _ => true,
        }));
    }

    #[test]
    fn resnet18_small_stage_resolutions_halve() {
        let info = resnet18_small(32).trace().unwrap();
        let l1 = info.iter().find(|l| l.name == "layer1-1-conv1").unwrap();
        assert_eq!(l1.in_shape.h, 16);
        let l4 = info.iter().find(|l| l.name == "layer4-2-conv1").unwrap();
        assert_eq!(l4.in_shape.h, 2);
    }

    #[test]
    fn vdsr_small_aliases_vdsr_with_depth() {
        let a = vdsr_small(24, 6, 8);
        let b = vdsr_with_depth(24, 24, 6, 8);
        assert_eq!(a.trace().unwrap().len(), b.trace().unwrap().len());
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn vgg16_small_rejects_bad_resolution() {
        let _ = vgg16_small(20);
    }
}
