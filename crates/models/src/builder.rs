//! Small helper for wiring up network graphs by index.

use crate::layer::{From, Layer, LayerKind, Network};
use crate::ActShape;

/// Incremental network builder that returns layer indices, making residual
//  wiring explicit and checkable.
#[derive(Debug)]
pub struct NetBuilder {
    name: String,
    input: ActShape,
    layers: Vec<Layer>,
}

impl NetBuilder {
    /// Starts a network with the given input shape.
    pub fn new(name: impl Into<String>, input: ActShape) -> Self {
        Self { name: name.into(), input, layers: Vec::new() }
    }

    /// Appends a layer fed by the previous layer; returns its index.
    pub fn push(&mut self, name: impl Into<String>, kind: LayerKind) -> usize {
        self.layers.push(Layer::new(name, kind));
        self.layers.len() - 1
    }

    /// Appends a layer with explicit wiring; returns its index.
    pub fn push_from(&mut self, name: impl Into<String>, kind: LayerKind, from: From) -> usize {
        self.layers.push(Layer::wired(name, kind, from));
        self.layers.len() - 1
    }

    /// Marks the most recently pushed layer as the first of a residual
    /// block (Figure 9's yellow marking).
    pub fn mark_residual_first(&mut self) {
        if let Some(last) = self.layers.last_mut() {
            last.residual_first = true;
        }
    }

    /// Marks the layer at `idx` as the first of a residual block.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn mark_residual_first_at(&mut self, idx: usize) {
        self.layers[idx].residual_first = true;
    }

    /// Index the *next* pushed layer will receive.
    pub fn next_index(&self) -> usize {
        self.layers.len()
    }

    /// Rewires an already-pushed layer's input (shortcut-branch surgery).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_from(&mut self, idx: usize, from: From) {
        self.layers[idx].from = from;
    }

    /// Index of the most recently pushed layer.
    ///
    /// # Panics
    ///
    /// Panics if no layer has been pushed yet.
    pub fn last(&self) -> usize {
        self.layers.len() - 1
    }

    /// Finishes the network.
    pub fn build(self) -> Network {
        Network { name: self.name, input: self.input, layers: self.layers }
    }
}

/// Shorthand for a dense convolution layer kind.
pub fn conv(k: usize, s: usize, p: usize, c_in: usize, c_out: usize) -> LayerKind {
    LayerKind::Conv { k, s, p, c_in, c_out, groups: 1 }
}

/// Shorthand for a depthwise convolution layer kind.
pub fn dwconv(k: usize, s: usize, p: usize, c: usize) -> LayerKind {
    LayerKind::Conv { k, s, p, c_in: c, c_out: c, groups: c }
}

/// Shorthand for max pooling.
pub fn maxpool(k: usize, s: usize, p: usize) -> LayerKind {
    LayerKind::MaxPool { k, s, p }
}
