//! VGG-16 (Simonyan & Zisserman) — the paper's primary classification and
//! accelerator workload (Figure 1, Tables I, VI, VII, Figures 12–13).

use crate::builder::{conv, maxpool, NetBuilder};
use crate::layer::{LayerKind, Network};
use crate::ActShape;

/// VGG-16 for `resolution × resolution` RGB inputs (224 for ImageNet).
///
/// Thirteen 3×3 convolutions in five groups separated by 2×2 max pooling,
/// followed by three fully-connected layers. VGG-16 has no strided
/// convolutions, so the paper's stride-to-pooling baseline rewrite leaves
/// it unchanged.
pub fn vgg16(resolution: usize) -> Network {
    let mut b = NetBuilder::new("VGG-16", ActShape { c: 3, h: resolution, w: resolution });
    let groups: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    let mut c_in = 3;
    for (gi, (n_convs, c_out)) in groups.into_iter().enumerate() {
        for ci in 0..n_convs {
            b.push(format!("conv{}-{}", gi + 1, ci + 1), conv(3, 1, 1, c_in, c_out));
            c_in = c_out;
        }
        b.push(format!("pool{}", gi + 1), maxpool(2, 2, 0));
    }
    let spatial = resolution / 32;
    b.push("fc6", LayerKind::Fc { in_f: 512 * spatial * spatial, out_f: 4096 });
    b.push("fc7", LayerKind::Fc { in_f: 4096, out_f: 4096 });
    b.push("fc8", LayerKind::Fc { in_f: 4096, out_f: 1000 });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let net = vgg16(224);
        let info = net.trace().unwrap();
        let convs = info.iter().filter(|l| l.is_conv).count();
        assert_eq!(convs, 13);
        assert_eq!(info.last().unwrap().out_shape.c, 1000);
    }

    #[test]
    fn first_layer_output_is_nearly_50_mbits_at_16_bit() {
        // §II-A: "the output data size of VGG-16's first layer is nearly
        // 50Mbits" (64x224x224 @ 16 bit = 51.4 Mbits).
        let info = vgg16(224).trace().unwrap();
        let mbits = info[0].out_shape.mbits(16);
        assert!((mbits - 51.38).abs() < 0.01, "got {mbits}");
    }

    #[test]
    fn total_ops_match_published_30_8_gops() {
        // Table VII: 374.98 GOP/s at 82.03 ms/image -> ~30.76 GOP/image.
        let gops = vgg16(224).total_ops().unwrap() as f64 / 1e9;
        assert!((gops - 30.95).abs() < 0.3, "got {gops}");
    }

    #[test]
    fn conv_resolutions_follow_the_five_stages() {
        let info = vgg16(224).trace().unwrap();
        let res: Vec<usize> = info.iter().filter(|l| l.is_conv).map(|l| l.in_shape.h).collect();
        assert_eq!(res, vec![224, 224, 112, 112, 56, 56, 56, 28, 28, 28, 14, 14, 14]);
    }

    #[test]
    fn parameter_count_is_138m() {
        let params = vgg16(224).total_params().unwrap() as f64 / 1e6;
        assert!((params - 138.3).abs() < 1.0, "got {params}");
    }
}
