//! Layer descriptors and shape propagation for whole-network analysis.
//!
//! These descriptors are *architectural*: they carry shapes and arithmetic
//! counts, not weights. The paper's Figures 1 and 9 (feature-map volumes),
//! Table I's blocking ratios and the accelerator models in `bconv-accel`
//! are all derived from them.

use std::fmt;

use bconv_tensor::shape::conv_out_dim;
use bconv_tensor::TensorError;

/// Where a layer reads its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum From {
    /// The network input image.
    Input,
    /// The previous layer's output.
    Prev,
    /// The output of an earlier layer by index.
    Layer(usize),
}

/// The operator a layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv {
        /// Square kernel size.
        k: usize,
        /// Stride.
        s: usize,
        /// Symmetric padding.
        p: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Groups (`c_in` for depthwise).
        groups: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window.
        k: usize,
        /// Stride.
        s: usize,
        /// Symmetric padding.
        p: usize,
    },
    /// Global average pooling to `1 × 1`.
    GlobalAvgPool,
    /// Fully-connected layer.
    Fc {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// Element-wise sum with the output of another layer (residual join).
    Add {
        /// The other summand.
        other: From,
    },
    /// Bilinear resize to the spatial size of another layer's output
    /// (FPN's top-down pathway).
    ResizeLike {
        /// The layer whose spatial size is matched.
        like: usize,
    },
}

/// A named layer with its input wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name (paper naming, e.g. `conv1-1`).
    pub name: String,
    /// Operator.
    pub kind: LayerKind,
    /// Input source.
    pub from: From,
    /// True for the first convolution of a residual block — the layers
    /// Figure 9 marks in yellow (they need an extra on-chip copy of the
    /// block input, §III-A).
    pub residual_first: bool,
}

impl Layer {
    /// Creates a layer fed by the previous layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Self { name: name.into(), kind, from: From::Prev, residual_first: false }
    }

    /// Creates a layer with explicit input wiring.
    pub fn wired(name: impl Into<String>, kind: LayerKind, from: From) -> Self {
        Self { name: name.into(), kind, from, residual_first: false }
    }

    /// Marks this layer as the first of a residual block.
    pub fn residual_first(mut self) -> Self {
        self.residual_first = true;
        self
    }
}

/// A `(channels, height, width)` activation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl ActShape {
    /// Element count.
    pub fn numel(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Volume in bits at the given fixed-point width.
    pub fn bits(&self, bitwidth: usize) -> u64 {
        self.numel() as u64 * bitwidth as u64
    }

    /// Volume in megabits (the unit of Figures 1 and 9).
    pub fn mbits(&self, bitwidth: usize) -> f64 {
        self.bits(bitwidth) as f64 / 1.0e6
    }
}

impl fmt::Display for ActShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// A whole network: an input shape plus a layer list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Network name.
    pub name: String,
    /// Input activation shape.
    pub input: ActShape,
    /// Layers in topological order.
    pub layers: Vec<Layer>,
}

/// Per-layer facts produced by shape propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Layer name.
    pub name: String,
    /// Input shape the layer computes on.
    pub in_shape: ActShape,
    /// Output shape.
    pub out_shape: ActShape,
    /// Multiply–accumulate count.
    pub macs: u64,
    /// Parameter count (weights + biases).
    pub params: u64,
    /// True for conv layers.
    pub is_conv: bool,
    /// True for the first layer of a residual block (Figure 9's marking).
    pub residual_first: bool,
}

impl Network {
    /// Propagates shapes through the network, returning per-layer facts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] if the architecture is inconsistent (channel
    /// mismatches, infeasible geometry, forward references).
    pub fn trace(&self) -> Result<Vec<LayerInfo>, TensorError> {
        let mut shapes: Vec<ActShape> = Vec::with_capacity(self.layers.len());
        let mut infos = Vec::with_capacity(self.layers.len());
        for (idx, layer) in self.layers.iter().enumerate() {
            let resolve = |f: From| -> Result<ActShape, TensorError> {
                match f {
                    From::Input => Ok(self.input),
                    From::Prev => {
                        if idx == 0 {
                            Ok(self.input)
                        } else {
                            Ok(shapes[idx - 1])
                        }
                    }
                    From::Layer(i) => {
                        if i >= idx {
                            Err(TensorError::invalid(format!(
                                "layer {idx} ({}) references later layer {i}",
                                layer.name
                            )))
                        } else {
                            Ok(shapes[i])
                        }
                    }
                }
            };
            let in_shape = resolve(layer.from)?;
            let (out_shape, macs, params) = match layer.kind {
                LayerKind::Conv { k, s, p, c_in, c_out, groups } => {
                    if in_shape.c != c_in {
                        return Err(TensorError::shape_mismatch(
                            format!("{} input channels", layer.name),
                            format!("{c_in}"),
                            format!("{}", in_shape.c),
                        ));
                    }
                    if groups == 0 || c_in % groups != 0 || c_out % groups != 0 {
                        return Err(TensorError::invalid(format!(
                            "{}: groups {groups} incompatible with channels {c_in}->{c_out}",
                            layer.name
                        )));
                    }
                    let oh = conv_out_dim(in_shape.h, k, s, p)?;
                    let ow = conv_out_dim(in_shape.w, k, s, p)?;
                    let out = ActShape { c: c_out, h: oh, w: ow };
                    let macs = (k * k * (c_in / groups)) as u64 * (oh * ow) as u64 * c_out as u64;
                    let params = (k * k * (c_in / groups) * c_out + c_out) as u64;
                    (out, macs, params)
                }
                LayerKind::MaxPool { k, s, p } => {
                    let oh = conv_out_dim(in_shape.h, k, s, p)?;
                    let ow = conv_out_dim(in_shape.w, k, s, p)?;
                    (ActShape { c: in_shape.c, h: oh, w: ow }, 0, 0)
                }
                LayerKind::GlobalAvgPool => (ActShape { c: in_shape.c, h: 1, w: 1 }, 0, 0),
                LayerKind::Fc { in_f, out_f } => {
                    if in_shape.numel() != in_f {
                        return Err(TensorError::shape_mismatch(
                            format!("{} input features", layer.name),
                            format!("{in_f}"),
                            format!("{}", in_shape.numel()),
                        ));
                    }
                    (
                        ActShape { c: out_f, h: 1, w: 1 },
                        (in_f * out_f) as u64,
                        (in_f * out_f + out_f) as u64,
                    )
                }
                LayerKind::Add { other } => {
                    let o = resolve(other)?;
                    if o != in_shape {
                        return Err(TensorError::shape_mismatch(
                            format!("{} residual shapes", layer.name),
                            in_shape.to_string(),
                            o.to_string(),
                        ));
                    }
                    (in_shape, 0, 0)
                }
                LayerKind::ResizeLike { like } => {
                    if like >= idx {
                        return Err(TensorError::invalid(format!(
                            "{}: resize target {like} not yet computed",
                            layer.name
                        )));
                    }
                    let target = shapes[like];
                    (ActShape { c: in_shape.c, h: target.h, w: target.w }, 0, 0)
                }
            };
            shapes.push(out_shape);
            infos.push(LayerInfo {
                name: layer.name.clone(),
                in_shape,
                out_shape,
                macs,
                params,
                is_conv: matches!(layer.kind, LayerKind::Conv { .. }),
                residual_first: layer.residual_first,
            });
        }
        Ok(infos)
    }

    /// Total multiply–accumulate count.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::trace`] errors.
    pub fn total_macs(&self) -> Result<u64, TensorError> {
        Ok(self.trace()?.iter().map(|l| l.macs).sum())
    }

    /// Total operations (2 × MACs), the unit of the paper's GOP/s figures.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::trace`] errors.
    pub fn total_ops(&self) -> Result<u64, TensorError> {
        Ok(2 * self.total_macs()?)
    }

    /// Total parameter count.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::trace`] errors.
    pub fn total_params(&self) -> Result<u64, TensorError> {
        Ok(self.trace()?.iter().map(|l| l.params).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network {
            name: "tiny".into(),
            input: ActShape { c: 3, h: 8, w: 8 },
            layers: vec![
                Layer::new(
                    "conv1",
                    LayerKind::Conv { k: 3, s: 1, p: 1, c_in: 3, c_out: 4, groups: 1 },
                ),
                Layer::new("pool1", LayerKind::MaxPool { k: 2, s: 2, p: 0 }),
                Layer::new(
                    "conv2",
                    LayerKind::Conv { k: 3, s: 1, p: 1, c_in: 4, c_out: 4, groups: 1 },
                ),
                Layer::wired("res", LayerKind::Add { other: From::Layer(1) }, From::Prev),
                Layer::new("gap", LayerKind::GlobalAvgPool),
                Layer::new("fc", LayerKind::Fc { in_f: 4, out_f: 10 }),
            ],
        }
    }

    #[test]
    fn shapes_propagate() {
        let info = tiny().trace().unwrap();
        assert_eq!(info[0].out_shape, ActShape { c: 4, h: 8, w: 8 });
        assert_eq!(info[1].out_shape, ActShape { c: 4, h: 4, w: 4 });
        assert_eq!(info[3].out_shape, ActShape { c: 4, h: 4, w: 4 });
        assert_eq!(info[5].out_shape, ActShape { c: 10, h: 1, w: 1 });
    }

    #[test]
    fn macs_and_params() {
        let info = tiny().trace().unwrap();
        // conv1: 3*3*3 taps * 64 positions * 4 out channels.
        assert_eq!(info[0].macs, 27 * 64 * 4);
        assert_eq!(info[0].params, (27 * 4 + 4) as u64);
        // fc: 4*10.
        assert_eq!(info[5].macs, 40);
    }

    #[test]
    fn channel_mismatch_is_caught() {
        let mut net = tiny();
        net.layers[2].kind = LayerKind::Conv { k: 3, s: 1, p: 1, c_in: 8, c_out: 4, groups: 1 };
        assert!(net.trace().is_err());
    }

    #[test]
    fn residual_shape_mismatch_is_caught() {
        let mut net = tiny();
        // Sum with the pre-pool map: shapes differ.
        net.layers[3].kind = LayerKind::Add { other: From::Layer(0) };
        assert!(net.trace().is_err());
    }

    #[test]
    fn forward_reference_is_caught() {
        let mut net = tiny();
        net.layers[3].kind = LayerKind::Add { other: From::Layer(5) };
        assert!(net.trace().is_err());
    }

    #[test]
    fn mbits_uses_decimal_megabits() {
        let s = ActShape { c: 64, h: 224, w: 224 };
        // 64*224*224*16 bits = 51.38 Mbits — the "nearly 50Mbits" of §II-A.
        assert!((s.mbits(16) - 51.380224).abs() < 1e-6);
    }
}
