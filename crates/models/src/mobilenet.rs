//! MobileNet-V1 (Howard et al.) — the paper's compact-model workload,
//! exercising block convolution on depthwise convolutions (§II-E, Figure 9a).

use crate::builder::{conv, dwconv, maxpool, NetBuilder};
use crate::layer::{LayerKind, Network};
use crate::ActShape;

/// MobileNet-V1 (width multiplier 1.0) for `resolution²` RGB inputs.
///
/// `stride_as_pool` applies the paper's §II-F baseline rewrite (stride-2
/// layers become stride-1 + 2×2 max pooling).
pub fn mobilenet_v1(resolution: usize, stride_as_pool: bool) -> Network {
    let mut b = NetBuilder::new("MobileNet-V1", ActShape { c: 3, h: resolution, w: resolution });
    let push_stride = |b: &mut NetBuilder,
                       name: String,
                       k: usize,
                       s: usize,
                       p: usize,
                       c_in: usize,
                       c_out: usize,
                       depthwise: bool| {
        let kind = if depthwise {
            dwconv(k, if s > 1 && stride_as_pool { 1 } else { s }, p, c_in)
        } else {
            conv(k, if s > 1 && stride_as_pool { 1 } else { s }, p, c_in, c_out)
        };
        b.push(name.clone(), kind);
        if s > 1 && stride_as_pool {
            b.push(format!("{name}-pool"), maxpool(s, s, 0));
        }
    };

    // (stride of the depthwise conv, output channels of the pointwise conv)
    let spec: [(usize, usize); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    push_stride(&mut b, "conv1".into(), 3, 2, 1, 3, 32, false);
    let mut c_in = 32;
    for (i, (s, c_out)) in spec.into_iter().enumerate() {
        push_stride(&mut b, format!("conv{}_dw", i + 2), 3, s, 1, c_in, c_in, true);
        push_stride(&mut b, format!("conv{}_pw", i + 2), 1, 1, 0, c_in, c_out, false);
        c_in = c_out;
    }
    b.push("gap", LayerKind::GlobalAvgPool);
    b.push("fc", LayerKind::Fc { in_f: 1024, out_f: 1000 });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_has_27_convs() {
        // conv1 + 13 depthwise + 13 pointwise.
        let info = mobilenet_v1(224, false).trace().unwrap();
        assert_eq!(info.iter().filter(|l| l.is_conv).count(), 27);
    }

    #[test]
    fn macs_are_0_57g() {
        let gmacs = mobilenet_v1(224, false).total_macs().unwrap() as f64 / 1e9;
        assert!((gmacs - 0.57).abs() < 0.05, "got {gmacs}");
    }

    #[test]
    fn blocking_ratio_at_f28_matches_table1() {
        // Table I: MobileNet-V1 blocking ratio 44.44% = 12/27 under F28,
        // counting conv compute resolutions after the stride rewrite.
        let info = mobilenet_v1(224, true).trace().unwrap();
        let convs: Vec<usize> = info.iter().filter(|l| l.is_conv).map(|l| l.in_shape.h).collect();
        assert_eq!(convs.len(), 27);
        let blocked = convs.iter().filter(|&&r| r >= 28).count();
        assert_eq!(blocked, 12);
        assert!((blocked as f64 / 27.0 * 100.0 - 44.44).abs() < 0.01);
    }

    #[test]
    fn final_shape_is_1000_classes() {
        let info = mobilenet_v1(224, false).trace().unwrap();
        assert_eq!(info.last().unwrap().out_shape.c, 1000);
    }

    #[test]
    fn conv1_2_is_the_7_6mb_bottleneck() {
        // §III-A: "For MobileNet-V1, layer conv1_2 is the main bottleneck"
        // against the ZU3EG's 7.6 Mb budget. conv2_dw output @ 16 bit:
        // 32x112x112x16 = 6.4 Mbits; conv1 output same. The largest early
        // map is conv2_pw: 64x112x112 @16 = 12.8 Mbits.
        let info = mobilenet_v1(224, false).trace().unwrap();
        let conv2_pw = info.iter().find(|l| l.name == "conv2_pw").unwrap();
        assert!(conv2_pw.out_shape.mbits(16) > 7.6);
    }
}
