//! Analytical properties of block convolution: operation-count parity
//! (Figure 3), boundary perturbation, receptive-field growth under the two
//! blocking patterns, and blocking-ratio accounting (Table I's last column).

use bconv_tensor::conv::Conv2d;
use bconv_tensor::pad::PadMode;
use bconv_tensor::{Tensor, TensorError};

use crate::block_conv::BlockConv2d;
use crate::blocking::{BlockGrid, BlockingPattern};

/// Number of spatial kernel applications (the paper's Figure 3 count): one
/// per output position per input channel.
///
/// For the conventional convolution on an `h × w` "same" layer this is
/// `h * w * c_in`; for block convolution it is the sum over blocks — equal
/// by construction.
pub fn spatial_kernel_ops(out_h: usize, out_w: usize, c_in: usize) -> usize {
    out_h * out_w * c_in
}

/// Figure 3's parity check for a planned block convolution: total per-block
/// spatial kernel applications, which must equal the conventional count.
pub fn block_spatial_kernel_ops(bconv: &BlockConv2d) -> Result<usize, TensorError> {
    let c_in = bconv.conv().c_in();
    let og = bconv.output_grid()?;
    Ok(og.blocks().map(|b| b.area() * c_in).sum())
}

/// Pixel-level comparison between conventional and block convolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryError {
    /// Maximum absolute difference over all pixels.
    pub max_abs: f32,
    /// Mean absolute difference over all pixels.
    pub mean_abs: f32,
    /// Fraction of pixels that differ by more than `1e-5`.
    pub frac_perturbed: f32,
    /// Maximum absolute difference over *interior* pixels — pixels whose
    /// receptive field does not cross a block boundary. Must be ~0.
    pub interior_max_abs: f32,
}

/// Compares block convolution against the conventional convolution on a
/// given input, separating boundary pixels from interior pixels.
///
/// The paper's correctness claim is exactly this: only pixels whose
/// receptive field crosses a block boundary are perturbed.
///
/// # Errors
///
/// Propagates shape errors from the two convolutions.
pub fn boundary_error(
    conv: &Conv2d,
    grid: &BlockGrid,
    pad_mode: PadMode,
    input: &Tensor,
) -> Result<BoundaryError, TensorError> {
    let dense = conv.forward(input)?;
    let bconv = BlockConv2d::plan(conv.clone(), grid.clone(), pad_mode)?;
    let blocked = bconv.forward(input)?;
    let out_grid = bconv.output_grid()?;

    let [n, c, oh, ow] = dense.shape().dims();
    let halo = conv.geom().kernel / 2;
    let mut max_abs: f32 = 0.0;
    let mut sum_abs: f64 = 0.0;
    let mut perturbed = 0usize;
    let mut interior_max: f32 = 0.0;

    // Interior mask per output pixel: inside some block, at distance >= halo
    // from every block edge that is not also a map edge.
    let interior = |pos: usize, len: usize, segs: &[(usize, usize)]| -> bool {
        for &(start, size) in segs {
            if pos >= start && pos < start + size {
                let lo_ok = start == 0 || pos >= start + halo;
                let hi_ok = start + size == len || pos + halo < start + size;
                return lo_ok && hi_ok;
            }
        }
        false
    };

    for ni in 0..n {
        for ci in 0..c {
            for h in 0..oh {
                let h_int = interior(h, oh, out_grid.row_segments());
                for w in 0..ow {
                    let d = (dense.at(ni, ci, h, w) - blocked.at(ni, ci, h, w)).abs();
                    max_abs = max_abs.max(d);
                    sum_abs += d as f64;
                    if d > 1e-5 {
                        perturbed += 1;
                    }
                    if h_int && interior(w, ow, out_grid.col_segments()) {
                        interior_max = interior_max.max(d);
                    }
                }
            }
        }
    }
    let total = (n * c * oh * ow) as f32;
    Ok(BoundaryError {
        max_abs,
        mean_abs: (sum_abs / total as f64) as f32,
        frac_perturbed: perturbed as f32 / total,
        interior_max_abs: interior_max,
    })
}

/// Receptive-field size (one axis) of an output block after `depth` stacked
/// 3×3 stride-1 blocked layers under a pattern.
///
/// Under **hierarchical** blocking the receptive field of a block never
/// grows past the block itself; under **fixed** blocking, pooling merges
/// blocks so the receptive field keeps growing — the mechanism the paper
/// credits for fixed blocking's higher accuracy (§II-F conclusion 2).
pub fn receptive_field(pattern: BlockingPattern, map: usize, depth: usize) -> usize {
    match pattern {
        BlockingPattern::Hierarchical { gh, .. } => {
            // Blocks stay independent: RF saturates at the block size.
            map / gh
        }
        BlockingPattern::Fixed { th, .. } => {
            // Each pooling (every `depth` proxy step) merges 2x2 blocks.
            // RF in input pixels doubles per merge until it covers the map.
            let mut rf = th;
            for _ in 0..depth {
                rf = (rf * 2).min(map);
            }
            rf
        }
    }
}

/// A conv layer's spatial facts needed for blocking-ratio accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvLayerSpatial {
    /// Spatial height at which the convolution computes (after the paper's
    /// stride-to-pooling rewrite, compute resolution = input resolution).
    pub h: usize,
    /// Spatial width at which the convolution computes.
    pub w: usize,
}

/// Fraction of conv layers that are blocked when blocking every layer whose
/// compute resolution is at least `(bh, bw)` — Table I's "Blocking Ratio".
pub fn blocking_ratio(layers: &[ConvLayerSpatial], bh: usize, bw: usize) -> f64 {
    if layers.is_empty() {
        return 0.0;
    }
    let blocked = layers.iter().filter(|l| l.h >= bh && l.w >= bw).count();
    blocked as f64 / layers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bconv_tensor::conv::ConvGeom;
    use bconv_tensor::init::{he_conv2d, seeded_rng, uniform_tensor};

    #[test]
    fn figure3_parity_192_ops() {
        // 8x8x3 input, 3x3x3 filter: 8*8*3 = 192 conventional ops;
        // (4*4*3)*4 = 192 blocked ops.
        assert_eq!(spatial_kernel_ops(8, 8, 3), 192);
        let conv = Conv2d::zeros(3, 1, ConvGeom::same(3)).unwrap();
        let bconv =
            BlockConv2d::from_pattern(conv, 8, 8, BlockingPattern::hierarchical(2), PadMode::Zero)
                .unwrap();
        assert_eq!(block_spatial_kernel_ops(&bconv).unwrap(), 192);
    }

    #[test]
    fn interior_is_exact_boundary_is_not() {
        let mut rng = seeded_rng(1);
        let conv = he_conv2d(2, 2, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 2, 16, 16], -1.0, 1.0, &mut rng);
        let grid = BlockGrid::from_pattern(16, 16, BlockingPattern::hierarchical(2)).unwrap();
        let err = boundary_error(&conv, &grid, PadMode::Zero, &input).unwrap();
        assert!(err.interior_max_abs < 1e-5, "interior must match exactly");
        assert!(err.max_abs > 1e-3, "boundary must be perturbed");
        assert!(err.frac_perturbed > 0.0 && err.frac_perturbed < 0.5);
    }

    #[test]
    fn single_block_has_zero_error() {
        let mut rng = seeded_rng(2);
        let conv = he_conv2d(1, 1, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let err = boundary_error(&conv, &BlockGrid::single(8, 8), PadMode::Zero, &input).unwrap();
        assert!(err.max_abs < 1e-5);
        assert_eq!(err.frac_perturbed, 0.0);
    }

    #[test]
    fn finer_blocking_perturbs_more_pixels() {
        let mut rng = seeded_rng(3);
        let conv = he_conv2d(1, 1, ConvGeom::same(3), 1, &mut rng).unwrap();
        let input = uniform_tensor([1, 1, 32, 32], -1.0, 1.0, &mut rng);
        let coarse = BlockGrid::from_pattern(32, 32, BlockingPattern::hierarchical(2)).unwrap();
        let fine = BlockGrid::from_pattern(32, 32, BlockingPattern::hierarchical(8)).unwrap();
        let e_coarse = boundary_error(&conv, &coarse, PadMode::Zero, &input).unwrap();
        let e_fine = boundary_error(&conv, &fine, PadMode::Zero, &input).unwrap();
        assert!(e_fine.frac_perturbed > e_coarse.frac_perturbed);
    }

    #[test]
    fn receptive_field_grows_only_under_fixed_blocking() {
        let map = 224;
        let fixed = BlockingPattern::fixed(28);
        let hier = BlockingPattern::hierarchical(8);
        // Same initial granularity (28-pixel blocks).
        assert_eq!(receptive_field(hier, map, 0), 28);
        assert_eq!(receptive_field(fixed, map, 0), 28);
        // After repeated pooling+merge, fixed blocking sees the whole map.
        assert_eq!(receptive_field(fixed, map, 3), 224);
        assert_eq!(receptive_field(hier, map, 3), 28);
    }

    #[test]
    fn blocking_ratio_matches_vgg16_table1() {
        // VGG-16 conv compute resolutions: 224x2, 112x2, 56x3, 28x3, 14x3.
        let layers: Vec<ConvLayerSpatial> =
            [224, 224, 112, 112, 56, 56, 56, 28, 28, 28, 14, 14, 14]
                .into_iter()
                .map(|r| ConvLayerSpatial { h: r, w: r })
                .collect();
        let ratio = blocking_ratio(&layers, 28, 28);
        assert!((ratio - 10.0 / 13.0).abs() < 1e-9);
        // Paper reports 76.92%.
        assert!((ratio * 100.0 - 76.92).abs() < 0.01);
    }

    #[test]
    fn blocking_ratio_empty_is_zero() {
        assert_eq!(blocking_ratio(&[], 28, 28), 0.0);
    }
}
