//! Network-level blocking plans: which conv layers of a network are blocked
//! and how (Table I's "block everything ≥ 28×28" rule, and the VDSR
//! blocking-depth schedule of Table IV).

use crate::analysis::{blocking_ratio, ConvLayerSpatial};
use crate::blocking::BlockingPattern;

/// Per-layer decision of a network blocking plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerBlocking {
    /// The layer runs as a conventional convolution (an information-fusion
    /// and off-chip-transfer point in the VDSR blocking-depth scheme).
    Normal,
    /// The layer runs as a block convolution under the given pattern.
    Blocked(BlockingPattern),
}

impl LayerBlocking {
    /// True when the layer is blocked.
    pub fn is_blocked(&self) -> bool {
        matches!(self, Self::Blocked(_))
    }
}

/// A blocking plan over the conv layers of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPlan {
    per_layer: Vec<LayerBlocking>,
}

impl NetworkPlan {
    /// Plan that blocks every conv layer whose compute resolution is at
    /// least the pattern's block size (fixed) or is splittable (hierarchical
    /// — every layer). This is the paper's "block the convolutional layers
    /// as many as possible, including the input layer" rule specialised to
    /// `F(th×tw)` / `H(gh×gw)`.
    pub fn by_resolution(layers: &[ConvLayerSpatial], pattern: BlockingPattern) -> Self {
        let per_layer = layers
            .iter()
            .map(|l| {
                let splittable = match pattern {
                    BlockingPattern::Fixed { th, tw } => l.h >= th && l.w >= tw,
                    BlockingPattern::Hierarchical { gh, gw } => l.h >= gh && l.w >= gw,
                };
                if splittable {
                    LayerBlocking::Blocked(pattern)
                } else {
                    LayerBlocking::Normal
                }
            })
            .collect();
        Self { per_layer }
    }

    /// The VDSR blocking-depth plan (§II-F, Table IV): block every `depth`
    /// consecutive layers, then leave one layer normal so information fuses
    /// across blocks (and, on hardware, one off-chip transfer occurs).
    ///
    /// `depth == usize::MAX` blocks every layer (end-to-end fusion).
    pub fn by_blocking_depth(num_layers: usize, pattern: BlockingPattern, depth: usize) -> Self {
        let per_layer = (0..num_layers)
            .map(|i| {
                if depth == usize::MAX || (i + 1) % (depth + 1) != 0 {
                    LayerBlocking::Blocked(pattern)
                } else {
                    LayerBlocking::Normal
                }
            })
            .collect();
        Self { per_layer }
    }

    /// Plan with every layer normal (the unblocked baseline).
    pub fn unblocked(num_layers: usize) -> Self {
        Self { per_layer: vec![LayerBlocking::Normal; num_layers] }
    }

    /// Per-layer decisions.
    pub fn per_layer(&self) -> &[LayerBlocking] {
        &self.per_layer
    }

    /// Number of layers covered by the plan.
    pub fn len(&self) -> usize {
        self.per_layer.len()
    }

    /// True when the plan covers no layers.
    pub fn is_empty(&self) -> bool {
        self.per_layer.is_empty()
    }

    /// Fraction of layers that are blocked (Table I's "Blocking Ratio").
    pub fn blocking_ratio(&self) -> f64 {
        if self.per_layer.is_empty() {
            return 0.0;
        }
        self.per_layer.iter().filter(|l| l.is_blocked()).count() as f64
            / self.per_layer.len() as f64
    }

    /// Indices of normal (fusion-point) layers — where off-chip transfer
    /// happens in the VDSR blocking-depth scheme.
    pub fn fusion_points(&self) -> Vec<usize> {
        self.per_layer
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (!l.is_blocked()).then_some(i))
            .collect()
    }
}

/// Blocking ratio of the resolution rule without materialising a plan —
/// convenience used by Table I.
pub fn resolution_blocking_ratio(layers: &[ConvLayerSpatial], bh: usize, bw: usize) -> f64 {
    blocking_ratio(layers, bh, bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_resolutions() -> Vec<ConvLayerSpatial> {
        [224, 224, 112, 112, 56, 56, 56, 28, 28, 28, 14, 14, 14]
            .into_iter()
            .map(|r| ConvLayerSpatial { h: r, w: r })
            .collect()
    }

    #[test]
    fn resolution_plan_blocks_layers_at_or_above_block_size() {
        let plan = NetworkPlan::by_resolution(&vgg_resolutions(), BlockingPattern::fixed(28));
        assert_eq!(plan.len(), 13);
        assert!((plan.blocking_ratio() - 10.0 / 13.0).abs() < 1e-9);
        assert!(plan.per_layer()[0].is_blocked());
        assert!(!plan.per_layer()[12].is_blocked());
    }

    #[test]
    fn hierarchical_plan_blocks_everything_splittable() {
        let plan = NetworkPlan::by_resolution(&vgg_resolutions(), BlockingPattern::hierarchical(2));
        assert_eq!(plan.blocking_ratio(), 1.0);
    }

    #[test]
    fn blocking_depth_2_places_fusion_every_third_layer() {
        // depth=2: B B N B B N ... (paper: "block every n consecutive
        // layer followed by a normal convolutional layer").
        let plan = NetworkPlan::by_blocking_depth(9, BlockingPattern::hierarchical(2), 2);
        assert_eq!(plan.fusion_points(), vec![2, 5, 8]);
        assert!((plan.blocking_ratio() - 6.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn blocking_depth_4() {
        let plan = NetworkPlan::by_blocking_depth(20, BlockingPattern::hierarchical(2), 4);
        assert_eq!(plan.fusion_points(), vec![4, 9, 14, 19]);
    }

    #[test]
    fn full_depth_blocks_all_layers() {
        let plan = NetworkPlan::by_blocking_depth(20, BlockingPattern::hierarchical(2), usize::MAX);
        assert_eq!(plan.blocking_ratio(), 1.0);
        assert!(plan.fusion_points().is_empty());
    }

    #[test]
    fn unblocked_plan_has_ratio_zero() {
        let plan = NetworkPlan::unblocked(13);
        assert_eq!(plan.blocking_ratio(), 0.0);
        assert_eq!(plan.fusion_points().len(), 13);
    }
}
